"""Fig. 6: communication time under 8 bandwidths (50 KB/s - 10 MB/s).

Shape assertions: FedKNOW's communication time is below FedWEIT's at every
bandwidth for both DNNs, times decrease monotonically with bandwidth, and
the absolute saving is largest on the slowest link (the paper reports up to
10 hours saved at 50 KB/s).
"""

from __future__ import annotations

import numpy as np

from conftest import record_report
from repro.experiments import BENCH, run_fig6


def test_fig6_bandwidth(benchmark):
    report = benchmark.pedantic(
        lambda: run_fig6(preset=BENCH), rounds=1, iterations=1
    )
    print()
    print(report)
    record_report("fig6", str(report))
    for model_label, methods in report.times.items():
        fedknow = np.array(methods["fedknow"])
        fedweit = np.array(methods["fedweit"])
        assert (fedknow <= fedweit + 1e-9).all(), (model_label, methods)
        assert (np.diff(fedknow) < 0).all(), "time must fall as bandwidth rises"
        savings = fedweit - fedknow
        assert savings[0] >= savings[-1], "biggest saving on the slowest link"
