"""Fig. 4 (d)-(f): top-3 methods on the 30-device cluster with Raspberry Pis.

The CPU devices dominate the synchronous round time, inflating simulated
training hours (the paper reports ~12x); accuracy ordering is preserved and
FedKNOW remains on top.
"""

from __future__ import annotations

import pytest

from conftest import record_report
from repro.edge import jetson_cluster
from repro.experiments import (
    BENCH,
    HETEROGENEOUS_DATASETS,
    TOP3_METHODS,
    run_fig4_panel,
)


@pytest.mark.parametrize("dataset", HETEROGENEOUS_DATASETS)
def test_fig4_heterogeneous_panel(benchmark, dataset):
    report = benchmark.pedantic(
        lambda: run_fig4_panel(
            dataset, methods=TOP3_METHODS, preset=BENCH, heterogeneous=True
        ),
        rounds=1,
        iterations=1,
    )
    print()
    print(report)
    record_report(f"fig4_hetero_{dataset}", str(report))
    # Raspberry Pis slow the cluster: simulated time far exceeds the
    # Jetson-only panel of the same dataset (which is memoised, hence cheap).
    jetson_report = run_fig4_panel(dataset, methods=TOP3_METHODS, preset=BENCH)
    hetero_hours = report.results["fedknow"].sim_train_seconds
    jetson_hours = jetson_report.results["fedknow"].sim_train_seconds
    assert hetero_hours > 3 * jetson_hours, (
        f"expected CPU devices to dominate round time: "
        f"{hetero_hours:.1f}s vs {jetson_hours:.1f}s"
    )
    accuracies = {
        method: result.final_accuracy for method, result in report.results.items()
    }
    ranked = sorted(accuracies, key=accuracies.get, reverse=True)
    assert "fedknow" in ranked[:2], f"FedKNOW not in top-2 on {dataset}: {accuracies}"
