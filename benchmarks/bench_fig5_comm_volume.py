"""Fig. 5: total communication volume (GB), FedKNOW vs FedWEIT, 5 datasets.

Shape assertion (paper: 34.28 % average reduction): FedKNOW transfers
strictly less than FedWEIT on every dataset, because FedWEIT additionally
ships sparse adaptives every round plus the all-clients adaptive broadcast
at every task start.

The fig5-wire companion sweeps the negotiated transport (dense v1 vs delta
v2 vs signature-sparse v2) and asserts the compressed uploads actually
shrink the measured volumes for every method.
"""

from __future__ import annotations

from conftest import record_report
from repro.experiments import BENCH, FIG4_DATASETS, run_fig5, run_fig5_wire


def test_fig5_comm_volume(benchmark):
    report = benchmark.pedantic(
        lambda: run_fig5(datasets=FIG4_DATASETS, preset=BENCH),
        rounds=1,
        iterations=1,
    )
    print()
    print(report)
    record_report("fig5", str(report))
    for dataset, entry in report.volumes.items():
        assert entry["fedknow"] < entry["fedweit"], (dataset, entry)
    assert report.mean_saving_percent() > 5.0


def test_fig5_wire_variants(benchmark):
    report = benchmark.pedantic(
        lambda: run_fig5_wire(dataset="cifar100", preset=BENCH),
        rounds=1,
        iterations=1,
    )
    print()
    print(report)
    record_report("fig5-wire", str(report))
    for method, entries in report.uploads.items():
        dense_gb, dense_x = entries["dense-v1"]
        delta_gb, _ = entries["delta-v2"]
        sparse_gb, _ = entries["sparse-v2"]
        assert dense_x == 1.0, method
        # compressed uploads shrink every method's measured volume (methods
        # with incompressible side-channels — FedWEIT adaptives, FLCN
        # samples — shrink less than the pure-model methods)
        assert delta_gb < dense_gb, (method, entries)
        assert sparse_gb < dense_gb, (method, entries)
    # the acceptance bar: FedKNOW's rho=0.1 deltas at least halve its volume
    fedknow_dense, _ = report.uploads["fedknow"]["dense-v1"]
    fedknow_delta, fedknow_x = report.uploads["fedknow"]["delta-v2"]
    assert fedknow_delta * 2 <= fedknow_dense
    assert fedknow_x >= 2.0
