"""Fig. 5: total communication volume (GB), FedKNOW vs FedWEIT, 5 datasets.

Shape assertion (paper: 34.28 % average reduction): FedKNOW transfers
strictly less than FedWEIT on every dataset, because FedWEIT additionally
ships sparse adaptives every round plus the all-clients adaptive broadcast
at every task start.
"""

from __future__ import annotations

from conftest import record_report
from repro.experiments import BENCH, FIG4_DATASETS, run_fig5


def test_fig5_comm_volume(benchmark):
    report = benchmark.pedantic(
        lambda: run_fig5(datasets=FIG4_DATASETS, preset=BENCH),
        rounds=1,
        iterations=1,
    )
    print()
    print(report)
    record_report("fig5", str(report))
    for dataset, entry in report.volumes.items():
        assert entry["fedknow"] < entry["fedweit"], (dataset, entry)
    assert report.mean_saving_percent() > 5.0
