"""Fig. 4 (a)-(c), (g), (h): 12 methods x 5 datasets on the 20-Jetson cluster.

Regenerates each panel's (method -> final accuracy, forgetting, simulated
hours) table.  Shape assertions encode the paper's stable qualitative
findings: FedKNOW is at or near the top on accuracy with low forgetting,
and the FL-only baselines trail the FCL methods once multiple tasks have
been learned.
"""

from __future__ import annotations

import pytest

from conftest import record_report
from repro.experiments import BENCH, FIG4_DATASETS, run_fig4_panel

#: Rank tolerance per dataset (out of 12 methods).  The paper has FedKNOW
#: first everywhere; at bench scale (3 tasks, 2x6 iterations) the ResNet
#: workloads are barely trained and the 12-method field is tightly packed,
#: so the stable, assertable claim is "upper tier + strictly above FedAvg".
TOP_RANK = {
    "cifar100": 3,
    "fc100": 3,
    "core50": 4,
    "miniimagenet": 4,
    "tinyimagenet": 6,
}


@pytest.mark.parametrize("dataset", FIG4_DATASETS)
def test_fig4_panel(benchmark, dataset):
    report = benchmark.pedantic(
        lambda: run_fig4_panel(dataset, preset=BENCH), rounds=1, iterations=1
    )
    print()
    print(report)
    record_report(f"fig4_{dataset}", str(report))
    accuracies = {
        method: result.final_accuracy for method, result in report.results.items()
    }
    ranked = sorted(accuracies, key=accuracies.get, reverse=True)
    assert "fedknow" in ranked[: TOP_RANK[dataset]], (
        f"FedKNOW ranked {ranked.index('fedknow') + 1} on {dataset}: {accuracies}"
    )
    # FCL methods must beat plain FedAvg once several tasks are learned
    assert accuracies["fedknow"] > accuracies["fedavg"]
