"""Fig. 7: accuracy / forgetting over a long task sequence (80 in the paper).

At bench scale the combined MiniImageNet+CIFAR+Tiny workload is shortened to
6 tasks.  Shape assertions: accuracy degrades as tasks accumulate for every
method (the paper's ResNet-18 capacity argument), and FedKNOW ends with the
best accuracy and no worse forgetting than the FL-style baselines.
"""

from __future__ import annotations

import numpy as np

from conftest import record_report
from repro.experiments import BENCH, run_fig7

NUM_TASKS = 6


def test_fig7_task_scaling(benchmark):
    report = benchmark.pedantic(
        lambda: run_fig7(preset=BENCH, num_tasks=NUM_TASKS),
        rounds=1,
        iterations=1,
    )
    print()
    print(report)
    record_report("fig7", str(report))
    final = {m: r.final_accuracy for m, r in report.results.items()}
    ranked = sorted(final, key=final.get, reverse=True)
    # FedKNOW leads the sample-based baseline and stays within the top two.
    # (This reproduction's FedWEIT keeps dense-ish per-task adaptives at
    # evaluation — a simplification that favours FedWEIT; see EXPERIMENTS.md.)
    assert final["fedknow"] > final["gem"], final
    assert ranked.index("fedknow") <= 1, final
    for method, result in report.results.items():
        curve = result.accuracy_curve
        # early-task accuracy exceeds late-task accuracy (forgetting trend)
        assert curve[: 2].mean() > curve[-1] - 0.05, (method, curve)
