"""Fig. 8: accuracy / forgetting when the federation grows (50/100 clients).

Bench scale uses 6 and 10 clients (proportional to the paper's 50/100 with
the same 2x step).  Shape assertions: FedKNOW holds the highest accuracy and
the lowest forgetting at the larger federation, where per-client data is
scarcer and negative transfer is strongest.
"""

from __future__ import annotations

from conftest import record_report
from repro.experiments import BENCH, run_fig8

CLIENT_COUNTS = (6, 10)


def test_fig8_client_scaling(benchmark):
    report = benchmark.pedantic(
        lambda: run_fig8(preset=BENCH, client_counts=CLIENT_COUNTS),
        rounds=1,
        iterations=1,
    )
    print()
    print(report)
    record_report("fig8", str(report))
    largest = report.results[CLIENT_COUNTS[-1]]
    accuracy = {m: r.final_accuracy for m, r in largest.items()}
    forgetting = {m: float(r.forgetting_curve[-1]) for m, r in largest.items()}
    ranked = sorted(accuracy, key=accuracy.get, reverse=True)
    # FedKNOW beats the sample-based baseline and stays within the top two
    # at the largest federation (see EXPERIMENTS.md on the FedWEIT caveat).
    assert accuracy["fedknow"] > accuracy["gem"], (accuracy, forgetting)
    assert ranked.index("fedknow") <= 1, (accuracy, forgetting)
    assert forgetting["fedknow"] <= min(forgetting.values()) + 0.10, forgetting
