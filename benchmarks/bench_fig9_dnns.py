"""Fig. 9: applicability to the eight modern DNNs (six architecture families).

Each architecture runs GEM / FedWEIT / FedKNOW over a shortened MiniImageNet
sequence.  Shape assertions: every architecture trains (accuracy above
chance on its task subsets), and FedKNOW wins or ties on the majority of
architectures (the paper's architecture-agnostic knowledge claim).
"""

from __future__ import annotations

import pytest

from conftest import record_report
from repro.experiments import BENCH, run_fig9
from repro.models import FIG9_MODELS

#: resnet152 at bench scale is CPU-heavy; a reduced preset keeps the suite fast.
FIG9_PRESET = BENCH.updated(
    num_clients=2, num_tasks=2, rounds_per_task=2, iterations_per_round=4,
    train_per_class=12,
)


def test_fig9_dnns(benchmark):
    report = benchmark.pedantic(
        lambda: run_fig9(preset=FIG9_PRESET, models=FIG9_MODELS),
        rounds=1,
        iterations=1,
    )
    print()
    print(report)
    record_report("fig9", str(report))
    import numpy as np

    per_method: dict[str, list[float]] = {}
    for model, entry in report.results.items():
        accuracy = {m: r.final_accuracy for m, r in entry.items()}
        # every architecture must learn something: above chance for 2-5-way
        assert max(accuracy.values()) > 0.25, (model, accuracy)
        for method, value in accuracy.items():
            per_method.setdefault(method, []).append(value)
    means = {m: float(np.mean(v)) for m, v in per_method.items()}
    # architecture-agnosticism: averaged over the eight networks, FedKNOW is
    # at (or within noise of) the top
    assert means["fedknow"] >= max(means.values()) - 0.05, means
