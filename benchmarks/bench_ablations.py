"""Ablations of FedKNOW's design choices (DESIGN.md's call-outs).

Distance metric for signature-task selection, the k sweep, the NNQP solver,
and the post-aggregation integration toggle.  Solver choice must not change
accuracy materially (both solve the same QP); the other axes print their
trade-off tables.
"""

from __future__ import annotations

from conftest import record_report
from repro.experiments import (
    BENCH,
    run_aggregation_ablation,
    run_distance_ablation,
    run_k_ablation,
    run_qp_ablation,
)

ABLATION_PRESET = BENCH.updated(num_tasks=3)


def test_ablation_distance_metric(benchmark):
    report = benchmark.pedantic(
        lambda: run_distance_ablation(preset=ABLATION_PRESET),
        rounds=1, iterations=1,
    )
    print()
    print(report)
    record_report("ablation_distance", str(report))
    accuracies = [r.final_accuracy for r in report.results.values()]
    assert all(a > 0.2 for a in accuracies), report.results


def test_ablation_k(benchmark):
    report = benchmark.pedantic(
        lambda: run_k_ablation(preset=ABLATION_PRESET), rounds=1, iterations=1
    )
    print()
    print(report)
    record_report("ablation_k", str(report))
    assert set(report.results) == {"k=2", "k=5", "k=10"}


def test_ablation_qp_solver(benchmark):
    report = benchmark.pedantic(
        lambda: run_qp_ablation(preset=ABLATION_PRESET), rounds=1, iterations=1
    )
    print()
    print(report)
    record_report("ablation_qp", str(report))
    accs = {k: r.final_accuracy for k, r in report.results.items()}
    # both solvers reach the same optimum; end accuracy must agree closely
    assert abs(accs["active_set"] - accs["projected_gradient"]) < 0.08, accs


def test_ablation_aggregation_integration(benchmark):
    report = benchmark.pedantic(
        lambda: run_aggregation_ablation(preset=ABLATION_PRESET),
        rounds=1, iterations=1,
    )
    print()
    print(report)
    record_report("ablation_aggregation", str(report))
    on = report.results["integration_on"].final_accuracy
    off = report.results["integration_off"].final_accuracy
    # the negative-transfer prevention should not hurt; usually helps
    assert on >= off - 0.05, (on, off)
