"""Micro-benchmarks of FedKNOW's hot components.

These are true pytest-benchmark measurements (multiple rounds): the per-
iteration costs that determine on-device training time — one training step,
a knowledge extraction, a gradient restoration, and the integrator QP.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.core import GradientIntegrator, GradientRestorer, KnowledgeExtractor
from repro.curv import FisherSelector
from repro.core.qp import solve_nnqp_active_set, solve_nnqp_projected_gradient
from repro.data import build_benchmark, cifar100_like, create_scenario
from repro.federated import (
    ClientUpdate,
    FedAvgServer,
    ProcessRoundEngine,
    ShardedAggregator,
    TrainConfig,
    create_trainer,
)
from repro.federated.batched import capture_client_tape, train_chunk
from repro.models import build_model
from repro.nn import SGD, Tensor
from repro.nn import functional as F


@pytest.fixture(scope="module")
def setting():
    spec = cifar100_like(train_per_class=16, test_per_class=4).with_tasks(2)
    bench = build_benchmark(spec, num_clients=1, rng=np.random.default_rng(0))
    task = bench.clients[0].tasks[0]
    model = build_model(spec.model_name, spec.num_classes,
                        rng=np.random.default_rng(0))
    scratch = build_model(spec.model_name, spec.num_classes,
                          rng=np.random.default_rng(0))
    return spec, task, model, scratch


def test_training_step(benchmark, setting):
    _, task, model, _ = setting
    optimizer = SGD(model.parameters(), lr=0.01)
    mask = task.class_mask()
    xb, yb = task.train_x[:16], task.train_y[:16]

    def step():
        optimizer.zero_grad()
        F.cross_entropy(model(Tensor(xb)), yb, class_mask=mask).backward()
        optimizer.step()

    benchmark(step)


def test_knowledge_extraction(benchmark, setting):
    _, task, model, _ = setting
    extractor = KnowledgeExtractor(ratio=0.10)
    knowledge = benchmark(lambda: extractor.extract(model, task))
    assert knowledge.num_retained() > 0


def test_fisher_select_64c(benchmark, setting):
    """Fisher-scored signature extraction on a 64-sample curvature estimate,
    gated at <= 2x the magnitude extraction (best-of-5 each side).  The
    Fisher diagonal rides the batched tape replay (two chunk-64 replays),
    so its scoring overhead must stay a fraction of the extraction's
    pruned-finetune cost rather than multiplying it."""
    _, task, model, scratch = setting
    magnitude = KnowledgeExtractor(ratio=0.10, finetune_iterations=20)
    fisher = KnowledgeExtractor(
        ratio=0.10, finetune_iterations=20,
        selector=FisherSelector(max_samples=64, chunk=64),
    )

    def magnitude_extract():
        return magnitude.extract(model, task, scratch=scratch,
                                 rng=np.random.default_rng(0))

    def fisher_extract():
        return fisher.extract(model, task, scratch=scratch,
                              rng=np.random.default_rng(0))

    magnitude_extract(), fisher_extract()  # warm both paths
    fisher_best = min(_seconds(fisher_extract) for _ in range(5))
    magnitude_best = min(_seconds(magnitude_extract) for _ in range(5))
    knowledge = benchmark(fisher_extract)
    assert knowledge.num_retained() > 0
    assert fisher_best <= 2.0 * magnitude_best, (
        f"fisher selection {fisher_best:.4f}s > 2x magnitude selection "
        f"{magnitude_best:.4f}s"
    )


def test_gradient_restoration(benchmark, setting):
    _, task, model, scratch = setting
    knowledge = KnowledgeExtractor(ratio=0.10).extract(model, task)
    restorer = GradientRestorer(scratch)
    xb = task.train_x[:16]
    grad = benchmark(lambda: restorer.restore_gradient(model, knowledge, xb))
    assert np.isfinite(grad).all()


def test_integrator_with_ten_constraints(benchmark, setting):
    _, _, model, _ = setting
    rng = np.random.default_rng(1)
    dim = model.num_parameters()
    gradient = rng.normal(size=dim)
    constraints = rng.normal(size=(10, dim))
    integrator = GradientIntegrator()
    result = benchmark(lambda: integrator.integrate(gradient, constraints))
    assert result.gradient.shape == (dim,)


@pytest.mark.parametrize("mode", ["lazy", "eager"])
def test_scenario_construction_64_clients(benchmark, mode):
    """Benchmark construction at population scale: lazy streams vs the
    eager clients x tasks grid.  The lazy path is the startup win the
    scenario API exists for — it should sit orders of magnitude below
    eager."""
    spec = cifar100_like(train_per_class=8, test_per_class=2).with_tasks(4)
    scenario = create_scenario("class-inc")

    def construct():
        return scenario.build(
            spec, num_clients=64, rng=np.random.default_rng(0),
            eager=(mode == "eager"),
        )

    bench = benchmark(construct)
    assert bench.num_clients == 64
    expected = spec.num_tasks if mode == "eager" else 0
    assert bench.clients[0].tasks.num_materialized == expected


def _population_updates(num_clients: int) -> list[ClientUpdate]:
    """Model-state-shaped uploads for aggregation-scale benchmarks."""
    rng = np.random.default_rng(0)
    return [
        ClientUpdate(
            client_id=i,
            state={
                "features.weight": rng.normal(size=(64, 64, 3, 3)).astype(np.float32),
                "classifier.weight": rng.normal(size=(100, 256)).astype(np.float32),
                "bn.steps": np.array(100, dtype=np.int64),
            },
            num_samples=int(rng.integers(10, 100)),
        )
        for i in range(num_clients)
    ]


def test_sharded_merge_64_clients(benchmark):
    """Shard-partitioned aggregation of a 64-client round (8 shards) —
    the server-side hot path of large-population rounds.  Must stay
    bit-identical to the unsharded server (asserted every run)."""
    updates = _population_updates(64)
    reference = FedAvgServer().aggregate_updates(updates)
    out = benchmark(
        lambda: ShardedAggregator(FedAvgServer(), 8).aggregate_updates(updates)
    )
    assert all(np.array_equal(reference[k], out[k]) for k in reference)


def _process_round_work(seed: int) -> float:
    """Picklable stand-in for one client's round work (numpy-bound)."""
    rng = np.random.default_rng(seed)
    matrix = rng.normal(size=(96, 96))
    return float(np.linalg.norm(matrix @ matrix.T))


@pytest.fixture(scope="module")
def process_engine():
    engine = ProcessRoundEngine(max_workers=2)
    yield engine
    engine.close()


def test_process_round_8_clients(benchmark, process_engine):
    """An 8-item round dispatched through the process engine — times the
    pickle/IPC overhead the GIL-free engine pays per round."""
    results = benchmark(
        lambda: process_engine.map(_process_round_work, range(8))
    )
    assert len(results) == 8


@pytest.fixture(scope="module")
def socket_engine():
    from repro.serve import SocketRoundEngine

    engine = SocketRoundEngine(max_workers=2)
    engine.map(_process_round_work, range(8))  # spawn + handshake once
    yield engine
    engine.close()


def test_socket_round_8c(benchmark, socket_engine, process_engine):
    """The same 8-item round over the serve subsystem's framed TCP
    protocol.  Asserts the socket engine's acceptance bar — per-round
    framing overhead within 1.5x of the process engine's tmpfs file IPC
    (best-of-5 on each side)."""
    process_engine.map(_process_round_work, range(8))  # warm both sides

    def socket_round():
        return socket_engine.map(_process_round_work, range(8))

    def process_round():
        return process_engine.map(_process_round_work, range(8))

    socket_best = min(_seconds(socket_round) for _ in range(5))
    process_best = min(_seconds(process_round) for _ in range(5))
    results = benchmark(socket_round)
    assert len(results) == 8
    assert socket_best <= 1.5 * process_best, (
        f"socket round {socket_best:.4f}s > 1.5x process round "
        f"{process_best:.4f}s"
    )


@pytest.fixture(scope="module")
def round_64c():
    """Two 64-client fedavg populations (serial reference + batched) on a
    dispatch-bound workload: small inputs and minibatches make python
    autograd dispatch — not BLAS — the round's dominant cost, which is the
    regime the captured-tape engine exists for."""
    spec = cifar100_like(
        train_per_class=4, test_per_class=2, input_shape=(3, 8, 8)
    ).with_tasks(1)
    scenario = create_scenario("class-inc")
    config = TrainConfig(batch_size=1, lr=0.01, rounds_per_task=1,
                         iterations_per_round=8, seed=0)

    def build(engine):
        bench = scenario.build(spec, num_clients=64,
                               rng=np.random.default_rng(0))
        trainer = create_trainer("fedavg", bench, config,
                                 with_cost_model=False, engine=engine)
        for client in trainer.clients:
            client.begin_task(0)
        return trainer

    serial, batched = build("serial"), build("batched")
    tape, order = capture_client_tape(batched.clients[0])
    train_chunk(batched.clients, 1, tape, order)  # warm the replay path
    yield serial, batched, tape, order
    serial.close()
    batched.close()


def test_replayed_step(benchmark, round_64c):
    """One captured-graph replay + flat SGD step for a single client — the
    tape-engine counterpart of ``test_training_step``'s dynamic step."""
    _, batched, tape, order = round_64c
    client = batched.clients[0]
    benchmark(lambda: train_chunk([client], 1, tape, order))


def _seconds(fn) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def test_batched_round_64c(benchmark, round_64c):
    """A full 64-client, 8-iteration local-training round: one batched
    captured-tape replay vs the serial client loop.  Asserts the batched
    engine's acceptance bar — >= 4x fewer wall-clock seconds than serial
    (best-of-3 on each side; the FLOPs are identical, so the win is
    amortized dispatch)."""
    serial, batched, tape, order = round_64c
    iterations = serial.config.iterations_per_round

    def serial_round():
        for client in serial.clients:
            client.local_train(iterations)

    def batched_round():
        train_chunk(batched.clients, iterations, tape, order)

    serial_round()  # warm-up
    serial_best = min(_seconds(serial_round) for _ in range(3))
    batched_best = min(_seconds(batched_round) for _ in range(3))
    benchmark(batched_round)
    assert serial_best / batched_best >= 4.0, (
        f"batched round speedup {serial_best / batched_best:.2f}x < 4x "
        f"(serial {serial_best:.3f}s, batched {batched_best:.3f}s)"
    )


def test_telemetry_overhead_64c(benchmark, round_64c):
    """Telemetry cost contract on the batched 64-client round: the
    instrumented-but-disabled path stays within 1.05x of the plain round
    (a closed session must leave no residual cost), and an enabled session
    — spans plus per-op replay timing — costs at most 1.3x (best-of-7 on
    the compared sides to keep scheduler noise under the 1.05 margin)."""
    from repro.obs import Telemetry

    _, batched, tape, order = round_64c
    iterations = batched.config.iterations_per_round

    def batched_round():
        train_chunk(batched.clients, iterations, tape, order)

    batched_round()  # warm-up
    plain_best = min(_seconds(batched_round) for _ in range(7))
    with Telemetry():
        batched_round()  # warm the traced path
        enabled_best = min(_seconds(batched_round) for _ in range(5))
    disabled_best = min(_seconds(batched_round) for _ in range(7))
    benchmark(batched_round)
    assert disabled_best <= 1.05 * plain_best, (
        f"disabled telemetry {disabled_best:.4f}s > 1.05x plain round "
        f"{plain_best:.4f}s"
    )
    assert enabled_best <= 1.3 * disabled_best, (
        f"enabled telemetry {enabled_best:.4f}s > 1.3x disabled round "
        f"{disabled_best:.4f}s"
    )


def test_eventsim_100k(benchmark):
    """Event-driven serving of a 100k-client fixed population for five
    overlapping rounds — the scheduling hot path of the population
    simulator.  Asserts the subsystem's acceptance bar: >= 10^4 simulated
    clients per wall-clock second (measured ~10^5 on CI-class hardware)."""
    from repro.federated import PopulationSimulator

    def serve():
        return PopulationSimulator(
            100_000, population="fixed", num_rounds=5, shards=16,
            max_staleness=2, seed=0,
        ).run()

    report = benchmark.pedantic(serve, rounds=2, iterations=1)
    assert report.scheduled >= 100_000
    assert report.clients_per_second >= 10_000, (
        f"event simulator scheduled {report.clients_per_second:.0f} "
        f"clients/s < 10^4"
    )


@pytest.mark.parametrize("solver", [solve_nnqp_active_set,
                                    solve_nnqp_projected_gradient])
def test_nnqp_solver(benchmark, solver):
    rng = np.random.default_rng(2)
    g = rng.normal(size=(10, 64))
    p = g @ g.T
    q = rng.normal(size=10)
    v = benchmark(lambda: solver(p, q))
    assert (v >= -1e-9).all()
