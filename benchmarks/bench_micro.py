"""Micro-benchmarks of FedKNOW's hot components.

These are true pytest-benchmark measurements (multiple rounds): the per-
iteration costs that determine on-device training time — one training step,
a knowledge extraction, a gradient restoration, and the integrator QP.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import GradientIntegrator, GradientRestorer, KnowledgeExtractor
from repro.core.qp import solve_nnqp_active_set, solve_nnqp_projected_gradient
from repro.data import build_benchmark, cifar100_like, create_scenario
from repro.models import build_model
from repro.nn import SGD, Tensor
from repro.nn import functional as F


@pytest.fixture(scope="module")
def setting():
    spec = cifar100_like(train_per_class=16, test_per_class=4).with_tasks(2)
    bench = build_benchmark(spec, num_clients=1, rng=np.random.default_rng(0))
    task = bench.clients[0].tasks[0]
    model = build_model(spec.model_name, spec.num_classes,
                        rng=np.random.default_rng(0))
    scratch = build_model(spec.model_name, spec.num_classes,
                          rng=np.random.default_rng(0))
    return spec, task, model, scratch


def test_training_step(benchmark, setting):
    _, task, model, _ = setting
    optimizer = SGD(model.parameters(), lr=0.01)
    mask = task.class_mask()
    xb, yb = task.train_x[:16], task.train_y[:16]

    def step():
        optimizer.zero_grad()
        F.cross_entropy(model(Tensor(xb)), yb, class_mask=mask).backward()
        optimizer.step()

    benchmark(step)


def test_knowledge_extraction(benchmark, setting):
    _, task, model, _ = setting
    extractor = KnowledgeExtractor(ratio=0.10)
    knowledge = benchmark(lambda: extractor.extract(model, task))
    assert knowledge.num_retained() > 0


def test_gradient_restoration(benchmark, setting):
    _, task, model, scratch = setting
    knowledge = KnowledgeExtractor(ratio=0.10).extract(model, task)
    restorer = GradientRestorer(scratch)
    xb = task.train_x[:16]
    grad = benchmark(lambda: restorer.restore_gradient(model, knowledge, xb))
    assert np.isfinite(grad).all()


def test_integrator_with_ten_constraints(benchmark, setting):
    _, _, model, _ = setting
    rng = np.random.default_rng(1)
    dim = model.num_parameters()
    gradient = rng.normal(size=dim)
    constraints = rng.normal(size=(10, dim))
    integrator = GradientIntegrator()
    result = benchmark(lambda: integrator.integrate(gradient, constraints))
    assert result.gradient.shape == (dim,)


@pytest.mark.parametrize("mode", ["lazy", "eager"])
def test_scenario_construction_64_clients(benchmark, mode):
    """Benchmark construction at population scale: lazy streams vs the
    eager clients x tasks grid.  The lazy path is the startup win the
    scenario API exists for — it should sit orders of magnitude below
    eager."""
    spec = cifar100_like(train_per_class=8, test_per_class=2).with_tasks(4)
    scenario = create_scenario("class-inc")

    def construct():
        return scenario.build(
            spec, num_clients=64, rng=np.random.default_rng(0),
            eager=(mode == "eager"),
        )

    bench = benchmark(construct)
    assert bench.num_clients == 64
    expected = spec.num_tasks if mode == "eager" else 0
    assert bench.clients[0].tasks.num_materialized == expected


@pytest.mark.parametrize("solver", [solve_nnqp_active_set,
                                    solve_nnqp_projected_gradient])
def test_nnqp_solver(benchmark, solver):
    rng = np.random.default_rng(2)
    g = rng.normal(size=(10, 64))
    p = g @ g.T
    q = rng.normal(size=10)
    v = benchmark(lambda: solver(p, q))
    assert (v >= -1e-9).all()
