#!/usr/bin/env python3
"""Regression gate for the codec and aggregator hot paths.

``pytest benchmarks/`` measures; this script *gates*: it times the wire
codec (encode / decode / top-k sparsification) and the streaming FedAvg
aggregator on a model-sized state dict, normalizes each timing by a
machine-calibration workload (so the recorded baselines transfer across CI
runners of different speeds), and fails when any hot path regresses more
than ``THRESHOLD`` x against ``baselines.json``.

Usage::

    python benchmarks/gate.py            # check against recorded baselines
    python benchmarks/gate.py --record   # re-record baselines (after a
                                         # deliberate perf change, commit the
                                         # updated baselines.json)
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

from repro.data import cifar100_like, create_scenario
from repro.federated import (
    ClientUpdate,
    FedAvgServer,
    ProcessRoundEngine,
    ShardedAggregator,
    TrainConfig,
    create_trainer,
)
from repro.federated.batched import capture_client_tape, train_chunk
from repro.federated.simulation import PopulationSimulator
from repro.obs import Telemetry
from repro.serve import SocketRoundEngine
from repro.utils.serialization import (
    decode_state,
    decode_state_v2,
    encode_state,
    encode_state_v2,
    sparse_delta_state,
    sparse_topk,
)

BASELINE_PATH = Path(__file__).resolve().parent / "baselines.json"

#: A hot path may be at most this many times slower than its baseline ratio.
THRESHOLD = 1.5

#: Ratio-valued cases: already dimensionless (not divided by the
#: calibration unit) and held to an absolute bound instead of the
#: baseline-relative THRESHOLD.
ABSOLUTE_BOUNDS = {
    # tracing + per-op timing enabled vs disabled, on the batched round
    "telemetry_overhead_64c": 1.3,
    # instrumented-but-disabled vs the plain round: telemetry must be
    # no-op-cheap when off
    "telemetry_disabled_64c": 1.05,
}


def best_seconds(fn, repeats: int = 7, min_seconds: float = 0.1) -> float:
    """Best per-call time over ``repeats`` batches (timeit's methodology)."""
    # size each batch to run for at least min_seconds
    calls = 1
    while True:
        start = time.perf_counter()
        for _ in range(calls):
            fn()
        elapsed = time.perf_counter() - start
        if elapsed >= min_seconds:
            break
        calls *= 4
    best = elapsed / calls
    for _ in range(repeats - 1):
        start = time.perf_counter()
        for _ in range(calls):
            fn()
        best = min(best, (time.perf_counter() - start) / calls)
    return best


def calibration_seconds() -> float:
    """Time a fixed numpy workload proportional to this machine's speed.

    Mixes a large array copy (the codec is memory-bound) with float64
    multiply-accumulate (the aggregator's inner loop), so hot-path /
    calibration ratios stay comparable across differently-sized runners.
    """
    rng = np.random.default_rng(0)
    array = rng.normal(size=2**20).astype(np.float32)
    accum = np.zeros(2**20, dtype=np.float64)

    def workload():
        copied = array.copy()
        np.add(accum, 0.25 * copied.astype(np.float64), out=accum)

    return best_seconds(workload)


def model_state() -> dict[str, np.ndarray]:
    rng = np.random.default_rng(0)
    state = {
        f"features.{i}.weight": rng.normal(size=(64, 64, 3, 3)).astype(np.float32)
        for i in range(4)
    }
    state["classifier.weight"] = rng.normal(size=(100, 256)).astype(np.float32)
    state["bn.num_batches_tracked"] = np.array(100, dtype=np.int64)
    return state


def _gate_round_work(seed: int) -> float:
    """Picklable stand-in for one client's round work (numpy-bound)."""
    rng = np.random.default_rng(seed)
    matrix = rng.normal(size=(96, 96))
    return float(np.linalg.norm(matrix @ matrix.T))


def _local_round_cases() -> dict[str, float]:
    """Local-training rounds: the serial client loop vs one batched
    captured-tape replay (64 clients, dispatch-bound workload), plus a
    single-client replay step.  The serial case is recorded alongside the
    batched one so baselines.json documents the engine's speedup ratio."""
    spec = cifar100_like(
        train_per_class=4, test_per_class=2, input_shape=(3, 8, 8)
    ).with_tasks(1)
    config = TrainConfig(batch_size=1, lr=0.01, rounds_per_task=1,
                         iterations_per_round=8, seed=0)

    def build(engine):
        bench = create_scenario("class-inc").build(
            spec, num_clients=64, rng=np.random.default_rng(0)
        )
        trainer = create_trainer("fedavg", bench, config,
                                 with_cost_model=False, engine=engine)
        for client in trainer.clients:
            client.begin_task(0)
        return trainer

    serial, batched = build("serial"), build("batched")
    tape, order = capture_client_tape(batched.clients[0])

    def batched_round():
        train_chunk(batched.clients, 8, tape, order)

    try:
        cases = {
            "serial_round_64c": best_seconds(
                lambda: [c.local_train(8) for c in serial.clients],
                repeats=3,
            ),
            "batched_round_64c": best_seconds(batched_round, repeats=7),
            "replayed_step": best_seconds(
                lambda: train_chunk(batched.clients[:1], 1, tape, order)
            ),
        }
        # telemetry cost contract, measured on the same warm round: an
        # enabled session (spans + per-op timing) vs the disabled path,
        # and the disabled path vs the plain measurement above
        with Telemetry():
            enabled = best_seconds(batched_round, repeats=3)
        disabled = best_seconds(batched_round, repeats=7)
        cases["telemetry_overhead_64c"] = enabled / disabled
        cases["telemetry_disabled_64c"] = disabled / cases["batched_round_64c"]
        return cases
    finally:
        serial.close()
        batched.close()


def _selector_cases() -> dict[str, float]:
    """Signature-knowledge selection: magnitude vs Fisher-scored extraction
    (64-sample diagonal-Fisher estimate, hence "64c").  The magnitude case
    is recorded alongside the Fisher one so baselines.json documents the
    scoring-overhead ratio the ``fisher_select_64c`` bench asserts stays
    <= 2x."""
    from repro.core import KnowledgeExtractor
    from repro.curv import FisherSelector
    from repro.data import build_benchmark
    from repro.models import build_model

    spec = cifar100_like(train_per_class=16, test_per_class=4).with_tasks(2)
    bench = build_benchmark(spec, num_clients=1, rng=np.random.default_rng(0))
    task = bench.clients[0].tasks[0]
    model = build_model(spec.model_name, spec.num_classes,
                        rng=np.random.default_rng(0))
    scratch = build_model(spec.model_name, spec.num_classes,
                          rng=np.random.default_rng(0))
    magnitude = KnowledgeExtractor(ratio=0.10, finetune_iterations=20)
    fisher = KnowledgeExtractor(
        ratio=0.10, finetune_iterations=20,
        selector=FisherSelector(max_samples=64, chunk=64),
    )
    return {
        "magnitude_select_64c": best_seconds(
            lambda: magnitude.extract(model, task, scratch=scratch,
                                      rng=np.random.default_rng(0)),
            repeats=3,
        ),
        "fisher_select_64c": best_seconds(
            lambda: fisher.extract(model, task, scratch=scratch,
                                   rng=np.random.default_rng(0)),
            repeats=3,
        ),
    }


def hot_path_cases() -> dict[str, float]:
    """Measure each gated hot path; returns name -> best seconds."""
    state = model_state()
    scenario_spec = cifar100_like(train_per_class=8, test_per_class=2)
    payload = encode_state(state)
    dense = state["features.0.weight"]
    rng = np.random.default_rng(2)
    client_states = [
        {k: v + np.float32(rng.normal(scale=0.01))
         if np.issubdtype(v.dtype, np.floating) else v
         for k, v in state.items()}
        for _ in range(16)
    ]
    updates = [
        ClientUpdate(client_id=i, state=s, num_samples=int(w))
        for i, (s, w) in enumerate(
            zip(client_states, rng.integers(10, 100, size=16))
        )
    ]
    base = {
        k: v + np.float32(0.001) if np.issubdtype(v.dtype, np.floating) else v
        for k, v in state.items()
    }
    delta_entries = sparse_delta_state(state, base, ratio=0.10)
    delta_keys = {
        k for k, v in delta_entries.items() if not isinstance(v, np.ndarray)
    }
    payload_v2 = encode_state_v2(state)
    payload_delta = encode_state_v2(delta_entries, delta_keys=delta_keys)
    sharded_updates = [
        ClientUpdate(client_id=i, state=s, num_samples=int(w))
        for i, (s, w) in enumerate(
            zip(client_states * 4, rng.integers(10, 100, size=64))
        )
    ]
    process_engine = ProcessRoundEngine(max_workers=2)
    try:
        process_round_8c = best_seconds(
            lambda: process_engine.map(_gate_round_work, range(8))
        )
    finally:
        process_engine.close()
    socket_engine = SocketRoundEngine(max_workers=2)
    try:
        socket_engine.map(_gate_round_work, range(8))  # spawn + handshake
        socket_round_8c = best_seconds(
            lambda: socket_engine.map(_gate_round_work, range(8))
        )
    finally:
        socket_engine.close()
    return {
        "encode_state": best_seconds(lambda: encode_state(state)),
        "decode_state": best_seconds(lambda: decode_state(payload)),
        "encode_state_v2": best_seconds(lambda: encode_state_v2(state)),
        "decode_state_v2": best_seconds(lambda: decode_state_v2(payload_v2)),
        # top-k selection is gated separately (sparse_topk); this case
        # times only the v2 delta encoder on precomputed entries
        "encode_delta_v2": best_seconds(
            lambda: encode_state_v2(delta_entries, delta_keys=delta_keys)
        ),
        "decode_delta_v2": best_seconds(
            lambda: decode_state_v2(payload_delta, base=base)
        ),
        "sparse_topk": best_seconds(lambda: sparse_topk(dense, dense.size // 10)),
        "aggregate_16_clients": best_seconds(
            lambda: FedAvgServer().aggregate_updates(updates)
        ),
        # shard-merged streaming aggregation over a 64-client round — the
        # server-side hot path of large-population (fig-scaling) rounds
        "sharded_merge_64c": best_seconds(
            lambda: ShardedAggregator(FedAvgServer(), 8).aggregate_updates(
                sharded_updates
            )
        ),
        # dispatch + pickle/IPC overhead of one small process-engine round
        # (the pool is warm; measures the per-round tax, not spawn)
        "process_round_8c": process_round_8c,
        "socket_round_8c": socket_round_8c,
        # lazy scenario construction must stay O(clients): the 64-client
        # stream build may not silently start materializing task arrays
        "scenario_stream_64c": best_seconds(
            lambda: create_scenario("class-inc").build(
                scenario_spec, num_clients=64, rng=np.random.default_rng(0)
            )
        ),
        # event-driven population serving: 20k fixed clients through three
        # overlapping rounds — gates the simulator's event-loop scheduling
        # throughput (bench_micro asserts the absolute >= 10^4 clients/s bar)
        "eventsim_20k": best_seconds(
            lambda: PopulationSimulator(
                20_000, population="fixed", num_rounds=3, shards=16,
                max_staleness=2, seed=0,
            ).run(),
            repeats=3,
        ),
        # signature-knowledge selection: magnitude vs Fisher-scored
        # extraction — gates the curvature scorer's tape-replay overhead
        **_selector_cases(),
        # the client-side hot path: one 64-client local-training round on
        # the serial loop vs the batched captured-tape engine (the batched
        # baseline must stay well under serial_round_64c / 4)
        **_local_round_cases(),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--record", action="store_true",
                        help="write baselines.json instead of checking")
    args = parser.parse_args(argv)

    unit = calibration_seconds()
    ratios = {
        name: seconds if name in ABSOLUTE_BOUNDS else seconds / unit
        for name, seconds in hot_path_cases().items()
    }

    if args.record:
        BASELINE_PATH.write_text(json.dumps(
            {"unit": "hot-path seconds / calibration seconds "
                     "(absolute-bound cases: measured ratio)",
             "threshold": THRESHOLD,
             "absolute_bounds": ABSOLUTE_BOUNDS,
             "ratios": {k: round(v, 3) for k, v in ratios.items()}},
            indent=1,
        ) + "\n")
        print(f"recorded {len(ratios)} baselines to {BASELINE_PATH}")
        return 0

    baselines = json.loads(BASELINE_PATH.read_text())["ratios"]
    failed = []
    print(f"{'hot path':<24}{'baseline':>10}{'now':>10}{'x':>8}")
    for name, ratio in ratios.items():
        bound = ABSOLUTE_BOUNDS.get(name)
        if bound is not None:
            # dimensionless case: gated against its absolute bound, not a
            # machine-relative baseline
            print(f"{name:<24}{bound:>10.3f}{ratio:>10.3f}"
                  f"{ratio / bound:>8.2f}")
            if ratio > bound:
                failed.append(name)
            continue
        base = baselines.get(name)
        factor = ratio / base if base else float("nan")
        print(f"{name:<24}{base or float('nan'):>10.3f}{ratio:>10.3f}"
              f"{factor:>8.2f}")
        if base is None or factor > THRESHOLD:
            failed.append(name)
    if failed:
        print(f"\nFAIL: {', '.join(failed)} regressed past their bounds; "
              f"if intentional, rerun with --record and commit "
              f"baselines.json")
        return 1
    print("\nall hot paths within budget")
    return 0


if __name__ == "__main__":
    sys.exit(main())
