"""Micro-benchmarks of the wire codec and the streaming aggregator.

These guard the communication hot paths: encoding/decoding a model-sized
state dict, sparsifying to top-k records, and server-side aggregation of a
client population (which must run at O(1) peak memory in the number of
clients).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.federated import FedAvgServer
from repro.utils.serialization import (
    decode_state,
    decode_state_v2,
    encode_state,
    encode_state_v2,
    encoded_num_bytes,
    encoded_num_bytes_v2,
    sparse_delta_state,
    sparse_topk,
)


@pytest.fixture(scope="module")
def model_state():
    rng = np.random.default_rng(0)
    state = {
        f"features.{i}.weight": rng.normal(size=(64, 64, 3, 3)).astype(np.float32)
        for i in range(4)
    }
    state["classifier.weight"] = rng.normal(size=(100, 256)).astype(np.float32)
    state["bn.num_batches_tracked"] = np.array(100, dtype=np.int64)
    return state


def test_encode_state(benchmark, model_state):
    payload = benchmark(lambda: encode_state(model_state))
    assert len(payload) == encoded_num_bytes(model_state)


def test_decode_state(benchmark, model_state):
    payload = encode_state(model_state)
    decoded = benchmark(lambda: decode_state(payload))
    assert set(decoded) == set(model_state)


def test_encoded_num_bytes(benchmark, model_state):
    size = benchmark(lambda: encoded_num_bytes(model_state))
    assert size > 0


def test_sparse_topk_extraction(benchmark, model_state):
    array = model_state["features.0.weight"]
    sparse = benchmark(lambda: sparse_topk(array, array.size // 10))
    assert sparse.nnz == array.size // 10


def test_sparse_delta_encoding(benchmark, model_state):
    rng = np.random.default_rng(1)
    base = {
        k: v + rng.normal(scale=1e-3, size=v.shape).astype(v.dtype)
        if np.issubdtype(v.dtype, np.floating) else v
        for k, v in model_state.items()
    }
    delta = benchmark(lambda: sparse_delta_state(model_state, base, ratio=0.10))
    assert encoded_num_bytes(delta) < encoded_num_bytes(model_state)


def test_encode_state_v2(benchmark, model_state):
    payload = benchmark(lambda: encode_state_v2(model_state))
    assert len(payload) == encoded_num_bytes_v2(model_state)


def test_decode_state_v2(benchmark, model_state):
    payload = encode_state_v2(model_state)
    decoded = benchmark(lambda: decode_state_v2(payload))
    assert set(decoded) == set(model_state)


def test_encode_state_v2_fp16(benchmark, model_state):
    payload = benchmark(lambda: encode_state_v2(model_state, fp16=True))
    assert len(payload) == encoded_num_bytes_v2(model_state, fp16=True)
    # fp16 values roughly halve the dense payload
    assert len(payload) < 0.6 * encoded_num_bytes(model_state)


def test_decode_state_v2_delta(benchmark, model_state):
    """Delta decode: sparse top-k records materialised against a base."""
    rng = np.random.default_rng(3)
    base = {
        k: v + rng.normal(scale=1e-3, size=v.shape).astype(v.dtype)
        if np.issubdtype(v.dtype, np.floating) else v
        for k, v in model_state.items()
    }
    entries = sparse_delta_state(model_state, base, ratio=0.10)
    delta_keys = {
        k for k, v in entries.items() if not isinstance(v, np.ndarray)
    }
    payload = encode_state_v2(entries, delta_keys=delta_keys)
    decoded = benchmark(lambda: decode_state_v2(payload, base=base))
    assert set(decoded) == set(model_state)


def test_delta_compression_ratio(benchmark, model_state):
    """rho=0.1 sparse deltas stay well under a quarter of the dense size."""
    rng = np.random.default_rng(4)
    base = {
        k: v + rng.normal(scale=1e-3, size=v.shape).astype(v.dtype)
        if np.issubdtype(v.dtype, np.floating) else v
        for k, v in model_state.items()
    }

    def compress():
        entries = sparse_delta_state(model_state, base, ratio=0.10)
        return encoded_num_bytes_v2(entries)

    compressed = benchmark(compress)
    assert compressed * 4 < encoded_num_bytes(model_state)


def test_streaming_aggregation_16_clients(benchmark, model_state):
    rng = np.random.default_rng(2)
    states = [
        {k: v + np.float32(rng.normal(scale=0.01))
         if np.issubdtype(v.dtype, np.floating) else v
         for k, v in model_state.items()}
        for _ in range(16)
    ]
    weights = rng.integers(10, 100, size=16).tolist()

    def aggregate():
        return FedAvgServer().aggregate(states, weights)

    out = benchmark(aggregate)
    assert set(out) == set(model_state)
