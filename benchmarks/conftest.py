"""Benchmark-suite configuration.

Each benchmark regenerates one table/figure of the paper at ``bench`` scale
and runs exactly once (``pedantic(rounds=1)``) — these are experiments, not
micro-benchmarks, so statistical repetition would only multiply hours of
training.  Reports are printed; run with ``pytest benchmarks/
--benchmark-only -s`` to see them inline.

The in-process result cache (:mod:`repro.experiments.runner`) is shared
across the whole session, so derived tables (Table I, Fig. 5, Fig. 6) reuse
the training runs of Fig. 4 rather than repeating them.
"""

from __future__ import annotations

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


def record_report(name: str, text: str) -> None:
    """Persist a regenerated table/figure to ``benchmarks/results/``.

    pytest captures stdout, so the printed tables are invisible without
    ``-s``; the artifact files keep the measured output either way (they are
    what EXPERIMENTS.md cites).
    """
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")


def run_once(benchmark, fn):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)


@pytest.fixture
def once(benchmark):
    return lambda fn: run_once(benchmark, fn)
