"""Fig. 10: knowledge-retention parameter settings (accuracy + training time).

GEM with 10-100 % sample memories, FedWEIT with/without foreign adaptives,
FedKNOW with rho in {5, 10, 20 %}.  Shape assertions follow the paper's two
observations: (a) retaining more knowledge helps each method (weakly), and
(b) FedKNOW's training time is nearly flat in rho whereas GEM's grows with
the memory fraction.
"""

from __future__ import annotations

import numpy as np

from conftest import record_report
from repro.experiments import BENCH, run_fig10


def test_fig10_params(benchmark):
    report = benchmark.pedantic(
        lambda: run_fig10(preset=BENCH), rounds=1, iterations=1
    )
    print()
    print(report)
    record_report("fig10", str(report))
    results = report.results
    # (a) more retained knowledge does not hurt much within each method
    assert results["gem_100%"].final_accuracy >= \
        results["gem_10%"].final_accuracy - 0.10
    assert results["fedknow_rho20%"].final_accuracy >= \
        results["fedknow_rho5%"].final_accuracy - 0.10
    # (b) GEM pays compute for memory; FedKNOW's rho is nearly free
    gem_ratio = (
        results["gem_100%"].sim_train_seconds
        / max(results["gem_10%"].sim_train_seconds, 1e-9)
    )
    fedknow_ratio = (
        results["fedknow_rho20%"].sim_train_seconds
        / max(results["fedknow_rho5%"].sim_train_seconds, 1e-9)
    )
    assert fedknow_ratio < 1.25, f"rho should be cheap, got {fedknow_ratio:.2f}x"
    assert gem_ratio >= fedknow_ratio - 0.05, (gem_ratio, fedknow_ratio)
