"""Table I: FedKNOW's per-task accuracy improvement over the 11-baseline mean.

Reuses the Fig. 4 runs (memoised in-process).  The paper's shape: the
improvement is positive and grows as more tasks are learned (10.21 % at
task 1 up to 98.72 % at late tasks); at bench scale we assert positivity of
the mean and a non-degrading trend.
"""

from __future__ import annotations

import numpy as np

from conftest import record_report
from repro.experiments import BENCH, FIG4_DATASETS, run_table1


def test_table1(benchmark):
    report = benchmark.pedantic(
        lambda: run_table1(datasets=FIG4_DATASETS, preset=BENCH),
        rounds=1,
        iterations=1,
    )
    print()
    print(report)
    record_report("table1", str(report))
    means = [report.mean_improvement(d) for d in report.datasets]
    # FedKNOW improves over the baseline mean on the clear majority of datasets
    assert sum(m > 0 for m in means) >= len(means) - 1, means
    assert np.mean(means) > 0, means
    # the improvement never collapses into a clear loss at the final task
    for dataset in report.datasets:
        curve = report.improvements[dataset]
        assert curve[-1] > -10.0, (dataset, curve)
