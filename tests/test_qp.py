"""Tests for the NNQP solvers (the gradient integrator's dual problem)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st
from scipy import optimize

from repro.core.qp import (
    nnqp_objective,
    solve_nnqp,
    solve_nnqp_active_set,
    solve_nnqp_projected_gradient,
)


def random_psd(k: int, seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    g = rng.normal(size=(k, max(k, 3)))
    return g @ g.T


def scipy_reference(p_matrix: np.ndarray, q: np.ndarray) -> np.ndarray:
    result = optimize.minimize(
        lambda v: 0.5 * v @ p_matrix @ v + q @ v,
        x0=np.zeros(len(q)),
        jac=lambda v: p_matrix @ v + q,
        bounds=[(0, None)] * len(q),
        method="L-BFGS-B",
        options={"maxiter": 2000, "ftol": 1e-14},
    )
    return result.x


def assert_kkt(p_matrix, q, v, tol=1e-6):
    gradient = p_matrix @ v + q
    scale = max(np.abs(q).max(), 1.0)
    assert (v >= -tol).all(), "primal feasibility violated"
    assert (gradient >= -tol * scale).all(), "dual feasibility violated"
    assert abs(v @ gradient) <= tol * scale * max(np.abs(v).max(), 1.0), \
        "complementary slackness violated"


class TestActiveSet:
    def test_unconstrained_optimum_inside(self):
        # q <= 0 everywhere: solution is the unconstrained one
        p = np.eye(2)
        q = np.array([-1.0, -2.0])
        v = solve_nnqp_active_set(p, q)
        assert np.allclose(v, [1.0, 2.0], atol=1e-8)

    def test_fully_clipped(self):
        # q >= 0: v = 0 is optimal
        p = np.eye(3)
        q = np.array([1.0, 2.0, 0.5])
        v = solve_nnqp_active_set(p, q)
        assert np.allclose(v, 0.0)

    def test_mixed_active_set(self):
        p = np.array([[2.0, 0.0], [0.0, 2.0]])
        q = np.array([-2.0, 3.0])
        v = solve_nnqp_active_set(p, q)
        assert np.allclose(v, [1.0, 0.0], atol=1e-8)

    @pytest.mark.parametrize("seed", range(8))
    def test_matches_scipy(self, seed):
        k = 2 + seed % 5
        p = random_psd(k, seed)
        q = np.random.default_rng(seed + 100).normal(size=k) * 3
        ours = solve_nnqp_active_set(p, q)
        reference = scipy_reference(p, q)
        assert nnqp_objective(p, q, ours) <= nnqp_objective(p, q, reference) + 1e-6

    @pytest.mark.parametrize("seed", range(8))
    def test_kkt_conditions(self, seed):
        k = 3 + seed % 4
        p = random_psd(k, seed * 7)
        q = np.random.default_rng(seed).normal(size=k) * 2
        v = solve_nnqp_active_set(p, q)
        assert_kkt(p, q, v)

    def test_singular_gram_matrix(self):
        # duplicated constraint gradients make P singular
        g = np.array([[1.0, 0.0], [1.0, 0.0]])
        p = g @ g.T
        q = np.array([-1.0, -1.0])
        v = solve_nnqp_active_set(p, q)
        assert_kkt(p, q, v, tol=1e-5)

    def test_input_validation(self):
        with pytest.raises(ValueError):
            solve_nnqp_active_set(np.zeros((2, 3)), np.zeros(2))
        with pytest.raises(ValueError):
            solve_nnqp_active_set(np.eye(2), np.zeros(3))
        with pytest.raises(ValueError):
            solve_nnqp_active_set(np.array([[1.0, 2.0], [0.0, 1.0]]), np.zeros(2))


class TestProjectedGradient:
    @pytest.mark.parametrize("seed", range(6))
    def test_agrees_with_active_set(self, seed):
        k = 2 + seed
        p = random_psd(k, seed * 13)
        q = np.random.default_rng(seed).normal(size=k)
        v_pg = solve_nnqp_projected_gradient(p, q)
        v_as = solve_nnqp_active_set(p, q)
        assert nnqp_objective(p, q, v_pg) == pytest.approx(
            nnqp_objective(p, q, v_as), abs=1e-6
        )

    def test_feasible(self):
        p = random_psd(4, 1)
        q = np.random.default_rng(2).normal(size=4)
        v = solve_nnqp_projected_gradient(p, q)
        assert (v >= 0).all()


class TestNonConvergenceFallback:
    def ill_conditioned(self, k=6):
        # scaled Hilbert matrix: PSD with condition number ~ 1e7
        i = np.arange(k)
        return 100.0 / (1.0 + i[:, None] + i[None, :])

    def test_exhausted_iterations_fall_back_to_kkt_point(self):
        """Regression: exhausting max_iter silently returned a non-KKT point."""
        p = self.ill_conditioned()
        q = -np.ones(len(p))
        v = solve_nnqp_active_set(p, q, max_iter=1)
        # with one outer iteration the active-set loop cannot converge; the
        # fallback must still deliver a KKT point
        assert_kkt(p, q, v, tol=1e-4)

    def test_fallback_matches_converged_objective(self):
        p = self.ill_conditioned()
        q = -np.ones(len(p))
        full = solve_nnqp_active_set(p, q)
        truncated = solve_nnqp_active_set(p, q, max_iter=1)
        assert nnqp_objective(p, q, truncated) == pytest.approx(
            nnqp_objective(p, q, full), abs=1e-6
        )

    def test_converged_path_unchanged(self):
        p = np.eye(3)
        q = np.array([-1.0, 2.0, -0.5])
        assert np.allclose(solve_nnqp_active_set(p, q, max_iter=50),
                           [1.0, 0.0, 0.5], atol=1e-8)


class TestDispatch:
    def test_known_solvers(self):
        p = np.eye(2)
        q = np.array([-1.0, 1.0])
        for method in ("active_set", "projected_gradient"):
            v = solve_nnqp(p, q, method=method)
            assert_kkt(p, q, v, tol=1e-5)

    def test_unknown_solver_raises(self):
        with pytest.raises(KeyError):
            solve_nnqp(np.eye(2), np.zeros(2), method="ipm")


class TestPropertyBased:
    @given(st.integers(0, 1000), st.integers(1, 8))
    def test_active_set_kkt_on_random_instances(self, seed, k):
        p = random_psd(k, seed)
        q = np.random.default_rng(seed + 1).normal(size=k) * 5
        v = solve_nnqp_active_set(p, q)
        assert_kkt(p, q, v, tol=1e-5)

    @given(st.integers(0, 500), st.integers(1, 6))
    def test_objective_no_worse_than_zero(self, seed, k):
        # v=0 is always feasible, so the optimum is <= f(0) = 0
        p = random_psd(k, seed)
        q = np.random.default_rng(seed + 2).normal(size=k)
        v = solve_nnqp_active_set(p, q)
        assert nnqp_objective(p, q, v) <= 1e-9
