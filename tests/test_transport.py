"""Tests for the pluggable transport: wire v2, channels, negotiation.

Covers the codec contract (property-based round trips, exact size
arithmetic, corruption errors), version negotiation with v1 fallback,
channel warmup and base tracking, and the trainer-level guarantees: dense
transports are bit-identical across wire versions, delta uploads cut
measured bytes, and the channel's decode shortcut matches the real wire.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.data import build_benchmark, cifar100_like
from repro.edge import NetworkModel, jetson_cluster
from repro.federated import (
    Transport,
    create_trainer,
    create_transport,
)
from repro.utils.serialization import (
    FLAG_DELTA,
    SparseTensor,
    WIRE_V1,
    WIRE_V2,
    decode_payload,
    decode_state,
    decode_state_v2,
    encode_state,
    encode_state_v2,
    encoded_num_bytes,
    encoded_num_bytes_v2,
    peek_wire_version,
    sparse_delta_state,
    sparse_topk_state,
)

# ----------------------------------------------------------------------
# hypothesis strategies
# ----------------------------------------------------------------------
float_arrays = hnp.arrays(
    dtype=np.float32,
    shape=hnp.array_shapes(min_dims=1, max_dims=3, max_side=6),
    elements=st.floats(-100.0, 100.0, width=32),
)


def states(draw):
    names = draw(st.lists(
        st.text(st.characters(min_codepoint=97, max_codepoint=122),
                min_size=1, max_size=8),
        min_size=1, max_size=4, unique=True,
    ))
    return {name: draw(float_arrays) for name in names}


state_dicts = st.composite(states)()


class TestWireV2RoundTrip:
    @given(state=state_dicts)
    @settings(max_examples=40, deadline=None)
    def test_dense_v2_round_trip_lossless(self, state):
        """v2 without fp16 round-trips bit-exactly (v1 precision)."""
        decoded = decode_state_v2(encode_state_v2(state))
        assert set(decoded) == set(state)
        for key in state:
            assert np.array_equal(decoded[key], state[key])
            assert decoded[key].dtype == state[key].dtype

    @given(base=float_arrays, delta=float_arrays)
    @settings(max_examples=40, deadline=None)
    def test_delta_undelta_identity_fp32(self, base, delta):
        """delta ∘ undelta is the identity at fp32: the wire adds no error."""
        if base.shape != delta.shape:
            delta = np.resize(delta, base.shape).astype(np.float32)
        payload = encode_state_v2({"w": delta}, delta_keys={"w"})
        decoded = decode_state_v2(payload, base={"w": base})
        assert np.array_equal(decoded["w"], base + delta)

    @given(state=state_dicts)
    @settings(max_examples=40, deadline=None)
    def test_fp16_within_half_precision(self, state):
        """fp16 payloads decode exactly to the float16 rounding of the
        original — lossy by at most half-precision quantisation."""
        decoded = decode_state_v2(encode_state_v2(state, fp16=True))
        for key in state:
            oracle = state[key].astype(np.float16).astype(np.float32)
            assert np.array_equal(decoded[key], oracle)
            assert decoded[key].dtype == state[key].dtype

    @given(state=state_dicts, fp16=st.booleans())
    @settings(max_examples=40, deadline=None)
    def test_encoded_num_bytes_v2_exact(self, state, fp16):
        payload = encode_state_v2(state, fp16=fp16)
        assert len(payload) == encoded_num_bytes_v2(state, fp16=fp16)

    def test_v2_framing_matches_v1_size(self):
        """The flags byte replaces the kind byte: dense v2 == dense v1."""
        rng = np.random.default_rng(0)
        state = {
            "w": rng.normal(size=(4, 5)).astype(np.float32),
            "steps": np.array(7, dtype=np.int64),
        }
        assert encoded_num_bytes_v2(state) == encoded_num_bytes(state)
        assert len(encode_state_v2(state)) == len(encode_state(state))

    def test_sparse_delta_reconstruction(self):
        rng = np.random.default_rng(1)
        base = {"w": rng.normal(size=(6, 6)).astype(np.float32)}
        state = {"w": base["w"].copy()}
        state["w"][0, :3] += 2.0
        entries = sparse_delta_state(state, base, ratio=0.10)
        payload = encode_state_v2(entries, delta_keys={"w"})
        decoded = decode_state_v2(payload, base=base)
        assert np.allclose(decoded["w"], state["w"])

    def test_sparse_absolute_overwrites_base(self):
        """Sparse records without the delta flag overwrite kept positions."""
        base = {"w": np.full((2, 3), 5.0, dtype=np.float32)}
        sparse = SparseTensor(
            np.array([0, 4], np.int32), np.array([1.0, 2.0], np.float32), (2, 3)
        )
        decoded = decode_state_v2(encode_state_v2({"w": sparse}), base=base)
        expected = base["w"].copy()
        expected.reshape(-1)[[0, 4]] = [1.0, 2.0]
        assert np.array_equal(decoded["w"], expected)

    def test_sparse_without_base_stays_sparse(self):
        sparse = SparseTensor(
            np.array([1], np.int32), np.array([3.0], np.float32), (4,)
        )
        decoded = decode_state_v2(
            encode_state_v2({"w": sparse}, delta_keys={"w"})
        )
        assert isinstance(decoded["w"], SparseTensor)

    def test_dense_delta_requires_base(self):
        payload = encode_state_v2(
            {"w": np.ones(3, np.float32)}, delta_keys={"w"}
        )
        with pytest.raises(ValueError):
            decode_state_v2(payload)

    def test_dense_delta_shape_mismatch_rejected(self):
        """A mis-shaped base must raise, not silently numpy-broadcast."""
        payload = encode_state_v2(
            {"w": np.ones((1, 4), np.float32)}, delta_keys={"w"}
        )
        with pytest.raises(ValueError):
            decode_state_v2(payload, base={"w": np.zeros((3, 4), np.float32)})

    def test_integer_entries_ignore_fp16(self):
        state = {"steps": np.array([3, 4], dtype=np.int64)}
        decoded = decode_state_v2(encode_state_v2(state, fp16=True))
        assert np.array_equal(decoded["steps"], state["steps"])
        assert decoded["steps"].dtype == np.int64
        assert encoded_num_bytes_v2(state, fp16=True) == encoded_num_bytes_v2(state)


class TestWireErrors:
    def test_corrupted_magic_rejected(self):
        payload = bytearray(encode_state_v2({"w": np.zeros(3, np.float32)}))
        payload[:4] = b"NOPE"
        with pytest.raises(ValueError):
            decode_payload(bytes(payload))

    def test_unknown_version_rejected(self):
        payload = bytearray(encode_state_v2({"w": np.zeros(3, np.float32)}))
        payload[4] = 9
        with pytest.raises(ValueError):
            decode_payload(bytes(payload))
        assert peek_wire_version(bytes(payload)) == 9  # header itself is fine

    @given(cut=st.integers(min_value=1, max_value=200))
    @settings(max_examples=40, deadline=None)
    def test_truncated_payload_rejected(self, cut):
        """Every truncation point — including mid-name, mid-dtype and
        mid-shape — must surface as ValueError, never TypeError."""
        payload = encode_state_v2(
            {"w": np.arange(12, dtype=np.float32).reshape(3, 4)}
        )
        cut = min(cut, len(payload) - 1)
        with pytest.raises(ValueError):
            decode_payload(payload[:-cut])

    def test_corrupted_dtype_rejected(self):
        """Garbage in the dtype string raises ValueError in v1 and v2."""
        for encode in (encode_state, encode_state_v2):
            payload = bytearray(encode({"w": np.zeros(3, np.float32)}))
            at = bytes(payload).index(b"<f4")
            payload[at:at + 3] = b"zzz"
            with pytest.raises(ValueError):
                decode_payload(bytes(payload))

    def test_truncated_v1_rejected(self):
        payload = encode_state({"w": np.arange(8, dtype=np.float32)})
        with pytest.raises(ValueError):
            decode_state(payload[:-3])

    def test_header_too_short(self):
        with pytest.raises(ValueError):
            decode_payload(b"FK")

    def test_wrong_version_for_specific_decoder(self):
        v1 = encode_state({"w": np.zeros(2, np.float32)})
        v2 = encode_state_v2({"w": np.zeros(2, np.float32)})
        with pytest.raises(ValueError):
            decode_state(v2)
        with pytest.raises(ValueError):
            decode_state_v2(v1)


class TestNegotiation:
    def test_v2_negotiates_v2(self):
        transport = Transport(wire="v2", upload="sparse")
        channel = transport.channel_for(0)
        assert channel.version == WIRE_V2
        assert channel.upload_mode == "sparse"

    def test_v2_falls_back_to_v1_when_peer_rejects(self):
        """A peer that rejects the version byte forces the v1 baseline."""
        transport = Transport(wire="v2", upload="sparse", peer_versions=(1,))
        channel = transport.channel_for(0)
        assert channel.version == WIRE_V1
        # absolute sparse records would be misread under v1 conventions
        assert channel.upload_mode == "dense"
        assert not channel.fp16

    def test_delta_survives_v1_fallback(self):
        """v1 sparse records are deltas by convention, so delta still works."""
        transport = Transport(wire="v2", upload="delta", peer_versions=(1,))
        channel = transport.channel_for(0)
        assert channel.version == WIRE_V1
        assert channel.upload_mode == "delta"

    def test_fp16_requires_v2(self):
        with pytest.raises(ValueError):
            Transport(wire="v1", fp16=True)

    def test_spec_round_trip(self):
        for spec in ("v1:dense", "v2:delta:0.1", "v2:sparse:0.05",
                     "v2+fp16:dense", "v2+fp16:delta:0.2"):
            assert create_transport(spec).describe() == spec

    def test_bad_specs_rejected(self):
        for spec in ("v3:dense", "v2:turbo", "v2:delta:x", "v2:delta:0.1:y",
                     "v1+fp16:dense"):
            with pytest.raises(ValueError):
                create_transport(spec)

    def test_instance_passthrough(self):
        transport = Transport(wire="v2")
        assert create_transport(transport) is transport
        assert create_transport(None).describe() == "v1:dense"

    def test_instance_adopts_trainer_network(self):
        """A default-network instance must not shadow the trainer's
        bandwidth configuration (regression: Fig.6-style timings were
        silently computed at the 1 MB/s placeholder)."""
        slow = NetworkModel(bandwidth_bytes_per_second=50_000)
        adopted = create_transport(Transport(wire="v2"), network=slow)
        assert adopted.network is slow
        assert adopted.reference_link.uplink_bytes_per_second == 50_000
        # an explicitly pinned network survives adoption
        pinned = NetworkModel(bandwidth_bytes_per_second=250_000)
        kept = create_transport(
            Transport(wire="v2", network=pinned), network=slow
        )
        assert kept.network is pinned

    def test_network_rebind_rejected_after_negotiation(self):
        transport = Transport(wire="v2")
        transport.channel_for(0)
        with pytest.raises(RuntimeError):
            transport.adopt_network(NetworkModel())


class TestChannel:
    def _channel(self, spec="v2:delta:0.5", warmup=1):
        transport = create_transport(spec)
        transport.warmup_rounds = warmup
        return transport.channel_for(0)

    def _state(self, seed=0, shift=0.0):
        rng = np.random.default_rng(seed)
        return {
            "w": (rng.normal(size=(5, 4)) + shift).astype(np.float32),
            "steps": np.array(3, dtype=np.int64),
        }

    def test_dense_until_warmed_up(self):
        channel = self._channel(warmup=2)
        state = self._state()
        assert channel.effective_upload_mode(state) == "dense"
        channel.deliver(state)
        assert channel.effective_upload_mode(state) == "dense"  # 1 < warmup
        channel.deliver(state)
        assert channel.effective_upload_mode(state) == "delta"

    def test_dense_payload_decodes_to_same_object(self):
        """Bit-identity fast path: dense fp32 uploads pass through."""
        channel = self._channel("v1:dense")
        state = self._state()
        payload = channel.prepare(state)
        assert channel.decode(payload) is payload.entries

    def test_payload_size_matches_real_encoding(self):
        for spec in ("v1:dense", "v2:dense", "v2:delta:0.3", "v2:sparse:0.3",
                     "v2+fp16:dense", "v2+fp16:delta:0.3"):
            channel = self._channel(spec)
            channel.deliver(self._state(seed=1))
            payload = channel.prepare(self._state(seed=2))
            assert payload.num_bytes == len(payload.encode())

    def test_decode_shortcut_matches_real_wire(self):
        """channel.decode == the honest encode -> decode round trip."""
        for spec in ("v2:delta:0.3", "v2:sparse:0.3", "v2+fp16:delta:0.3"):
            channel = self._channel(spec)
            channel.deliver(self._state(seed=1))
            state = self._state(seed=2, shift=0.1)
            payload = channel.prepare(state)
            via_channel = channel.decode(payload)
            via_wire = decode_payload(payload.encode(), base=channel.base)
            assert set(via_channel) == set(via_wire)
            for key in via_wire:
                assert np.array_equal(
                    np.asarray(via_channel[key]), np.asarray(via_wire[key])
                )

    def test_delta_payload_smaller_than_dense(self):
        channel = self._channel("v2:delta:0.1")
        channel.deliver(self._state(seed=1))
        state = self._state(seed=2)
        payload = channel.prepare(state)
        assert payload.delta_keys == {"w"}
        assert payload.num_bytes < payload.raw_num_bytes
        assert payload.raw_num_bytes == encoded_num_bytes(state)

    def test_delta_reconstruction_exact_when_representable(self):
        """A truly sparse change reconstructs exactly through the channel."""
        channel = self._channel("v2:delta:0.2")
        base = self._state(seed=1)
        channel.deliver(base)
        state = {k: np.array(v, copy=True) for k, v in base.items()}
        state["w"][0, :2] += 1.5  # 2 of 20 entries: within the 20% budget
        decoded = channel.decode(channel.prepare(state))
        assert np.array_equal(decoded["w"], state["w"])
        assert np.array_equal(decoded["steps"], state["steps"])

    def test_v1_delta_uses_legacy_convention(self):
        channel = self._channel("v1:delta:0.2")
        base = self._state(seed=1)
        channel.deliver(base)
        state = {k: np.array(v, copy=True) for k, v in base.items()}
        state["w"][1, 1] += 2.0
        payload = channel.prepare(state)
        assert payload.version == WIRE_V1
        decoded = channel.decode(payload)
        assert np.allclose(decoded["w"], state["w"])

    def test_shape_mismatch_falls_back_dense(self):
        channel = self._channel("v2:delta:0.2")
        channel.deliver({"w": np.zeros((2, 2), np.float32)})
        state = self._state()
        assert channel.effective_upload_mode(state) == "dense"

    def test_sparse_topk_state_helper(self):
        state = self._state()
        encoded = sparse_topk_state(state, ratio=0.25)
        assert isinstance(encoded["w"], SparseTensor)
        assert encoded["w"].nnz == 5  # 25% of 20
        assert isinstance(encoded["steps"], np.ndarray)

    def test_delta_flag_on_wire(self):
        channel = self._channel("v2:delta:0.2")
        channel.deliver(self._state(seed=1))
        payload = channel.prepare(self._state(seed=2))
        raw = payload.encode()
        # the "w" record's flags byte carries FLAG_DELTA
        name_at = raw.index(b"w", 9)
        assert raw[name_at + 1] & FLAG_DELTA


def build_trainer(method="fedavg", transport="v1:dense", rounds=3, tasks=2,
                  clients=2, network=None):
    spec = cifar100_like(train_per_class=8, test_per_class=4).with_tasks(tasks)
    from repro.federated import TrainConfig

    config = TrainConfig(batch_size=8, lr=0.02, rounds_per_task=rounds,
                         iterations_per_round=3)
    bench = build_benchmark(spec, num_clients=clients,
                            rng=np.random.default_rng(0))
    return create_trainer(method, bench, config, cluster=jetson_cluster(),
                          network=network, transport=transport)


class TestTrainerIntegration:
    def test_dense_v2_bit_identical_to_dense_v1(self):
        """The version byte alone must not change any metric."""
        with build_trainer(transport="v1:dense") as trainer:
            v1 = trainer.run()
        with build_trainer(transport="v2:dense") as trainer:
            v2 = trainer.run()
        assert np.array_equal(v1.accuracy_matrix, v2.accuracy_matrix,
                              equal_nan=True)
        for a, b in zip(v1.rounds, v2.rounds):
            assert a.upload_bytes == b.upload_bytes
            assert a.download_bytes == b.download_bytes
            assert a.sim_comm_seconds == b.sim_comm_seconds
            assert a.mean_loss == b.mean_loss

    def test_delta_uploads_cut_bytes_at_least_2x(self):
        """The acceptance bar: rho=0.1 deltas at least halve upload bytes."""
        with build_trainer("fedknow", "v1:dense") as trainer:
            dense = trainer.run()
        with build_trainer("fedknow", "v2:delta:0.1") as trainer:
            delta = trainer.run()
        assert delta.total_upload_bytes * 2 <= dense.total_upload_bytes
        assert delta.upload_compression >= 2.0
        # raw accounting still reports the dense-equivalent volume
        assert delta.total_raw_upload_bytes == pytest.approx(
            dense.total_upload_bytes, rel=0.01
        )
        # downloads stay dense: the model still converges on every task
        assert delta.accuracy_matrix.shape == dense.accuracy_matrix.shape
        assert np.isfinite(delta.accuracy_curve).all()
        assert delta.final_accuracy > 0.0

    def test_full_ratio_delta_matches_dense_global_state(self):
        """ratio=1.0 deltas are exact up to fp32 rounding of (s-b)+b."""
        with build_trainer("fedavg", "v1:dense", rounds=2, tasks=1) as trainer:
            trainer.run()
            dense_state = trainer.server.global_state
        with build_trainer("fedavg", "v2:delta:1.0", rounds=2, tasks=1) as trainer:
            trainer.run()
            delta_state = trainer.server.global_state
        for key in dense_state:
            assert np.allclose(
                dense_state[key], delta_state[key], atol=1e-5
            ), key

    def test_fp16_halves_upload_volume(self):
        with build_trainer("fedavg", "v2:dense") as trainer:
            dense = trainer.run()
        with build_trainer("fedavg", "v2+fp16:dense") as trainer:
            fp16 = trainer.run()
        assert fp16.total_upload_bytes < 0.6 * dense.total_upload_bytes
        assert fp16.upload_compression > 1.8
        assert np.isfinite(fp16.accuracy_curve).all()

    def test_sparse_uploads_reduce_bytes(self):
        with build_trainer("fedavg", "v2:sparse:0.1") as trainer:
            sparse = trainer.run()
        assert sparse.upload_compression > 2.0
        assert np.isfinite(sparse.accuracy_curve).all()

    def test_transport_recorded_in_result(self):
        with build_trainer(transport="v2:delta:0.1") as trainer:
            result = trainer.run()
        assert result.transport == "v2:delta:0.1"
        assert result.summary()["transport"] == "v2:delta:0.1"

    def test_warmup_round_is_dense(self):
        """The first round of a run has no base: raw == actual bytes."""
        with build_trainer("fedavg", "v2:delta:0.1", rounds=2, tasks=1) as t:
            result = t.run()
        first, second = result.rounds
        assert first.upload_bytes == first.raw_upload_bytes
        assert second.upload_bytes < second.raw_upload_bytes
