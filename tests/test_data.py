"""Tests for the data substrate: synthesis, specs, federated partition, loader."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.data import (
    ClientTransform,
    SyntheticImageSource,
    build_benchmark,
    cifar100_like,
    combined_spec,
    core50_like,
    fc100_like,
    get_spec,
    iterate_batches,
    miniimagenet_like,
    sample_batch,
    single_client_benchmark,
    svhn_like,
    task_classes,
    tinyimagenet_like,
)


class TestSyntheticSource:
    def test_prototype_deterministic(self):
        a = SyntheticImageSource(10, dataset_seed=3)
        b = SyntheticImageSource(10, dataset_seed=3)
        assert np.array_equal(a.prototype(4), b.prototype(4))

    def test_prototype_differs_across_classes(self):
        src = SyntheticImageSource(10)
        assert not np.allclose(src.prototype(0), src.prototype(1))

    def test_prototype_differs_across_seeds(self):
        a = SyntheticImageSource(10, dataset_seed=1)
        b = SyntheticImageSource(10, dataset_seed=2)
        assert not np.allclose(a.prototype(0), b.prototype(0))

    def test_prototype_normalised(self):
        proto = SyntheticImageSource(5).prototype(2)
        assert abs(proto.mean()) < 0.05
        assert abs(proto.std() - 1.0) < 0.05

    def test_out_of_range_class_raises(self):
        with pytest.raises(IndexError):
            SyntheticImageSource(5).prototype(5)

    def test_samples_cluster_around_prototype(self, rng):
        src = SyntheticImageSource(5, noise=0.3, max_shift=0)
        samples = src.sample(1, 32, rng)
        mean_image = samples.mean(axis=0)
        correlation = np.corrcoef(mean_image.ravel(), src.prototype(1).ravel())[0, 1]
        assert correlation > 0.8

    def test_make_split_shuffles_and_labels(self, rng):
        src = SyntheticImageSource(6)
        x, y = src.make_split(np.array([1, 4]), per_class=10, rng=rng)
        assert x.shape == (20, 3, 16, 16)
        assert set(np.unique(y)) == {1, 4}
        assert (y[:10] != 1).any() or (y[:10] != 4).any()  # shuffled

    def test_client_transform_applies(self, rng):
        transform = ClientTransform(
            gain=np.array([2.0, 1.0, 1.0], dtype=np.float32),
            bias=np.zeros(3, dtype=np.float32),
        )
        src = SyntheticImageSource(4, noise=0.0, max_shift=0)
        plain = src.sample(0, 4, np.random.default_rng(5))
        shifted = transform.apply(plain)
        assert np.allclose(shifted[:, 0], plain[:, 0] * 2.0)
        assert np.allclose(shifted[:, 1:], plain[:, 1:])

    def test_random_transform_in_bounds(self, rng):
        transform = ClientTransform.random(3, rng)
        assert (0.8 <= transform.gain).all() and (transform.gain <= 1.2).all()


class TestSpecs:
    @pytest.mark.parametrize(
        "builder,classes,tasks,per_task,model",
        [
            (cifar100_like, 100, 10, 10, "six_cnn"),
            (fc100_like, 100, 10, 10, "six_cnn"),
            (core50_like, 550, 11, 50, "six_cnn"),
            (miniimagenet_like, 100, 10, 10, "resnet18"),
            (tinyimagenet_like, 200, 20, 10, "resnet18"),
            (svhn_like, 10, 2, 5, "six_cnn"),
        ],
    )
    def test_paper_structure(self, builder, classes, tasks, per_task, model):
        spec = builder()
        assert spec.num_classes == classes
        assert spec.num_tasks == tasks
        assert spec.classes_per_task == per_task
        assert spec.model_name == model

    def test_with_tasks_truncation(self):
        spec = cifar100_like().with_tasks(3)
        assert spec.num_tasks == 3
        assert spec.num_classes == 30

    def test_with_tasks_overflow_raises(self):
        with pytest.raises(ValueError):
            cifar100_like().with_tasks(99)

    def test_inconsistent_spec_rejected(self):
        from repro.data.specs import DatasetSpec

        with pytest.raises(ValueError):
            DatasetSpec("bad", 100, 9, 10)

    def test_combined_spec_structure(self):
        spec = combined_spec(num_tasks=80, classes_per_task=5)
        assert spec.num_tasks == 80
        assert spec.num_classes == 400
        assert spec.model_name == "resnet18"

    def test_get_spec_unknown_raises(self):
        with pytest.raises(KeyError):
            get_spec("imagenet21k")

    def test_scaled_copies(self):
        spec = cifar100_like().scaled(5, 2)
        assert spec.train_per_class == 5
        assert spec.test_per_class == 2

    def test_task_classes_contiguous(self):
        spec = cifar100_like()
        assert np.array_equal(task_classes(spec, 0), np.arange(10))
        assert np.array_equal(task_classes(spec, 3), np.arange(30, 40))
        with pytest.raises(IndexError):
            task_classes(spec, 10)


class TestFederatedPartition:
    @pytest.fixture(scope="class")
    def fed_bench(self):
        spec = cifar100_like(train_per_class=12, test_per_class=4).with_tasks(4)
        return build_benchmark(spec, num_clients=5, rng=np.random.default_rng(0))

    def test_every_client_has_all_tasks(self, fed_bench):
        for client in fed_bench.clients:
            task_ids = sorted(t.task_id for t in client.tasks)
            assert task_ids == list(range(4))

    def test_task_orders_differ_between_clients(self, fed_bench):
        orders = {tuple(t.task_id for t in c.tasks) for c in fed_bench.clients}
        assert len(orders) > 1

    def test_classes_within_task_range(self, fed_bench):
        spec = fed_bench.spec
        for client in fed_bench.clients:
            for task in client.tasks:
                pool = task_classes(spec, task.task_id)
                assert set(task.classes) <= set(pool)

    def test_classes_per_client_in_paper_range(self, fed_bench):
        for client in fed_bench.clients:
            for task in client.tasks:
                assert 2 <= len(task.classes) <= 5

    def test_labels_match_assigned_classes(self, fed_bench):
        for client in fed_bench.clients:
            for task in client.tasks:
                assert set(np.unique(task.train_y)) <= set(task.classes)
                assert set(np.unique(task.test_y)) <= set(task.classes)

    def test_class_mask_consistent(self, fed_bench):
        task = fed_bench.clients[0].tasks[0]
        mask = task.class_mask()
        assert mask.sum() == len(task.classes)
        assert mask[task.classes].all()

    def test_deterministic_given_seed(self):
        spec = cifar100_like(train_per_class=6, test_per_class=2).with_tasks(2)
        a = build_benchmark(spec, num_clients=2, rng=np.random.default_rng(9))
        b = build_benchmark(spec, num_clients=2, rng=np.random.default_rng(9))
        assert np.array_equal(a.clients[0].tasks[0].train_x,
                              b.clients[0].tasks[0].train_x)

    def test_clients_have_distinct_data(self, fed_bench):
        x0 = fed_bench.clients[0].tasks[0].train_x
        x1 = fed_bench.clients[1].tasks[0].train_x
        assert x0.shape != x1.shape or not np.allclose(x0, x1)

    def test_single_client_benchmark_full_classes(self):
        spec = cifar100_like(train_per_class=4, test_per_class=2).with_tasks(2)
        bench = single_client_benchmark(spec)
        assert bench.num_clients == 1
        task = bench.clients[0].tasks[0]
        assert len(task.classes) == spec.classes_per_task
        assert [t.task_id for t in bench.clients[0].tasks] == [0, 1]

    def test_invalid_args_raise(self):
        spec = cifar100_like().with_tasks(2)
        with pytest.raises(ValueError):
            build_benchmark(spec, num_clients=0)
        with pytest.raises(ValueError):
            build_benchmark(spec, 2, classes_per_client=(0, 3))
        with pytest.raises(ValueError):
            build_benchmark(spec, 2, sample_fraction=(0.5, 1.5))

    @given(st.integers(1, 4), st.integers(2, 5))
    def test_partition_invariants_property(self, num_clients, num_tasks):
        spec = cifar100_like(train_per_class=4, test_per_class=2).with_tasks(num_tasks)
        bench = build_benchmark(
            spec, num_clients=num_clients, rng=np.random.default_rng(17)
        )
        assert bench.num_clients == num_clients
        for client in bench.clients:
            assert client.num_tasks == num_tasks
            for task in client.tasks:
                assert task.num_train >= 2 * len(task.classes)
                assert task.class_mask().sum() == len(task.classes)


class TestLoader:
    def test_iterate_batches_covers_everything(self, rng):
        x = np.arange(23).reshape(23, 1)
        y = np.arange(23)
        seen = []
        for xb, yb in iterate_batches(x, y, 5, rng):
            assert len(xb) == len(yb)
            seen.extend(yb.tolist())
        assert sorted(seen) == list(range(23))

    def test_drop_last(self, rng):
        x = np.zeros((10, 1))
        y = np.zeros(10)
        batches = list(iterate_batches(x, y, 4, rng, drop_last=True))
        assert len(batches) == 2

    def test_no_shuffle_preserves_order(self):
        x = np.arange(6).reshape(6, 1)
        y = np.arange(6)
        batches = list(iterate_batches(x, y, 3, shuffle=False))
        assert np.array_equal(batches[0][1], [0, 1, 2])

    def test_length_mismatch_raises(self, rng):
        with pytest.raises(ValueError):
            list(iterate_batches(np.zeros((3, 1)), np.zeros(4), 2, rng))

    def test_bad_batch_size_raises(self, rng):
        with pytest.raises(ValueError):
            list(iterate_batches(np.zeros((3, 1)), np.zeros(3), 0, rng))

    def test_sample_batch_without_replacement(self, rng):
        x = np.arange(10).reshape(10, 1)
        y = np.arange(10)
        xb, yb = sample_batch(x, y, 5, rng)
        assert len(set(yb.tolist())) == 5

    def test_sample_batch_small_data_replaces(self, rng):
        x = np.arange(3).reshape(3, 1)
        y = np.arange(3)
        xb, yb = sample_batch(x, y, 8, rng)
        assert len(yb) == 8
