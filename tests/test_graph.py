"""Tests for the static graph tape (:mod:`repro.nn.graph`).

Three contracts:

* **replay equivalence** — for every registered op, a program captured on a
  :class:`GraphTape` replays bit-identically to the dynamic closure-based
  autograd (loss and every leaf gradient);
* **batched equivalence** — for every op with a batched implementation, a
  batched replay of B independent leaf/input sets matches B per-slice
  replays (bit-identical when the tape is ``batch_exact``);
* **capture semantics** — detach stays a no-copy view, parameter shape
  changes invalidate the tape loudly, and replay eliminates the per-op
  dispatch the dynamic tape pays (the profiler's ``dispatches`` counter).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.models import build_model
from repro.nn import Tensor
from repro.nn import functional as F
from repro.nn.graph import OPS, GraphTape
from repro.nn.profiler import OpProfiler
from repro.nn.tensor import concat, stack


def _f(rng, *shape, lo=-1.0, hi=1.0):
    return rng.uniform(lo, hi, size=shape).astype(np.float32)


class Case:
    """One op's equivalence scenario.

    ``make(rng)`` returns ``(leaf_arrays, input_arrays)`` — float leaves
    become grad-carrying tape params, named inputs become per-replay tape
    inputs.  ``build(leaves, inputs)`` applies the op (plus whatever it
    needs around it) on the corresponding tensors.
    """

    def __init__(self, make, build):
        self.make = make
        self.build = build


def _bn_case(rng):
    return [_f(rng, 4, 3), _f(rng, 3), _f(rng, 3)], {}


def _bn_build(leaves, inputs):
    x, gamma, beta = leaves
    # fresh running buffers per run: they are updated in place
    return F.batch_norm(
        x, gamma, beta, np.zeros(3, np.float32), np.ones(3, np.float32),
        training=True,
    )


CASES: dict[str, Case] = {
    "add": Case(lambda r: ([_f(r, 2, 3), _f(r, 3)], {}),
                lambda ls, ins: ls[0] + ls[1]),
    "sub": Case(lambda r: ([_f(r, 2, 3), _f(r, 2, 3)], {}),
                lambda ls, ins: ls[0] - ls[1]),
    "mul": Case(lambda r: ([_f(r, 2, 3), _f(r, 2, 3)], {}),
                lambda ls, ins: ls[0] * ls[1]),
    "div": Case(lambda r: ([_f(r, 2, 3), _f(r, 2, 3, lo=0.5, hi=1.5)], {}),
                lambda ls, ins: ls[0] / ls[1]),
    "neg": Case(lambda r: ([_f(r, 2, 3)], {}), lambda ls, ins: -ls[0]),
    "pow": Case(lambda r: ([_f(r, 2, 3)], {}), lambda ls, ins: ls[0] ** 3),
    "matmul": Case(lambda r: ([_f(r, 2, 3), _f(r, 3, 4)], {}),
                   lambda ls, ins: ls[0] @ ls[1]),
    "relu": Case(lambda r: ([_f(r, 2, 3)], {}), lambda ls, ins: ls[0].relu()),
    "sigmoid": Case(lambda r: ([_f(r, 2, 3)], {}),
                    lambda ls, ins: ls[0].sigmoid()),
    "tanh": Case(lambda r: ([_f(r, 2, 3)], {}), lambda ls, ins: ls[0].tanh()),
    "exp": Case(lambda r: ([_f(r, 2, 3)], {}), lambda ls, ins: ls[0].exp()),
    "log": Case(lambda r: ([_f(r, 2, 3, lo=0.5, hi=2.0)], {}),
                lambda ls, ins: ls[0].log()),
    "sqrt": Case(lambda r: ([_f(r, 2, 3, lo=0.5, hi=2.0)], {}),
                 lambda ls, ins: ls[0].sqrt()),
    "abs": Case(lambda r: ([_f(r, 2, 3)], {}), lambda ls, ins: ls[0].abs()),
    "sum": Case(lambda r: ([_f(r, 2, 3)], {}),
                lambda ls, ins: ls[0].sum(axis=1)),
    "max": Case(lambda r: ([_f(r, 2, 3)], {}),
                lambda ls, ins: ls[0].max(axis=1)),
    "reshape": Case(lambda r: ([_f(r, 2, 3)], {}),
                    lambda ls, ins: ls[0].reshape((3, 2))),
    "transpose": Case(lambda r: ([_f(r, 2, 3)], {}),
                      lambda ls, ins: ls[0].transpose((1, 0))),
    "getitem": Case(lambda r: ([_f(r, 4, 3)], {}),
                    lambda ls, ins: ls[0][1:, :2]),
    "detach": Case(lambda r: ([_f(r, 2, 3)], {}),
                   lambda ls, ins: ls[0] * ls[0].detach()),
    "concat": Case(lambda r: ([_f(r, 2, 3), _f(r, 4, 3)], {}),
                   lambda ls, ins: concat(ls, axis=0)),
    "stack": Case(lambda r: ([_f(r, 2, 3), _f(r, 2, 3)], {}),
                  lambda ls, ins: stack(ls, axis=1)),
    # a real six_cnn layer shape: large enough that the serial einsum
    # dispatches to the same BLAS contraction the batched matmul uses
    # (below einsum's optimize threshold the two round differently)
    "conv2d": Case(
        lambda r: ([_f(r, 2, 16, 8, 8), _f(r, 32, 16, 3, 3), _f(r, 32)], {}),
        lambda ls, ins: F.conv2d(ls[0], ls[1], ls[2], stride=1, padding=1),
    ),
    "max_pool2d": Case(lambda r: ([_f(r, 2, 3, 4, 4)], {}),
                       lambda ls, ins: F.max_pool2d(ls[0], 2)),
    "avg_pool2d": Case(lambda r: ([_f(r, 2, 3, 4, 4)], {}),
                       lambda ls, ins: F.avg_pool2d(ls[0], 2)),
    "batch_norm": Case(_bn_case, _bn_build),
    "softmax": Case(lambda r: ([_f(r, 4, 6)], {}),
                    lambda ls, ins: F.softmax(ls[0])),
    "log_softmax": Case(lambda r: ([_f(r, 4, 6)], {}),
                        lambda ls, ins: F.log_softmax(ls[0])),
    "cross_entropy": Case(
        lambda r: ([_f(r, 4, 6)],
                   {"y": r.integers(0, 3, size=4).astype(np.int64),
                    "mask": np.array([1, 1, 1, 0, 0, 0], dtype=bool)}),
        lambda ls, ins: F.cross_entropy(ls[0], ins["y"],
                                        class_mask=ins["mask"]),
    ),
    "soft_cross_entropy": Case(
        lambda r: ([_f(r, 4, 6)], {}),
        lambda ls, ins: F.soft_cross_entropy(
            ls[0], np.full((4, 6), 1 / 6, dtype=np.float32)
        ),
    ),
    "dropout": Case(
        lambda r: ([_f(r, 4, 6)], {}),
        lambda ls, ins: F.dropout(ls[0], 0.5, training=True,
                                  rng=np.random.default_rng(7)),
    ),
}

BATCHED_OPS = sorted(
    name for name, op in OPS.items() if op.batched_forward is not None
)


def _run_dynamic(case, rng):
    leaf_arrays, input_arrays = case.make(rng)
    leaves = [Tensor(a.copy(), requires_grad=True) for a in leaf_arrays]
    inputs = {k: Tensor(v.copy(), dtype=v.dtype)
              for k, v in input_arrays.items()}
    out = case.build(leaves, inputs)
    out.backward(np.ones_like(out.data))
    return out.data.copy(), [
        None if leaf.grad is None else leaf.grad.copy() for leaf in leaves
    ]


def _capture(case, rng):
    leaf_arrays, input_arrays = case.make(rng)
    leaves = [Tensor(a.copy(), requires_grad=True) for a in leaf_arrays]
    inputs = {k: Tensor(v.copy(), dtype=v.dtype)
              for k, v in input_arrays.items()}
    tape = GraphTape()
    with tape.capture():
        for name, tensor in inputs.items():
            tape.add_input(name, tensor)
        tape.set_output(case.build(leaves, inputs))
    return tape, leaves, {k: v.data for k, v in inputs.items()}


class TestReplayEquivalence:
    def test_every_registered_op_has_a_case(self):
        assert set(CASES) == set(OPS), (
            "per-op replay-equivalence coverage drifted from the registry: "
            f"missing={sorted(set(OPS) - set(CASES))} "
            f"stale={sorted(set(CASES) - set(OPS))}"
        )

    @pytest.mark.parametrize("name", sorted(OPS))
    def test_replay_matches_dynamic(self, name):
        case = CASES[name]
        if name == "dropout":
            # the random mask would be baked into the program; the capture
            # must refuse rather than silently replay one mask forever
            with pytest.raises(NotImplementedError, match="dropout"):
                _capture(case, np.random.default_rng(0))
            return
        dyn_out, dyn_grads = _run_dynamic(case, np.random.default_rng(0))
        tape, leaves, input_arrays = _capture(case, np.random.default_rng(0))
        assert name in {node.op.name for node in tape.nodes}
        rep_out, rep_grads = tape.replay_grad(input_arrays)
        by_leaf = {id(ps.ref): g
                   for ps, g in zip(tape.param_slots, rep_grads)}
        assert np.array_equal(dyn_out, rep_out)
        for leaf, dyn_grad in zip(leaves, dyn_grads):
            rep_grad = by_leaf.get(id(leaf))
            if dyn_grad is None:
                assert rep_grad is None
            else:
                assert rep_grad is not None
                assert np.array_equal(dyn_grad, rep_grad)

    @pytest.mark.parametrize("name", BATCHED_OPS)
    def test_batched_replay_matches_per_slice(self, name):
        case = CASES[name]
        b = 3
        rng = np.random.default_rng(1)
        sets = [case.make(rng) for _ in range(b)]
        tape, leaves, _ = _capture(
            case, np.random.default_rng(1)
        )
        leaf_index = {id(leaf): i for i, leaf in enumerate(leaves)}
        slot_leaf = [leaf_index[id(ps.ref)] for ps in tape.param_slots]
        per_slice = [
            tape.replay_grad(
                dict(sets[i][1]),
                params=[sets[i][0][j] for j in slot_leaf],
            )
            for i in range(b)
        ]
        stacked_inputs = {
            k: np.stack([sets[i][1][k] for i in range(b)])
            for k in sets[0][1]
        }
        stacked_params = [
            np.stack([sets[i][0][j] for i in range(b)]) for j in slot_leaf
        ]
        out, grads = tape.replay_grad_batched(
            stacked_inputs, stacked_params, b
        )
        same = np.array_equal if tape.batch_exact else (
            lambda x, y: np.allclose(x, y, rtol=1e-5, atol=1e-6)
        )
        for i in range(b):
            slice_out, slice_grads = per_slice[i]
            assert same(out[i], slice_out)
            for slot, slice_grad in enumerate(slice_grads):
                if slice_grad is None:
                    assert grads[slot] is None
                else:
                    assert same(grads[slot][i], slice_grad)


class TestCaptureSemantics:
    def test_detach_is_no_copy_under_capture(self):
        base = Tensor(np.arange(6, dtype=np.float32), requires_grad=True)
        plain = base.detach()
        assert np.shares_memory(plain.data, base.data)
        assert not plain.requires_grad
        tape = GraphTape()
        with tape.capture():
            captured = base.detach()
        assert np.shares_memory(captured.data, base.data)
        assert not captured.requires_grad

    def _simple_tape(self):
        w = Tensor(np.ones((3,), np.float32), requires_grad=True)
        x = Tensor(np.ones((3,), np.float32))
        tape = GraphTape()
        with tape.capture():
            tape.add_input("x", x)
            tape.set_output((w * x).sum())
        return tape, x.data

    def test_param_shape_change_invalidates_tape(self):
        tape, x = self._simple_tape()
        with pytest.raises(RuntimeError, match="GraphTape invalidated"):
            tape.replay_grad({"x": x}, params=[np.ones((4,), np.float32)])

    def test_param_count_change_invalidates_tape(self):
        tape, x = self._simple_tape()
        with pytest.raises(RuntimeError, match="GraphTape invalidated"):
            tape.replay_grad({"x": x}, params=[])

    def test_replay_eliminates_per_op_dispatch(self):
        model = build_model("six_cnn", 10, input_shape=(3, 8, 8),
                            rng=np.random.default_rng(0))
        model.train()
        x = np.zeros((2, 3, 8, 8), np.float32)
        y = np.zeros((2,), np.int64)
        with OpProfiler() as dynamic:
            F.cross_entropy(model(Tensor(x)), y).backward()
        assert dynamic.dispatches > 0
        xt = Tensor(x)
        yt = Tensor(y, dtype=y.dtype)
        tape = GraphTape()
        with tape.capture():
            tape.add_input("x", xt)
            tape.add_input("y", yt)
            tape.set_output(F.cross_entropy(model(xt), yt))
        # capture records exactly the program the dynamic tape dispatched
        assert len(tape.nodes) == dynamic.dispatches
        with OpProfiler() as replayed:
            tape.replay_grad({"x": x, "y": y})
        assert replayed.dispatches == 0
