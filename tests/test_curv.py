"""Tests for the curvature subsystem: Fisher/GGN/K-FAC estimators, the
pluggable signature selector seam, and the fedvb variational-Bayes method.

The estimator properties are pinned with hypothesis: non-negativity and
sample-order invariance hold for *every* seed, and the single-sample Fisher
diagonal must agree with a central finite difference of the loss itself.
The selector seam's contract is bit-identity: the default ``magnitude``
selector reproduces the pre-seam extractor exactly, down to the retained
indices and a full training run's accuracy matrix.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.curv import (
    SELECTOR_SPECS,
    FisherSelector,
    HybridSelector,
    LossTape,
    MagnitudeSelector,
    SignatureSelector,
    create_selector,
    empirical_fisher_diagonal,
    gauss_newton_diagonal,
    kfac_factors,
    mc_fisher_diagonal,
)
from repro.models import build_model
from repro.nn import functional as F
from repro.nn.tensor import Tensor

NUM_CLASSES = 8
INPUT_SHAPE = (3, 8, 8)


def small_model(seed: int = 0):
    """A 526-parameter SixCNN — small enough for finite differences."""
    return build_model(
        "six_cnn", NUM_CLASSES, input_shape=INPUT_SHAPE,
        rng=np.random.default_rng(seed), width=2,
    )


def make_batch(seed: int, n: int):
    """``n`` synthetic samples over the first half of the classes."""
    rng = np.random.default_rng(seed)
    x = rng.standard_normal((n,) + INPUT_SHAPE).astype(np.float32)
    y = rng.integers(0, NUM_CLASSES // 2, size=n)
    mask = np.zeros(NUM_CLASSES, dtype=bool)
    mask[: NUM_CLASSES // 2] = True
    return x, y, mask


def flat_params(model) -> np.ndarray:
    return np.concatenate(
        [p.data.ravel() for _, p in model.named_parameters()]
    ).astype(np.float64)


# ----------------------------------------------------------------------
# diagonal Fisher properties (hypothesis)
# ----------------------------------------------------------------------
class TestEmpiricalFisher:
    @given(st.integers(0, 300))
    @settings(max_examples=10)
    def test_non_negative_and_finite(self, seed):
        model = small_model(seed % 7)
        x, y, mask = make_batch(seed, 5)
        fisher = empirical_fisher_diagonal(model, x, y, mask)
        assert fisher.shape == (model.num_parameters(),)
        assert np.isfinite(fisher).all()
        assert (fisher >= 0).all()

    @given(st.integers(0, 300))
    @settings(max_examples=10)
    def test_sample_order_invariance(self, seed):
        model = small_model(1)
        x, y, mask = make_batch(seed, 6)
        forward = empirical_fisher_diagonal(model, x, y, mask)
        perm = np.random.default_rng(seed + 1).permutation(len(y))
        shuffled = empirical_fisher_diagonal(model, x[perm], y[perm], mask)
        np.testing.assert_allclose(forward, shuffled, rtol=1e-6, atol=1e-12)

    def test_chunk_invariance(self):
        """Chunked batched replay must not change the estimate."""
        model = small_model(2)
        x, y, mask = make_batch(9, 7)
        wide = empirical_fisher_diagonal(model, x, y, mask, chunk=32)
        narrow = empirical_fisher_diagonal(model, x, y, mask, chunk=3)
        np.testing.assert_allclose(wide, narrow, rtol=1e-6, atol=1e-12)

    def test_single_sample_matches_eager_backward(self):
        """One sample: the Fisher diagonal IS the squared loss gradient."""
        model = small_model(3)
        x, y, mask = make_batch(4, 1)
        fisher = empirical_fisher_diagonal(model, x, y, mask)
        model.zero_grad()
        F.cross_entropy(model(Tensor(x)), y, class_mask=mask).backward()
        grad = np.concatenate(
            [p.grad.ravel() for _, p in model.named_parameters()]
        ).astype(np.float64)
        np.testing.assert_allclose(fisher, grad * grad, rtol=1e-6, atol=1e-14)

    def test_single_sample_matches_finite_difference(self, gradcheck):
        """Central-difference diagonal agreement on the tiny model."""
        model = small_model(5)
        x, y, mask = make_batch(6, 1)

        def loss():
            return float(
                F.cross_entropy(
                    model(Tensor(x)), y, class_mask=mask
                ).item()
            )

        # the float32 forward resolves the loss to ~5e-7; eps=1e-3 keeps the
        # central difference well above that noise floor
        numeric = np.concatenate([
            gradcheck(loss, p.data, 1e-3).ravel()
            for _, p in model.named_parameters()
        ])
        fisher = empirical_fisher_diagonal(model, x, y, mask)
        np.testing.assert_allclose(
            fisher, numeric * numeric, rtol=2e-2, atol=1e-5
        )

    def test_zero_samples_rejected(self):
        model = small_model(0)
        x, y, mask = make_batch(0, 3)
        with pytest.raises(ValueError):
            empirical_fisher_diagonal(model, x[:0], y[:0], mask)

    def test_tape_reuse_tracks_live_weights(self):
        """One captured tape serves the model even after weights move."""
        model = small_model(6)
        x, y, mask = make_batch(7, 4)
        tape = LossTape(model, x[:1], y[:1], mask)
        before = empirical_fisher_diagonal(model, x, y, mask, tape=tape)
        for _, p in model.named_parameters():
            p.data[...] += 0.05
        after = empirical_fisher_diagonal(model, x, y, mask, tape=tape)
        fresh = empirical_fisher_diagonal(model, x, y, mask)
        np.testing.assert_allclose(after, fresh, rtol=1e-6, atol=1e-12)
        assert not np.allclose(before, after)


class TestMCFisherAndGaussNewton:
    @given(st.integers(0, 200))
    @settings(max_examples=6)
    def test_mc_fisher_non_negative(self, seed):
        model = small_model(0)
        x, _, mask = make_batch(seed, 4)
        fisher = mc_fisher_diagonal(
            model, x, mask, rng=np.random.default_rng(seed)
        )
        assert np.isfinite(fisher).all()
        assert (fisher >= 0).all()

    def test_ggn_deterministic_and_non_negative(self):
        model = small_model(1)
        x, _, mask = make_batch(3, 4)
        first = gauss_newton_diagonal(model, x, mask)
        second = gauss_newton_diagonal(model, x, mask)
        assert (first >= 0).all()
        np.testing.assert_array_equal(first, second)

    def test_ggn_is_mc_fisher_expectation(self):
        """GGN sums the class expectation MC sampling only approximates, so
        a long MC run must converge toward it."""
        model = small_model(2)
        x, _, mask = make_batch(5, 3)
        ggn = gauss_newton_diagonal(model, x, mask)
        mc = mc_fisher_diagonal(
            model, x, mask, num_samples=400, rng=np.random.default_rng(0)
        )
        top = np.argsort(ggn)[-50:]  # compare where there is signal
        np.testing.assert_allclose(mc[top], ggn[top], rtol=0.35)


# ----------------------------------------------------------------------
# K-FAC factors
# ----------------------------------------------------------------------
class TestKFAC:
    def test_factor_shapes_symmetry_psd(self):
        model = small_model(0)
        x, y, mask = make_batch(1, 4)
        factors = kfac_factors(model, x, y, mask)
        named = dict(model.named_parameters())
        assert {f.op for f in factors} == {"matmul", "conv2d"}
        assert len(factors) == 6  # 4 convs + neck + classifier
        for factor in factors:
            weight = named[factor.name]
            assert factor.weight_shape == weight.data.shape
            for moment in (factor.a, factor.g):
                np.testing.assert_allclose(moment, moment.T, atol=1e-12)
                eigenvalues = np.linalg.eigvalsh(moment)
                assert eigenvalues.min() >= -1e-10
            importance = factor.diagonal_importance()
            assert importance.shape == weight.data.shape
            assert (importance >= -1e-15).all()

    def test_single_sample_matmul_diagonal_exact(self):
        """B=1: a matmul layer's Kronecker diagonal equals the empirical
        Fisher diagonal of its weight — ``(g_o a_i)**2 = A_ii G_oo``."""
        model = small_model(4)
        x, y, mask = make_batch(8, 1)
        factors = {f.name: f for f in kfac_factors(model, x, y, mask)}
        fisher = empirical_fisher_diagonal(model, x, y, mask)
        offset = 0
        for name, param in model.named_parameters():
            size = param.data.size
            if name in factors and factors[name].op == "matmul":
                block = fisher[offset:offset + size].reshape(param.data.shape)
                importance = factors[name].diagonal_importance()
                np.testing.assert_allclose(
                    importance, block, rtol=1e-6, atol=1e-14
                )
            offset += size


# ----------------------------------------------------------------------
# the selector seam
# ----------------------------------------------------------------------
class TestSelectors:
    def test_magnitude_scores_bit_identical_to_reference(self, tiny_model):
        scores = MagnitudeSelector().scores(tiny_model, task=None)
        reference = np.concatenate(
            [np.abs(p.data).ravel() for p in tiny_model.parameters()]
        )
        assert np.array_equal(scores, reference)

    def test_registry_round_trips_describe(self):
        for spec in ("magnitude", "fisher", "hybrid:0.5", "hybrid:0", "hybrid:1"):
            selector = create_selector(spec)
            assert create_selector(selector.describe()).describe() \
                == selector.describe()
        assert create_selector(None).describe() == "magnitude"
        instance = FisherSelector(max_samples=7)
        assert create_selector(instance) is instance

    @pytest.mark.parametrize(
        "spec", ["nope", "magnitude:2", "fisher:0.5", "hybrid", "hybrid:x",
                 "hybrid:1.5"]
    )
    def test_invalid_specs_rejected(self, spec):
        with pytest.raises(ValueError) as excinfo:
            create_selector(spec)
        if spec not in ("hybrid:1.5",):  # range error names the bound instead
            assert "magnitude" in str(excinfo.value)

    def test_fisher_selector_scores(self, tiny_benchmark, tiny_model):
        task = tiny_benchmark.clients[0].tasks[0]
        scores = FisherSelector(max_samples=16).scores(
            tiny_model, task, rng=np.random.default_rng(0)
        )
        assert scores.shape == (tiny_model.num_parameters(),)
        assert np.isfinite(scores).all()
        assert (scores >= 0).all()

    def test_hybrid_endpoints_match_components(
        self, tiny_benchmark, tiny_model
    ):
        task = tiny_benchmark.clients[0].tasks[0]
        at_zero = HybridSelector(mix=0.0).scores(
            tiny_model, task, np.random.default_rng(0)
        )
        magnitude = MagnitudeSelector().scores(tiny_model, task)
        np.testing.assert_allclose(at_zero, magnitude / magnitude.mean())
        at_one = HybridSelector(mix=1.0, max_samples=16).scores(
            tiny_model, task, np.random.default_rng(0)
        )
        fisher = FisherSelector(max_samples=16).scores(
            tiny_model, task, np.random.default_rng(0)
        )
        np.testing.assert_allclose(at_one, fisher / fisher.mean())

    def test_extractor_default_bit_identical(self, tiny_benchmark, tiny_model):
        """The seam's contract: no selector == explicit magnitude ==
        the pre-seam extractor's retained indices and values."""
        from repro.core.knowledge import KnowledgeExtractor

        task = tiny_benchmark.clients[0].tasks[0]
        default = KnowledgeExtractor(ratio=0.1).extract(tiny_model, task)
        explicit = KnowledgeExtractor(ratio=0.1, selector="magnitude").extract(
            tiny_model, task
        )
        for name in default.indices:
            assert np.array_equal(default.indices[name], explicit.indices[name])
            assert np.array_equal(default.values[name], explicit.values[name])

    def test_fisher_extraction_changes_support(self, tiny_benchmark, tiny_model):
        from repro.core.knowledge import KnowledgeExtractor

        task = tiny_benchmark.clients[0].tasks[0]
        rng = np.random.default_rng(0)
        magnitude = KnowledgeExtractor(ratio=0.05).extract(
            tiny_model, task, rng=rng
        )
        fisher = KnowledgeExtractor(ratio=0.05, selector="fisher").extract(
            tiny_model, task, rng=np.random.default_rng(0)
        )
        assert fisher.num_retained() == magnitude.num_retained()
        assert any(
            not np.array_equal(magnitude.indices[n], fisher.indices[n])
            for n in magnitude.indices
        )

    def test_extractor_rejects_wrong_score_size(self, tiny_benchmark, tiny_model):
        from repro.core.knowledge import KnowledgeExtractor

        class Broken(SignatureSelector):
            def scores(self, model, task, rng=None):
                return np.ones(3)

            def describe(self):
                return "broken"

        task = tiny_benchmark.clients[0].tasks[0]
        with pytest.raises(ValueError):
            KnowledgeExtractor(ratio=0.1, selector=Broken()).extract(
                tiny_model, task
            )

    def test_specs_catalogue_covers_registry(self):
        assert SELECTOR_SPECS == ("magnitude", "fisher", "hybrid:<mix>")


class TestResolveSelector:
    def test_defaults_per_method(self):
        from repro.federated import resolve_selector

        assert resolve_selector("fedknow") == "magnitude"
        assert resolve_selector("fedknow-fisher") == "fisher"
        assert resolve_selector("fedknow", "hybrid:0.50") == "hybrid:0.5"

    def test_non_extracting_method_rejects_selector(self):
        from repro.federated import resolve_selector

        assert resolve_selector("fedavg") == "magnitude"
        with pytest.raises(ValueError, match="signature-knowledge"):
            resolve_selector("fedavg", "fisher")

    def test_unknown_spec_rejected(self):
        from repro.federated import resolve_selector

        with pytest.raises(ValueError, match="magnitude"):
            resolve_selector("fedknow", "nope")
