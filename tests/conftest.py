"""Shared fixtures and hypothesis configuration for the test suite."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, settings

# keep property-based tests fast and deterministic in CI
settings.register_profile(
    "repro",
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
    derandomize=True,
)
settings.load_profile("repro")


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(0)


@pytest.fixture
def tiny_spec():
    """A 2-task, 8-class dataset spec small enough for unit tests."""
    from repro.data import cifar100_like

    return cifar100_like(train_per_class=8, test_per_class=4).with_tasks(2)


@pytest.fixture
def tiny_benchmark(tiny_spec, rng):
    """A 2-client federated benchmark over the tiny spec."""
    from repro.data import build_benchmark

    return build_benchmark(tiny_spec, num_clients=2, rng=rng)


@pytest.fixture
def tiny_model(tiny_spec):
    """A small SixCNN sized for the tiny spec, deterministic init."""
    from repro.models import build_model

    return build_model(
        tiny_spec.model_name,
        tiny_spec.num_classes,
        input_shape=tiny_spec.input_shape,
        rng=np.random.default_rng(42),
        width=8,
    )


def numeric_gradient(fn, array: np.ndarray, eps: float = 1e-5) -> np.ndarray:
    """Central-difference gradient of scalar ``fn()`` w.r.t. ``array`` in place."""
    grad = np.zeros_like(array, dtype=np.float64)
    iterator = np.nditer(array, flags=["multi_index"])
    while not iterator.finished:
        index = iterator.multi_index
        original = array[index]
        array[index] = original + eps
        f_plus = fn()
        array[index] = original - eps
        f_minus = fn()
        array[index] = original
        grad[index] = (f_plus - f_minus) / (2 * eps)
        iterator.iternext()
    return grad


@pytest.fixture
def gradcheck():
    return numeric_gradient
