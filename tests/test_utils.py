"""Tests for utils: RNG handling, serialisation, weight init."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import init
from repro.utils import get_rng, load_state, save_state, seed_all, spawn, state_num_bytes


class TestRng:
    def test_get_rng_passthrough(self, rng):
        assert get_rng(rng) is rng

    def test_seed_all_resets_default(self):
        seed_all(123)
        a = get_rng().random()
        seed_all(123)
        b = get_rng().random()
        assert a == b

    def test_spawn_children_independent(self, rng):
        children = spawn(rng, 3)
        assert len(children) == 3
        values = [c.random() for c in children]
        assert len(set(values)) == 3

    def test_spawn_deterministic(self):
        a = spawn(np.random.default_rng(5), 2)
        b = spawn(np.random.default_rng(5), 2)
        assert a[0].random() == b[0].random()


class TestSerialization:
    def test_state_num_bytes(self):
        state = {"a": np.zeros(10, dtype=np.float32), "b": np.zeros(5, np.float64)}
        assert state_num_bytes(state) == 10 * 4 + 5 * 8

    def test_save_load_round_trip(self, tmp_path, rng):
        state = {"w": rng.normal(size=(3, 4)).astype(np.float32),
                 "b": rng.normal(size=4).astype(np.float32)}
        path = tmp_path / "state.npz"
        save_state(state, path)
        loaded = load_state(path)
        assert set(loaded) == {"w", "b"}
        assert np.array_equal(loaded["w"], state["w"])


class TestInit:
    def test_kaiming_normal_std(self, rng):
        weights = init.kaiming_normal((1000, 100), rng)
        expected_std = np.sqrt(2.0) / np.sqrt(1000)
        assert weights.std() == pytest.approx(expected_std, rel=0.1)

    def test_kaiming_uniform_bound(self, rng):
        weights = init.kaiming_uniform((100, 50), rng)
        bound = np.sqrt(2.0) * np.sqrt(3.0 / 100)
        assert np.abs(weights).max() <= bound + 1e-6

    def test_conv_fan_in(self, rng):
        weights = init.kaiming_normal((8, 4, 3, 3), rng)
        expected_std = np.sqrt(2.0) / np.sqrt(4 * 9)
        assert weights.std() == pytest.approx(expected_std, rel=0.2)

    def test_xavier_bound(self, rng):
        weights = init.xavier_uniform((60, 40), rng)
        bound = np.sqrt(6.0 / 100)
        assert np.abs(weights).max() <= bound + 1e-6

    def test_unsupported_shape_raises(self, rng):
        with pytest.raises(ValueError):
            init.kaiming_normal((3, 3, 3), rng)

    def test_zeros_ones(self):
        assert (init.zeros((3,)) == 0).all()
        assert (init.ones((3,)) == 1).all()
        assert init.zeros((3,)).dtype == np.float32

    def test_dtype_float32(self, rng):
        assert init.kaiming_normal((4, 4), rng).dtype == np.float32
        assert init.xavier_uniform((4, 4), rng).dtype == np.float32
