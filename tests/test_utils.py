"""Tests for utils: RNG handling, serialisation, weight init."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import init
from repro.utils import (
    SparseTensor,
    decode_state,
    encode_state,
    encoded_num_bytes,
    get_rng,
    load_state,
    save_state,
    seed_all,
    sparse_delta_state,
    sparse_topk,
    spawn,
    state_num_bytes,
    topk_magnitude_indices,
)


class TestRng:
    def test_get_rng_passthrough(self, rng):
        assert get_rng(rng) is rng

    def test_seed_all_resets_default(self):
        seed_all(123)
        a = get_rng().random()
        seed_all(123)
        b = get_rng().random()
        assert a == b

    def test_spawn_children_independent(self, rng):
        children = spawn(rng, 3)
        assert len(children) == 3
        values = [c.random() for c in children]
        assert len(set(values)) == 3

    def test_spawn_deterministic(self):
        a = spawn(np.random.default_rng(5), 2)
        b = spawn(np.random.default_rng(5), 2)
        assert a[0].random() == b[0].random()


class TestSerialization:
    def test_state_num_bytes(self):
        state = {"a": np.zeros(10, dtype=np.float32), "b": np.zeros(5, np.float64)}
        assert state_num_bytes(state) == 10 * 4 + 5 * 8

    def test_save_load_round_trip(self, tmp_path, rng):
        state = {"w": rng.normal(size=(3, 4)).astype(np.float32),
                 "b": rng.normal(size=4).astype(np.float32)}
        path = tmp_path / "state.npz"
        save_state(state, path)
        loaded = load_state(path)
        assert set(loaded) == {"w", "b"}
        assert np.array_equal(loaded["w"], state["w"])


class TestWireCodec:
    def mixed_state(self, rng):
        return {
            "features.0.weight": rng.normal(size=(8, 3, 3, 3)).astype(np.float32),
            "bn.num_batches_tracked": np.array(17, dtype=np.int64),
            "bn.running_mean": rng.normal(size=8).astype(np.float32),
            "delta": sparse_topk(rng.normal(size=(4, 5)).astype(np.float32), 6),
        }

    def test_round_trip_lossless(self, rng):
        state = self.mixed_state(rng)
        decoded = decode_state(encode_state(state))
        assert set(decoded) == set(state)
        for key in ("features.0.weight", "bn.running_mean"):
            assert np.array_equal(decoded[key], state[key])
            assert decoded[key].dtype == state[key].dtype
        assert decoded["bn.num_batches_tracked"] == 17
        assert decoded["bn.num_batches_tracked"].dtype == np.int64
        assert decoded["bn.num_batches_tracked"].shape == ()
        sparse = decoded["delta"]
        assert isinstance(sparse, SparseTensor)
        assert np.array_equal(sparse.indices, state["delta"].indices)
        assert np.array_equal(sparse.values, state["delta"].values)
        assert sparse.shape == (4, 5)
        assert sparse.indices.dtype == np.int32

    def test_encoded_num_bytes_is_exact(self, rng):
        for state in (
            self.mixed_state(rng),
            {},
            {"scalar": np.float64(0.5) * np.ones(())},
            {"empty": SparseTensor(np.empty(0, np.int32),
                                   np.empty(0, np.float32), (7,))},
            {"noncontig": rng.normal(size=(6, 4)).T},
        ):
            assert encoded_num_bytes(state) == len(encode_state(state))

    def test_sparse_record_cost(self):
        """A sparse record costs 8 bytes per nonzero beyond its framing."""
        a = {"w": sparse_topk(np.arange(100, dtype=np.float32), 10)}
        b = {"w": sparse_topk(np.arange(100, dtype=np.float32), 11)}
        assert encoded_num_bytes(b) - encoded_num_bytes(a) == 4 + 4

    def test_decode_rejects_garbage(self):
        with pytest.raises(ValueError):
            decode_state(b"NOPE" + bytes(8))
        payload = encode_state({"w": np.zeros(3, np.float32)})
        with pytest.raises(ValueError):
            decode_state(payload + b"\x00")

    def test_sparse_dense_agree(self, rng):
        dense = rng.normal(size=(5, 5)).astype(np.float32)
        sparse = sparse_topk(dense, dense.size)
        assert np.array_equal(sparse.to_dense(), dense)

    def test_sparse_tensor_validation(self):
        with pytest.raises(ValueError):
            SparseTensor(np.zeros(2, np.int32), np.zeros(3, np.float32), (4,))

    def test_sparse_indices_bounds_checked(self):
        # corrupt payloads must fail at construction, not scatter silently
        with pytest.raises(ValueError):
            SparseTensor(np.array([-1], np.int32), np.ones(1, np.float32), (4,))
        with pytest.raises(ValueError):
            SparseTensor(np.array([4], np.int32), np.ones(1, np.float32), (4,))

    def test_topk_tie_break_is_deterministic(self):
        magnitudes = np.ones(10)
        keep = topk_magnitude_indices(magnitudes, 4)
        assert keep.tolist() == [0, 1, 2, 3]

    def test_topk_boundary_counts(self):
        magnitudes = np.array([3.0, 1.0, 2.0, 2.0, 2.0])
        keep = topk_magnitude_indices(magnitudes, 3)
        # the two lowest-position ties at magnitude 2 fill the quota
        assert keep.tolist() == [0, 2, 3]
        assert topk_magnitude_indices(magnitudes, 0).size == 0
        assert topk_magnitude_indices(magnitudes, 99).tolist() == list(range(5))

    def test_sparse_delta_round_trip(self, rng):
        base = {"w": rng.normal(size=(6, 6)).astype(np.float32),
                "steps": np.array(3, dtype=np.int64)}
        state = {"w": base["w"].copy(), "steps": np.array(5, dtype=np.int64)}
        state["w"][0, :3] += 1.0  # 3 changed entries out of 36
        delta = sparse_delta_state(state, base, ratio=0.10)
        rebuilt = {
            key: base[key] + value.to_dense()
            if isinstance(value, SparseTensor) else value
            for key, value in delta.items()
        }
        assert np.allclose(rebuilt["w"], state["w"])
        assert rebuilt["steps"] == 5

    def test_sparse_delta_ratio_validated(self, rng):
        base = {"w": np.zeros(4, np.float32)}
        with pytest.raises(ValueError):
            sparse_delta_state(base, base, ratio=0.0)


class TestInit:
    def test_kaiming_normal_std(self, rng):
        weights = init.kaiming_normal((1000, 100), rng)
        expected_std = np.sqrt(2.0) / np.sqrt(1000)
        assert weights.std() == pytest.approx(expected_std, rel=0.1)

    def test_kaiming_uniform_bound(self, rng):
        weights = init.kaiming_uniform((100, 50), rng)
        bound = np.sqrt(2.0) * np.sqrt(3.0 / 100)
        assert np.abs(weights).max() <= bound + 1e-6

    def test_conv_fan_in(self, rng):
        weights = init.kaiming_normal((8, 4, 3, 3), rng)
        expected_std = np.sqrt(2.0) / np.sqrt(4 * 9)
        assert weights.std() == pytest.approx(expected_std, rel=0.2)

    def test_xavier_bound(self, rng):
        weights = init.xavier_uniform((60, 40), rng)
        bound = np.sqrt(6.0 / 100)
        assert np.abs(weights).max() <= bound + 1e-6

    def test_unsupported_shape_raises(self, rng):
        with pytest.raises(ValueError):
            init.kaiming_normal((3, 3, 3), rng)

    def test_zeros_ones(self):
        assert (init.zeros((3,)) == 0).all()
        assert (init.ones((3,)) == 1).all()
        assert init.zeros((3,)).dtype == np.float32

    def test_dtype_float32(self, rng):
        assert init.kaiming_normal((4, 4), rng).dtype == np.float32
        assert init.xavier_uniform((4, 4), rng).dtype == np.float32
