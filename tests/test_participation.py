"""Tests for the round lifecycle redesign: typed updates, policies, staleness.

Covers the contract the redesign must keep — :class:`FullParticipation`
reproduces the pre-policy trainer bit for bit — plus the new behaviour:
client sampling, deadline-based straggler handling with staleness-discounted
aggregation, and the participation accounting on :class:`RoundRecord`.
"""

from __future__ import annotations

import warnings

import numpy as np
import pytest

from repro.data import build_benchmark, cifar100_like
from repro.edge import EdgeCluster, JETSON_AGX, JETSON_NANO, jetson_cluster
from repro.federated import (
    ClientUpdate,
    DeadlineParticipation,
    FedAvgServer,
    FullParticipation,
    POLICIES,
    SampledParticipation,
    ThreadedRoundEngine,
    TrainConfig,
    create_policy,
    create_trainer,
)
from repro.metrics.tracker import RoundRecord, RunResult
from repro.metrics.tracker import accuracy_matrix_from_client_evals


@pytest.fixture
def spec():
    return cifar100_like(train_per_class=8, test_per_class=4).with_tasks(2)


@pytest.fixture
def config():
    return TrainConfig(batch_size=8, lr=0.02, rounds_per_task=2,
                       iterations_per_round=3)


def make_update(client_id, value, num_samples, sim_seconds=0.0, loss=0.5):
    return ClientUpdate(
        client_id=client_id,
        state={"w": np.array([value], dtype=np.float32)},
        num_samples=num_samples,
        mean_loss=loss,
        sim_seconds=sim_seconds,
    )


class TestCreatePolicy:
    def test_specs_resolve(self):
        assert isinstance(create_policy("full"), FullParticipation)
        sampled = create_policy("sampled:0.5", seed=3)
        assert isinstance(sampled, SampledParticipation)
        assert sampled.fraction == 0.5
        deadline = create_policy("deadline:30")
        assert isinstance(deadline, DeadlineParticipation)
        assert deadline.deadline_seconds == 30.0

    def test_instance_passthrough(self):
        policy = SampledParticipation(0.25)
        assert create_policy(policy) is policy

    def test_describe_round_trips(self):
        for spec_str in ("full", "sampled:0.5", "deadline:30"):
            assert create_policy(spec_str).describe() == spec_str

    def test_unknown_policy_raises(self):
        with pytest.raises(KeyError):
            create_policy("async")

    def test_missing_argument_raises(self):
        with pytest.raises(ValueError):
            create_policy("sampled")

    def test_invalid_fraction_raises(self):
        with pytest.raises(ValueError):
            SampledParticipation(0.0)
        with pytest.raises(ValueError):
            SampledParticipation(1.5)

    def test_invalid_deadline_raises(self):
        with pytest.raises(ValueError):
            DeadlineParticipation(0.0)

    def test_registry_names(self):
        assert set(POLICIES) == {"full", "sampled", "deadline"}

    def test_config_validates_participation(self):
        with pytest.raises(ValueError):
            TrainConfig(participation="async")

    def test_config_validates_policy_argument(self):
        with pytest.raises(ValueError):
            TrainConfig(participation="sampled:abc")
        with pytest.raises(ValueError):
            TrainConfig(participation="sampled:1.7")
        with pytest.raises(ValueError):
            TrainConfig(participation="deadline")

    def test_non_numeric_argument_message(self):
        with pytest.raises(ValueError, match="non-numeric"):
            create_policy("deadline:fast")


class TestEffectiveWeight:
    def test_fresh_update_keeps_integer_weight(self):
        update = make_update(0, 1.0, num_samples=7)
        assert update.effective_weight(0.5) == 7

    def test_stale_update_discounted(self):
        update = make_update(0, 1.0, num_samples=8)
        update.staleness = 1
        assert update.effective_weight(0.5) == pytest.approx(4.0)
        update.staleness = 2
        assert update.effective_weight(0.5) == pytest.approx(2.0)


class TestAggregateUpdates:
    def test_fresh_updates_match_plain_aggregate_exactly(self, rng):
        """All-fresh typed aggregation is bit-identical to states+weights."""
        states = [
            {"w": rng.normal(size=(4, 3)).astype(np.float32)} for _ in range(5)
        ]
        weights = [3, 9, 1, 5, 7]
        updates = [
            ClientUpdate(client_id=i, state=s, num_samples=w)
            for i, (s, w) in enumerate(zip(states, weights))
        ]
        plain = FedAvgServer().aggregate(states, weights)
        typed = FedAvgServer().aggregate_updates(updates)
        assert np.array_equal(plain["w"], typed["w"])

    def test_staleness_weighting_hand_computed(self):
        """weight = samples * discount^staleness: (3*1 + 2*5)/5 = 2.6."""
        fresh = make_update(0, 1.0, num_samples=3)
        stale = make_update(1, 5.0, num_samples=4)
        stale.staleness = 1
        out = FedAvgServer().aggregate_updates(
            [fresh, stale], staleness_discount=0.5
        )
        assert out["w"][0] == pytest.approx(2.6)


class TestSampledPolicy:
    def test_participant_count_and_membership(self):
        policy = SampledParticipation(0.3, rng=np.random.default_rng(0))
        active = list(range(10))
        plan = policy.plan_round(0, 0, active)
        assert len(plan.participants) == 3
        assert set(plan.participants) <= set(active)
        assert plan.participants == tuple(sorted(plan.participants))

    def test_at_least_one_participant(self):
        policy = SampledParticipation(0.01, rng=np.random.default_rng(0))
        plan = policy.plan_round(0, 0, [4, 9])
        assert len(plan.participants) == 1

    def test_deterministic_under_seed(self):
        plans_a = [
            SampledParticipation(0.5, rng=np.random.default_rng(7))
            .plan_round(0, r, list(range(8)))
            for r in range(3)
        ]
        plans_b = [
            SampledParticipation(0.5, rng=np.random.default_rng(7))
            .plan_round(0, r, list(range(8)))
            for r in range(3)
        ]
        assert [p.participants for p in plans_a] == [
            p.participants for p in plans_b
        ]

    def test_broadcast_vs_participant_receivers(self):
        active = list(range(6))
        broadcast = SampledParticipation(0.5, rng=np.random.default_rng(0))
        plan = broadcast.plan_round(0, 0, active)
        updates = [make_update(i, 0.0, 4) for i in plan.participants]
        assert broadcast.collect(plan, updates, active).receivers == tuple(active)
        local = SampledParticipation(
            0.5, rng=np.random.default_rng(0), broadcast=False
        )
        plan = local.plan_round(0, 0, active)
        updates = [make_update(i, 0.0, 4) for i in plan.participants]
        assert local.collect(plan, updates, active).receivers == plan.participants


class TestPolicySeedThreading:
    def test_policy_rng_follows_config_seed(self, spec, config):
        """The sampling RNG must vary with the training seed (seed sweeps)."""

        def plans(seed):
            bench = build_benchmark(
                spec, num_clients=6, rng=np.random.default_rng(0)
            )
            with create_trainer(
                "fedavg", bench, config.updated(seed=seed),
                with_cost_model=False, participation="sampled:0.5",
            ) as trainer:
                return [
                    trainer.policy.plan_round(0, r, list(range(6))).participants
                    for r in range(4)
                ]

        assert plans(3) == plans(3)  # reproducible under a fixed seed
        assert plans(3) != plans(4)  # distinct trajectories across seeds


class TestDeadlinePolicy:
    def test_two_round_staleness_scenario(self):
        """Hand-computed: client 1 misses round 0, aggregates in round 1."""
        policy = DeadlineParticipation(10.0, staleness_discount=0.5)
        active = [0, 1, 2]

        plan0 = policy.plan_round(0, 0, active)
        assert plan0.participants == (0, 1, 2)
        assert plan0.deadline_seconds == 10.0
        u0 = make_update(0, 1.0, num_samples=2, sim_seconds=5.0)
        u1 = make_update(1, 2.0, num_samples=6, sim_seconds=12.0)  # straggler
        u2 = make_update(2, 3.0, num_samples=2, sim_seconds=8.0)
        out0 = policy.collect(plan0, [u0, u1, u2], active)
        assert out0.reported == (0, 2)
        assert out0.stale == ()
        assert out0.receivers == (0, 2)
        assert out0.updates == [u0, u2]
        assert u1.staleness == 1

        # round 1: the straggler is not re-planned; its update joins late
        plan1 = policy.plan_round(0, 1, active)
        assert plan1.participants == (0, 2)
        v0 = make_update(0, 1.5, num_samples=2, sim_seconds=5.0)
        v2 = make_update(2, 3.5, num_samples=2, sim_seconds=20.0)  # straggles
        out1 = policy.collect(plan1, [v0, v2], active)
        assert out1.reported == (0,)
        assert out1.stale == (1,)
        assert out1.updates == [v0, u1]
        assert out1.receivers == (0, 1)
        # round-1 aggregate: (2 * 1.5 + 6 * 0.5 * 2.0) / (2 + 3) = 1.8
        out = FedAvgServer().aggregate_updates(
            out1.updates, staleness_discount=policy.staleness_discount
        )
        assert out["w"][0] == pytest.approx(1.8)

    def test_pending_dropped_at_task_boundary(self):
        policy = DeadlineParticipation(10.0)
        plan = policy.plan_round(0, 0, [0, 1])
        late = make_update(1, 1.0, num_samples=4, sim_seconds=99.0)
        policy.collect(plan, [make_update(0, 0.0, 4, 1.0), late], [0, 1])
        policy.begin_task(1)
        assert policy.plan_round(1, 0, [0, 1]).participants == (0, 1)


class TestMaxStaleness:
    def test_spec_round_trips(self):
        for spec_str in ("deadline:30,max=3", "deadline:auto,max=2",
                         "deadline:auto:1.5,max=4",
                         "deadline:30,discount=0.25,max=2"):
            policy = create_policy(spec_str)
            assert create_policy(policy.describe()).describe() == \
                policy.describe()
        assert create_policy("deadline:30,max=3").max_staleness == 3
        # the default bound is omitted from the canonical spec
        assert create_policy("deadline:30").describe() == "deadline:30"
        assert create_policy("deadline:30,max=1").describe() == "deadline:30"

    def test_invalid_bounds_rejected(self):
        with pytest.raises(ValueError):
            create_policy("deadline:30,max=0")
        with pytest.raises(ValueError):
            create_policy("deadline:30,max=x")
        with pytest.raises(ValueError):
            create_policy("deadline:30,patience=2")
        with pytest.raises(ValueError):
            DeadlineParticipation(10.0, max_staleness=0)

    def test_default_bound_keeps_one_round_carry(self):
        """``max=1`` (the default) is the legacy semantics: every straggler
        carries exactly one round at staleness 1, however late it is."""
        policy = DeadlineParticipation(10.0)
        active = [0, 1]
        plan0 = policy.plan_round(0, 0, active)
        very_late = make_update(1, 2.0, num_samples=4, sim_seconds=500.0)
        out0 = policy.collect(
            plan0, [make_update(0, 1.0, 4, 5.0), very_late], active
        )
        assert out0.evicted == ()
        assert very_late.staleness == 1
        plan1 = policy.plan_round(0, 1, active)
        out1 = policy.collect(plan1, [make_update(0, 1.0, 4, 5.0)], active)
        assert out1.stale == (1,)
        assert very_late in out1.updates

    def test_measured_lateness_and_eviction(self):
        """``max=K`` measures rounds of lateness and evicts past the bound."""
        policy = DeadlineParticipation(10.0, max_staleness=2)
        active = [0, 1, 2, 3]
        plan0 = policy.plan_round(0, 0, active)
        u1 = make_update(1, 2.0, num_samples=4, sim_seconds=15.0)  # 1 late
        u2 = make_update(2, 3.0, num_samples=4, sim_seconds=25.0)  # 2 late
        u3 = make_update(3, 4.0, num_samples=4, sim_seconds=35.0)  # 3 late
        out0 = policy.collect(
            plan0, [make_update(0, 1.0, 4, 5.0), u1, u2, u3], active
        )
        assert out0.reported == (0,)
        assert out0.evicted == (3,)
        # evicted clients re-sync: they receive the new global state
        assert 3 in out0.receivers
        assert u1.staleness == 1 and u2.staleness == 2

        # round 1: only the 1-round-late straggler is due
        plan1 = policy.plan_round(0, 1, active)
        assert set(plan1.participants) == {0, 3}
        out1 = policy.collect(plan1, [make_update(0, 1.0, 4, 5.0)], active)
        assert out1.stale == (1,)
        assert u1 in out1.updates and u2 not in out1.updates

        # round 2: the 2-rounds-late straggler joins
        plan2 = policy.plan_round(0, 2, active)
        out2 = policy.collect(plan2, [make_update(0, 1.0, 4, 5.0)], active)
        assert out2.stale == (2,)
        assert u2 in out2.updates

    def test_drop_pending_forfeits_carry(self):
        """A departed client's pending straggler update never aggregates."""
        policy = DeadlineParticipation(10.0, max_staleness=2)
        active = [0, 1]
        plan0 = policy.plan_round(0, 0, active)
        late = make_update(1, 2.0, num_samples=4, sim_seconds=15.0)
        policy.collect(plan0, [make_update(0, 1.0, 4, 5.0), late], active)
        assert policy.drop_pending(1) is True
        assert policy.drop_pending(1) is False  # idempotent
        plan1 = policy.plan_round(0, 1, active)
        out1 = policy.collect(plan1, [make_update(0, 1.0, 4, 5.0)], active)
        assert out1.stale == ()
        assert late not in out1.updates


def reference_run(trainer, num_positions=None) -> RunResult:
    """The pre-redesign trainer loop (parallel states/weights/losses lists).

    A faithful replica of the seed ``FederatedTrainer.run``, kept here as
    the regression oracle: the policy-based trainer under
    :class:`FullParticipation` (and the dense-v1 transport) must reproduce
    it bit for bit.  Byte accounting is inlined as the seed computed it —
    the codec's exact encoded size of the uploaded/broadcast state.
    """
    from repro.utils.serialization import encoded_num_bytes

    num_positions = num_positions or trainer.clients[0].data.num_tasks
    rounds, stage_evals = [], []
    for position in range(num_positions):
        for client in trainer.active_clients():
            client.begin_task(position)
            if not trainer._check_memory(client):
                trainer._oom.add(client.client_id)
        active = trainer.active_clients()
        for round_index in range(trainer.config.rounds_per_task):
            states, weights, losses = [], [], []
            up_total, down_total = 0, 0
            train_seconds = 0.0

            def train_phase(client):
                stats = client.local_train(trainer.config.iterations_per_round)
                state = client.upload_state()
                up = trainer._real_bytes(
                    encoded_num_bytes(state) + client.extra_upload_bytes()
                )
                up += trainer._real_sample_bytes(client.upload_sample_bytes())
                return stats, state, up, client.take_compute_units()

            for client, (stats, state, up, units) in zip(
                active, trainer.engine.map(train_phase, active)
            ):
                losses.append(stats.get("mean_loss", np.nan))
                states.append(state)
                weights.append(client.num_train_samples)
                up_total += up
                train_seconds = max(
                    train_seconds, trainer._train_seconds(client, units)
                )
            global_state = trainer.server.aggregate(states, weights)

            def receive_phase(client):
                down = trainer._real_bytes(
                    encoded_num_bytes(global_state)
                    + client.extra_download_bytes()
                )
                client.receive_global(global_state, round_index)
                return down, client.take_compute_units()

            for client, (down, units) in zip(
                active, trainer.engine.map(receive_phase, active)
            ):
                down_total += down
                train_seconds = max(
                    train_seconds, trainer._train_seconds(client, units)
                )
            rounds.append(RoundRecord(
                position=position,
                round_index=round_index,
                upload_bytes=up_total,
                download_bytes=down_total,
                sim_train_seconds=train_seconds,
                sim_comm_seconds=trainer._comm_seconds(
                    up_total / max(len(active), 1),
                    down_total / max(len(active), 1),
                ),
                active_clients=len(active),
                mean_loss=float(np.nanmean(losses)),
            ))
        for client in active:
            client.end_task()
            client.take_compute_units()
        stage_evals.append(
            [client.evaluate(position) for client in trainer.clients]
        )
    return RunResult(
        method=trainer.method_name,
        dataset=trainer.dataset_name,
        num_clients=len(trainer.clients),
        num_tasks=num_positions,
        accuracy_matrix=accuracy_matrix_from_client_evals(stage_evals),
        rounds=rounds,
    )


class TestFullParticipationRegression:
    @pytest.mark.parametrize("method", ["fedavg", "fedknow"])
    def test_bit_identical_to_pre_redesign_loop(self, spec, config, method):
        def build():
            bench = build_benchmark(
                spec, num_clients=3, rng=np.random.default_rng(0)
            )
            return create_trainer(
                method, bench, config, cluster=jetson_cluster()
            )

        with build() as trainer:
            redesigned = trainer.run()
        with build() as trainer:
            reference = reference_run(trainer)

        assert np.array_equal(
            redesigned.accuracy_matrix, reference.accuracy_matrix,
            equal_nan=True,
        )
        assert len(redesigned.rounds) == len(reference.rounds)
        for a, b in zip(redesigned.rounds, reference.rounds):
            assert a.position == b.position
            assert a.round_index == b.round_index
            assert a.upload_bytes == b.upload_bytes
            assert a.download_bytes == b.download_bytes
            assert a.sim_train_seconds == b.sim_train_seconds
            assert a.sim_comm_seconds == b.sim_comm_seconds
            assert a.active_clients == b.active_clients
            assert a.mean_loss == b.mean_loss  # bit-identical losses
            # full participation: everyone planned, everyone reported
            assert a.planned_clients == a.active_clients
            assert a.reported_clients == a.active_clients
            assert a.stale_clients == 0


class TestSampledEndToEnd:
    def test_round_records_report_participation(self, spec, config):
        bench = build_benchmark(spec, num_clients=4,
                                rng=np.random.default_rng(0))
        with create_trainer(
            "fedavg", bench, config, cluster=jetson_cluster(),
            participation="sampled:0.5",
        ) as trainer:
            result = trainer.run()
        assert result.participation == "sampled:0.5"
        for record in result.rounds:
            assert record.active_clients == 4
            assert record.planned_clients == 2
            assert record.reported_clients == 2
            assert record.stale_clients == 0
            # broadcast: every active client downloads the aggregate
            assert record.download_bytes > record.upload_bytes


class TestDeadlineEndToEnd:
    def test_straggler_aggregates_next_round(self, spec, config):
        """Mixed AGX/Nano cluster: the Nano misses a mid-range deadline."""
        cluster = EdgeCluster([JETSON_AGX, JETSON_NANO])

        def build(**kwargs):
            bench = build_benchmark(spec, num_clients=2,
                                    rng=np.random.default_rng(0))
            return create_trainer("fedavg", bench, config, cluster=cluster,
                                  **kwargs)

        # pick a deadline strictly between the two devices' round times
        from repro.utils.serialization import encoded_num_bytes

        with build() as probe:
            units = float(config.iterations_per_round)
            times = [
                probe._train_seconds(client, units)
                + probe._channel_for(client).upload_seconds(
                    probe._real_bytes(encoded_num_bytes(client.upload_state()))
                )
                for client in probe.clients
            ]
        deadline = (min(times) + max(times)) / 2.0
        assert min(times) < deadline < max(times)

        with build(participation=f"deadline:{deadline}") as trainer:
            result = trainer.run()

        assert result.participation == f"deadline:{deadline:g}"
        first, second = result.rounds[0], result.rounds[1]
        # round 0: both planned, only the AGX reports in time
        assert (first.planned_clients, first.reported_clients,
                first.stale_clients) == (2, 1, 0)
        # round 1: the Nano sits out (update in flight), its stale update
        # from round 0 is aggregated now
        assert (second.planned_clients, second.reported_clients,
                second.stale_clients) == (1, 1, 1)
        # the deadline caps the synchronous wait
        assert first.sim_train_seconds <= deadline

    def test_empty_round_records_nan_loss_without_warning(self, spec, config):
        """Deadline below every client's time: round 1 has no participants."""
        bench = build_benchmark(spec, num_clients=2,
                                rng=np.random.default_rng(0))
        with create_trainer(
            "fedavg", bench, config, cluster=jetson_cluster(),
            participation="deadline:1e-6",
        ) as trainer:
            with warnings.catch_warnings():
                warnings.simplefilter("error")  # nanmean would warn on all-NaN
                result = trainer.run()
        first, second = result.rounds[0], result.rounds[1]
        assert (first.planned_clients, first.reported_clients,
                first.stale_clients) == (2, 0, 0)
        assert first.upload_bytes == 0  # nothing reached the server
        assert np.isfinite(first.mean_loss)  # clients trained and logged loss
        # round 1: nobody plans (all in flight); both stale updates land
        assert (second.planned_clients, second.reported_clients,
                second.stale_clients) == (0, 0, 2)
        assert np.isnan(second.mean_loss)
        assert second.upload_bytes > 0


class TestTrainerContextManager:
    def test_exit_closes_threaded_engine(self, spec, config):
        bench = build_benchmark(spec, num_clients=2,
                                rng=np.random.default_rng(0))
        engine = ThreadedRoundEngine(max_workers=2)
        with create_trainer(
            "fedavg", bench, config, with_cost_model=False, engine=engine,
        ) as trainer:
            trainer.run()
            assert engine._executor is not None
        assert engine._executor is None  # __exit__ closed the pool

    def test_close_idempotent(self, spec, config):
        bench = build_benchmark(spec, num_clients=2,
                                rng=np.random.default_rng(0))
        trainer = create_trainer("fedavg", bench, config,
                                 with_cost_model=False)
        trainer.close()
        trainer.close()

    def test_engine_context_manager(self):
        with ThreadedRoundEngine(max_workers=2) as engine:
            assert engine.map(lambda x: x + 1, [1, 2]) == [2, 3]
        assert engine._executor is None


class TestCacheKeyCanonicalization:
    def test_nested_dict_order_irrelevant(self, spec):
        from repro.experiments.config import UNIT
        from repro.experiments.runner import _cache_key

        a = _cache_key(
            "gem", spec, UNIT, 0, None, None, None,
            {"strategy_kwargs": {"memory_size": 8, "margin": 0.5}}, "full",
            "v1:dense",
        )
        b = _cache_key(
            "gem", spec, UNIT, 0, None, None, None,
            {"strategy_kwargs": {"margin": 0.5, "memory_size": 8}}, "full",
            "v1:dense",
        )
        assert a == b

    def test_nested_values_distinguished(self, spec):
        from repro.experiments.config import UNIT
        from repro.experiments.runner import _cache_key

        a = _cache_key(
            "gem", spec, UNIT, 0, None, None, None,
            {"strategy_kwargs": {"memory_size": 8}}, "full",
            "v1:dense",
        )
        b = _cache_key(
            "gem", spec, UNIT, 0, None, None, None,
            {"strategy_kwargs": {"memory_size": 16}}, "full",
            "v1:dense",
        )
        assert a != b

    def test_participation_in_key(self, spec):
        from repro.experiments.config import UNIT
        from repro.experiments.runner import _cache_key

        a = _cache_key("gem", spec, UNIT, 0, None, None, None, None, "full",
                       "v1:dense")
        b = _cache_key("gem", spec, UNIT, 0, None, None, None, None,
                       "sampled:0.5", "v1:dense")
        assert a != b

    def test_transport_in_key(self, spec):
        from repro.experiments.config import UNIT
        from repro.experiments.runner import _cache_key

        a = _cache_key("gem", spec, UNIT, 0, None, None, None, None, "full",
                       "v1:dense")
        b = _cache_key("gem", spec, UNIT, 0, None, None, None, None, "full",
                       "v2:delta:0.1")
        assert a != b

    def test_scenario_in_key(self, spec):
        from repro.experiments.config import UNIT
        from repro.experiments.runner import _cache_key

        a = _cache_key("gem", spec, UNIT, 0, None, None, None, None, "full",
                       "v1:dense", "class-inc")
        b = _cache_key("gem", spec, UNIT, 0, None, None, None, None, "full",
                       "v1:dense", "blurry:overlap=0.2")
        assert a != b
        # the default scenario key is the class-incremental family
        assert a == _cache_key("gem", spec, UNIT, 0, None, None, None, None,
                               "full", "v1:dense")

    def test_network_latency_in_key(self, spec):
        """Runs differing only in protocol latency must not share a cache
        entry (sim_comm_seconds depends on it)."""
        from repro.edge import NetworkModel
        from repro.experiments.config import UNIT
        from repro.experiments.runner import _cache_key

        fast = NetworkModel(round_latency_seconds=0.05)
        slow = NetworkModel(round_latency_seconds=10.0)
        a = _cache_key("gem", spec, UNIT, 0, None, fast, None, None, "full",
                       "v1:dense")
        b = _cache_key("gem", spec, UNIT, 0, None, slow, None, None, "full",
                       "v1:dense")
        assert a != b

    def test_equivalent_transport_specs_normalised(self):
        """"v2:delta" and "v2:delta:0.1" must share a cache entry."""
        from repro.federated import create_transport

        assert (create_transport("v2:delta").describe()
                == create_transport("v2:delta:0.1").describe()
                == create_transport("v2:delta:0.10").describe())
