"""Tests for SGD, gradient clipping and LR schedules."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import (
    BoundedInverseDecay,
    ConstantLR,
    InverseSqrtDecay,
    InverseTimeDecay,
    Parameter,
    SGD,
    clip_grad_norm,
    make_convergent_schedules,
)


def make_param(value=1.0, grad=0.5):
    p = Parameter(np.array([value], dtype=np.float32))
    p.grad = np.array([grad], dtype=np.float32)
    return p


class TestSGD:
    def test_vanilla_step(self):
        p = make_param(1.0, 0.5)
        SGD([p], lr=0.1).step()
        assert p.data[0] == pytest.approx(0.95)

    def test_skips_none_grad(self):
        p = Parameter(np.array([1.0]))
        SGD([p], lr=0.1).step()
        assert p.data[0] == 1.0

    def test_weight_decay(self):
        p = make_param(1.0, 0.0)
        SGD([p], lr=0.1, weight_decay=0.1).step()
        assert p.data[0] == pytest.approx(1.0 - 0.1 * 0.1)

    def test_momentum_accumulates(self):
        p = make_param(0.0, 1.0)
        opt = SGD([p], lr=1.0, momentum=0.9)
        opt.step()  # v=1, x=-1
        p.grad = np.array([1.0], dtype=np.float32)
        opt.step()  # v=1.9, x=-2.9
        assert p.data[0] == pytest.approx(-2.9)

    def test_nesterov_requires_momentum(self):
        with pytest.raises(ValueError):
            SGD([make_param()], lr=0.1, nesterov=True)

    def test_empty_params_raise(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)

    def test_invalid_lr_raises(self):
        with pytest.raises(ValueError):
            SGD([make_param()], lr=0.0)
        opt = SGD([make_param()], lr=0.1)
        with pytest.raises(ValueError):
            opt.set_lr(-1.0)

    def test_zero_grad_clears(self):
        p = make_param()
        opt = SGD([p], lr=0.1)
        opt.zero_grad()
        assert p.grad is None

    def test_state_dict_round_trip(self):
        p = make_param(0.0, 1.0)
        opt = SGD([p], lr=1.0, momentum=0.9)
        opt.step()
        state = opt.state_dict()
        opt2 = SGD([p], lr=1.0, momentum=0.9)
        opt2.load_state_dict(state)
        assert np.allclose(opt2._velocity[0], opt._velocity[0])


class TestClipGradNorm:
    def test_no_clip_below_threshold(self):
        p = make_param(grad=0.3)
        norm = clip_grad_norm([p], max_norm=1.0)
        assert norm == pytest.approx(0.3)
        assert p.grad[0] == pytest.approx(0.3)

    def test_clips_above_threshold(self):
        p = make_param(grad=3.0)
        q = make_param(grad=4.0)
        norm = clip_grad_norm([p, q], max_norm=1.0)
        assert norm == pytest.approx(5.0)
        total = np.sqrt(p.grad[0] ** 2 + q.grad[0] ** 2)
        assert total == pytest.approx(1.0, rel=1e-5)


class TestSchedules:
    def test_constant(self):
        schedule = ConstantLR(0.01)
        assert schedule(1) == schedule(1000) == 0.01

    def test_inverse_time(self):
        schedule = InverseTimeDecay(0.01, 1e-2)
        assert schedule(1) == pytest.approx(0.01 / 1.01)
        assert schedule(100) == pytest.approx(0.01 / 2.0)

    def test_inverse_sqrt_rate(self):
        """The O(r^-1/2) decay of Theorem 1's local constraint."""
        schedule = InverseSqrtDecay(0.1)
        # lr(4r) must be exactly half of lr(r)
        assert schedule(400) == pytest.approx(schedule(100) / 2)

    def test_bounded_inverse_rate_and_cap(self):
        """The O(r^-1) decay with the 2/(mu(gamma+r)) admissibility cap."""
        schedule = BoundedInverseDecay(10.0, mu=1.0, gamma=8.0)
        # large base lr is capped by the bound
        assert schedule(1) == pytest.approx(2.0 / 9.0)
        # asymptotically halves when r doubles (O(r^-1))
        assert schedule(10000) == pytest.approx(schedule(5000) / 2, rel=1e-2)

    def test_bound_respected_everywhere(self):
        schedule = BoundedInverseDecay(1.0, mu=2.0, gamma=4.0)
        for r in (1, 10, 100, 1000):
            assert schedule(r) <= 2.0 / (2.0 * (4.0 + r)) + 1e-12

    def test_make_convergent_schedules(self):
        local, global_ = make_convergent_schedules(0.1, 0.05)
        assert isinstance(local, InverseSqrtDecay)
        assert isinstance(global_, BoundedInverseDecay)

    def test_iteration_index_validation(self):
        with pytest.raises(ValueError):
            ConstantLR(0.1)(0)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            InverseTimeDecay(-1.0, 0.1)
        with pytest.raises(ValueError):
            InverseSqrtDecay(0.0)
        with pytest.raises(ValueError):
            BoundedInverseDecay(0.1, mu=0.0)
