"""Tests for the trainer's per-round accounting (bytes, time, losses)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import build_benchmark, cifar100_like
from repro.edge import (
    EdgeCluster,
    JETSON_AGX,
    JETSON_NANO,
    NetworkModel,
    jetson_cluster,
    uniform_cluster,
)
from repro.federated import TrainConfig, create_trainer


@pytest.fixture
def spec():
    return cifar100_like(train_per_class=8, test_per_class=4).with_tasks(2)


@pytest.fixture
def config():
    return TrainConfig(batch_size=8, lr=0.02, rounds_per_task=2,
                       iterations_per_round=3)


def build(spec, config, method="fedavg", **kwargs):
    bench = build_benchmark(spec, num_clients=2, rng=np.random.default_rng(0))
    return create_trainer(method, bench, config, **kwargs)


class TestRoundRecords:
    def test_record_count(self, spec, config):
        result = build(spec, config, cluster=jetson_cluster()).run()
        assert len(result.rounds) == spec.num_tasks * config.rounds_per_task
        positions = {r.position for r in result.rounds}
        assert positions == {0, 1}

    def test_upload_equals_download_for_fedavg(self, spec, config):
        """Plain FedAvg is symmetric: the model goes up and comes down."""
        result = build(spec, config, cluster=jetson_cluster()).run()
        for record in result.rounds:
            assert record.upload_bytes == record.download_bytes

    def test_mean_loss_finite(self, spec, config):
        result = build(spec, config, cluster=jetson_cluster()).run()
        assert all(np.isfinite(r.mean_loss) for r in result.rounds)

    def test_slower_device_longer_round(self, spec, config):
        fast = build(spec, config, cluster=uniform_cluster(JETSON_AGX, 2)).run()
        slow = build(spec, config, cluster=uniform_cluster(JETSON_NANO, 2)).run()
        assert slow.sim_train_seconds > 5 * fast.sim_train_seconds

    def test_sync_round_waits_for_slowest(self, spec, config):
        mixed = build(
            spec, config, cluster=EdgeCluster([JETSON_AGX, JETSON_NANO])
        ).run()
        nano_only = build(
            spec, config, cluster=uniform_cluster(JETSON_NANO, 2)
        ).run()
        # synchronous rounds: the mixed cluster is as slow as its Nano
        assert mixed.sim_train_seconds == pytest.approx(
            nano_only.sim_train_seconds, rel=0.05
        )

    def test_bandwidth_scales_comm_time(self, spec, config):
        slow_net = build(
            spec, config, cluster=jetson_cluster(),
            network=NetworkModel(bandwidth_bytes_per_second=100_000),
        ).run()
        fast_net = build(
            spec, config, cluster=jetson_cluster(),
            network=NetworkModel(bandwidth_bytes_per_second=10_000_000),
        ).run()
        assert slow_net.sim_comm_seconds > 20 * fast_net.sim_comm_seconds

    def test_no_cost_model_zero_time(self, spec, config):
        result = build(spec, config, with_cost_model=False).run()
        assert result.sim_train_seconds == 0.0
        assert result.total_comm_bytes > 0  # raw bytes still counted


class TestLatencyAccounting:
    """Protocol latency is charged once per round-trip (regression)."""

    def test_round_latency_charged_once_pinned(self, spec, config):
        """Pin each round's simulated comm seconds to the exact formula."""
        latency = 0.5
        bandwidth = 1_000_000.0
        network = NetworkModel(bandwidth_bytes_per_second=bandwidth,
                               round_latency_seconds=latency)
        result = build(spec, config, cluster=jetson_cluster(),
                       network=network).run()
        for record in result.rounds:
            per_up = record.upload_bytes / record.active_clients
            per_down = record.download_bytes / record.active_clients
            expected = (per_up + per_down) / bandwidth + latency
            # one latency per round-trip — not one per leg
            assert record.sim_comm_seconds == expected

    def test_link_legs_compose_to_one_round_trip(self):
        """upload leg + download leg == round trip; latency appears once."""
        from repro.edge import NetworkLink

        link = NetworkLink(uplink_bytes_per_second=500_000.0,
                           downlink_bytes_per_second=2_000_000.0,
                           round_latency_seconds=0.25)
        up, down = 1_000_000.0, 4_000_000.0
        assert link.upload_seconds(up) + link.download_seconds(down) == (
            link.round_trip_seconds(up, down)
        )
        # the latency is on the upload (request) leg only
        assert link.upload_seconds(0) == 0.25
        assert link.download_seconds(0) == 0.0

    def test_symmetric_round_trip_matches_legacy_formula(self):
        """Symmetric links keep the seed trainer's exact float path."""
        network = NetworkModel(bandwidth_bytes_per_second=1_000_000.0,
                               round_latency_seconds=0.05)
        link = network.link_for_device(None)
        up, down = 123_456.0, 654_321.0
        assert link.round_trip_seconds(up, down) == (
            network.transfer_seconds(up + down)
        )

    def test_device_profile_scales_link(self):
        from repro.edge import RASPBERRY_PI_4GB, JETSON_AGX

        network = NetworkModel(bandwidth_bytes_per_second=1_000_000.0)
        pi = network.link_for_device(RASPBERRY_PI_4GB)
        jetson = network.link_for_device(JETSON_AGX)
        assert pi.uplink_bytes_per_second == 500_000.0
        assert pi.downlink_bytes_per_second == 800_000.0
        assert jetson.uplink_bytes_per_second == 1_000_000.0
        # a Pi's constrained uplink makes the same upload slower
        assert pi.upload_seconds(10**6) > jetson.upload_seconds(10**6)

    def test_asymmetric_network_model(self):
        network = NetworkModel(bandwidth_bytes_per_second=1_000_000.0,
                               uplink_bytes_per_second=250_000.0)
        link = network.link_for_device(None)
        assert link.uplink_bytes_per_second == 250_000.0
        assert link.downlink_bytes_per_second == 1_000_000.0
        assert not link.symmetric


class TestDownloadAccounting:
    """No update may leave a round with unset download accounting."""

    def test_non_receivers_pinned_to_zero(self):
        from repro.federated import ClientUpdate, RoundOutcome, RoundPlan
        from repro.federated.trainer import FederatedTrainer

        plan = RoundPlan(0, 0, (0, 1))
        updates = [
            ClientUpdate(client_id=0, state={}, num_samples=4),
            ClientUpdate(client_id=1, state={}, num_samples=4),
        ]
        assert all(u.download_bytes == -1 for u in updates)  # unset sentinel
        outcome = RoundOutcome(plan=plan, updates=updates, receivers=(0,))
        FederatedTrainer._resolve_download_accounting(outcome, {0: 777}, {0})
        assert updates[0].download_bytes == 777
        assert updates[1].download_bytes == 0  # explicitly resolved, not -1

    def test_unmeasured_receiver_trips_guard(self):
        """A scheduled receiver whose download was never measured raises."""
        from repro.federated import ClientUpdate, RoundOutcome, RoundPlan
        from repro.federated.trainer import FederatedTrainer

        plan = RoundPlan(0, 0, (0,))
        updates = [ClientUpdate(client_id=0, state={}, num_samples=4)]
        outcome = RoundOutcome(plan=plan, updates=updates, receivers=(0,))
        with pytest.raises(RuntimeError, match="unset download accounting"):
            FederatedTrainer._resolve_download_accounting(outcome, {}, {0})

    def test_run_leaves_no_unset_accounting(self, spec, config):
        result = build(spec, config, cluster=jetson_cluster()).run()
        for record in result.rounds:
            assert record.download_bytes >= 0
            assert record.raw_upload_bytes >= record.upload_bytes >= 0


class TestCommScaling:
    def test_comm_grows_with_rounds(self, spec, config):
        one = build(spec, config.updated(rounds_per_task=1),
                    cluster=jetson_cluster()).run()
        two = build(spec, config.updated(rounds_per_task=2),
                    cluster=jetson_cluster()).run()
        assert two.total_comm_bytes == pytest.approx(
            2 * one.total_comm_bytes, rel=0.01
        )

    def test_fedrep_uploads_less_than_fedavg(self, spec, config):
        fedavg = build(spec, config, "fedavg", cluster=jetson_cluster()).run()
        fedrep = build(spec, config, "fedrep", cluster=jetson_cluster()).run()
        assert fedrep.total_upload_bytes < fedavg.total_upload_bytes
