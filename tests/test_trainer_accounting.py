"""Tests for the trainer's per-round accounting (bytes, time, losses)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import build_benchmark, cifar100_like
from repro.edge import (
    EdgeCluster,
    JETSON_AGX,
    JETSON_NANO,
    NetworkModel,
    jetson_cluster,
    uniform_cluster,
)
from repro.federated import TrainConfig, create_trainer


@pytest.fixture
def spec():
    return cifar100_like(train_per_class=8, test_per_class=4).with_tasks(2)


@pytest.fixture
def config():
    return TrainConfig(batch_size=8, lr=0.02, rounds_per_task=2,
                       iterations_per_round=3)


def build(spec, config, method="fedavg", **kwargs):
    bench = build_benchmark(spec, num_clients=2, rng=np.random.default_rng(0))
    return create_trainer(method, bench, config, **kwargs)


class TestRoundRecords:
    def test_record_count(self, spec, config):
        result = build(spec, config, cluster=jetson_cluster()).run()
        assert len(result.rounds) == spec.num_tasks * config.rounds_per_task
        positions = {r.position for r in result.rounds}
        assert positions == {0, 1}

    def test_upload_equals_download_for_fedavg(self, spec, config):
        """Plain FedAvg is symmetric: the model goes up and comes down."""
        result = build(spec, config, cluster=jetson_cluster()).run()
        for record in result.rounds:
            assert record.upload_bytes == record.download_bytes

    def test_mean_loss_finite(self, spec, config):
        result = build(spec, config, cluster=jetson_cluster()).run()
        assert all(np.isfinite(r.mean_loss) for r in result.rounds)

    def test_slower_device_longer_round(self, spec, config):
        fast = build(spec, config, cluster=uniform_cluster(JETSON_AGX, 2)).run()
        slow = build(spec, config, cluster=uniform_cluster(JETSON_NANO, 2)).run()
        assert slow.sim_train_seconds > 5 * fast.sim_train_seconds

    def test_sync_round_waits_for_slowest(self, spec, config):
        mixed = build(
            spec, config, cluster=EdgeCluster([JETSON_AGX, JETSON_NANO])
        ).run()
        nano_only = build(
            spec, config, cluster=uniform_cluster(JETSON_NANO, 2)
        ).run()
        # synchronous rounds: the mixed cluster is as slow as its Nano
        assert mixed.sim_train_seconds == pytest.approx(
            nano_only.sim_train_seconds, rel=0.05
        )

    def test_bandwidth_scales_comm_time(self, spec, config):
        slow_net = build(
            spec, config, cluster=jetson_cluster(),
            network=NetworkModel(bandwidth_bytes_per_second=100_000),
        ).run()
        fast_net = build(
            spec, config, cluster=jetson_cluster(),
            network=NetworkModel(bandwidth_bytes_per_second=10_000_000),
        ).run()
        assert slow_net.sim_comm_seconds > 20 * fast_net.sim_comm_seconds

    def test_no_cost_model_zero_time(self, spec, config):
        result = build(spec, config, with_cost_model=False).run()
        assert result.sim_train_seconds == 0.0
        assert result.total_comm_bytes > 0  # raw bytes still counted


class TestCommScaling:
    def test_comm_grows_with_rounds(self, spec, config):
        one = build(spec, config.updated(rounds_per_task=1),
                    cluster=jetson_cluster()).run()
        two = build(spec, config.updated(rounds_per_task=2),
                    cluster=jetson_cluster()).run()
        assert two.total_comm_bytes == pytest.approx(
            2 * one.total_comm_bytes, rel=0.01
        )

    def test_fedrep_uploads_less_than_fedavg(self, spec, config):
        fedavg = build(spec, config, "fedavg", cluster=jetson_cluster()).run()
        fedrep = build(spec, config, "fedrep", cluster=jetson_cluster()).run()
        assert fedrep.total_upload_bytes < fedavg.total_upload_bytes
