"""Tests for the gradient integrator (Eqs. 3-5) and the distance metrics."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.distance import (
    cosine_distance,
    l2_distance,
    select_signature_tasks,
    wasserstein_distance,
)
from repro.core.integrator import GradientIntegrator


class TestIntegrator:
    def test_no_constraints_returns_unchanged(self):
        integrator = GradientIntegrator()
        g = np.array([1.0, 2.0, 3.0])
        result = integrator.integrate(g, None)
        assert not result.rotated
        assert np.array_equal(result.gradient, g)

    def test_satisfied_constraints_no_rotation(self):
        integrator = GradientIntegrator()
        g = np.array([1.0, 0.0])
        constraints = np.array([[1.0, 0.1], [0.9, -0.1]])
        result = integrator.integrate(g, constraints)
        assert not result.rotated
        assert result.num_violations == 0

    def test_violated_constraint_gets_rotated(self):
        integrator = GradientIntegrator()
        g = np.array([1.0, 0.0])
        constraints = np.array([[-1.0, 1.0]])  # obtuse with g
        result = integrator.integrate(g, constraints)
        assert result.rotated
        assert result.num_violations == 1
        # acute-angle condition satisfied after integration
        assert constraints @ result.gradient >= -1e-8

    def test_rotation_angle_reported(self):
        integrator = GradientIntegrator()
        g = np.array([1.0, 0.0])
        constraints = np.array([[-1.0, 2.0]])
        result = integrator.integrate(g, constraints)
        assert 0.0 < result.rotation_degrees < 90.0

    def test_opposite_gradient_fully_projected(self):
        integrator = GradientIntegrator()
        g = np.array([1.0, 0.0])
        constraints = np.array([[-1.0, 0.0]])
        result = integrator.integrate(g, constraints)
        # g' = g + v*(-g) with v=1: exactly zero along the conflict
        assert abs(result.gradient @ constraints[0]) < 1e-8

    def test_margin_biases_towards_memory(self):
        g = np.array([1.0, 0.0])
        constraints = np.array([[-1.0, 1.0]])
        plain = GradientIntegrator(margin=0.0).integrate(g, constraints)
        biased = GradientIntegrator(margin=0.5).integrate(g, constraints)
        assert (
            biased.gradient @ constraints[0] > plain.gradient @ constraints[0] - 1e-9
        )

    def test_negative_margin_rejected(self):
        with pytest.raises(ValueError):
            GradientIntegrator(margin=-1.0)

    def test_dimension_mismatch_raises(self):
        integrator = GradientIntegrator()
        with pytest.raises(ValueError):
            integrator.integrate(np.ones(3), np.ones((2, 4)))

    def test_satisfies_constraints_helper(self):
        integrator = GradientIntegrator()
        g = np.array([1.0, 0.0])
        ok = np.array([[1.0, 1.0]])
        bad = np.array([[-1.0, 0.0]])
        assert integrator.satisfies_constraints(g, ok)
        assert not integrator.satisfies_constraints(g, bad)
        assert integrator.satisfies_constraints(g, np.empty((0, 2)))

    @given(st.integers(0, 300), st.integers(1, 6), st.integers(2, 30))
    def test_acute_angle_invariant_property(self, seed, k, dim):
        """After integration every constraint has a non-negative inner product.

        This is THE invariant of the paper's Eq. 3: model updates along g'
        never increase any signature task's loss (to first order).
        """
        rng = np.random.default_rng(seed)
        g = rng.normal(size=dim)
        constraints = rng.normal(size=(k, dim))
        result = GradientIntegrator().integrate(g, constraints)
        scale = max(np.abs(constraints @ g).max(), 1.0)
        assert (constraints @ result.gradient >= -1e-6 * scale).all()

    @given(st.integers(0, 200), st.integers(1, 5))
    def test_projected_gradient_solver_same_invariant(self, seed, k):
        rng = np.random.default_rng(seed)
        g = rng.normal(size=12)
        constraints = rng.normal(size=(k, 12))
        result = GradientIntegrator(solver="projected_gradient").integrate(
            g, constraints
        )
        scale = max(np.abs(constraints @ g).max(), 1.0)
        assert (constraints @ result.gradient >= -1e-5 * scale).all()


class TestDistances:
    def test_wasserstein_zero_for_identical(self, rng):
        g = rng.normal(size=100)
        assert wasserstein_distance(g, g) == 0.0

    def test_wasserstein_symmetric(self, rng):
        a, b = rng.normal(size=(2, 64))
        assert wasserstein_distance(a, b) == pytest.approx(
            wasserstein_distance(b, a)
        )

    def test_wasserstein_detects_shift(self, rng):
        a = rng.normal(size=128)
        assert wasserstein_distance(a, a + 3.0) == pytest.approx(3.0, rel=1e-5)

    def test_wasserstein_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            wasserstein_distance(np.zeros(4), np.zeros(5))

    def test_wasserstein_subsampling_consistent(self, rng):
        a = rng.normal(size=10_000)
        b = rng.normal(1.0, 1.0, size=10_000)
        full = wasserstein_distance(a, b, max_points=10_000)
        sampled = wasserstein_distance(a, b, max_points=1000)
        assert sampled == pytest.approx(full, rel=0.2)

    def test_cosine_distance_range(self, rng):
        a = rng.normal(size=16)
        assert cosine_distance(a, a) == pytest.approx(0.0, abs=1e-12)
        assert cosine_distance(a, -a) == pytest.approx(2.0, abs=1e-12)
        assert cosine_distance(a, np.zeros(16)) == 0.0

    def test_l2_distance(self):
        assert l2_distance(np.array([3.0, 0.0]), np.array([0.0, 4.0])) == 5.0

    @given(st.integers(0, 100))
    def test_distances_nonnegative(self, seed):
        rng = np.random.default_rng(seed)
        a, b = rng.normal(size=(2, 32))
        assert wasserstein_distance(a, b) >= 0
        assert cosine_distance(a, b) >= 0
        assert l2_distance(a, b) >= 0


class TestSignatureSelection:
    def test_selects_most_dissimilar(self, rng):
        g = np.ones(32)
        similar = np.ones((1, 32)) + rng.normal(0, 0.01, size=(1, 32))
        dissimilar = -np.ones((1, 32)) * 5
        past = np.concatenate([similar, dissimilar])
        chosen = select_signature_tasks(g, past, k=1, metric="l2")
        assert chosen[0] == 1

    def test_returns_at_most_k(self, rng):
        past = rng.normal(size=(7, 16))
        assert len(select_signature_tasks(rng.normal(size=16), past, k=3)) == 3
        assert len(select_signature_tasks(rng.normal(size=16), past, k=20)) == 7

    def test_sorted_by_dissimilarity(self, rng):
        g = np.zeros(16)
        past = np.stack([np.full(16, float(i)) for i in range(5)])
        order = select_signature_tasks(g, past, k=5, metric="l2")
        assert list(order) == [4, 3, 2, 1, 0]

    def test_unknown_metric_raises(self, rng):
        with pytest.raises(KeyError):
            select_signature_tasks(np.zeros(4), np.zeros((2, 4)), 1, metric="kl")

    def test_invalid_k_raises(self, rng):
        with pytest.raises(ValueError):
            select_signature_tasks(np.zeros(4), np.zeros((2, 4)), 0)

    def test_invalid_shape_raises(self):
        with pytest.raises(ValueError):
            select_signature_tasks(np.zeros(4), np.zeros(4), 1)
