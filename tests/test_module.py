"""Tests for the Module / Parameter system."""

from __future__ import annotations

import numpy as np
import pytest

from repro import nn


class Small(nn.Module):
    def __init__(self):
        super().__init__()
        self.fc1 = nn.Linear(4, 3, rng=np.random.default_rng(0))
        self.bn = nn.BatchNorm1d(3)
        self.fc2 = nn.Linear(3, 2, rng=np.random.default_rng(1))

    def forward(self, x):
        return self.fc2(self.bn(self.fc1(x)).relu())


class TestRegistration:
    def test_parameters_found(self):
        model = Small()
        names = [n for n, _ in model.named_parameters()]
        assert "fc1.weight" in names
        assert "fc1.bias" in names
        assert "bn.weight" in names
        assert "fc2.weight" in names

    def test_buffers_found(self):
        model = Small()
        names = [n for n, _ in model.named_buffers()]
        assert "bn.running_mean" in names
        assert "bn.running_var" in names

    def test_num_parameters(self):
        model = Small()
        expected = 4 * 3 + 3 + 3 + 3 + 3 * 2 + 2
        assert model.num_parameters() == expected

    def test_reassignment_replaces_parameter(self):
        model = Small()
        model.fc1 = nn.Linear(4, 3, rng=np.random.default_rng(2))
        assert len([n for n, _ in model.named_parameters() if n.startswith("fc1")]) == 2

    def test_assigning_non_module_clears_registration(self):
        model = Small()
        model.fc2 = None
        names = [n for n, _ in model.named_parameters()]
        assert not any(n.startswith("fc2") for n in names)


class TestTrainEval:
    def test_train_eval_propagates(self):
        model = Small()
        model.eval()
        assert not model.bn.training
        model.train()
        assert model.bn.training

    def test_zero_grad(self):
        model = Small()
        x = nn.Tensor(np.ones((2, 4)))
        loss = (model(x) ** 2).sum()
        loss.backward()
        assert any(p.grad is not None for p in model.parameters())
        model.zero_grad()
        assert all(p.grad is None for p in model.parameters())


class TestStateDict:
    def test_round_trip(self):
        model_a = Small()
        model_b = Small()
        # perturb model_b so loading must overwrite
        for p in model_b.parameters():
            p.data += 1.0
        model_b.load_state_dict(model_a.state_dict())
        for (na, pa), (nb, pb) in zip(
            model_a.named_parameters(), model_b.named_parameters()
        ):
            assert na == nb
            assert np.allclose(pa.data, pb.data)

    def test_state_dict_is_copy(self):
        model = Small()
        state = model.state_dict()
        state["fc1.weight"][...] = 99.0
        assert not np.allclose(model.fc1.weight.data, 99.0)

    def test_buffers_round_trip(self):
        model_a = Small()
        model_a.bn.running_mean[...] = 5.0
        model_b = Small()
        model_b.load_state_dict(model_a.state_dict())
        assert np.allclose(model_b.bn.running_mean, 5.0)

    def test_missing_key_raises(self):
        model = Small()
        state = model.state_dict()
        del state["fc1.weight"]
        with pytest.raises(KeyError):
            model.load_state_dict(state)

    def test_shape_mismatch_raises(self):
        model = Small()
        state = model.state_dict()
        state["fc1.weight"] = np.zeros((2, 2))
        with pytest.raises(ValueError):
            model.load_state_dict(state)


class TestContainers:
    def test_sequential_order_and_indexing(self):
        seq = nn.Sequential(nn.ReLU(), nn.Tanh(), nn.Identity())
        assert len(seq) == 3
        assert isinstance(seq[1], nn.Tanh)
        modules = list(seq)
        assert isinstance(modules[0], nn.ReLU)

    def test_sequential_forward_chains(self):
        seq = nn.Sequential(
            nn.Linear(3, 3, rng=np.random.default_rng(0)), nn.ReLU()
        )
        out = seq(nn.Tensor(np.ones((1, 3))))
        assert (out.data >= 0).all()

    def test_module_list_registration(self):
        ml = nn.ModuleList([nn.Linear(2, 2, rng=np.random.default_rng(0))])
        ml.append(nn.Linear(2, 2, rng=np.random.default_rng(1)))
        assert len(ml) == 2
        owner = nn.Module()
        owner.layers = ml
        assert len(list(owner.named_parameters())) == 4

    def test_apply_visits_all(self):
        visited = []
        seq = nn.Sequential(nn.ReLU(), nn.Sequential(nn.Tanh()))
        seq.apply(lambda m: visited.append(type(m).__name__))
        assert "Tanh" in visited
        assert "ReLU" in visited
