"""Sanity checks that every example script parses and exposes a main()."""

from __future__ import annotations

import ast
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"
EXAMPLE_FILES = sorted(EXAMPLES_DIR.glob("*.py"))


def test_examples_exist():
    names = {p.name for p in EXAMPLE_FILES}
    assert "quickstart.py" in names
    assert len(names) >= 3  # the deliverable minimum


@pytest.mark.parametrize("path", EXAMPLE_FILES, ids=lambda p: p.name)
class TestEveryExample:
    def test_parses(self, path):
        tree = ast.parse(path.read_text())
        assert tree is not None

    def test_has_main_and_guard(self, path):
        tree = ast.parse(path.read_text())
        functions = {
            node.name for node in ast.walk(tree)
            if isinstance(node, ast.FunctionDef)
        }
        assert "main" in functions, f"{path.name} lacks a main()"
        assert "__main__" in path.read_text(), f"{path.name} lacks a guard"

    def test_has_module_docstring(self, path):
        tree = ast.parse(path.read_text())
        assert ast.get_docstring(tree), f"{path.name} lacks a docstring"

    def test_imports_only_public_api(self, path):
        """Examples must consume the library's public surface (repro.*)."""
        tree = ast.parse(path.read_text())
        for node in ast.walk(tree):
            if isinstance(node, ast.ImportFrom) and node.module:
                root = node.module.split(".")[0]
                assert root in {"repro", "numpy", "dataclasses", "__future__"}, (
                    f"{path.name} imports {node.module}"
                )
