"""Tests for client-to-device placement on heterogeneous clusters."""

from __future__ import annotations

import pytest

from repro.edge import (
    EdgeCluster,
    JETSON_AGX,
    JETSON_NANO,
    jetson_raspberry_cluster,
    uniform_cluster,
)


class TestStridedPlacement:
    def test_few_clients_span_whole_catalogue(self):
        """With fewer clients than devices, every device tier is sampled —
        in particular the Raspberry Pis at the end of the 30-device cluster."""
        cluster = jetson_raspberry_cluster()
        devices = [
            cluster.device_for_client(i, num_clients=3) for i in range(3)
        ]
        names = [d.name for d in devices]
        assert any(name.startswith("raspberry_pi") for name in names), names
        assert any(name.startswith("jetson") for name in names), names

    def test_matching_counts_identity(self):
        cluster = jetson_raspberry_cluster()
        for i in (0, 7, 29):
            assert (
                cluster.device_for_client(i, num_clients=30)
                is cluster.devices[i]
            )

    def test_more_clients_than_devices_round_robin(self):
        cluster = uniform_cluster(JETSON_AGX, 4)
        assert cluster.device_for_client(5, num_clients=8) is cluster.devices[1]

    def test_without_count_round_robin(self):
        cluster = EdgeCluster([JETSON_AGX, JETSON_NANO])
        assert cluster.device_for_client(0) is JETSON_AGX
        assert cluster.device_for_client(1) is JETSON_NANO
        assert cluster.device_for_client(2) is JETSON_AGX

    def test_placement_deterministic(self):
        cluster = jetson_raspberry_cluster()
        a = [cluster.device_for_client(i, 5).name for i in range(5)]
        b = [cluster.device_for_client(i, 5).name for i in range(5)]
        assert a == b

    def test_last_client_within_bounds(self):
        cluster = jetson_raspberry_cluster()
        device = cluster.device_for_client(6, num_clients=7)
        assert device in cluster.devices
