"""Tests for the figure-report classes using synthetic RunResults (no training)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.ablations import AblationReport
from repro.experiments.fig4_accuracy import Fig4Report
from repro.experiments.fig5_comm_volume import Fig5Report
from repro.experiments.fig6_bandwidth import Fig6Report
from repro.experiments.fig7_tasks import Fig7Report
from repro.experiments.fig8_clients import Fig8Report
from repro.experiments.fig9_dnns import Fig9Report
from repro.experiments.fig10_params import Fig10Report
from repro.experiments.table1_improvement import Table1Report
from repro.metrics import RoundRecord, RunResult


def fake_result(method="m", final=0.5, first=0.8, comm=1000, train_s=10.0):
    matrix = np.array([[first, np.nan], [first - 0.1, 2 * final - first + 0.1]])
    rounds = [
        RoundRecord(0, 0, comm // 2, comm // 2, train_s / 2, 1.0, 2, 0.5),
        RoundRecord(1, 0, comm // 2, comm // 2, train_s / 2, 1.0, 2, 0.4),
    ]
    return RunResult(method, "d", 2, 2, matrix, rounds)


class TestFig4Report:
    def test_rows_sorted_by_accuracy(self):
        report = Fig4Report("cifar100", False)
        report.results = {"a": fake_result(final=0.3), "b": fake_result(final=0.9)}
        rows = report.rows
        assert rows[0][0] == "b"
        assert report.best_method() == "b"

    def test_str_mentions_cluster(self):
        report = Fig4Report("fc100", True, {"a": fake_result()})
        assert "Raspberry Pi" in str(report)


class TestTable1Report:
    def test_rows_padded_for_uneven_task_counts(self):
        report = Table1Report(datasets=["d1", "d2"])
        report.improvements = {"d1": np.array([10.0, 20.0]),
                               "d2": np.array([5.0])}
        rows = report.rows
        assert rows[1][2] == "-"
        assert report.mean_improvement("d1") == pytest.approx(15.0)


class TestFig5Report:
    def test_saving_percent(self):
        report = Fig5Report(datasets=["d"])
        report.volumes = {"d": {"fedknow": 1.0, "fedweit": 2.0}}
        assert report.mean_saving_percent() == pytest.approx(50.0)
        assert "50.0%" in str(report)


class TestFig6Report:
    def test_rows_per_model_method(self):
        report = Fig6Report(bandwidths=(50_000, 1_000_000))
        report.times = {"6cnn": {"fedknow": [2.0, 0.1], "fedweit": [3.0, 0.2]}}
        assert len(report.rows) == 2
        assert "50 KB/s" in str(report)


class TestFig7Report:
    def test_curves_exposed(self):
        report = Fig7Report(num_tasks=2, results={"fedknow": fake_result()})
        assert "fedknow" in report.accuracy_curves()
        assert len(report.forgetting_curves()["fedknow"]) == 2
        assert "accuracy" in str(report)


class TestFig8Report:
    def test_rows_grouped_by_count(self):
        report = Fig8Report(client_counts=(2, 4))
        report.results = {
            2: {"fedknow": fake_result()},
            4: {"fedknow": fake_result(final=0.4)},
        }
        rows = report.rows
        assert rows[0][0] == 2
        assert rows[1][0] == 4


class TestFig9Report:
    def test_best_method_per_model(self):
        report = Fig9Report(models=("densenet",))
        report.results = {
            "densenet": {"gem": fake_result(final=0.2),
                         "fedknow": fake_result(final=0.7)},
        }
        assert report.best_method_per_model()["densenet"] == "fedknow"
        assert "multi-path" in str(report)


class TestFig10Report:
    def test_rows_have_time_column(self):
        report = Fig10Report(results={"gem_10%": fake_result(train_s=360.0)})
        row = report.rows[0]
        assert row[0] == "gem_10%"
        assert row[2] == pytest.approx(0.1, abs=1e-6)  # hours


class TestAblationReport:
    def test_str_contains_axis(self):
        report = AblationReport(axis="distance metric",
                                results={"cosine": fake_result()})
        assert "distance metric" in str(report)
        assert report.rows[0][0] == "cosine"
