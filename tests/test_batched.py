"""Tests for batched multi-client execution and shared-base broadcasting.

Mirrors :mod:`tests.test_sharding`'s execution matrix for the batched
engine's contracts:

* **bit-identity** — a ``batched`` (or chunked ``batched:B``) run produces
  the same accuracy matrix, global state and round accounting as the
  serial reference, across participation policies, scenario families and
  momentum;
* **batch safety** — methods whose local step is not a pure
  loss→backward→SGD update are rejected up front, both by the trainer and
  by the registry-derived ``BATCH_SAFE_METHODS``;
* **shared base handles** — delta/sparse transports on a process engine
  broadcast one shared base snapshot per round instead of pickling a dense
  base copy into every worker chunk, without changing any bytes trained
  or shipped.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.data import ClientDataFactory, cifar100_like, create_scenario
from repro.edge import jetson_cluster
from repro.federated import (
    BATCH_SAFE_METHODS,
    ProcessRoundEngine,
    TrainConfig,
    create_trainer,
    create_transport,
)
from repro.federated.batched import capture_client_tape, train_chunk


@pytest.fixture
def spec():
    return cifar100_like(train_per_class=8, test_per_class=4).with_tasks(2)


@pytest.fixture
def config():
    return TrainConfig(batch_size=8, lr=0.02, rounds_per_task=2,
                       iterations_per_round=3)


def states_equal(a, b):
    return set(a) == set(b) and all(np.array_equal(a[k], b[k]) for k in a)


def run_matrix_config(
    spec,
    config,
    method="fedavg",
    engine="serial",
    participation=None,
    scenario="class-inc",
    transport=None,
    num_clients=4,
    data_factory=False,
):
    """Fresh benchmark + trainer per run so every config starts identical."""
    scenario_obj = create_scenario(scenario)
    bench = scenario_obj.build(
        spec, num_clients=num_clients, rng=np.random.default_rng(0)
    )
    factory = (
        ClientDataFactory(scenario_obj, spec, num_clients, 0)
        if data_factory
        else None
    )
    with create_trainer(
        method, bench, config, cluster=jetson_cluster(), engine=engine,
        participation=participation, transport=transport, data_factory=factory,
    ) as trainer:
        result = trainer.run()
        state = {k: v.copy() for k, v in trainer.server.global_state.items()}
    return result, state


def assert_runs_identical(reference, other):
    ref_result, ref_state = reference
    out_result, out_state = other
    assert np.array_equal(
        ref_result.accuracy_matrix, out_result.accuracy_matrix, equal_nan=True
    )
    assert states_equal(ref_state, out_state)
    assert len(ref_result.rounds) == len(out_result.rounds)
    for a, b in zip(ref_result.rounds, out_result.rounds):
        assert a.upload_bytes == b.upload_bytes
        assert a.download_bytes == b.download_bytes
        assert a.sim_train_seconds == b.sim_train_seconds
        assert a.reported_clients == b.reported_clients
        assert a.stale_clients == b.stale_clients
        assert a.mean_loss == b.mean_loss or (
            np.isnan(a.mean_loss) and np.isnan(b.mean_loss)
        )
        assert a.skipped == b.skipped


# ----------------------------------------------------------------------
# execution bit-identity matrix
# ----------------------------------------------------------------------
class TestBatchedBitIdentity:
    @pytest.mark.parametrize("engine", ["batched", "batched:2", "batched:3"])
    def test_fedavg_class_inc_full(self, spec, config, engine):
        reference = run_matrix_config(spec, config)
        other = run_matrix_config(spec, config, engine=engine)
        assert_runs_identical(reference, other)

    def test_momentum_matches_serial(self, spec):
        config = TrainConfig(batch_size=8, lr=0.02, momentum=0.9,
                             rounds_per_task=2, iterations_per_round=3)
        reference = run_matrix_config(spec, config)
        other = run_matrix_config(spec, config, engine="batched")
        assert_runs_identical(reference, other)

    def test_sampled_participation_matches_serial(self, spec, config):
        reference = run_matrix_config(
            spec, config, participation="sampled:0.5", num_clients=6
        )
        other = run_matrix_config(
            spec, config, participation="sampled:0.5", num_clients=6,
            engine="batched:4",
        )
        assert_runs_identical(reference, other)

    @pytest.mark.parametrize("scenario", [
        "label-shift:dirichlet:0.5",
        "blurry:overlap=0.3",
    ])
    def test_scenario_families(self, spec, config, scenario):
        reference = run_matrix_config(spec, config, scenario=scenario)
        other = run_matrix_config(
            spec, config, scenario=scenario, engine="batched"
        )
        assert_runs_identical(reference, other)

    def test_deadline_policy_matches_serial(self, spec, config):
        reference = run_matrix_config(
            spec, config, participation="deadline:6.1", num_clients=6
        )
        assert reference[0].total_stale_clients > 0
        other = run_matrix_config(
            spec, config, participation="deadline:6.1", num_clients=6,
            engine="batched",
        )
        assert_runs_identical(reference, other)

    def test_delta_transport_matches_serial(self, spec, config):
        reference = run_matrix_config(
            spec, config, transport="v2:delta:0.2"
        )
        other = run_matrix_config(
            spec, config, transport="v2:delta:0.2", engine="batched"
        )
        assert_runs_identical(reference, other)


# ----------------------------------------------------------------------
# batch safety
# ----------------------------------------------------------------------
class TestBatchSafety:
    def test_only_pure_sgd_methods_are_batch_safe(self):
        assert BATCH_SAFE_METHODS == ("fedavg",)

    @pytest.mark.parametrize("method", ["gem", "ewc", "fedknow", "apfl"])
    def test_trainer_rejects_batch_unsafe_methods(self, spec, config, method):
        bench = create_scenario("class-inc").build(
            spec, num_clients=2, rng=np.random.default_rng(0)
        )
        with pytest.raises(ValueError, match="batched"):
            create_trainer(method, bench, config, engine="batched")

    def test_heterogeneous_optimizers_rejected(self, spec, config):
        bench = create_scenario("class-inc").build(
            spec, num_clients=2, rng=np.random.default_rng(0)
        )
        trainer = create_trainer("fedavg", bench, config, engine="batched")
        try:
            for client in trainer.clients:
                client.begin_task(0)
            trainer.clients[1].optimizer.momentum = 0.9
            tape, order = capture_client_tape(trainer.clients[0])
            with pytest.raises(ValueError, match="homogeneous"):
                train_chunk(trainer.clients, 1, tape, order)
        finally:
            trainer.close()


# ----------------------------------------------------------------------
# shared base handles (delta/sparse transports on a process engine)
# ----------------------------------------------------------------------
class TestSharedBaseHandles:
    def test_delta_over_process_matches_serial(self, spec, config):
        reference = run_matrix_config(
            spec, config, transport="v2:delta:0.2"
        )
        other = run_matrix_config(
            spec, config, transport="v2:delta:0.2", engine="process:2",
            data_factory=True,
        )
        assert_runs_identical(reference, other)

    def test_channel_pickles_handle_not_base(self):
        state = {"w": np.zeros((50_000,), np.float32)}
        transport = create_transport("v2:delta:0.1")
        channel = transport.channel_for(0)
        engine = ProcessRoundEngine(max_workers=1)
        try:
            channel.deliver(state, base=dict(state))
            with_dict = len(pickle.dumps(channel))
            handle = engine.share_state(dict(state))
            channel.deliver(state, base=handle)
            with_handle = len(pickle.dumps(channel))
            # the handle ships a path + token instead of the dense arrays
            assert with_handle < 2_000 < with_dict
            # and resolves back to the same base on either side
            assert states_equal(channel.base, state)
        finally:
            handle.release()
            engine.close()

    def test_handle_release_is_idempotent(self):
        engine = ProcessRoundEngine(max_workers=1)
        try:
            handle = engine.share_state({"w": np.ones(4, np.float32)})
            assert states_equal(handle.resolve(), {"w": np.ones(4, np.float32)})
            handle.release()
            handle.release()
        finally:
            engine.close()

    def test_trainer_releases_handles_on_close(self, spec, config):
        scenario_obj = create_scenario("class-inc")
        bench = scenario_obj.build(
            spec, num_clients=3, rng=np.random.default_rng(0)
        )
        trainer = create_trainer(
            "fedavg", bench, config, engine="process:2",
            transport="v2:delta:0.2",
            data_factory=ClientDataFactory(scenario_obj, spec, 3, 0),
        )
        trainer.run_task(0)
        handles = list(trainer._base_handles)
        assert handles, "delta transport over process should share its base"
        trainer.close()
        import os

        assert all(not os.path.exists(h.path) for h in handles)
