"""Tests for the sharded population subsystem.

Covers the three contracts the subsystem rests on:

* **aggregation bit-identity** — :class:`ShardedAggregator` at any shard
  count produces the same bytes as the unsharded server (the fixed merge
  tree), including large rounds, sparse/bytes uploads and staleness
  discounts;
* **execution bit-identity** — serial == thread == process == sharded
  training runs, across participation policies and scenario families;
* **pickle safety** — clients, task streams and the client-data factory
  survive the process boundary unchanged.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.data import ClientDataFactory, cifar100_like, create_scenario
from repro.edge import jetson_cluster, jetson_raspberry_cluster
from repro.edge.network import NetworkModel
from repro.federated import (
    MERGE_SEGMENTS,
    ClientUpdate,
    DeadlineParticipation,
    FedAvgServer,
    ProcessRoundEngine,
    ShardedAggregator,
    ThreadedRoundEngine,
    TrainConfig,
    create_policy,
    create_trainer,
    shard_slices,
)
from repro.metrics.io import result_from_dict, result_to_dict
from repro.metrics.tracker import RoundRecord
from repro.utils.serialization import encode_state, sparse_topk


@pytest.fixture
def spec():
    return cifar100_like(train_per_class=8, test_per_class=4).with_tasks(2)


@pytest.fixture
def config():
    return TrainConfig(batch_size=8, lr=0.02, rounds_per_task=2,
                       iterations_per_round=3)


def make_updates(n, rng, dim=2000, with_int_key=True):
    updates = []
    for i in range(n):
        state = {"w": rng.normal(size=(dim,)).astype(np.float32),
                 "b": rng.normal(size=(7,)).astype(np.float32)}
        if with_int_key:
            state["steps"] = np.array(100 + i, dtype=np.int64)
        updates.append(ClientUpdate(
            client_id=i, state=state, num_samples=int(rng.integers(10, 100))
        ))
    return updates


def states_equal(a, b):
    return set(a) == set(b) and all(np.array_equal(a[k], b[k]) for k in a)


# ----------------------------------------------------------------------
# shard partitioning
# ----------------------------------------------------------------------
class TestShardSlices:
    def test_even_partition(self):
        slices = shard_slices(8, 4)
        assert [(s.start, s.stop) for s in slices] == [
            (0, 2), (2, 4), (4, 6), (6, 8)
        ]

    def test_uneven_partition_front_loads_extras(self):
        slices = shard_slices(10, 4)
        sizes = [s.stop - s.start for s in slices]
        assert sizes == [3, 3, 2, 2]
        assert slices[0].start == 0 and slices[-1].stop == 10

    def test_shards_never_outnumber_items(self):
        assert len(shard_slices(3, 16)) == 3

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            shard_slices(5, 0)
        with pytest.raises(ValueError):
            shard_slices(0, 4)


# ----------------------------------------------------------------------
# aggregation bit-identity
# ----------------------------------------------------------------------
class TestShardedAggregator:
    @pytest.mark.parametrize("n", [5, 16, MERGE_SEGMENTS, 150])
    def test_bit_identical_to_server_for_any_shard_count(self, n):
        rng = np.random.default_rng(0)
        updates = make_updates(n, rng, dim=500)
        reference = FedAvgServer().aggregate_updates(updates)
        for k in (1, 2, 3, 4, 7, 16, 64, 200):
            sharded = ShardedAggregator(FedAvgServer(), k)
            out = sharded.aggregate_updates(updates)
            assert states_equal(reference, out), f"shards={k} diverged"
            assert sum(sharded.last_shard_counts) == n
            assert sharded.last_merge_seconds >= 0.0

    def test_integer_buffers_come_from_first_client(self):
        rng = np.random.default_rng(1)
        updates = make_updates(6, rng, dim=50)
        out = ShardedAggregator(FedAvgServer(), 3).aggregate_updates(updates)
        assert out["steps"] == updates[0].state["steps"]

    def test_bytes_uploads_accepted(self):
        rng = np.random.default_rng(2)
        updates = make_updates(6, rng, dim=100, with_int_key=False)
        reference = FedAvgServer().aggregate_updates(
            [ClientUpdate(u.client_id, dict(u.state), u.num_samples)
             for u in updates]
        )
        encoded = [
            ClientUpdate(u.client_id, encode_state(u.state), u.num_samples)
            for u in updates
        ]
        out = ShardedAggregator(FedAvgServer(), 4).aggregate_updates(encoded)
        assert states_equal(reference, out)

    def test_sparse_uploads_materialise_against_global_state(self):
        rng = np.random.default_rng(3)
        base = {"w": rng.normal(size=(400,)).astype(np.float32)}
        dense = [
            {"w": base["w"] + rng.normal(scale=0.1, size=(400,)).astype(np.float32)}
            for _ in range(5)
        ]
        sparse = [{"w": sparse_topk(d["w"] - base["w"], 40)} for d in dense]
        server_a, server_b = FedAvgServer(), FedAvgServer()
        server_a.aggregate([base], [1])
        server_b.aggregate([base], [1])
        reference = server_a.aggregate(sparse, [1] * 5)
        out = ShardedAggregator(server_b, 3).aggregate_updates(
            [ClientUpdate(i, s, 1) for i, s in enumerate(sparse)]
        )
        assert states_equal(reference, out)

    def test_staleness_discount_matches_server(self):
        rng = np.random.default_rng(4)
        updates = make_updates(6, rng, dim=200)
        updates[2].staleness = 1
        updates[5].staleness = 2
        reference = FedAvgServer().aggregate_updates(
            updates, staleness_discount=0.25
        )
        out = ShardedAggregator(FedAvgServer(), 4).aggregate_updates(
            updates, staleness_discount=0.25
        )
        assert states_equal(reference, out)

    def test_thread_engine_shard_accumulation_identical(self):
        rng = np.random.default_rng(5)
        updates = make_updates(12, rng, dim=300)
        reference = FedAvgServer().aggregate_updates(updates)
        engine = ThreadedRoundEngine(max_workers=4)
        try:
            out = ShardedAggregator(
                FedAvgServer(), 4, engine=engine
            ).aggregate_updates(updates)
        finally:
            engine.close()
        assert states_equal(reference, out)

    def test_process_engine_rejected_for_shards(self):
        engine = ProcessRoundEngine(max_workers=2)
        try:
            with pytest.raises(ValueError, match="process engine"):
                ShardedAggregator(FedAvgServer(), 2, engine=engine)
        finally:
            engine.close()

    def test_shard_counts_partition_the_round(self):
        rng = np.random.default_rng(6)
        updates = make_updates(10, rng, dim=50)
        sharded = ShardedAggregator(FedAvgServer(), 4)
        sharded.aggregate_updates(updates)
        assert sharded.last_shard_counts == (3, 3, 2, 2)


class TestEmptyRounds:
    def test_server_rejects_empty_round(self):
        with pytest.raises(ValueError, match="zero reported clients"):
            FedAvgServer().aggregate_updates([])

    def test_sharded_rejects_empty_round(self):
        with pytest.raises(ValueError, match="zero reported clients"):
            ShardedAggregator(FedAvgServer(), 4).aggregate_updates([])

    def test_merge_rejects_empty_partials(self):
        with pytest.raises(ValueError, match="zero reported clients"):
            ShardedAggregator(FedAvgServer(), 2).merge([])

    def test_zero_weights_rejected(self):
        updates = [
            ClientUpdate(0, {"w": np.ones(3, np.float32)}, num_samples=0)
        ]
        with pytest.raises(ValueError, match="positive"):
            ShardedAggregator(FedAvgServer(), 2).aggregate_updates(updates)

    def test_inconsistent_keys_rejected(self):
        updates = [
            ClientUpdate(0, {"w": np.ones(3, np.float32)}, 1),
            ClientUpdate(1, {"v": np.ones(3, np.float32)}, 1),
        ]
        with pytest.raises(ValueError, match="inconsistent"):
            ShardedAggregator(FedAvgServer(), 2).aggregate_updates(updates)

    def test_trainer_records_empty_round_as_skipped(self, spec, config):
        bench = create_scenario("class-inc").build(
            spec, num_clients=3, rng=np.random.default_rng(0)
        )
        # a 1 B/s link makes every upload miss a microsecond deadline, so
        # round 0 has zero reports and nothing pending
        with create_trainer(
            "fedavg", bench, config, cluster=jetson_cluster(),
            network=NetworkModel(bandwidth_bytes_per_second=1.0),
            participation="deadline:1e-6",
        ) as trainer:
            result = trainer.run()
        first = result.rounds[0]
        assert first.skipped
        assert first.reported_clients == 0
        assert first.upload_bytes == 0
        # the stragglers' updates land one round later at staleness 1
        assert result.rounds[1].stale_clients == 3
        assert not result.rounds[1].skipped
        assert result.skipped_rounds >= 1


# ----------------------------------------------------------------------
# execution bit-identity matrix
# ----------------------------------------------------------------------
def run_matrix_config(
    spec,
    config,
    method="fedavg",
    engine="serial",
    shards=1,
    participation=None,
    scenario="class-inc",
    num_clients=4,
    data_factory=True,
):
    """Fresh benchmark + trainer per run so every config starts identical."""
    scenario_obj = create_scenario(scenario)
    bench = scenario_obj.build(
        spec, num_clients=num_clients, rng=np.random.default_rng(0)
    )
    factory = (
        ClientDataFactory(scenario_obj, spec, num_clients, 0)
        if data_factory
        else None
    )
    with create_trainer(
        method, bench, config, cluster=jetson_cluster(), engine=engine,
        shards=shards, participation=participation, data_factory=factory,
    ) as trainer:
        result = trainer.run()
        state = {k: v.copy() for k, v in trainer.server.global_state.items()}
    return result, state


def assert_runs_identical(reference, other):
    ref_result, ref_state = reference
    out_result, out_state = other
    assert np.array_equal(
        ref_result.accuracy_matrix, out_result.accuracy_matrix, equal_nan=True
    )
    assert states_equal(ref_state, out_state)
    assert len(ref_result.rounds) == len(out_result.rounds)
    for a, b in zip(ref_result.rounds, out_result.rounds):
        assert a.upload_bytes == b.upload_bytes
        assert a.download_bytes == b.download_bytes
        assert a.sim_train_seconds == b.sim_train_seconds
        assert a.reported_clients == b.reported_clients
        assert a.stale_clients == b.stale_clients
        assert a.mean_loss == b.mean_loss or (
            np.isnan(a.mean_loss) and np.isnan(b.mean_loss)
        )
        assert a.skipped == b.skipped


class TestExecutionMatrix:
    @pytest.mark.parametrize("engine,shards", [
        ("thread", 1),
        ("process:2", 1),
        ("serial", 3),
        ("thread:2", 3),  # shard accumulation rides the thread pool
        ("process:2", 3),
    ])
    def test_fedavg_class_inc_full(self, spec, config, engine, shards):
        reference = run_matrix_config(spec, config)
        other = run_matrix_config(spec, config, engine=engine, shards=shards)
        assert_runs_identical(reference, other)
        if shards > 1:
            assert sum(other[0].rounds[0].shard_reported) == 4

    def test_fedknow_process_matches_serial(self, spec, config):
        reference = run_matrix_config(spec, config, method="fedknow")
        other = run_matrix_config(
            spec, config, method="fedknow", engine="process:2"
        )
        assert_runs_identical(reference, other)

    @pytest.mark.parametrize("scenario", [
        "label-shift:dirichlet:0.5",
        "blurry:overlap=0.3",
    ])
    def test_scenario_families_process_and_sharded(self, spec, config, scenario):
        reference = run_matrix_config(
            spec, config, participation="sampled:0.5", scenario=scenario
        )
        other = run_matrix_config(
            spec, config, participation="sampled:0.5", scenario=scenario,
            engine="process:2", shards=2,
        )
        assert_runs_identical(reference, other)

    def test_deadline_policy_process_matches_serial(self, spec, config):
        # 6.1 simulated seconds sits inside this workload's 6.07-6.2s
        # spread, so some clients genuinely straggle and carry staleness
        reference = run_matrix_config(
            spec, config, participation="deadline:6.1", num_clients=6
        )
        assert reference[0].total_stale_clients > 0
        other = run_matrix_config(
            spec, config, participation="deadline:6.1", num_clients=6,
            engine="process:2",
        )
        assert_runs_identical(reference, other)

    def test_process_without_data_factory_ships_data(self, spec, config):
        reference = run_matrix_config(spec, config)
        other = run_matrix_config(
            spec, config, engine="process:2", data_factory=False
        )
        assert_runs_identical(reference, other)

    def test_process_rejects_server_coupled_methods(self, spec, config):
        bench = create_scenario("class-inc").build(
            spec, num_clients=2, rng=np.random.default_rng(0)
        )
        with pytest.raises(ValueError, match="process engine"):
            create_trainer("flcn", bench, config, engine="process:2")

    def test_adopted_clients_keep_their_data(self, spec, config):
        scenario_obj = create_scenario("class-inc")
        bench = scenario_obj.build(
            spec, num_clients=3, rng=np.random.default_rng(0)
        )
        with create_trainer(
            "fedavg", bench, config, engine="process:2",
            data_factory=ClientDataFactory(scenario_obj, spec, 3, 0),
        ) as trainer:
            trainer.run()
            for client in trainer.clients:
                assert client.data is not None
                assert client.task is not None
                assert client.global_iteration > 0

    def test_run_task_runs_rounds_without_eval(self, spec, config):
        bench = create_scenario("class-inc").build(
            spec, num_clients=3, rng=np.random.default_rng(0)
        )
        with create_trainer("fedavg", bench, config) as trainer:
            records = trainer.run_task(0)
        assert len(records) == config.rounds_per_task
        assert all(r.position == 0 for r in records)


# ----------------------------------------------------------------------
# pickle safety
# ----------------------------------------------------------------------
class TestPickleSafety:
    @pytest.mark.parametrize("method", [
        "fedavg", "apfl", "fedrep", "gem", "fedknow",
    ])
    def test_trained_clients_pickle_roundtrip(self, spec, config, method):
        bench = create_scenario("class-inc").build(
            spec, num_clients=2, rng=np.random.default_rng(0)
        )
        trainer = create_trainer(method, bench, config)
        client = trainer.clients[0]
        client.begin_task(0)
        client.local_train(2)
        clone = pickle.loads(pickle.dumps(client))
        assert states_equal(
            client.model.state_dict(), clone.model.state_dict()
        )
        assert clone.client_id == client.client_id
        assert clone.position == client.position
        # RNG state must travel exactly: both copies draw identical batches
        assert (clone.rng.bit_generator.state
                == client.rng.bit_generator.state)
        trainer.close()

    def test_client_data_factory_rebuilds_identical_arrays(self, spec):
        scenario = create_scenario("class-inc")
        parent = scenario.build(spec, num_clients=3, rng=np.random.default_rng(7))
        factory = pickle.loads(
            pickle.dumps(ClientDataFactory(scenario, spec, 3, 7))
        )
        rebuilt = factory()
        for parent_client, worker_client in zip(parent.clients, rebuilt.clients):
            a = parent_client.tasks[1]
            b = worker_client.tasks[1]
            assert np.array_equal(a.train_x, b.train_x)
            assert np.array_equal(a.train_y, b.train_y)
            assert np.array_equal(a.classes, b.classes)

    @pytest.mark.parametrize("family", [
        "class-inc", "label-shift:dirichlet:0.3", "domain-inc:drift=0.2",
    ])
    def test_task_streams_pickle_across_families(self, spec, family):
        bench = create_scenario(family).build(
            spec, num_clients=2, rng=np.random.default_rng(1)
        )
        data = bench.clients[1]
        clone = pickle.loads(pickle.dumps(data))
        original = data.task_at(0)
        rebuilt = clone.task_at(0)
        assert np.array_equal(original.train_x, rebuilt.train_x)
        assert np.array_equal(original.test_y, rebuilt.test_y)

    def test_detach_attach_roundtrip(self, spec, config):
        bench = create_scenario("class-inc").build(
            spec, num_clients=2, rng=np.random.default_rng(0)
        )
        trainer = create_trainer("fedavg", bench, config)
        client = trainer.clients[0]
        client.begin_task(1)
        task_before = client.task
        data = client.detach_data()
        assert client.data is None and client.task is None
        client.attach_data(data)
        assert client.task is task_before
        with pytest.raises(ValueError):
            client.attach_data(None)
        trainer.close()


# ----------------------------------------------------------------------
# per-client deadlines (deadline:auto)
# ----------------------------------------------------------------------
class TestAutoDeadline:
    def test_spec_parsing_and_describe(self):
        policy = create_policy("deadline:auto")
        assert policy.auto and policy.slack == 2.0
        assert policy.describe() == "deadline:auto"
        custom = create_policy("deadline:auto:1.5")
        assert custom.slack == 1.5
        assert custom.describe() == "deadline:auto:1.5"
        # the global-scalar spec keeps working unchanged
        scalar = create_policy("deadline:30")
        assert not scalar.auto
        assert scalar.describe() == "deadline:30"
        with pytest.raises(ValueError):
            create_policy("deadline:auto:x")

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            DeadlineParticipation()  # neither scalar nor auto
        with pytest.raises(ValueError):
            DeadlineParticipation(30.0, auto=True)  # both
        with pytest.raises(ValueError):
            DeadlineParticipation(auto=True, slack=0.0)

    def test_unbound_auto_policy_raises(self):
        policy = DeadlineParticipation(auto=True)
        with pytest.raises(RuntimeError, match="bind_client_deadlines"):
            policy.plan_round(0, 0, [0, 1])

    def test_per_client_thresholds_split_reported_and_stale(self):
        policy = DeadlineParticipation(auto=True)
        policy.bind_client_deadlines({0: 10.0, 1: 1.0})
        plan = policy.plan_round(0, 0, [0, 1])
        assert plan.deadline_seconds == 10.0  # barrier waits for the slowest
        updates = [
            ClientUpdate(0, {"w": np.ones(2, np.float32)}, 5, sim_seconds=5.0),
            ClientUpdate(1, {"w": np.ones(2, np.float32)}, 5, sim_seconds=5.0),
        ]
        outcome = policy.collect(plan, updates, [0, 1])
        # same sim time, different personal deadlines: 0 reports, 1 straggles
        assert outcome.reported == (0,)
        assert updates[1].staleness == 1
        next_plan = policy.plan_round(0, 1, [0, 1])
        assert next_plan.participants == (0,)

    def test_trainer_binds_link_derived_deadlines(self, spec, config):
        bench = create_scenario("class-inc").build(
            spec, num_clients=6, rng=np.random.default_rng(0)
        )
        with create_trainer(
            "fedavg", bench, config, cluster=jetson_raspberry_cluster(),
            participation="deadline:auto",
        ) as trainer:
            result = trainer.run(num_positions=1)
            policy = trainer.policy
            assert policy.has_client_deadlines
            deadlines = [
                policy.deadline_for(c.client_id) for c in trainer.clients
            ]
        # the heterogeneous cluster mixes Jetson and Raspberry Pi links, so
        # per-client deadlines must actually differ
        assert len(set(deadlines)) > 1
        assert all(d > 0 for d in deadlines)
        assert result.participation == "deadline:auto"


# ----------------------------------------------------------------------
# round-record accounting io
# ----------------------------------------------------------------------
class TestShardRecordIO:
    def _result(self, record):
        from repro.metrics.tracker import RunResult

        return RunResult(
            method="fedavg", dataset="cifar100", num_clients=4, num_tasks=1,
            accuracy_matrix=np.array([[0.5]]), rounds=[record],
        )

    def test_shard_fields_roundtrip(self):
        record = RoundRecord(
            position=0, round_index=0, upload_bytes=10, download_bytes=10,
            sim_train_seconds=1.0, sim_comm_seconds=1.0, active_clients=4,
            mean_loss=0.1, shard_reported=(2, 2), merge_seconds=0.25,
            skipped=False,
        )
        loaded = result_from_dict(result_to_dict(self._result(record)))
        assert loaded.rounds[0].shard_reported == (2, 2)
        assert loaded.rounds[0].merge_seconds == 0.25
        assert not loaded.rounds[0].skipped
        assert loaded.merge_seconds == 0.25

    def test_legacy_payloads_default_unsharded(self):
        record = RoundRecord(
            position=0, round_index=0, upload_bytes=10, download_bytes=10,
            sim_train_seconds=1.0, sim_comm_seconds=1.0, active_clients=4,
            mean_loss=0.1,
        )
        payload = result_to_dict(self._result(record))
        for entry in payload["rounds"]:
            del entry["shard_reported"]
            del entry["merge_seconds"]
            del entry["skipped"]
        loaded = result_from_dict(payload)
        assert loaded.rounds[0].shard_reported == ()
        assert loaded.rounds[0].merge_seconds == 0.0
        assert not loaded.rounds[0].skipped
        assert loaded.skipped_rounds == 0
