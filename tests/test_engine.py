"""Tests for the round engines: API, and parallel == serial reproducibility."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import build_benchmark, cifar100_like
from repro.edge import jetson_cluster
from repro.federated import (
    ENGINES,
    BatchedRoundEngine,
    ProcessRoundEngine,
    SerialRoundEngine,
    ThreadedRoundEngine,
    TrainConfig,
    create_engine,
    create_trainer,
)


@pytest.fixture
def spec():
    return cifar100_like(train_per_class=8, test_per_class=4).with_tasks(2)


@pytest.fixture
def config():
    return TrainConfig(batch_size=8, lr=0.02, rounds_per_task=2,
                       iterations_per_round=3)


class TestEngineApi:
    def test_registry(self):
        assert set(ENGINES) == {"serial", "thread", "process", "batched"}
        assert isinstance(create_engine("serial"), SerialRoundEngine)
        assert isinstance(create_engine("thread"), ThreadedRoundEngine)
        assert isinstance(create_engine("process"), ProcessRoundEngine)
        assert isinstance(create_engine("batched"), BatchedRoundEngine)
        assert create_engine("batched:4").batch_clients == 4

    def test_unknown_engine_raises(self):
        with pytest.raises(ValueError, match="unknown round engine"):
            create_engine("quantum")

    def test_worker_count_specs(self):
        thread = create_engine("thread:3")
        assert thread.max_workers == 3
        process = create_engine("process:2")
        assert process.max_workers == 2
        process.close()

    def test_bad_specs_rejected(self):
        with pytest.raises(ValueError):
            create_engine("serial:2")
        with pytest.raises(ValueError):
            create_engine("thread:x")
        with pytest.raises(ValueError):
            create_engine("process:0")

    def test_instance_passthrough(self):
        engine = ThreadedRoundEngine(max_workers=2)
        assert create_engine(engine) is engine
        engine.close()

    def test_thread_map_preserves_order(self):
        engine = ThreadedRoundEngine(max_workers=4)
        try:
            assert engine.map(lambda x: x * x, range(16)) == [
                x * x for x in range(16)
            ]
        finally:
            engine.close()

    def test_close_idempotent(self):
        engine = ThreadedRoundEngine()
        engine.map(lambda x: x, [1, 2])
        engine.close()
        engine.close()


def _double(array):
    return array * 2.0


class TestOutOfBandChunks:
    def test_small_payloads_stay_in_band(self):
        from repro.federated.engine import _dumps_oob, _loads_oob

        obj = {"w": np.arange(8, dtype=np.float32)}
        meta, path, sizes = _dumps_oob(obj)
        assert path is None and sizes == ()
        assert np.array_equal(_loads_oob(meta, path, sizes)["w"], obj["w"])

    def test_large_payloads_go_out_of_band(self, tmp_path):
        from repro.federated.engine import _dumps_oob, _loads_oob

        obj = {
            "a": np.arange(30_000, dtype=np.float32),
            "b": np.ones((100, 100), dtype=np.float64),
        }
        meta, path, sizes = _dumps_oob(obj)
        assert path is not None and len(sizes) == 2
        back = _loads_oob(meta, path, sizes)
        assert np.array_equal(back["a"], obj["a"])
        assert np.array_equal(back["b"], obj["b"])
        # rebuilt arrays must be writable: clients update weights in place
        back["a"][0] = -1.0
        back["b"][0, 0] = -1.0
        # the buffer file is consumed on load
        import os

        assert not os.path.exists(path)

    def test_oob_threshold_equivalence(self):
        """Forcing out-of-band yields the same objects as in-band."""
        from repro.federated.engine import _dumps_oob, _loads_oob

        obj = [np.arange(64, dtype=np.float32), {"k": np.eye(3)}]
        in_band = _loads_oob(*_dumps_oob(obj))
        forced = _loads_oob(*_dumps_oob(obj, min_bytes=0))
        for a, b in zip(in_band, forced):
            if isinstance(a, dict):
                assert np.array_equal(a["k"], b["k"])
            else:
                assert np.array_equal(a, b)

    def test_process_map_matches_serial_with_large_arrays(self):
        items = [
            np.full(50_000, i, dtype=np.float32) for i in range(5)
        ]
        engine = ProcessRoundEngine(max_workers=2)
        try:
            results = engine.map(_double, items)
        finally:
            engine.close()
        expected = [_double(item) for item in items]
        assert len(results) == len(expected)
        for got, want in zip(results, expected):
            assert np.array_equal(got, want)
            got[0] = -1.0  # mutable on the parent side too


def _bomb(item):
    """Kills the worker process outright — no exception, no cleanup."""
    import os

    os._exit(1)


def _shm_round_files() -> set[str]:
    import glob

    return set(glob.glob("/dev/shm/repro-oob-*")) | set(
        glob.glob("/dev/shm/repro-broadcast-*")
    )


class TestWorkerCrashCleanup:
    def test_mid_round_crash_leaves_no_shm_files(self):
        """A worker that dies mid-round (SIGKILL-style ``os._exit``) must
        not leak tmpfs request/response buffer files: the engine reaps the
        round's pending chunks before re-raising the pool failure."""
        before = _shm_round_files()
        engine = ProcessRoundEngine(max_workers=2)
        # large items force every chunk's request out-of-band into /dev/shm
        items = [np.zeros(50_000, dtype=np.float64) for _ in range(6)]
        with pytest.raises(Exception):
            engine.map(_bomb, items)
        engine.close()
        leaked = _shm_round_files() - before
        assert not leaked, f"crashed round leaked tmpfs files: {leaked}"

    def test_engine_closed_after_crash(self):
        before = _shm_round_files()
        engine = ProcessRoundEngine(max_workers=2)
        items = [np.zeros(50_000, dtype=np.float64) for _ in range(4)]
        with pytest.raises(Exception):
            engine.map(_bomb, items)
        # the broken pool was torn down; close() again stays a no-op
        engine.close()
        engine.close()
        assert _shm_round_files() - before == set()


def run_with_engine(spec, config, method, engine):
    """A fresh benchmark + trainer per run so both engines start identically."""
    bench = build_benchmark(spec, num_clients=3, rng=np.random.default_rng(0))
    trainer = create_trainer(
        method, bench, config, cluster=jetson_cluster(), engine=engine
    )
    result = trainer.run()
    trainer.engine.close()
    return result


class TestParallelReproducibility:
    @pytest.mark.parametrize("method", ["fedavg", "fedknow", "fedweit"])
    def test_thread_engine_matches_serial_exactly(self, spec, config, method):
        serial = run_with_engine(spec, config, method, "serial")
        threaded = run_with_engine(spec, config, method, "thread")
        assert np.array_equal(
            serial.accuracy_matrix, threaded.accuracy_matrix, equal_nan=True
        )
        assert len(serial.rounds) == len(threaded.rounds)
        for a, b in zip(serial.rounds, threaded.rounds):
            assert a.position == b.position
            assert a.round_index == b.round_index
            assert a.upload_bytes == b.upload_bytes
            assert a.download_bytes == b.download_bytes
            assert a.sim_train_seconds == b.sim_train_seconds
            assert a.sim_comm_seconds == b.sim_comm_seconds
            assert a.active_clients == b.active_clients
            assert a.mean_loss == b.mean_loss  # bit-identical losses
