"""Tests for the edge substrate: devices, clusters, cost model, network."""

from __future__ import annotations

import numpy as np
import pytest

from repro.edge import (
    DEVICE_CATALOG,
    DeviceProfile,
    EdgeCluster,
    FIG6_BANDWIDTHS,
    GB,
    JETSON_AGX,
    JETSON_NANO,
    MB,
    ModelCostModel,
    NetworkModel,
    RASPBERRY_PI_2GB,
    format_bandwidth,
    get_device,
    jetson_cluster,
    jetson_raspberry_cluster,
    uniform_cluster,
)
from repro.models import build_model


class TestDevices:
    def test_catalog_contains_paper_testbed(self):
        for name in (
            "jetson_agx", "jetson_xavier_nx", "jetson_tx2", "jetson_nano",
            "raspberry_pi_2gb", "raspberry_pi_4gb", "raspberry_pi_8gb",
        ):
            assert name in DEVICE_CATALOG

    def test_paper_memory_sizes(self):
        assert get_device("jetson_agx").memory_bytes == 32 * GB
        assert get_device("jetson_nano").memory_bytes == 4 * GB
        assert get_device("raspberry_pi_2gb").memory_bytes == 2 * GB

    def test_jetsons_faster_than_pi(self):
        assert (
            JETSON_NANO.flops_per_second
            > RASPBERRY_PI_2GB.flops_per_second * 5
        )

    def test_training_seconds(self):
        device = DeviceProfile("d", 1e9, GB)
        assert device.training_seconds(2e9) == pytest.approx(2.0)
        with pytest.raises(ValueError):
            device.training_seconds(-1)

    def test_invalid_profile_rejected(self):
        with pytest.raises(ValueError):
            DeviceProfile("bad", 0.0, GB)
        with pytest.raises(ValueError):
            DeviceProfile("bad", 1e9, 0)

    def test_unknown_device_raises(self):
        with pytest.raises(KeyError):
            get_device("tpu_v5")


class TestClusters:
    def test_jetson_cluster_composition(self):
        cluster = jetson_cluster()
        assert len(cluster) == 20
        names = [d.name for d in cluster.devices]
        assert names.count("jetson_agx") == 2
        assert names.count("jetson_tx2") == 2
        assert names.count("jetson_xavier_nx") == 8
        assert names.count("jetson_nano") == 8

    def test_heterogeneous_cluster_adds_ten_pis(self):
        cluster = jetson_raspberry_cluster()
        assert len(cluster) == 30
        names = [d.name for d in cluster.devices]
        assert names.count("raspberry_pi_2gb") == 1
        assert names.count("raspberry_pi_4gb") == 5
        assert names.count("raspberry_pi_8gb") == 4

    def test_round_robin_placement(self):
        cluster = uniform_cluster(JETSON_AGX, 3)
        assert cluster.device_for_client(0) is cluster.devices[0]
        assert cluster.device_for_client(4) is cluster.devices[1]

    def test_slowest_and_min_memory(self):
        cluster = jetson_raspberry_cluster()
        assert cluster.slowest.name.startswith("raspberry_pi")
        assert cluster.min_memory == 2 * GB

    def test_empty_cluster_rejected(self):
        with pytest.raises(ValueError):
            EdgeCluster([])
        with pytest.raises(ValueError):
            uniform_cluster(JETSON_AGX, 0)


class TestCostModel:
    @pytest.fixture(scope="class")
    def cost(self):
        model = build_model("resnet18", 10, rng=np.random.default_rng(0), width=4)
        return ModelCostModel(model, "resnet18", dataset_name="miniimagenet")

    def test_real_model_bytes_match_published_size(self, cost):
        # ResNet-18: 11.69M params x 4 bytes ~ 46.8 MB
        assert cost.real_model_bytes == pytest.approx(46.8e6, rel=0.01)

    def test_param_scale_projects_up(self, cost):
        assert cost.param_scale > 10  # our model is far smaller

    def test_state_byte_projection_linear(self, cost):
        assert cost.real_state_bytes(2000) == 2 * cost.real_state_bytes(1000)

    def test_sample_scale_uses_dataset_resolution(self):
        model = build_model("six_cnn", 10, rng=np.random.default_rng(0), width=8)
        cifar = ModelCostModel(model, "six_cnn", dataset_name="cifar100")
        core = ModelCostModel(model, "six_cnn", dataset_name="core50")
        assert core.sample_scale > cifar.sample_scale  # 128^2 vs 32^2 images

    def test_train_flops_formula(self, cost):
        flops = cost.train_flops(batch_size=16, compute_units=10)
        assert flops == pytest.approx(3.0 * 1.82e9 * 16 * 10)

    def test_training_memory_fits_jetson_but_not_zero(self, cost):
        memory = cost.training_memory_bytes(batch_size=16)
        assert memory > 100e6  # at least weights x3 + overhead
        assert memory < 16 * GB  # fits a Xavier NX

    def test_unknown_model_raises(self):
        model = build_model("six_cnn", 10, rng=np.random.default_rng(0))
        with pytest.raises(KeyError):
            ModelCostModel(model, "vgg16")


class TestNetwork:
    def test_transfer_time(self):
        network = NetworkModel(bandwidth_bytes_per_second=1 * MB,
                               round_latency_seconds=0.0)
        assert network.transfer_seconds(5 * MB) == pytest.approx(5.0)

    def test_latency_added(self):
        network = NetworkModel(1 * MB, round_latency_seconds=0.5)
        assert network.transfer_seconds(0) == pytest.approx(0.5)

    def test_negative_bytes_raise(self):
        with pytest.raises(ValueError):
            NetworkModel().transfer_seconds(-1)

    def test_invalid_bandwidth_rejected(self):
        with pytest.raises(ValueError):
            NetworkModel(bandwidth_bytes_per_second=0)

    def test_fig6_sweep_range(self):
        assert FIG6_BANDWIDTHS[0] == 50_000
        assert FIG6_BANDWIDTHS[-1] == 10_000_000
        assert len(FIG6_BANDWIDTHS) == 8

    def test_format_bandwidth(self):
        assert format_bandwidth(50_000) == "50 KB/s"
        assert format_bandwidth(1_000_000) == "1 MB/s"
        assert format_bandwidth(2_500_000) == "2.5 MB/s"


class TestProfiler:
    def test_conv_flops_analytic(self):
        """Profiler count must match 2 * N * Cout * OH * OW * Cin * kh * kw."""
        from repro import nn
        from repro.nn import functional as F
        from repro.nn.profiler import OpProfiler

        x = nn.Tensor(np.zeros((2, 3, 8, 8), dtype=np.float32))
        w = nn.Tensor(np.zeros((5, 3, 3, 3), dtype=np.float32))
        with OpProfiler() as profiler:
            F.conv2d(x, w, padding=1)
        expected = 2 * 2 * 5 * 8 * 8 * 3 * 3 * 3
        assert profiler.flops == expected

    def test_matmul_flops(self):
        from repro import nn
        from repro.nn.profiler import OpProfiler

        a = nn.Tensor(np.zeros((4, 6), dtype=np.float32))
        b = nn.Tensor(np.zeros((6, 3), dtype=np.float32))
        with OpProfiler() as profiler:
            a @ b
        assert profiler.flops == 2 * 4 * 6 * 3

    def test_profile_forward_per_sample(self):
        from repro.nn.profiler import profile_forward

        model = build_model("six_cnn", 10, rng=np.random.default_rng(0), width=8)
        flops, act = profile_forward(model, model.input_shape, batch=2)
        assert flops > 1e5
        assert act > 0

    def test_no_profiling_overhead_when_inactive(self):
        from repro.nn.profiler import is_profiling

        assert not is_profiling()
