"""Detailed FedWEIT behaviour tests (sparsification, attention, accounting)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import build_benchmark, cifar100_like
from repro.federated import (
    FedWeitClient,
    FedWeitServer,
    TrainConfig,
    sparse_adaptive_bytes,
)
from repro.federated.fedweit import SPARSE_THRESHOLD, sparse_adaptive_state
from repro.models import build_model
from repro.utils.serialization import encode_state, encoded_num_bytes


@pytest.fixture
def setting():
    spec = cifar100_like(train_per_class=10, test_per_class=4).with_tasks(3)
    bench = build_benchmark(spec, num_clients=2, rng=np.random.default_rng(0))
    config = TrainConfig(batch_size=8, lr=0.02, rounds_per_task=1,
                         iterations_per_round=4)

    def factory():
        return build_model(
            spec.model_name, spec.num_classes, input_shape=spec.input_shape,
            rng=np.random.default_rng(5), width=8,
        )

    return spec, bench, config, factory


def make_client(setting, client_index=0, server=None, **kwargs):
    spec, bench, config, factory = setting
    server = server or FedWeitServer()
    return FedWeitClient(
        client_index, bench.clients[client_index], factory(), config,
        server=server, rng=np.random.default_rng(client_index), **kwargs
    )


class TestSparsification:
    def test_adaptive_density_enforced(self, setting):
        client = make_client(setting, adaptive_density=0.10)
        client.begin_task(0)
        client.local_train(4)
        adaptive = client._current_adaptive()
        total = sum(a.size for a in adaptive.values())
        nonzero = sum(int((a != 0).sum()) for a in adaptive.values())
        assert nonzero <= 0.12 * total  # 10 % + quantile ties slack

    def test_density_one_keeps_dense(self, setting):
        client = make_client(setting, adaptive_density=1.0)
        client.begin_task(0)
        client.local_train(4)
        adaptive = client._current_adaptive()
        nonzero = sum(int((a != 0).sum()) for a in adaptive.values())
        assert nonzero > 0.5 * sum(a.size for a in adaptive.values())

    def test_invalid_density_rejected(self, setting):
        with pytest.raises(ValueError):
            make_client(setting, adaptive_density=0.0)

    def test_sparse_bytes_are_exact_encoded_size(self):
        adaptive = {"w": np.array([0.0, 0.5, -2.0, 1e-6])}
        sparse = sparse_adaptive_state(adaptive)
        assert sparse["w"].nnz == 2  # two entries above threshold
        assert sparse_adaptive_bytes(adaptive) == len(encode_state(sparse))

    def test_bytes_grow_with_nonzeros(self):
        few = {"w": np.array([0.0, 0.5, -2.0, 1e-6])}
        many = {"w": np.array([0.5, 0.5, -2.0, 1.0])}
        # 8 bytes per extra nonzero: int32 position + float32 value
        assert sparse_adaptive_bytes(many) == sparse_adaptive_bytes(few) + 2 * 8

    def test_threshold_excludes_tiny_values(self):
        adaptive = {"w": np.full(100, SPARSE_THRESHOLD / 10)}
        empty = {"w": np.zeros(100)}
        assert sparse_adaptive_bytes(adaptive) == sparse_adaptive_bytes(empty)
        assert sparse_adaptive_state(adaptive)["w"].nnz == 0


class TestAttention:
    def test_no_foreign_without_peers(self, setting):
        client = make_client(setting)
        client.begin_task(0)
        assert client.foreign == []
        assert client.attention.size == 0

    def test_attention_initialised_per_foreign(self, setting):
        server = FedWeitServer()
        a = make_client(setting, 0, server)
        b = make_client(setting, 1, server)
        for client in (a, b):
            client.begin_task(0)
            client.local_train(2)
            client.end_task()
        a.begin_task(1)
        assert len(a.foreign) == 1
        assert a.attention.shape == (1,)
        assert np.isfinite(a.attention).all()

    def test_attention_bounded_after_training(self, setting):
        server = FedWeitServer()
        a = make_client(setting, 0, server)
        b = make_client(setting, 1, server)
        for client in (a, b):
            client.begin_task(0)
            client.local_train(2)
            client.end_task()
        a.begin_task(1)
        a.local_train(4)
        assert (np.abs(a.attention) <= 1.0).all()

    def test_use_foreign_false_skips_downloads(self, setting):
        server = FedWeitServer()
        b = make_client(setting, 1, server)
        b.begin_task(0)
        b.local_train(2)
        b.end_task()
        a = make_client(setting, 0, server, use_foreign=False)
        a.begin_task(0)
        assert a.foreign == []
        # no foreign adaptives => no side-channel download bytes
        assert a.extra_download_bytes() == 0


class TestCommunicationAccounting:
    def test_foreign_bytes_charged_once_per_task(self, setting):
        server = FedWeitServer()
        a = make_client(setting, 0, server)
        b = make_client(setting, 1, server)
        for client in (a, b):
            client.begin_task(0)
            client.local_train(2)
            client.end_task()
        a.begin_task(1)
        first = a.extra_download_bytes()
        second = a.extra_download_bytes()
        assert first > 0  # the other client's adaptive came down
        assert second == 0  # foreign payload charged only once

    def test_registry_grows_with_tasks(self, setting):
        server = FedWeitServer()
        client = make_client(setting, 0, server)
        sizes = []
        for position in range(3):
            client.begin_task(position)
            client.local_train(2)
            client.end_task()
            sizes.append(server.registry_bytes())
        assert sizes[2] >= sizes[1] >= sizes[0]
        assert len(server.adaptive_registry[0]) == 3
