"""Tests for servers, method clients, and the simulation trainer."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.client import FedKnowClient
from repro.core.config import FedKnowConfig
from repro.data import cifar100_like, build_benchmark
from repro.edge import (
    DeviceProfile,
    EdgeCluster,
    ModelCostModel,
    jetson_cluster,
)
from repro.federated import (
    ALL_METHODS,
    APFLClient,
    FedAvgServer,
    FedRepClient,
    FedWeitClient,
    FedWeitServer,
    FLCNServer,
    SGDClient,
    TrainConfig,
    create_trainer,
)
from repro.models import build_model


@pytest.fixture
def config():
    return TrainConfig(batch_size=8, lr=0.02, rounds_per_task=1,
                       iterations_per_round=3)


def model_factory(spec):
    def factory():
        return build_model(
            spec.model_name, spec.num_classes, input_shape=spec.input_shape,
            rng=np.random.default_rng(5), width=8,
        )

    return factory


class TestFedAvgServer:
    def test_weighted_mean(self):
        server = FedAvgServer()
        states = [{"w": np.array([0.0])}, {"w": np.array([3.0])}]
        out = server.aggregate(states, weights=[1, 2])
        assert out["w"][0] == pytest.approx(2.0)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            FedAvgServer().aggregate([], [])

    def test_mismatched_weights_raise(self):
        with pytest.raises(ValueError):
            FedAvgServer().aggregate([{"w": np.zeros(1)}], [1, 2])

    def test_inconsistent_keys_raise(self):
        with pytest.raises(ValueError):
            FedAvgServer().aggregate(
                [{"a": np.zeros(1)}, {"b": np.zeros(1)}], [1, 1]
            )

    def test_zero_weight_sum_raises(self):
        with pytest.raises(ValueError):
            FedAvgServer().aggregate([{"w": np.zeros(1)}], [0])

    def test_round_counter(self):
        server = FedAvgServer()
        server.aggregate([{"w": np.zeros(1)}], [1])
        server.aggregate([{"w": np.zeros(1)}], [1])
        assert server.round_index == 2

    def test_integer_buffers_not_truncated(self):
        """Regression: float->int casting truncated averaged BN counters."""
        server = FedAvgServer()
        states = [
            {"w": np.array([1.0], np.float32),
             "bn.num_batches_tracked": np.array(9, dtype=np.int64)},
            {"w": np.array([3.0], np.float32),
             "bn.num_batches_tracked": np.array(10, dtype=np.int64)},
        ]
        out = server.aggregate(states, weights=[1, 1])
        assert out["w"][0] == pytest.approx(2.0)
        # integer keys keep the first client's value, not int(mean) = 9 by cast
        assert out["bn.num_batches_tracked"] == 9
        assert out["bn.num_batches_tracked"].dtype == np.int64

    def test_streaming_matches_stacked_mean(self, rng):
        """The running-sum accumulator reproduces the weighted mean exactly."""
        server = FedAvgServer()
        states = [
            {"w": rng.normal(size=(4, 3)).astype(np.float32)} for _ in range(7)
        ]
        weights = rng.integers(1, 20, size=7).tolist()
        out = server.aggregate(states, weights)
        coeffs = np.asarray(weights, np.float64) / sum(weights)
        expected = np.tensordot(
            coeffs, np.stack([s["w"].astype(np.float64) for s in states]), axes=1
        ).astype(np.float32)
        assert np.array_equal(out["w"], expected)

    def test_sparse_uploads_match_dense(self, rng):
        """Sparse-delta and encoded-bytes uploads aggregate like dense ones."""
        from repro.utils.serialization import encode_state, sparse_delta_state

        base = {"w": rng.normal(size=(6, 4)).astype(np.float32),
                "steps": np.array(4, dtype=np.int64)}
        dense_server = FedAvgServer()
        sparse_server = FedAvgServer()
        for server in (dense_server, sparse_server):
            server.aggregate([base], [1])  # establish the global state
        clients = []
        for _ in range(3):
            state = {"w": base["w"].copy(), "steps": base["steps"].copy()}
            state["w"][rng.integers(6), rng.integers(4)] += rng.normal()
            clients.append(state)
        dense_out = dense_server.aggregate(clients, [2, 1, 1])
        uploads = [
            clients[0],  # plain mapping
            sparse_delta_state(clients[1], base, ratio=0.10),  # sparse records
            encode_state(sparse_delta_state(clients[2], base, ratio=0.10)),
        ]
        sparse_out = sparse_server.aggregate(uploads, [2, 1, 1])
        assert set(dense_out) == set(sparse_out)
        # delta extraction rounds once in float32, so allow 1-ulp slack
        assert np.allclose(dense_out["w"], sparse_out["w"], atol=1e-6)
        assert dense_out["steps"] == sparse_out["steps"]

    def test_sparse_upload_shape_mismatch_raises(self):
        from repro.utils.serialization import SparseTensor

        server = FedAvgServer()
        server.aggregate([{"w": np.zeros((2, 2), np.float32)}], [1])
        bad = {"w": SparseTensor(np.zeros(1, np.int32),
                                 np.ones(1, np.float32), (3,))}
        with pytest.raises(ValueError):
            server.aggregate([bad], [1])


class TestFLCNServer:
    def test_buffer_accumulates_and_bounds(self, tiny_spec, rng):
        model = model_factory(tiny_spec)()
        server = FLCNServer(model, max_buffer=20, rng=rng)
        mask = np.zeros(tiny_spec.num_classes, dtype=bool)
        mask[:3] = True
        for _ in range(5):
            server.receive_samples(
                np.zeros((8, *tiny_spec.input_shape), dtype=np.float32),
                np.zeros(8, dtype=np.int64),
                mask,
            )
        assert server.buffer_size <= server.max_buffer

    def test_oversize_contribution_truncated(self, tiny_spec, rng):
        """Regression: one contribution above the cap stuck permanently."""
        model = model_factory(tiny_spec)()
        server = FLCNServer(model, max_buffer=20, rng=rng)
        mask = np.zeros(tiny_spec.num_classes, dtype=bool)
        mask[:3] = True
        server.receive_samples(
            np.zeros((64, *tiny_spec.input_shape), dtype=np.float32),
            np.zeros(64, dtype=np.int64),
            mask,
        )
        assert server.buffer_size == 20
        # a later small contribution evicts the truncated chunk as usual
        server.receive_samples(
            np.zeros((8, *tiny_spec.input_shape), dtype=np.float32),
            np.zeros(8, dtype=np.int64),
            mask,
        )
        assert server.buffer_size <= 20

    def test_aggregate_finetunes_on_buffer(self, tiny_benchmark, rng):
        spec = tiny_benchmark.spec
        model = model_factory(spec)()
        server = FLCNServer(model, finetune_steps=2, rng=rng)
        task = tiny_benchmark.clients[0].tasks[0]
        server.receive_samples(task.train_x, task.train_y, task.class_mask())
        state = model.state_dict()
        out = server.aggregate([state], [1])
        # fine-tuning must have changed the weights
        changed = any(
            not np.allclose(out[k], state[k]) for k in state
        )
        assert changed


class TestSGDClientLifecycle:
    def test_begin_task_bounds(self, tiny_benchmark, tiny_model, config):
        client = SGDClient(0, tiny_benchmark.clients[0], tiny_model, config)
        with pytest.raises(IndexError):
            client.begin_task(99)

    def test_train_before_begin_raises(self, tiny_benchmark, tiny_model, config):
        client = SGDClient(0, tiny_benchmark.clients[0], tiny_model, config)
        with pytest.raises(RuntimeError):
            client.local_train(1)

    def test_training_reduces_loss(self, tiny_benchmark, tiny_model, config):
        client = SGDClient(0, tiny_benchmark.clients[0], tiny_model, config)
        client.begin_task(0)
        first = client.local_train(8)
        second = client.local_train(8)
        assert second["mean_loss"] < first["mean_loss"] * 1.2

    def test_compute_units_tracked(self, tiny_benchmark, tiny_model, config):
        client = SGDClient(0, tiny_benchmark.clients[0], tiny_model, config)
        client.begin_task(0)
        client.local_train(5)
        assert client.take_compute_units() == 5.0
        assert client.take_compute_units() == 0.0

    def test_evaluate_lengths(self, tiny_benchmark, tiny_model, config):
        client = SGDClient(0, tiny_benchmark.clients[0], tiny_model, config)
        client.begin_task(1)
        accs = client.evaluate()
        assert len(accs) == 2
        assert all(0.0 <= a <= 1.0 for a in accs)

    def test_lr_schedule_decays(self, tiny_benchmark, tiny_model, config):
        client = SGDClient(0, tiny_benchmark.clients[0], tiny_model, config)
        client.begin_task(0)
        client.local_train(3)
        assert client.optimizer.lr < config.lr


class TestAPFL:
    def test_alpha_adapts_within_bounds(self, tiny_benchmark, config):
        spec = tiny_benchmark.spec
        factory = model_factory(spec)
        client = APFLClient(
            0, tiny_benchmark.clients[0], factory(), config,
            model_factory=factory, rng=np.random.default_rng(0),
        )
        client.begin_task(0)
        client.local_train(4)
        assert 0.05 <= client.alpha <= 0.95

    def test_personal_model_diverges_from_shared(self, tiny_benchmark, config):
        spec = tiny_benchmark.spec
        factory = model_factory(spec)
        client = APFLClient(
            0, tiny_benchmark.clients[0], factory(), config,
            model_factory=factory, rng=np.random.default_rng(0),
        )
        client.begin_task(0)
        client.local_train(4)
        shared = client.model.state_dict()
        personal = client.personal.state_dict()
        assert any(not np.allclose(shared[k], personal[k]) for k in shared)

    def test_evaluate_uses_mixture(self, tiny_benchmark, config):
        spec = tiny_benchmark.spec
        factory = model_factory(spec)
        client = APFLClient(
            0, tiny_benchmark.clients[0], factory(), config,
            model_factory=factory, rng=np.random.default_rng(0),
        )
        client.begin_task(0)
        client.local_train(2)
        accs = client.evaluate()
        assert len(accs) == 1


class TestFedRep:
    def test_upload_excludes_head(self, tiny_benchmark, config):
        spec = tiny_benchmark.spec
        client = FedRepClient(
            0, tiny_benchmark.clients[0], model_factory(spec)(), config,
            rng=np.random.default_rng(0),
        )
        uploaded = client.upload_state()
        assert not any(k.startswith("classifier") for k in uploaded)
        assert uploaded  # body keys present

    def test_receive_preserves_personal_head(self, tiny_benchmark, config):
        spec = tiny_benchmark.spec
        client = FedRepClient(
            0, tiny_benchmark.clients[0], model_factory(spec)(), config,
            rng=np.random.default_rng(0),
        )
        head_before = client.model.classifier.weight.data.copy()
        global_state = {
            k: v + 1.0 for k, v in client.upload_state().items()
        }
        client.receive_global(global_state, 0)
        assert np.allclose(client.model.classifier.weight.data, head_before)
        assert not np.allclose(
            client.model.features[0].weight.data,
            global_state[
                [k for k in global_state if k.startswith("features.0")][0]
            ] - 1.0,
        )

    def test_invalid_head_fraction(self, tiny_benchmark, config):
        spec = tiny_benchmark.spec
        with pytest.raises(ValueError):
            FedRepClient(
                0, tiny_benchmark.clients[0], model_factory(spec)(), config,
                head_fraction=0.0,
            )


class TestFedWeit:
    @pytest.fixture
    def weit(self, tiny_benchmark, config):
        spec = tiny_benchmark.spec
        server = FedWeitServer()
        clients = [
            FedWeitClient(
                i, tiny_benchmark.clients[i], model_factory(spec)(), config,
                server=server, rng=np.random.default_rng(i),
            )
            for i in range(2)
        ]
        return server, clients

    def test_adaptive_created_per_task(self, weit):
        server, clients = weit
        client = clients[0]
        client.begin_task(0)
        assert len(client.adaptives) == 1
        client.local_train(2)
        client.end_task()
        client.begin_task(1)
        assert len(client.adaptives) == 2

    def test_server_registry_grows(self, weit):
        server, clients = weit
        for client in clients:
            client.begin_task(0)
            client.local_train(2)
            client.end_task()
        assert len(server.adaptive_registry) == 2
        assert server.registry_bytes() >= 0

    def test_foreign_adaptives_downloaded_on_new_task(self, weit):
        server, clients = weit
        for client in clients:
            client.begin_task(0)
            client.local_train(2)
            client.end_task()
        clients[0].begin_task(1)
        assert len(clients[0].foreign) == 1  # the other client's adaptive

    def test_upload_bytes_exceed_plain_model(self, weit, tiny_benchmark, config):
        """The adaptive side-channel rides on top of the base payload."""
        server, clients = weit
        client = clients[0]
        client.begin_task(0)
        client.local_train(3)
        from repro.federated import create_transport
        from repro.utils.serialization import state_num_bytes

        channel = create_transport("v1:dense").channel_for(client.client_id)
        payload = client.prepare_upload(channel)
        base_only = state_num_bytes(client.upload_state())
        total = payload.num_bytes + client.extra_upload_bytes()
        assert total >= base_only
        assert client.extra_upload_bytes() >= 0

    def test_per_task_evaluation_restores_composition(self, weit):
        server, clients = weit
        client = clients[0]
        client.begin_task(0)
        client.local_train(2)
        client.end_task()
        client.begin_task(1)
        client.local_train(2)
        accs = client.evaluate()
        assert len(accs) == 2

    def test_state_bytes_grow_with_tasks(self, weit):
        server, clients = weit
        client = clients[0]
        client.begin_task(0)
        client.local_train(3)
        client.end_task()
        first = client.extra_state_bytes()["model"]
        client.begin_task(1)
        client.local_train(3)
        client.end_task()
        assert client.extra_state_bytes()["model"] >= first


class TestFedKnowClient:
    @pytest.fixture
    def fedknow(self, tiny_benchmark, config):
        spec = tiny_benchmark.spec
        factory = model_factory(spec)
        return FedKnowClient(
            0, tiny_benchmark.clients[0], factory(), config,
            model_factory=factory,
            fedknow=FedKnowConfig(
                knowledge_ratio=0.2, num_signature_gradients=2,
                extraction_finetune_iterations=0,
                aggregation_finetune_batches=2,
            ),
            rng=np.random.default_rng(0),
        )

    def test_knowledge_stored_per_task(self, fedknow):
        for position in range(2):
            fedknow.begin_task(position)
            fedknow.local_train(3)
            fedknow.end_task()
        assert len(fedknow.store) == 2
        assert fedknow.extra_state_bytes()["model"] > 0

    def test_integration_engages_on_second_task(self, fedknow):
        fedknow.begin_task(0)
        fedknow.local_train(3)
        fedknow.end_task()
        fedknow.begin_task(1)
        fedknow.local_train(4)
        assert fedknow.integration_stats["integrations"] > 0

    def test_receive_global_finetunes(self, fedknow):
        fedknow.begin_task(0)
        fedknow.local_train(3)
        state = {k: v * 0.5 for k, v in fedknow.model.state_dict().items()}
        before = fedknow.model.state_dict()
        fedknow.receive_global(state, 0)
        after = fedknow.model.state_dict()
        # fine-tuning moved the model off the plain aggregated state
        assert any(not np.allclose(after[k], state[k]) for k in state)

    def test_receive_global_plain_when_disabled(self, tiny_benchmark, config):
        spec = tiny_benchmark.spec
        factory = model_factory(spec)
        client = FedKnowClient(
            0, tiny_benchmark.clients[0], factory(), config,
            model_factory=factory,
            fedknow=FedKnowConfig(aggregation_integration=False),
            rng=np.random.default_rng(0),
        )
        client.begin_task(0)
        client.local_train(2)
        state = {k: v * 0.5 for k, v in client.model.state_dict().items()}
        client.receive_global(state, 0)
        after = client.model.state_dict()
        assert all(np.allclose(after[k], state[k]) for k in state)


class TestTrainerAndRegistry:
    def test_all_methods_constructible(self, tiny_spec, config):
        bench = build_benchmark(
            tiny_spec, num_clients=2, rng=np.random.default_rng(0)
        )
        for method in ALL_METHODS:
            trainer = create_trainer(method, bench, config, with_cost_model=False)
            assert trainer.method_name == method

    def test_unknown_method_raises(self, tiny_spec, config):
        bench = build_benchmark(
            tiny_spec, num_clients=2, rng=np.random.default_rng(0)
        )
        with pytest.raises(KeyError):
            create_trainer("fedprox", bench, config)

    def test_run_produces_complete_result(self, tiny_spec, config):
        bench = build_benchmark(
            tiny_spec, num_clients=2, rng=np.random.default_rng(0)
        )
        trainer = create_trainer(
            "fedavg", bench, config, cluster=jetson_cluster()
        )
        result = trainer.run()
        assert result.accuracy_matrix.shape == (2, 2)
        assert len(result.rounds) == 2  # 2 tasks x 1 round
        assert result.total_comm_bytes > 0
        assert result.sim_total_seconds > 0
        assert not np.isnan(result.accuracy_matrix[1, 0])

    def test_identical_initial_weights_across_methods(self, tiny_spec, config):
        bench = build_benchmark(
            tiny_spec, num_clients=2, rng=np.random.default_rng(0)
        )
        a = create_trainer("fedavg", bench, config, with_cost_model=False)
        b = create_trainer("gem", bench, config, with_cost_model=False)
        state_a = a.clients[0].model.state_dict()
        state_b = b.clients[0].model.state_dict()
        assert all(np.array_equal(state_a[k], state_b[k]) for k in state_a)

    def test_oom_client_drops_out(self, tiny_spec, config):
        """A device whose memory cannot hold the method state must drop out."""
        bench = build_benchmark(
            tiny_spec, num_clients=2, rng=np.random.default_rng(0)
        )
        tiny_device = DeviceProfile("toy", 1e9, memory_bytes=1)
        big_device = DeviceProfile("big", 1e12, memory_bytes=10**12)
        cluster = EdgeCluster([tiny_device, big_device])
        trainer = create_trainer("fedavg", bench, config, cluster=cluster)
        result = trainer.run()
        assert all(r.active_clients == 1 for r in result.rounds)

    def test_all_oom_raises(self, tiny_spec, config):
        bench = build_benchmark(
            tiny_spec, num_clients=2, rng=np.random.default_rng(0)
        )
        tiny_device = DeviceProfile("toy", 1e9, memory_bytes=1)
        cluster = EdgeCluster([tiny_device])
        trainer = create_trainer("fedavg", bench, config, cluster=cluster)
        with pytest.raises(RuntimeError):
            trainer.run()

    def test_flcn_reports_sample_upload(self, tiny_spec, config):
        bench = build_benchmark(
            tiny_spec, num_clients=2, rng=np.random.default_rng(0)
        )
        trainer = create_trainer("flcn", bench, config, with_cost_model=False)
        client = trainer.clients[0]
        client.begin_task(0)
        first = client.upload_sample_bytes()
        assert first > 0
        assert client.upload_sample_bytes() == 0  # only reported once
