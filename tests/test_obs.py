"""Tests for the telemetry subsystem: tracer, metrics, exporters, stitching.

The stitching suite is the subsystem's acceptance bar: spans produced in
worker processes (process-pool chunks and socket-engine phases) must ship
back with the phase results and land in the exported trace with resolvable
parents — ``train_client`` spans nest under the coordinator's ``round``
span whatever process trained the client, including rounds where a worker
died mid-phase.
"""

from __future__ import annotations

import json
import os

import numpy as np
import pytest

from repro.data import build_benchmark, cifar100_like
from repro.edge import jetson_cluster
from repro.federated import TrainConfig, create_trainer
from repro.federated.base import SGDClient
from repro.obs import (
    METRICS,
    MetricsRegistry,
    NullTracer,
    Telemetry,
    Tracer,
    chrome_trace,
    set_tracer,
)
from repro.obs import trace as trace_mod


@pytest.fixture
def spec():
    return cifar100_like(train_per_class=8, test_per_class=4).with_tasks(2)


@pytest.fixture
def config():
    return TrainConfig(batch_size=8, lr=0.02, rounds_per_task=2,
                       iterations_per_round=3)


# ----------------------------------------------------------------------
# tracer
# ----------------------------------------------------------------------
class TestTracer:
    def test_nesting_assigns_parents(self):
        tracer = Tracer(origin="t")
        with tracer.span("outer") as outer:
            with tracer.span("inner", depth=1):
                pass
        spans = tracer.export()
        by_name = {s["name"]: s for s in spans}
        assert by_name["inner"]["parent_id"] == outer.span_id
        assert by_name["outer"]["parent_id"] is None
        assert by_name["inner"]["attrs"]["depth"] == 1
        assert by_name["inner"]["start"] >= by_name["outer"]["start"]
        assert by_name["inner"]["end"] <= by_name["outer"]["end"]

    def test_span_ids_carry_origin(self):
        tracer = Tracer(origin="w7")
        with tracer.span("a"):
            pass
        (span,) = tracer.export()
        assert span["span_id"].startswith("w7-")

    def test_null_tracer_is_inert(self):
        null = NullTracer()
        assert not null.enabled
        with null.span("anything", x=1) as span:
            span.attrs["y"] = 2  # throwaway dict: must not accumulate
        assert null.current_context() is None
        with null.span("more") as again:
            assert "y" not in again.attrs

    def test_set_tracer_restores_previous(self):
        previous = trace_mod.TRACER
        tracer = Tracer(origin="x")
        assert set_tracer(tracer) is previous
        try:
            assert trace_mod.TRACER is tracer
        finally:
            set_tracer(previous)
        assert trace_mod.TRACER is previous

    def test_adopt_stitches_across_tracers(self):
        parent = Tracer(origin="main")
        with parent.span("round") as round_span:
            ctx = parent.current_context()
        worker = Tracer(origin="w1", process="worker-1")
        worker.adopt(tuple(ctx))  # context pickles as a plain tuple
        with worker.span("train_client"):
            pass
        parent.absorb(worker.drain())
        spans = parent.export()
        ids = {s["span_id"] for s in spans}
        train = next(s for s in spans if s["name"] == "train_client")
        assert train["parent_id"] == round_span.span_id
        assert train["parent_id"] in ids
        assert train["trace_id"] == parent.trace_id
        assert train["process"] == "worker-1"

    def test_drain_clears_but_ids_keep_advancing(self):
        tracer = Tracer(origin="w")
        with tracer.span("a"):
            pass
        first = tracer.drain()
        with tracer.span("b"):
            pass
        second = tracer.drain()
        assert tracer.export() == []
        assert first[0]["span_id"] != second[0]["span_id"]


# ----------------------------------------------------------------------
# metrics registry
# ----------------------------------------------------------------------
class TestMetricsRegistry:
    def test_handles_survive_drain(self):
        registry = MetricsRegistry()
        counter = registry.counter("a.b")
        counter.inc(3)
        snap = registry.drain()
        assert snap["counters"]["a.b"] == 3
        counter.inc(2)  # the pre-drain handle still feeds the registry
        assert registry.value("a.b") == 2

    def test_merge_adds_counters_and_histograms(self):
        source, target = MetricsRegistry(), MetricsRegistry()
        source.counter("n").inc(4)
        source.histogram("h").observe(0.5)
        source.gauge("g").set(7)
        target.counter("n").inc(1)
        target.merge(source.drain())
        assert target.value("n") == 5
        assert target.snapshot()["histograms"]["h"]["count"] == 1
        assert target.snapshot()["gauges"]["g"] == 7

    def test_warn_bumps_counter_and_retains_fields(self):
        registry = MetricsRegistry()
        registry.warn("w.x", "three things went sideways", amount=3, things=3)
        assert registry.value("w.x") == 3
        (warning,) = registry.warnings
        assert warning["counter"] == "w.x"
        assert warning["things"] == 3

    def test_warnings_are_bounded(self):
        registry = MetricsRegistry()
        for index in range(registry.MAX_WARNINGS + 10):
            registry.warn("w", f"event {index}")
        assert len(registry.warnings) == registry.MAX_WARNINGS
        assert registry.warnings[-1]["message"] == (
            f"event {registry.MAX_WARNINGS + 9}"
        )

    def test_prometheus_text_shape(self):
        registry = MetricsRegistry()
        registry.counter("rpc.bytes_sent").inc(12)
        registry.histogram("lat").observe(0.1)
        text = registry.prometheus_text()
        assert "# TYPE repro_rpc_bytes_sent counter" in text
        assert "repro_rpc_bytes_sent 12" in text
        assert 'repro_lat_bucket{le="+Inf"} 1' in text
        assert "repro_lat_count 1" in text


# ----------------------------------------------------------------------
# exporters / telemetry session
# ----------------------------------------------------------------------
class TestExport:
    def test_chrome_trace_events(self):
        tracer = Tracer(origin="t", process="main")
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        trace = chrome_trace(tracer.export())
        events = trace["traceEvents"]
        meta = [e for e in events if e["ph"] == "M"]
        complete = [e for e in events if e["ph"] == "X"]
        assert meta[0]["args"]["name"] == "main"
        assert {e["name"] for e in complete} == {"outer", "inner"}
        inner = next(e for e in complete if e["name"] == "inner")
        outer = next(e for e in complete if e["name"] == "outer")
        assert inner["args"]["parent_id"] == outer["args"]["span_id"]
        assert inner["dur"] <= outer["dur"]

    def test_session_writes_all_exports(self, tmp_path):
        with Telemetry(tmp_path / "out") as session:
            METRICS.counter("test.obs_session").inc(5)
            with trace_mod.TRACER.span("unit"):
                pass
            paths = session.flush()
        for name in ("spans", "trace", "metrics_prom", "metrics_json"):
            assert paths[name].exists(), name
        spans = [json.loads(line)
                 for line in paths["spans"].read_text().splitlines()]
        assert [s["name"] for s in spans] == ["unit"]
        snapshot = json.loads(paths["metrics_json"].read_text())
        # session-relative: exactly what this test added, not process totals
        assert snapshot["counters"]["test.obs_session"] == 5
        assert trace_mod.TRACER.enabled is False

    def test_session_restores_tracer_on_close(self):
        before = trace_mod.TRACER
        session = Telemetry()
        assert trace_mod.TRACER is session.tracer
        session.close()
        assert trace_mod.TRACER is before


# ----------------------------------------------------------------------
# cross-process stitching
# ----------------------------------------------------------------------
def run_traced(spec, config, engine, method="fedavg", poison_client=None):
    """One trainer run under an enabled telemetry session; returns
    (exported spans, session metrics snapshot, run result)."""
    bench = build_benchmark(spec, num_clients=3, rng=np.random.default_rng(0))
    with Telemetry() as session:
        trainer = create_trainer(
            method, bench, config, cluster=jetson_cluster(), engine=engine,
        )
        if poison_client is not None:
            trainer.clients[poison_client].__class__ = _DyingClient
        try:
            result = trainer.run()
        finally:
            trainer.close()
        return session.spans(), session.metrics_snapshot(), result


def assert_worker_spans_stitch(spans):
    """Every worker-side span must resolve to a parent in the export, and
    every worker-side train_client span must nest under a round span."""
    ids = {s["span_id"] for s in spans}
    rounds = {s["span_id"] for s in spans if s["name"] == "round"}
    worker_spans = [s for s in spans if s["process"] != "main"]
    assert worker_spans, "no spans came back from the workers"
    for span in worker_spans:
        assert span["parent_id"] in ids, (span["name"], span["parent_id"])
    trained = [s for s in worker_spans if s["name"] == "train_client"]
    assert trained, "no worker-side train_client spans"
    for span in trained:
        assert span["parent_id"] in rounds


class TestProcessEngineStitching:
    def test_worker_spans_have_resolvable_parents(self, spec, config):
        spans, metrics, _ = run_traced(spec, config, "process:2")
        assert_worker_spans_stitch(spans)
        # worker-side counters merged back with the phase results
        assert metrics["counters"]["round.clients_reported"] > 0


class TestSocketEngineStitching:
    def test_worker_spans_have_resolvable_parents(self, spec, config):
        spans, metrics, _ = run_traced(spec, config, "socket:2")
        assert_worker_spans_stitch(spans)
        assert metrics["counters"]["rpc.bytes_sent"] > 0
        assert metrics["counters"]["rpc.bytes_received"] > 0
        # rpc_frame spans exist on both sides of the socket
        frame_processes = {
            s["process"] for s in spans if s["name"] == "rpc_frame"
        }
        assert "main" in frame_processes
        assert any(p != "main" for p in frame_processes)

    def test_worker_death_keeps_trace_consistent(self, spec, config,
                                                 tmp_path):
        token = tmp_path / "poison.token"
        token.write_text("armed")
        _DyingClient.token_path = str(token)
        try:
            spans, metrics, result = run_traced(
                spec, config, "socket:2", poison_client=0
            )
        finally:
            _DyingClient.token_path = None
        assert sum(r.lost for r in result.rounds) > 0
        # surviving workers' spans still stitch; nothing dangles from the
        # worker that died mid-phase
        assert_worker_spans_stitch(spans)
        assert metrics["counters"]["serve.workers_lost"] >= 1
        warning = next(
            w for w in metrics["warnings"]
            if w["counter"] == "serve.workers_lost"
        )
        assert "lost mid-round" in warning["message"]


class _DyingClient(SGDClient):
    """Hard-exits the worker process once, the first time it trains while
    the one-shot poison token file exists."""

    token_path: str | None = None

    def local_train(self, iterations):
        path = type(self).token_path
        if path is not None and os.path.exists(path):
            try:
                os.unlink(path)
            finally:
                os._exit(1)
        return super().local_train(iterations)


# ----------------------------------------------------------------------
# per-op replay profiles
# ----------------------------------------------------------------------
class TestTapeReplayProfiles:
    def test_tape_replay_spans_carry_op_timings(self, spec, config):
        spans, metrics, _ = run_traced(spec, config, "batched:2")
        replays = [s for s in spans if s["name"] == "tape_replay"]
        assert replays, "batched engine produced no tape_replay spans"
        assert metrics["counters"]["tape.replays"] >= len(replays)
        graded = [s for s in replays if s["attrs"]["kind"] == "batched"]
        assert graded
        ops = graded[0]["attrs"]["ops"]
        assert ops, "replay span carried no per-op timings"
        for name, stats in ops.items():
            assert stats["calls"] >= 1
            assert stats["seconds"] >= 0.0
        assert any(name.startswith("bwd.") for name in ops)
