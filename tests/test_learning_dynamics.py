"""Learning-dynamics sanity tests: each dataset spec is learnable and
exhibits the continual-learning phenomena the paper's evaluation rests on."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import build_benchmark, get_spec, iterate_batches
from repro.models import build_model
from repro.nn import SGD, Tensor
from repro.nn import functional as F


def train_single_task(
    spec_name: str, epochs: int = 10, width=8, lr: float = 0.02,
    momentum: float = 0.5,
):
    spec = get_spec(spec_name, train_per_class=16, test_per_class=6).with_tasks(1)
    bench = build_benchmark(spec, num_clients=1, rng=np.random.default_rng(0))
    task = bench.clients[0].tasks[0]
    model = build_model(
        spec.model_name, spec.num_classes, input_shape=spec.input_shape,
        rng=np.random.default_rng(1), width=width,
    )
    optimizer = SGD(model.parameters(), lr=lr, momentum=momentum)
    mask = task.class_mask()
    for epoch in range(epochs):
        for xb, yb in iterate_batches(task.train_x, task.train_y, 16,
                                      np.random.default_rng(epoch)):
            optimizer.zero_grad()
            F.cross_entropy(model(Tensor(xb)), yb, class_mask=mask).backward()
            optimizer.step()
    model.eval()
    accuracy = F.accuracy(model.logits(task.test_x), task.test_y, mask)
    chance = 1.0 / len(task.classes)
    return accuracy, chance


@pytest.mark.parametrize(
    "dataset", ["cifar100", "fc100", "core50", "svhn"]
)
def test_cnn_datasets_learnable(dataset):
    """A SixCNN must beat chance decisively on one task of each CNN dataset."""
    accuracy, chance = train_single_task(dataset)
    assert accuracy > chance + 0.25, (dataset, accuracy, chance)


@pytest.mark.parametrize("dataset", ["miniimagenet"])
def test_resnet_datasets_learnable(dataset):
    # ResNet-18 with BN prefers a larger bare-SGD step at this tiny scale
    accuracy, chance = train_single_task(dataset, epochs=12, lr=0.05,
                                         momentum=0.0)
    assert accuracy > chance + 0.15, (dataset, accuracy, chance)


def test_noise_ordering_matches_difficulty():
    """FC100 is configured harder (noisier) than CIFAR-100, as in the paper's
    benchmark roles; with equal budgets its accuracy should not exceed
    CIFAR-100's by a wide margin."""
    cifar_acc, _ = train_single_task("cifar100", epochs=6)
    fc_acc, _ = train_single_task("fc100", epochs=6)
    assert fc_acc <= cifar_acc + 0.15, (cifar_acc, fc_acc)


def test_class_masking_required_for_task_il():
    """Task-incremental evaluation depends on masking: unmasked accuracy over
    all 100 classes is far below masked accuracy over the task's classes."""
    spec = get_spec("cifar100", train_per_class=16, test_per_class=6).with_tasks(1)
    bench = build_benchmark(spec, num_clients=1, rng=np.random.default_rng(0))
    task = bench.clients[0].tasks[0]
    model = build_model(
        spec.model_name, spec.num_classes, input_shape=spec.input_shape,
        rng=np.random.default_rng(1), width=8,
    )
    optimizer = SGD(model.parameters(), lr=0.02, momentum=0.5)
    mask = task.class_mask()
    for epoch in range(6):
        for xb, yb in iterate_batches(task.train_x, task.train_y, 16,
                                      np.random.default_rng(epoch)):
            optimizer.zero_grad()
            F.cross_entropy(model(Tensor(xb)), yb, class_mask=mask).backward()
            optimizer.step()
    model.eval()
    logits = model.logits(task.test_x)
    masked = F.accuracy(logits, task.test_y, class_mask=mask)
    assert masked >= F.accuracy(logits, task.test_y) - 1e-9
