"""Tests for the experiment harness (presets, runner cache, figure reports)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import cifar100_like
from repro.experiments import (
    BENCH,
    PAPER,
    UNIT,
    clear_cache,
    comm_seconds_under_bandwidth,
    format_series,
    format_table,
    get_preset,
    improvement_curve,
    run_fig4_panel,
    run_fig5,
    run_fig6,
    run_fig8,
    run_fig_scenarios,
    run_single,
    run_table1,
)
from repro.experiments.search import grid_search
from repro.metrics import RunResult

FAST_METHODS = ("fedknow", "fedweit", "fedavg")


@pytest.fixture(autouse=True)
def fresh_cache():
    clear_cache()
    yield
    clear_cache()


class TestPresets:
    def test_known_presets(self):
        assert get_preset("unit") is UNIT
        assert get_preset("bench") is BENCH
        assert get_preset("paper") is PAPER
        with pytest.raises(KeyError):
            get_preset("huge")

    def test_apply_to_spec_scales(self):
        spec = UNIT.apply_to_spec(cifar100_like())
        assert spec.num_tasks == UNIT.num_tasks
        assert spec.train_per_class == UNIT.train_per_class

    def test_apply_does_not_grow_small_specs(self):
        from repro.data import svhn_like

        spec = BENCH.apply_to_spec(svhn_like())
        assert spec.num_tasks == 2  # svhn only has 2 tasks

    def test_train_config_roundtrip(self):
        config = BENCH.train_config()
        assert config.rounds_per_task == BENCH.rounds_per_task
        assert config.iterations_per_round == BENCH.iterations_per_round

    def test_paper_preset_matches_section_vb(self):
        assert PAPER.num_clients == 20
        assert PAPER.iterations_per_round == 25


class TestRunnerCache:
    def test_same_setting_is_memoised(self):
        spec = cifar100_like()
        first = run_single("fedavg", spec, UNIT)
        second = run_single("fedavg", spec, UNIT)
        assert first is second

    def test_different_method_not_shared(self):
        spec = cifar100_like()
        a = run_single("fedavg", spec, UNIT)
        b = run_single("fedrep", spec, UNIT)
        assert a is not b

    def test_cache_bypass(self):
        spec = cifar100_like()
        a = run_single("fedavg", spec, UNIT)
        b = run_single("fedavg", spec, UNIT, use_cache=False)
        assert a is not b

    def test_method_kwargs_key_differs(self):
        from repro.core.config import FedKnowConfig

        spec = cifar100_like()
        a = run_single(
            "fedknow", spec, UNIT,
            method_kwargs={"fedknow_config": FedKnowConfig(knowledge_ratio=0.05)},
        )
        b = run_single(
            "fedknow", spec, UNIT,
            method_kwargs={"fedknow_config": FedKnowConfig(knowledge_ratio=0.20)},
        )
        assert a is not b

    def test_result_is_complete(self):
        result = run_single("fedavg", cifar100_like(), UNIT)
        assert isinstance(result, RunResult)
        assert result.accuracy_matrix.shape == (UNIT.num_tasks, UNIT.num_tasks)
        assert result.total_comm_bytes > 0


class TestReports:
    def test_fig4_panel_report(self):
        report = run_fig4_panel("cifar100", methods=FAST_METHODS, preset=UNIT)
        assert set(report.results) == set(FAST_METHODS)
        text = str(report)
        assert "cifar100" in text
        for method in FAST_METHODS:
            assert method in text
        assert report.best_method() in FAST_METHODS

    def test_fig_scenarios_report(self):
        report = run_fig_scenarios(
            dataset="svhn", methods=("fedknow", "fedavg"), preset=UNIT,
            scenarios=("class-inc", "blurry:overlap=0.2"),
        )
        text = str(report)
        assert "class-inc_acc" in text
        assert "blurry_fgt" in text
        assert report.best_method("class-inc") in ("fedknow", "fedavg")
        assert report.results["fedavg"]["class-inc"].scenario == "class-inc"
        assert (
            report.results["fedavg"]["blurry:overlap=0.2"].scenario
            == "blurry:overlap=0.2"
        )

    def test_fig_scenarios_sweep_labels_disambiguated(self):
        report = run_fig_scenarios(
            dataset="svhn", methods=("fedavg",), preset=UNIT,
            scenarios=("blurry:overlap=0.2", "blurry:overlap=0.4"),
        )
        # same family twice: columns fall back to the full spec string
        assert report.labels() == {
            "blurry:overlap=0.2": "blurry:overlap=0.2",
            "blurry:overlap=0.4": "blurry:overlap=0.4",
        }
        text = str(report)
        assert "blurry:overlap=0.2_acc" in text
        assert "blurry:overlap=0.4_acc" in text

    def test_table1_improvement_math(self):
        fedknow = RunResult("fedknow", "d", 2, 2,
                            np.array([[0.8, np.nan], [0.6, 0.8]]))
        base = RunResult("fedavg", "d", 2, 2,
                         np.array([[0.4, np.nan], [0.3, 0.4]]))
        curve = improvement_curve(fedknow, [base])
        assert curve[0] == pytest.approx(100.0)  # 0.8 vs 0.4
        assert curve[1] == pytest.approx(100.0)  # 0.7 vs 0.35

    def test_table1_report_renders(self):
        report = run_table1(datasets=("cifar100",), preset=UNIT,
                            methods=FAST_METHODS)
        text = str(report)
        assert "Task1" in text
        assert "cifar100" in text
        assert "cifar100" in report.overall

    def test_fig5_fedknow_cheaper(self):
        report = run_fig5(datasets=("cifar100",), preset=UNIT)
        entry = report.volumes["cifar100"]
        assert entry["fedknow"] < entry["fedweit"]
        assert report.mean_saving_percent() > 0
        assert "saving" in str(report)

    def test_fig6_monotone_in_bandwidth(self):
        report = run_fig6(preset=UNIT, bandwidths=(100_000, 1_000_000))
        for model_label, methods in report.times.items():
            for method, hours in methods.items():
                assert hours[0] > hours[1]  # slower link -> more time
        assert "50" not in str(report) or True

    def test_comm_seconds_replay(self):
        result = run_single("fedavg", cifar100_like(), UNIT)
        slow = comm_seconds_under_bandwidth(result, 50_000)
        fast = comm_seconds_under_bandwidth(result, 10_000_000)
        assert slow > fast

    def test_fig8_report_counts(self):
        report = run_fig8(preset=UNIT, client_counts=(2, 3),
                          methods=("fedavg", "fedknow"))
        assert set(report.results) == {2, 3}
        assert "clients" in str(report)


class TestSearch:
    def test_grid_search_orders_results(self):
        result = grid_search(
            "fedavg", {"share": [1]}, preset=UNIT,
            method_kwargs_builder=lambda p: {},
        )
        assert len(result.entries) == 1
        params, acc = result.best
        assert 0.0 <= acc <= 1.0
        assert "best" in str(result)


class TestReporting:
    def test_format_table_alignment(self):
        text = format_table(["a", "bb"], [[1, 2.5], [10, 0.125]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert all("|" in line for line in (lines[0], lines[2], lines[3]))

    def test_format_table_title(self):
        text = format_table(["x"], [[1]], title="T")
        assert text.startswith("T\n")

    def test_format_series(self):
        text = format_series("label", [1, 2], [0.5, 0.25],
                             x_name="t", y_name="acc")
        assert "label" in text
        assert "t" in text and "acc" in text

    def test_float_formatting(self):
        from repro.experiments.reporting import _fmt

        assert _fmt(float("nan")) == "nan"
        assert _fmt(0.5) == "0.5"
        assert _fmt(1234.5) == "1.23e+03"
        assert _fmt(3) == "3"
