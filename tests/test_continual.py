"""Tests for the six continual-learning strategies and the episodic buffer."""

from __future__ import annotations

import numpy as np
import pytest

from repro.continual import (
    AGSCLStrategy,
    BCNStrategy,
    Co2LStrategy,
    EWCStrategy,
    EpisodicMemory,
    FinetuneStrategy,
    GEMStrategy,
    MASStrategy,
)
from repro.federated import SGDClient, TrainConfig


def make_client(tiny_benchmark, tiny_model, strategy):
    config = TrainConfig(batch_size=8, lr=0.02, rounds_per_task=1,
                         iterations_per_round=4)
    return SGDClient(
        0, tiny_benchmark.clients[0], tiny_model, config,
        strategy=strategy, rng=np.random.default_rng(0),
    )


def run_two_tasks(client):
    for position in range(2):
        client.begin_task(position)
        client.local_train(4)
        client.end_task()
    return client


class TestEpisodicMemory:
    def test_store_fraction(self, tiny_benchmark, rng):
        task = tiny_benchmark.clients[0].tasks[0]
        memory = EpisodicMemory(fraction=0.5)
        memory.store(task, rng)
        assert len(memory) == 1
        assert memory[0].x.shape[0] == pytest.approx(task.num_train * 0.5, abs=1)

    def test_minimum_per_task(self, tiny_benchmark, rng):
        task = tiny_benchmark.clients[0].tasks[0]
        memory = EpisodicMemory(fraction=0.001)
        memory.store(task, rng)
        assert len(memory[0].y) >= min(4, task.num_train)

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            EpisodicMemory(fraction=0.0)

    def test_sample_joint_union_mask(self, tiny_benchmark, rng):
        memory = EpisodicMemory(fraction=1.0)
        for task in tiny_benchmark.clients[0].tasks[:2]:
            memory.store(task, rng)
        x, y, mask = memory.sample_joint(8, rng)
        assert len(x) == len(y) == 8
        for label in y:
            assert mask[label]

    def test_sample_joint_empty_raises(self, rng):
        with pytest.raises(RuntimeError):
            EpisodicMemory().sample_joint(4, rng)

    def test_nbytes(self, tiny_benchmark, rng):
        memory = EpisodicMemory(fraction=1.0)
        memory.store(tiny_benchmark.clients[0].tasks[0], rng)
        expected = memory[0].x.nbytes + memory[0].y.nbytes
        assert memory.nbytes == expected


class TestFinetune:
    def test_is_default_and_reports_zero_state(self, tiny_benchmark, tiny_model):
        client = make_client(tiny_benchmark, tiny_model, None)
        assert isinstance(client.strategy, FinetuneStrategy)
        assert client.extra_state_bytes() == {"model": 0, "samples": 0}


class TestGEM:
    def test_memory_grows_per_task(self, tiny_benchmark, tiny_model):
        strategy = GEMStrategy(memory_fraction=0.5)
        client = run_two_tasks(make_client(tiny_benchmark, tiny_model, strategy))
        assert len(strategy.memory) == 2
        assert client.extra_state_bytes()["samples"] > 0

    def test_projection_satisfies_memory_constraints(
        self, tiny_benchmark, tiny_model
    ):
        from repro.nn import functional as F
        from repro.nn.tensor import Tensor
        from repro.nn.vector import gradients_to_vector

        strategy = GEMStrategy(memory_fraction=1.0)
        client = make_client(tiny_benchmark, tiny_model, strategy)
        client.begin_task(0)
        client.local_train(4)
        client.end_task()
        client.begin_task(1)
        task = client.task
        xb, yb = task.train_x[:8], task.train_y[:8]
        client.model.zero_grad()
        loss = strategy.loss(client.model, xb, yb, task.class_mask())
        loss.backward()
        strategy.post_backward(client.model, xb, yb, task.class_mask())
        projected = gradients_to_vector(client.model.parameters())
        # recompute the memory gradient and check the acute-angle condition
        memory = strategy.memory[0]
        client.model.zero_grad()
        F.cross_entropy(
            client.model(Tensor(memory.x[:32])), memory.y[:32],
            class_mask=memory.class_mask,
        ).backward()
        memory_grad = gradients_to_vector(client.model.parameters())
        scale = max(abs(float(memory_grad @ projected)), 1.0)
        assert float(memory_grad @ projected) >= -1e-5 * scale

    def test_extra_compute_counts_references(self, tiny_benchmark, tiny_model):
        strategy = GEMStrategy(memory_fraction=0.5)
        run_two_tasks(make_client(tiny_benchmark, tiny_model, strategy))
        assert strategy.extra_compute_units() == 2.0

    def test_max_reference_tasks_limits(self, tiny_benchmark, tiny_model):
        strategy = GEMStrategy(memory_fraction=0.5, max_reference_tasks=1)
        run_two_tasks(make_client(tiny_benchmark, tiny_model, strategy))
        assert strategy.extra_compute_units() == 1.0


class TestEWC:
    def test_fisher_accumulated_per_task(self, tiny_benchmark, tiny_model):
        strategy = EWCStrategy(penalty=10.0, fisher_batches=2)
        run_two_tasks(make_client(tiny_benchmark, tiny_model, strategy))
        assert len(strategy.fishers) == 2
        assert strategy.fishers[0].shape == (tiny_model.num_parameters(),)
        assert (strategy.fishers[0] >= 0).all()

    def test_penalty_pulls_towards_anchor(self, tiny_benchmark, tiny_model):
        strategy = EWCStrategy(penalty=10.0, fisher_batches=2)
        client = make_client(tiny_benchmark, tiny_model, strategy)
        client.begin_task(0)
        client.local_train(4)
        client.end_task()
        anchor = strategy.anchors[0]
        client.begin_task(1)
        # move weights off the anchor so the quadratic penalty is active
        for param in client.model.parameters():
            param.data += 0.05
        task = client.task
        client.model.zero_grad()
        loss = strategy.loss(
            client.model, task.train_x[:8], task.train_y[:8], task.class_mask()
        )
        loss.backward()
        before = [None if p.grad is None else p.grad.copy()
                  for p in client.model.parameters()]
        strategy.post_backward(client.model, None, None, None)
        after = [p.grad for p in client.model.parameters()]
        changed = any(
            b is not None and not np.allclose(a, b)
            for a, b in zip(after, before)
        )
        assert changed

    def test_state_bytes_grow_with_tasks(self, tiny_benchmark, tiny_model):
        strategy = EWCStrategy(penalty=10.0, fisher_batches=1)
        client = make_client(tiny_benchmark, tiny_model, strategy)
        client.begin_task(0)
        client.local_train(2)
        client.end_task()
        one = client.extra_state_bytes()["model"]
        client.begin_task(1)
        client.local_train(2)
        client.end_task()
        assert client.extra_state_bytes()["model"] == 2 * one

    def test_negative_penalty_rejected(self):
        with pytest.raises(ValueError):
            EWCStrategy(penalty=-1.0)


class TestMAS:
    def test_omega_accumulates_in_place(self, tiny_benchmark, tiny_model):
        strategy = MASStrategy(penalty=10.0, importance_batches=2)
        run_two_tasks(make_client(tiny_benchmark, tiny_model, strategy))
        assert strategy.omega is not None
        assert (strategy.omega >= 0).all()

    def test_state_constant_in_task_count(self, tiny_benchmark, tiny_model):
        strategy = MASStrategy(penalty=10.0, importance_batches=1)
        client = make_client(tiny_benchmark, tiny_model, strategy)
        client.begin_task(0)
        client.local_train(2)
        client.end_task()
        one = client.extra_state_bytes()["model"]
        client.begin_task(1)
        client.local_train(2)
        client.end_task()
        assert client.extra_state_bytes()["model"] == one  # unlike EWC


class TestAGSCL:
    def test_importance_tracked_per_parameter(self, tiny_benchmark, tiny_model):
        strategy = AGSCLStrategy()
        run_two_tasks(make_client(tiny_benchmark, tiny_model, strategy))
        assert strategy.importance
        for name, importance in strategy.importance.items():
            assert (importance >= 0).all()

    def test_anchors_snapshot_values(self, tiny_benchmark, tiny_model):
        strategy = AGSCLStrategy()
        client = make_client(tiny_benchmark, tiny_model, strategy)
        client.begin_task(0)
        client.local_train(2)
        client.end_task()
        for name, param in client.model.named_parameters():
            assert np.allclose(strategy.anchors[name], param.data)


class TestCo2L:
    def test_previous_model_snapshot(self, tiny_benchmark, tiny_model):
        strategy = Co2LStrategy(memory_fraction=0.5)
        client = run_two_tasks(make_client(tiny_benchmark, tiny_model, strategy))
        assert strategy.previous_model is not None
        assert client.extra_state_bytes()["model"] > 0
        assert client.extra_state_bytes()["samples"] > 0

    def test_loss_finite_with_distillation(self, tiny_benchmark, tiny_model):
        strategy = Co2LStrategy(memory_fraction=0.5)
        client = make_client(tiny_benchmark, tiny_model, strategy)
        client.begin_task(0)
        client.local_train(2)
        client.end_task()
        client.begin_task(1)
        stats = client.local_train(2)
        assert np.isfinite(stats["mean_loss"])


class TestBCN:
    def test_alpha_stays_in_bounds(self, tiny_benchmark, tiny_model):
        strategy = BCNStrategy(memory_fraction=0.5, alpha_bounds=(0.2, 0.8))
        client = run_two_tasks(make_client(tiny_benchmark, tiny_model, strategy))
        assert 0.2 <= strategy.alpha <= 0.8

    def test_no_memory_plain_loss(self, tiny_benchmark, tiny_model):
        strategy = BCNStrategy()
        client = make_client(tiny_benchmark, tiny_model, strategy)
        client.begin_task(0)
        stats = client.local_train(2)
        assert np.isfinite(stats["mean_loss"])
        assert strategy.extra_compute_units() == 0.0
