"""Tests for repro.serve: framed RPC, the socket engine, the service.

The bit-identity suite is the subsystem's acceptance bar: socket rounds
must reproduce serial rounds bit for bit across participation policies and
transports, with shard aggregation pulling remote segment partials and
with framed (``assume_remote``) state broadcasts.  The fault suite kills
workers mid-round and between rounds and checks the service's survival
contract: the round completes with the surviving clients, the lost count
lands on the :class:`RoundRecord`, and reconnecting workers are admitted
at the next round boundary.
"""

from __future__ import annotations

import multiprocessing
import os
import socket as socket_mod

import numpy as np
import pytest

from repro.data import build_benchmark, cifar100_like
from repro.edge import jetson_cluster
from repro.federated import TrainConfig, create_engine, create_trainer
from repro.federated.base import SGDClient
from repro.serve import (
    MAGIC,
    PROTOCOL_VERSION,
    Connection,
    ConnectionClosed,
    FederationServer,
    MessageType,
    ProtocolError,
    RemoteError,
    RpcError,
    SocketRoundEngine,
    connect_with_retry,
    run_worker,
)


# ----------------------------------------------------------------------
# framed protocol
# ----------------------------------------------------------------------


def _pair() -> tuple[Connection, Connection]:
    left, right = socket_mod.socketpair()
    return Connection(left, timeout=5.0), Connection(right, timeout=5.0)


class TestRpc:
    def test_frame_roundtrip(self):
        a, b = _pair()
        try:
            a.send(MessageType.RESET)
            a.send_obj(MessageType.RESULT, {"x": np.arange(4.0), "n": 3})
            kind, payload = b.recv()
            assert kind == MessageType.RESET and payload == b""
            kind, obj = b.recv_obj()
            assert kind == MessageType.RESULT
            assert obj["n"] == 3
            assert np.array_equal(obj["x"], np.arange(4.0))
        finally:
            a.close()
            b.close()

    def test_expect_unwraps_error_frames(self):
        a, b = _pair()
        try:
            a.send_obj(MessageType.ERROR, "worker exploded")
            with pytest.raises(RemoteError, match="worker exploded"):
                b.expect(MessageType.RESULT)
        finally:
            a.close()
            b.close()

    def test_expect_rejects_unexpected_kind(self):
        a, b = _pair()
        try:
            a.send(MessageType.RESET)
            with pytest.raises(ProtocolError, match="expected RESULT"):
                b.expect(MessageType.RESULT)
        finally:
            a.close()
            b.close()

    def test_truncated_frame_raises_connection_closed(self):
        a, b = _pair()
        try:
            # a header announcing 100 payload bytes, then EOF
            a.sock.sendall(bytes([int(MessageType.RESULT)]) + (100).to_bytes(4, "big"))
            a.close()
            with pytest.raises(ConnectionClosed):
                b.recv()
        finally:
            b.close()

    def test_unknown_type_byte_raises_protocol_error(self):
        a, b = _pair()
        try:
            a.sock.sendall(bytes([200]) + (0).to_bytes(4, "big"))
            with pytest.raises(ProtocolError, match="unknown message type"):
                b.recv()
        finally:
            a.close()
            b.close()

    def test_oversized_frame_announcement_rejected(self):
        a, b = _pair()
        try:
            # a corrupt header announcing a 2 GiB payload: rejected before
            # any attempt to allocate or read it
            a.sock.sendall(
                bytes([int(MessageType.STATE)]) + (1 << 31).to_bytes(4, "big")
            )
            with pytest.raises(ProtocolError, match="protocol limit"):
                b.recv()
        finally:
            a.close()
            b.close()

    def test_retry_exhaustion_raises_rpc_error(self):
        # an ephemeral port we bound and immediately closed: nothing listens
        probe = socket_mod.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        with pytest.raises(RpcError, match="after 2 attempts"):
            connect_with_retry("127.0.0.1", port, attempts=2, backoff=0.01)

    def test_version_mismatch_rejected_with_error_frame(self):
        engine = SocketRoundEngine(max_workers=1, spawn_workers=False)
        try:
            host, port = engine.listen()
            conn = connect_with_retry(host, port, attempts=3, timeout=5.0)
            try:
                conn.send_obj(MessageType.HELLO, {
                    "magic": MAGIC, "version": PROTOCOL_VERSION + 7,
                    "remote": False,
                })
                assert engine.poll_admissions() == 0
                with pytest.raises(RemoteError, match="version mismatch"):
                    conn.expect(MessageType.WELCOME)
            finally:
                conn.close()
        finally:
            engine.close()


# ----------------------------------------------------------------------
# the socket engine's RoundEngine contract
# ----------------------------------------------------------------------


def _square(value: int) -> int:
    return value * value


def _explode(value: int) -> int:
    raise ValueError(f"phase bug on item {value}")


class TestSocketEngineApi:
    def test_create_engine_spec(self):
        engine = create_engine("socket:2")
        try:
            assert isinstance(engine, SocketRoundEngine)
            assert engine.max_workers == 2
            assert engine.needs_pickling
            assert engine.may_lose_items
            assert engine.remote_partials
        finally:
            engine.close()

    def test_map_preserves_order(self):
        engine = SocketRoundEngine(max_workers=2)
        try:
            assert engine.map(_square, range(16)) == [
                value * value for value in range(16)
            ]
            # the worker pool is persistent: a second map reuses it
            assert engine.map(_square, range(5)) == [0, 1, 4, 9, 16]
        finally:
            engine.close()

    def test_map_without_workers_raises(self):
        engine = SocketRoundEngine(max_workers=2, spawn_workers=False)
        try:
            engine.listen()
            with pytest.raises(RuntimeError, match="no connected workers"):
                engine.map(_square, range(4))
        finally:
            engine.close()

    def test_phase_exception_propagates_and_worker_survives(self):
        engine = SocketRoundEngine(max_workers=1)
        try:
            with pytest.raises(RemoteError, match="phase bug on item"):
                engine.map(_explode, range(3))
            # the worker reported the error and kept serving
            assert engine.map(_square, range(3)) == [0, 1, 4]
        finally:
            engine.close()

    def test_close_idempotent(self):
        engine = SocketRoundEngine(max_workers=1)
        engine.map(_square, [1])
        engine.close()
        engine.close()


# ----------------------------------------------------------------------
# bit-identity: socket rounds == serial rounds
# ----------------------------------------------------------------------


@pytest.fixture
def spec():
    return cifar100_like(train_per_class=8, test_per_class=4).with_tasks(2)


@pytest.fixture
def config():
    return TrainConfig(batch_size=8, lr=0.02, rounds_per_task=2,
                       iterations_per_round=3)


def run_with_engine(spec, config, method, engine, participation=None,
                    transport=None, shards=1):
    """A fresh benchmark + trainer per run so both engines start identically."""
    bench = build_benchmark(spec, num_clients=3, rng=np.random.default_rng(0))
    trainer = create_trainer(
        method, bench, config, cluster=jetson_cluster(), engine=engine,
        participation=participation, transport=transport, shards=shards,
    )
    try:
        result = trainer.run()
        state = {
            key: value.copy()
            for key, value in trainer.server.global_state.items()
        }
        remote_segments = getattr(
            trainer.aggregator, "last_remote_segments", None
        )
    finally:
        trainer.close()
    return result, state, remote_segments


def assert_identical(reference, measured):
    ref_result, ref_state, _ = reference
    got_result, got_state, _ = measured
    assert np.array_equal(
        ref_result.accuracy_matrix, got_result.accuracy_matrix, equal_nan=True
    )
    assert ref_result.rounds == got_result.rounds
    assert set(ref_state) == set(got_state)
    for key in ref_state:
        assert np.array_equal(ref_state[key], got_state[key]), key


class TestSocketBitIdentity:
    @pytest.mark.parametrize("method", ["fedavg", "fedknow"])
    def test_matches_serial(self, spec, config, method):
        reference = run_with_engine(spec, config, method, "serial")
        socketed = run_with_engine(spec, config, method, "socket:2")
        assert_identical(reference, socketed)

    @pytest.mark.parametrize("participation,transport", [
        ("sampled:0.5", "v2:delta:0.1"),
        ("deadline:30", "v2:sparse:0.1"),
        ("full", "v1:dense"),
    ])
    def test_matches_serial_across_policies(self, spec, config,
                                            participation, transport):
        reference = run_with_engine(
            spec, config, "fedavg", "serial",
            participation=participation, transport=transport,
        )
        socketed = run_with_engine(
            spec, config, "fedavg", "socket:2",
            participation=participation, transport=transport,
        )
        assert_identical(reference, socketed)

    def test_sharded_aggregation_pulls_remote_partials(self, spec, config):
        ref_result, ref_state, _ = run_with_engine(
            spec, config, "fedavg", "serial"
        )
        got_result, got_state, remote_segments = run_with_engine(
            spec, config, "fedavg", "socket:2", shards=3
        )
        # shard accounting lands on the records (so full record equality is
        # out by design); the model trajectory must still be bit-identical
        assert np.array_equal(
            ref_result.accuracy_matrix, got_result.accuracy_matrix,
            equal_nan=True,
        )
        for key in ref_state:
            assert np.array_equal(ref_state[key], got_state[key]), key
        for ref_round, got_round in zip(ref_result.rounds, got_result.rounds):
            assert ref_round.upload_bytes == got_round.upload_bytes
            assert ref_round.mean_loss == got_round.mean_loss
            assert got_round.shard_reported, "round ran unsharded"
        # the last round's segments were genuinely served by workers
        assert remote_segments is not None and remote_segments > 0


class _NoWorkerEngine:
    """A socket engine stand-in that knows no client and serves nothing."""

    def origin_link(self, client_id):
        return None

    def fetch_partials(self, per_link):
        return {}


class TestRemoteAggregatorDemotions:
    def test_demoted_segments_warn_through_registry(self):
        """Every demoted merge segment is classified, counted on the
        metrics registry, and surfaced as one structured warning — while
        the aggregate stays bit-identical to the unsharded server."""
        from repro.federated import ClientUpdate, FedAvgServer
        from repro.obs import METRICS
        from repro.serve.server import RemoteShardedAggregator

        rng = np.random.default_rng(0)
        updates = [
            ClientUpdate(
                client_id=i,
                state={"w": rng.normal(size=(64,)).astype(np.float32)},
                num_samples=10,
            )
            for i in range(4)
        ]
        updates[0].staleness = 1  # segment 0 demotes as stale
        reference = FedAvgServer().aggregate_updates(updates)
        aggregator = RemoteShardedAggregator(
            FedAvgServer(), 2, _NoWorkerEngine()
        )
        before = METRICS.value("serve.segments_demoted")
        result = aggregator.aggregate_updates(updates)
        # one single-update segment per update: 1 stale + 3 orphaned
        assert aggregator.last_remote_segments == 0
        assert aggregator.last_demotions == {"stale": 1, "orphaned": 3}
        assert METRICS.value("serve.segments_demoted") == before + 4
        warning = next(
            w for w in reversed(METRICS.warnings)
            if w["counter"] == "serve.segments_demoted"
        )
        assert warning["stale"] == 1 and warning["orphaned"] == 3
        assert "demoted to local folding" in warning["message"]
        for key in reference:
            assert np.array_equal(reference[key], result[key]), key


class TestRemoteWorkers:
    def test_assume_remote_framed_broadcasts_bit_identical(self, spec, config):
        """Workers that skip the tmpfs probe take STATE frames over the
        socket — the true-remote code path — and must still reproduce the
        serial round stream bit for bit."""
        reference = run_with_engine(spec, config, "fedavg", "serial")
        engine = SocketRoundEngine(max_workers=2, spawn_workers=False)
        host, port = engine.listen()
        workers = [
            multiprocessing.Process(
                target=run_worker, args=(host, port),
                kwargs={"assume_remote": True}, daemon=True,
            )
            for _ in range(2)
        ]
        for process in workers:
            process.start()
        try:
            engine.wait_for_workers(2, timeout=30.0)
            assert all(not link.local for link in engine._live())
            socketed = run_with_engine(spec, config, "fedavg", engine)
        finally:
            for process in workers:
                process.join(timeout=10.0)
                if process.is_alive():  # pragma: no cover - stuck worker
                    process.terminate()
        assert_identical(reference, socketed)


# ----------------------------------------------------------------------
# fault containment
# ----------------------------------------------------------------------


class _DyingClient(SGDClient):
    """Hard-exits the worker process once, the first time it trains while
    the one-shot poison token file exists (consumed before dying, so the
    respawned worker trains this client normally in later rounds)."""

    token_path: str | None = None

    def local_train(self, iterations):
        path = type(self).token_path
        if path is not None and os.path.exists(path):
            try:
                os.unlink(path)
            finally:
                os._exit(1)
        return super().local_train(iterations)


class TestWorkerDeathMidRound:
    def test_round_completes_and_records_lost_clients(
        self, spec, config, tmp_path
    ):
        token = tmp_path / "poison.token"
        token.write_text("armed")
        _DyingClient.token_path = str(token)
        try:
            bench = build_benchmark(
                spec, num_clients=3, rng=np.random.default_rng(0)
            )
            trainer = create_trainer(
                "fedavg", bench, config, cluster=jetson_cluster(),
                engine="socket:2",
            )
            trainer.clients[0].__class__ = _DyingClient
            try:
                result = trainer.run()
            finally:
                trainer.close()
        finally:
            _DyingClient.token_path = None
        assert not token.exists(), "the poison token was never consumed"
        lost_counts = [record.lost for record in result.rounds]
        assert sum(lost_counts) > 0, "no round recorded the dead worker"
        # the poisoned round still aggregated the surviving clients
        poisoned = next(r for r in result.rounds if r.lost > 0)
        assert not poisoned.skipped
        assert poisoned.reported_clients >= 1
        assert poisoned.reported_clients + poisoned.lost <= 3
        # the worker died exactly once: every later round ran clean
        after = lost_counts[lost_counts.index(poisoned.lost) + 1:]
        assert all(count == 0 for count in after)
        # the full task sequence still produced accuracies
        assert result.accuracy_matrix.shape[0] == spec.num_tasks
        assert np.isfinite(result.accuracy_matrix[-1]).any()


class TestFederationServerResilience:
    def test_serves_rounds_across_worker_kill_and_reconnect(self):
        """The service survives >= 3 rounds with a worker SIGKILLed after
        round 1 and a replacement connected before round 3; the server
        process never restarts and never loses the round counter."""
        server = FederationServer(
            "fedavg", "cifar100", "unit", num_workers=2,
            clients=3, tasks=1, seed=0,
        )
        host, port = server.address
        spawn = lambda: multiprocessing.Process(
            target=run_worker, args=(host, port), daemon=True
        )
        first, second = spawn(), spawn()
        first.start()
        second.start()
        third = None
        try:
            server.wait_for_workers(timeout=30.0)
            assert server.connected_workers() == 2
            round_one = server.run_rounds(1)[0]
            assert round_one.lost == 0
            assert round_one.reported_clients == 3

            # SIGKILL one worker between rounds: the next round loses that
            # worker's clients but completes with the survivors
            os.kill(first.pid, 9)
            first.join(timeout=10.0)
            round_two = server.run_rounds(1)[0]
            assert round_two.lost > 0
            assert round_two.reported_clients >= 1
            assert not round_two.skipped

            # a replacement connects; it is admitted at the next round's
            # dispatch and the round runs clean again at full strength
            third = spawn()
            third.start()
            server.engine.wait_for_workers(2, timeout=30.0)
            round_three = server.run_rounds(1)[0]
            assert round_three.lost == 0
            assert round_three.reported_clients == 3
            assert [r.round_index for r in (round_one, round_two,
                                            round_three)] == [0, 1, 2]
            server.sync_clients()
        finally:
            server.close()
            for process in (second, third):
                if process is not None:
                    process.join(timeout=10.0)
                    if process.is_alive():  # pragma: no cover
                        process.terminate()


# ----------------------------------------------------------------------
# the service wrapper end to end
# ----------------------------------------------------------------------


class TestFederationServer:
    def test_full_run_matches_direct_trainer(self):
        """FederationServer.run over spawned workers reproduces the plain
        serial run of the same recipe."""
        server = FederationServer(
            "fedavg", "cifar100", "unit", num_workers=2,
            clients=3, tasks=2, seed=0,
        )
        host, port = server.address
        workers = [
            multiprocessing.Process(
                target=run_worker, args=(host, port), daemon=True
            )
            for _ in range(2)
        ]
        for process in workers:
            process.start()
        try:
            server.wait_for_workers(timeout=30.0)
            result = server.run()
        finally:
            server.close()
            for process in workers:
                process.join(timeout=10.0)
        # a serial trainer over the same recipe, built the same way
        from repro.data import create_scenario, get_spec
        from repro.experiments.config import get_preset

        preset = get_preset("unit").updated(num_clients=3, num_tasks=2)
        scaled = preset.apply_to_spec(get_spec("cifar100"))
        scenario = create_scenario("class-inc")
        benchmark = scenario.build(
            scaled, num_clients=3, rng=np.random.default_rng(0)
        )
        trainer = create_trainer(
            "fedavg", benchmark, preset.train_config(seed=0),
            model_seed=1000, rng=np.random.default_rng(1),
        )
        try:
            expected = trainer.run()
        finally:
            trainer.close()
        assert np.array_equal(
            expected.accuracy_matrix, result.accuracy_matrix, equal_nan=True
        )
        assert expected.rounds == result.rounds
