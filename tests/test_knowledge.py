"""Tests for the knowledge extractor, store and gradient restorer."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.knowledge import KnowledgeExtractor, KnowledgeStore
from repro.core.restorer import GradientRestorer
from repro.models import build_model
from repro.nn import functional as F
from repro.nn.tensor import Tensor
from repro.utils.serialization import encode_state, encoded_num_bytes


@pytest.fixture
def trained(tiny_benchmark, tiny_model):
    """A model briefly trained on the first client's first task."""
    from repro.data import iterate_batches
    from repro.nn.optim import SGD

    task = tiny_benchmark.clients[0].tasks[0]
    optimizer = SGD(tiny_model.parameters(), lr=0.02)
    mask = task.class_mask()
    for epoch in range(6):
        for xb, yb in iterate_batches(
            task.train_x, task.train_y, 8, np.random.default_rng(epoch)
        ):
            optimizer.zero_grad()
            F.cross_entropy(tiny_model(Tensor(xb)), yb, class_mask=mask).backward()
            optimizer.step()
    return tiny_model, task


def scratch_like(model):
    return build_model(
        "six_cnn", model.num_classes, input_shape=model.input_shape,
        rng=np.random.default_rng(1), width=model.width,
    )


class TestExtractor:
    def test_retention_ratio_respected(self, trained):
        model, task = trained
        knowledge = KnowledgeExtractor(ratio=0.10).extract(model, task)
        total = model.num_parameters()
        retained = knowledge.num_retained()
        assert retained == pytest.approx(0.10 * total, rel=0.05)

    def test_ratio_one_keeps_everything(self, trained):
        model, task = trained
        knowledge = KnowledgeExtractor(ratio=1.0).extract(model, task)
        assert knowledge.num_retained() == model.num_parameters()

    def test_invalid_ratio_rejected(self):
        with pytest.raises(ValueError):
            KnowledgeExtractor(ratio=0.0)
        with pytest.raises(ValueError):
            KnowledgeExtractor(ratio=1.5)

    def test_retains_largest_magnitudes(self, trained):
        model, task = trained
        knowledge = KnowledgeExtractor(ratio=0.2).extract(model, task)
        all_magnitudes = np.concatenate(
            [np.abs(p.data).ravel() for p in model.parameters()]
        )
        threshold = np.quantile(all_magnitudes, 0.8)
        for name in knowledge.values:
            if knowledge.values[name].size:
                assert (np.abs(knowledge.values[name]) >= threshold - 1e-6).all()

    def test_restore_state_zero_off_support(self, trained):
        model, task = trained
        knowledge = KnowledgeExtractor(ratio=0.1).extract(model, task)
        state = knowledge.restore_state()
        name = next(iter(knowledge.shapes))
        flat = state[name].ravel()
        off_support = np.setdiff1d(
            np.arange(flat.size), knowledge.indices[name]
        )
        assert np.allclose(flat[off_support], 0.0)
        assert np.allclose(flat[knowledge.indices[name]], knowledge.values[name])

    def test_bn_buffers_captured(self, trained):
        model, task = trained
        knowledge = KnowledgeExtractor(ratio=0.1).extract(model, task)
        # six_cnn has no BN, so buffers may be empty; resnet18 must have them
        resnet = build_model("resnet18", 8, rng=np.random.default_rng(0), width=4)
        resnet_knowledge = KnowledgeExtractor(ratio=0.1).extract(resnet, task)
        assert any("running_mean" in k for k in resnet_knowledge.buffers)

    def test_tied_magnitudes_respect_ratio(self, trained):
        """Regression: quantile thresholding over-retained on tied weights.

        With every weight at the same magnitude, ``abs >= threshold`` kept
        all of them; the tie-aware selection must cap retention at
        ``round(ratio * d)``, breaking ties deterministically by position.
        """
        model, task = trained
        for param in model.parameters():
            sign = np.sign(param.data)
            sign[sign == 0] = 1.0
            param.data[...] = 0.5 * sign
        knowledge = KnowledgeExtractor(ratio=0.10).extract(model, task)
        total = model.num_parameters()
        assert knowledge.num_retained() == int(round(0.10 * total))
        again = KnowledgeExtractor(ratio=0.10).extract(model, task)
        for name in knowledge.indices:
            assert np.array_equal(knowledge.indices[name], again.indices[name])

    def test_indices_stored_as_int32(self, trained):
        model, task = trained
        knowledge = KnowledgeExtractor(ratio=0.10).extract(model, task)
        assert all(idx.dtype == np.int32 for idx in knowledge.indices.values())

    def test_nbytes_matches_encoded_payload(self, trained):
        """Stored-byte accounting equals the codec's actual encoded size."""
        model, task = trained
        knowledge = KnowledgeExtractor(ratio=0.10).extract(model, task)
        wire = knowledge.wire_state()
        assert knowledge.nbytes == encoded_num_bytes(wire)
        assert knowledge.nbytes == len(encode_state(wire))

    def test_nbytes_scales_with_ratio(self, trained):
        model, task = trained
        small = KnowledgeExtractor(ratio=0.05).extract(model, task)
        large = KnowledgeExtractor(ratio=0.20).extract(model, task)
        assert large.nbytes > 2 * small.nbytes

    def test_finetune_improves_pruned_accuracy(self, trained):
        model, task = trained
        scratch = scratch_like(model)
        plain = KnowledgeExtractor(ratio=0.10).extract(model, task)
        tuned = KnowledgeExtractor(
            ratio=0.10, finetune_iterations=20, finetune_lr=0.02
        ).extract(model, task, scratch=scratch, rng=np.random.default_rng(0))
        mask = task.class_mask()

        def pruned_accuracy(knowledge):
            scratch.load_state_dict(knowledge.restore_state())
            scratch.eval()
            return F.accuracy(scratch.logits(task.test_x), task.test_y, mask)

        assert pruned_accuracy(tuned) >= pruned_accuracy(plain) - 0.05

    def test_finetune_preserves_support(self, trained):
        model, task = trained
        scratch = scratch_like(model)
        tuned = KnowledgeExtractor(
            ratio=0.10, finetune_iterations=5
        ).extract(model, task, scratch=scratch, rng=np.random.default_rng(0))
        state = tuned.restore_state()
        name = max(tuned.shapes, key=lambda n: int(np.prod(tuned.shapes[n])))
        flat = state[name].ravel()
        off_support = np.setdiff1d(np.arange(flat.size), tuned.indices[name])
        assert np.allclose(flat[off_support], 0.0)


class TestStore:
    def test_accumulates(self, trained):
        model, task = trained
        store = KnowledgeStore()
        extractor = KnowledgeExtractor(ratio=0.1)
        store.add(extractor.extract(model, task))
        store.add(extractor.extract(model, task))
        assert len(store) == 2
        assert store.nbytes == sum(k.nbytes for k in store)

    def test_indexing(self, trained):
        model, task = trained
        store = KnowledgeStore()
        knowledge = KnowledgeExtractor(ratio=0.1).extract(model, task)
        store.add(knowledge)
        assert store[0] is knowledge


class TestRestorer:
    def test_soft_labels_valid_distribution(self, trained):
        model, task = trained
        knowledge = KnowledgeExtractor(ratio=0.3).extract(model, task)
        restorer = GradientRestorer(scratch_like(model))
        probs = restorer.soft_labels(knowledge, task.train_x[:8])
        assert probs.shape == (8, model.num_classes)
        assert np.allclose(probs.sum(axis=1), 1.0, atol=1e-5)
        # probability mass confined to the task's classes
        assert probs[:, ~knowledge.class_mask()].max() < 1e-6

    def test_restored_gradient_shape_and_cleanup(self, trained):
        model, task = trained
        knowledge = KnowledgeExtractor(ratio=0.3).extract(model, task)
        restorer = GradientRestorer(scratch_like(model))
        grad = restorer.restore_gradient(model, knowledge, task.train_x[:8])
        assert grad.shape == (model.num_parameters(),)
        assert np.isfinite(grad).all()
        # gradients must be cleared afterwards
        assert all(p.grad is None for p in model.parameters())

    def test_restore_gradients_stacked(self, trained):
        model, task = trained
        extractor = KnowledgeExtractor(ratio=0.3)
        entries = [extractor.extract(model, task) for _ in range(3)]
        restorer = GradientRestorer(scratch_like(model))
        grads = restorer.restore_gradients(model, entries, task.train_x[:4])
        assert grads.shape == (3, model.num_parameters())

    def test_restore_empty_list_raises(self, trained):
        model, _ = trained
        restorer = GradientRestorer(scratch_like(model))
        with pytest.raises(ValueError):
            restorer.restore_gradients(model, [], np.zeros((1, 3, 16, 16)))

    def test_gradient_small_when_model_matches_knowledge(self, trained):
        """If the model IS the knowledge source, the restored gradient ~ 0.

        With ratio=1.0 the pruned network equals the live model, so its soft
        labels are the model's own predictions and the cross-entropy gradient
        at those targets vanishes.
        """
        model, task = trained
        knowledge = KnowledgeExtractor(ratio=1.0).extract(model, task)
        restorer = GradientRestorer(scratch_like(model))
        grad = restorer.restore_gradient(model, knowledge, task.train_x[:8])
        assert np.abs(grad).max() < 1e-4

    def test_training_mode_restored(self, trained):
        model, task = trained
        knowledge = KnowledgeExtractor(ratio=0.3).extract(model, task)
        restorer = GradientRestorer(scratch_like(model))
        model.train()
        restorer.restore_gradient(model, knowledge, task.train_x[:4])
        assert model.training
        model.eval()
        restorer.restore_gradient(model, knowledge, task.train_x[:4])
        assert not model.training
