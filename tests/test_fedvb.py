"""Tests for fedvb: mean-field posteriors, precision-weighted aggregation,
and the selector seam's full-run bit-identity regression.

``TestSelectorRunPinning`` is the refactor's safety net: extracting the
selector seam out of :class:`~repro.core.knowledge.KnowledgeExtractor` must
not change a single bit of a default FedKNOW run, across scenario families.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import build_benchmark, cifar100_like, create_scenario
from repro.federated import (
    PRECISION_PREFIX,
    FedVBClient,
    FedVBServer,
    TrainConfig,
    create_trainer,
)
from repro.utils.serialization import encode_state


@pytest.fixture
def spec():
    return cifar100_like(train_per_class=8, test_per_class=4).with_tasks(2)


@pytest.fixture
def config():
    return TrainConfig(batch_size=8, lr=0.02, rounds_per_task=2,
                       iterations_per_round=3)


def make_client(spec, config, client_id=0, **kwargs):
    from repro.models import build_model

    bench = build_benchmark(spec, num_clients=2, rng=np.random.default_rng(0))
    data = bench.clients[client_id]
    model = build_model(
        spec.model_name, spec.num_classes, input_shape=spec.input_shape,
        rng=np.random.default_rng(7), width=8,
    )
    return FedVBClient(client_id, data, model, config, **kwargs), data


class TestFedVBClient:
    def test_invalid_prior_precision_rejected(self, spec, config):
        with pytest.raises(ValueError):
            make_client(spec, config, prior_precision=0.0)

    def test_training_keeps_precision_positive(self, spec, config):
        client, data = make_client(spec, config)
        client.begin_task(0)
        stats = client.local_train(3)
        assert np.isfinite(stats["mean_loss"])
        assert (client.precision > 0).all()
        # training observed gradients, so certainty grows past the prior
        assert client.precision.mean() > client.prior_precision

    def test_upload_state_carries_precisions(self, spec, config):
        client, data = make_client(spec, config)
        client.begin_task(0)
        client.local_train(2)
        state = client.upload_state()
        model_keys = set(client.model.state_dict())
        prec_keys = {k for k in state if k.startswith(PRECISION_PREFIX)}
        assert prec_keys == {
            PRECISION_PREFIX + name for name, _ in
            client.model.named_parameters()
        }
        assert set(state) == model_keys | prec_keys
        for name, param in client.model.named_parameters():
            assert state[PRECISION_PREFIX + name].shape == param.data.shape
        encode_state(state)  # precisions must ride the existing codec

    def test_receive_global_strips_and_adopts_precision(self, spec, config):
        client, data = make_client(spec, config)
        client.begin_task(0)
        client.local_train(2)
        state = dict(client.upload_state())
        name, _ = next(iter(client.model.named_parameters()))
        state[PRECISION_PREFIX + name] = np.full_like(
            state[PRECISION_PREFIX + name], 42.0
        )
        client.receive_global(state, round_index=0)
        sl = client.view.slices[client._param_names.index(name)]
        assert np.allclose(client.precision[sl], 42.0)

    def test_end_task_folds_posterior_into_prior(self, spec, config):
        client, data = make_client(spec, config)
        client.begin_task(0)
        client.local_train(3)
        posterior_mean = client.view.gather().astype(np.float64)
        posterior_prec = client.precision.copy()
        client.end_task()
        assert np.array_equal(client.prior_mean, posterior_mean)
        assert np.array_equal(
            client.prior_prec, np.maximum(posterior_prec, 1e-8)
        )
        assert client._sq_count == 0

    def test_sampling_reproducible_across_constructions(self, spec, config):
        first, data = make_client(spec, config, rng=np.random.default_rng(3))
        second, _ = make_client(spec, config, rng=np.random.default_rng(3))
        first.begin_task(0)
        second.begin_task(0)
        first.local_train(2)
        second.local_train(2)
        assert np.array_equal(first.view.gather(), second.view.gather())

    def test_extra_state_bytes_counts_posterior(self, spec, config):
        client, _ = make_client(spec, config)
        extra = client.extra_state_bytes()
        assert extra == {"model": 3 * client.view.total * 4, "samples": 0}


class TestFedVBServer:
    def test_precision_weighted_closed_form(self):
        server = FedVBServer()
        states = [
            {
                "w": np.array([1.0, 3.0], dtype=np.float32),
                PRECISION_PREFIX + "w": np.array([1.0, 3.0], dtype=np.float32),
            },
            {
                "w": np.array([3.0, 4.0], dtype=np.float32),
                PRECISION_PREFIX + "w": np.array([3.0, 1.0], dtype=np.float32),
            },
        ]
        result = server.aggregate(states, [1.0, 1.0])
        # lam_g = mean of precisions; mu_g = precision-weighted mean
        np.testing.assert_allclose(
            result[PRECISION_PREFIX + "w"], [2.0, 2.0]
        )
        np.testing.assert_allclose(result["w"], [2.5, 3.25])

    def test_unequal_weights_scale_certainty(self):
        server = FedVBServer()
        states = [
            {"w": np.float32([0.0]), PRECISION_PREFIX + "w": np.float32([2.0])},
            {"w": np.float32([4.0]), PRECISION_PREFIX + "w": np.float32([2.0])},
        ]
        result = server.aggregate(states, [3.0, 1.0])
        # equal precisions: the sample weights alone steer the mean
        np.testing.assert_allclose(result["w"], [1.0])
        np.testing.assert_allclose(result[PRECISION_PREFIX + "w"], [2.0])

    def test_unpartnered_float_keys_fall_back_to_fedavg(self):
        server = FedVBServer()
        states = [
            {"buffer": np.float32([2.0]), "count": np.array([5])},
            {"buffer": np.float32([4.0]), "count": np.array([9])},
        ]
        result = server.aggregate(states, [1.0, 1.0])
        np.testing.assert_allclose(result["buffer"], [3.0])
        assert result["count"][0] == 5  # int keys keep the first client

    def test_error_contract_matches_fedavg(self):
        server = FedVBServer()
        with pytest.raises(ValueError):
            server.aggregate([], [])
        with pytest.raises(ValueError):
            server.aggregate([{"w": np.float32([1.0])}], [1.0, 2.0])
        with pytest.raises(ValueError):
            server.aggregate([{"w": np.float32([1.0])}], [0.0])
        with pytest.raises(ValueError):
            server.aggregate(
                [{"w": np.float32([1.0])}, {"v": np.float32([1.0])}],
                [1.0, 1.0],
            )


class TestFedVBTraining:
    def test_end_to_end_run(self, spec, config):
        bench = build_benchmark(
            spec, num_clients=2, rng=np.random.default_rng(0)
        )
        with create_trainer("fedvb", bench, config) as trainer:
            result = trainer.run()
        assert result.method == "fedvb"
        assert np.isfinite(result.final_accuracy)
        assert result.final_accuracy > 1.0 / spec.num_classes
        assert result.accuracy_matrix.shape == (2, 2)

    def test_sharding_rejected(self, spec, config):
        bench = build_benchmark(
            spec, num_clients=4, rng=np.random.default_rng(0)
        )
        with pytest.raises(ValueError, match="shard"):
            create_trainer("fedvb", bench, config, shards=2)


# ----------------------------------------------------------------------
# selector seam bit-identity across full runs
# ----------------------------------------------------------------------
def run_fedknow(spec, config, scenario="class-inc", selector=None):
    scenario_obj = create_scenario(scenario)
    bench = scenario_obj.build(spec, num_clients=2, rng=np.random.default_rng(0))
    with create_trainer(
        "fedknow", bench, config, selector=selector
    ) as trainer:
        result = trainer.run()
        state = {k: v.copy() for k, v in trainer.server.global_state.items()}
    return result, state


class TestSelectorRunPinning:
    @pytest.mark.parametrize(
        "scenario", ["class-inc", "domain-inc:drift=0.3", "blurry:overlap=0.2"]
    )
    def test_default_magnitude_bit_identical(self, spec, config, scenario):
        ref_result, ref_state = run_fedknow(spec, config, scenario)
        out_result, out_state = run_fedknow(
            spec, config, scenario, selector="magnitude"
        )
        assert np.array_equal(
            ref_result.accuracy_matrix, out_result.accuracy_matrix,
            equal_nan=True,
        )
        assert set(ref_state) == set(out_state)
        assert all(np.array_equal(ref_state[k], out_state[k]) for k in ref_state)
        assert ref_result.selector == out_result.selector == "magnitude"

    def test_fisher_selector_runs_and_is_recorded(self, spec, config):
        result, _ = run_fedknow(spec, config, selector="fisher")
        assert result.selector == "fisher"
        assert np.isfinite(result.final_accuracy)
