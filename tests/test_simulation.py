"""Tests for the event-driven population simulator.

Covers the deterministic event queue, the arrival/churn process, the
lightweight million-client round loop (shard-local staleness cut-offs,
evictions, lost in-flight uploads), and the full-fidelity
:class:`EventDrivenTrainer` — including the **degenerate regression pin**:
under the ``fixed`` population the event-driven trainer must reproduce the
synchronous trainer's round stream bit-identically, across scenario
families and participation policies.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import cifar100_like, create_scenario
from repro.edge import (
    CHURN_SIGMA,
    PopulationModel,
    create_population,
)
from repro.federated import (
    AsyncRoundLoop,
    EventDrivenTrainer,
    EventKind,
    EventQueue,
    FederatedTrainer,
    PopulationSimulator,
    SimReport,
    TrainConfig,
    create_trainer,
)


class TestEventQueue:
    def test_orders_by_time_then_push_order(self):
        queue = EventQueue()
        queue.push(2.0, EventKind.ROUND_CLOSE)
        queue.push(1.0, EventKind.ARRIVAL, client=7)
        queue.push(1.0, EventKind.DEPARTURE, client=7)  # same-time tie
        queue.push(0.5, EventKind.ARRIVAL, client=3)
        kinds = []
        while queue:
            event = queue.pop()
            kinds.append(event.kind)
        assert kinds == [
            EventKind.ARRIVAL, EventKind.ARRIVAL, EventKind.DEPARTURE,
            EventKind.ROUND_CLOSE,
        ]
        assert queue.pushed == 4

    def test_peek_and_len(self):
        queue = EventQueue()
        assert queue.peek() is None and not queue
        queue.push(1.0, EventKind.ARRIVAL)
        assert queue.peek().time == 1.0
        assert len(queue) == 1 and bool(queue)


class TestPopulationSpecs:
    @pytest.mark.parametrize("spec", [
        "fixed",
        "fixed,churn=300/600",
        "uniform:600",
        "pareto:1.5",
        "pareto:1.5,scale=0.2,churn=300/600",
        "lognormal:0.8,scale=2",
    ])
    def test_describe_round_trips(self, spec):
        model = create_population(spec)
        assert create_population(model.describe()).describe() == \
            model.describe()

    def test_instance_passthrough(self):
        model = PopulationModel(family="pareto", shape=1.5)
        assert create_population(model) is model

    @pytest.mark.parametrize("bad", [
        "weibull:2",            # unknown family
        "fixed:5",              # fixed takes no argument
        "fixed,scale=2",        # ... nor a scale
        "pareto",               # missing shape
        "pareto:0.5",           # infinite-mean regime rejected
        "uniform:0",            # empty horizon
        "pareto:1.5,churn=300", # malformed churn pair
        "pareto:1.5,rate=2",    # unknown option
    ])
    def test_bad_specs_rejected(self, bad):
        with pytest.raises((KeyError, ValueError)):
            create_population(bad)

    def test_degenerate_is_fixed_without_churn(self):
        assert create_population("fixed").degenerate
        assert not create_population("fixed,churn=10/20").degenerate
        assert not create_population("pareto:1.5").degenerate

    def test_schedule_deterministic_and_seed_sensitive(self):
        model = create_population("pareto:1.5,churn=300/600")
        a = model.schedule(500, seed=3)
        b = model.schedule(500, seed=3)
        c = model.schedule(500, seed=4)
        assert np.array_equal(a.arrival, b.arrival)
        assert np.array_equal(a.session, b.session)
        assert not np.array_equal(a.arrival, c.arrival)

    def test_churn_durations_mean_corrected(self):
        """Log-normal churn draws must average to the spec's means."""
        schedule = create_population("fixed,churn=300/600").schedule(
            20_000, seed=0
        )
        assert schedule.session.mean() == pytest.approx(300, rel=0.05)
        assert schedule.offtime.mean() == pytest.approx(600, rel=0.05)
        assert CHURN_SIGMA > 0  # dispersion actually applied

    def test_present_at_follows_cycle(self):
        schedule = create_population("fixed,churn=10/10").schedule(8, seed=0)
        assert schedule.present_at(0.0).all()
        # at each client's own mid-off-time phase it is offline
        t = schedule.session + schedule.offtime / 2
        online = np.array([
            schedule.present_at(float(t[i]))[i] for i in range(8)
        ])
        assert not online.any()


def _uniform_loop(n, train, upload, deadline, **kwargs):
    schedule = create_population("fixed").schedule(n, seed=0)
    return AsyncRoundLoop(
        schedule,
        np.full(n, train), np.full(n, upload), np.full(n, deadline),
        jitter_sigma=0.0, **kwargs,
    )


class TestAsyncRoundLoop:
    def run(self, loop):
        report = SimReport(
            num_clients=loop.schedule.num_clients, population="test",
            shards=len(loop.shard_deadline),
            max_staleness=loop.max_staleness,
        )
        return loop.run(report)

    def test_everyone_fresh_under_generous_deadline(self):
        report = self.run(
            _uniform_loop(10, 1.0, 1.0, 5.0, num_rounds=3)
        )
        assert [r.reported for r in report.rounds] == [10, 10, 10]
        assert report.staleness_hist == {0: 30}
        assert report.evicted == 0 and report.lost == 0
        assert not any(r.skipped for r in report.rounds)
        # rounds close at their deadline, back to back
        assert [r.close_seconds for r in report.rounds] == [5.0, 10.0, 15.0]

    def test_shard_local_staleness(self):
        """A slow client in a fast-cutoff shard aggregates one round late."""
        schedule = create_population("fixed").schedule(2, seed=0)
        loop = AsyncRoundLoop(
            schedule,
            np.array([1.0, 2.5]),      # train
            np.array([1.0, 2.5]),      # upload: client 1 finishes at t=5
            np.array([10.0, 0.1]),     # client 1's shard closes at t=0.1
            shards=2, max_staleness=2, num_rounds=2, jitter_sigma=0.0,
        )
        report = self.run(loop)
        # client 0 is fresh both rounds; client 1's upload lands after its
        # own shard's cut-off but before the next close -> staleness 1
        assert report.staleness_hist[0] == 2
        assert report.staleness_hist[1] >= 1
        assert report.evicted == 0

    def test_eviction_past_the_bound(self):
        schedule = create_population("fixed").schedule(2, seed=0)
        loop = AsyncRoundLoop(
            schedule,
            np.array([1.0, 12.0]),     # client 1 uploads at t=24
            np.array([1.0, 12.0]),
            np.array([10.0, 0.1]),     # its shard closed twice by then
            shards=2, max_staleness=1, num_rounds=4, jitter_sigma=0.0,
        )
        report = self.run(loop)
        assert report.evicted >= 1
        assert 2 not in report.staleness_hist  # never aggregates at 2+

    def test_churn_loses_inflight_uploads(self):
        sim = PopulationSimulator(
            5_000, population="pareto:1.5,scale=0.001,churn=10/20",
            num_rounds=5, shards=4, max_staleness=2, seed=0,
        )
        report = sim.run()
        assert report.lost > 0
        assert report.peak_present <= 5_000
        # departures can only lose uploads that were actually scheduled
        assert report.lost < report.scheduled

    def test_deterministic_across_runs(self):
        def fields():
            sim = PopulationSimulator(
                3_000, population="pareto:1.5,scale=0.002,churn=30/60",
                num_rounds=4, shards=8, max_staleness=2, seed=7,
            )
            report = sim.run()
            return (
                [(r.active, r.planned, r.reported, r.stale, r.evicted,
                  r.lost, r.close_seconds, r.skipped)
                 for r in report.rounds],
                dict(report.staleness_hist),
                report.events,
            )
        assert fields() == fields()

    def test_round_zero_skipped_before_first_arrival(self):
        sim = PopulationSimulator(
            1_000, population="pareto:1.5,scale=0.01", num_rounds=3, seed=0,
        )
        report = sim.run()
        assert report.rounds[0].planned == 0
        assert report.rounds[0].skipped
        assert report.rounds[-1].planned > 0

    def test_rejects_mismatched_arrays(self):
        schedule = create_population("fixed").schedule(4, seed=0)
        with pytest.raises(ValueError):
            AsyncRoundLoop(
                schedule, np.ones(3), np.ones(4), np.ones(4)
            )
        with pytest.raises(ValueError):
            AsyncRoundLoop(
                schedule, np.ones(4), np.ones(4), np.ones(4), max_staleness=0
            )


@pytest.fixture
def spec():
    return cifar100_like(train_per_class=8, test_per_class=4).with_tasks(2)


@pytest.fixture
def config():
    return TrainConfig(batch_size=8, lr=0.02, rounds_per_task=2,
                       iterations_per_round=3)


def build_trainer(spec, config, population, participation=None,
                  scenario="class-inc", num_clients=4):
    scen = create_scenario(scenario)
    bench = scen.build(spec, num_clients=num_clients,
                       rng=np.random.default_rng(0))
    return create_trainer(
        "fedavg", bench, config, participation=participation,
        population=population,
    )


class TestRegistryDispatch:
    def test_population_selects_event_driven_trainer(self, spec, config):
        with build_trainer(spec, config, None) as trainer:
            assert type(trainer) is FederatedTrainer
        with build_trainer(spec, config, "fixed") as trainer:
            assert isinstance(trainer, EventDrivenTrainer)
            assert trainer.population.degenerate


class TestDegeneratePin:
    """The regression pin: ``fixed`` population == synchronous trainer,
    bit for bit, across scenario families and participation policies."""

    @pytest.mark.parametrize("scenario", [
        "class-inc", "label-shift:dirichlet:0.3",
    ])
    @pytest.mark.parametrize("participation", [
        None, "deadline:auto", "sampled:0.5",
    ])
    def test_round_stream_bit_identical(self, spec, config, scenario,
                                        participation):
        with build_trainer(spec, config, None, participation,
                           scenario) as trainer:
            reference = trainer.run()
        with build_trainer(spec, config, "fixed", participation,
                           scenario) as trainer:
            event_driven = trainer.run()
        assert reference.rounds == event_driven.rounds
        assert np.array_equal(
            reference.accuracy_matrix, event_driven.accuracy_matrix,
            equal_nan=True,
        )


class TestChurnTrainer:
    def test_deadline_auto_never_deadlocks_under_churn(self, spec, config):
        """Clients departing between scheduling and reporting forfeit their
        uploads; round closes never wait for a client that left."""
        with build_trainer(spec, config, "fixed,churn=20/20",
                           "deadline:auto", num_clients=6) as trainer:
            result = trainer.run()
            closes = list(trainer.round_closes)
        assert len(result.rounds) == 4
        # virtual time advances monotonically through every close
        assert closes == sorted(closes)
        for record in result.rounds:
            assert record.reported_clients <= record.active_clients
        # churn actually bit: somebody was offline or forfeited somewhere
        assert any(
            r.reported_clients < r.active_clients or r.active_clients < 6
            for r in result.rounds
        )

    def test_churn_run_deterministic(self, spec, config):
        def run():
            with build_trainer(spec, config, "uniform:30,churn=15/30",
                               "deadline:auto", num_clients=5) as trainer:
                return trainer.run().rounds, list(trainer.round_closes)
        rounds_a, closes_a = run()
        rounds_b, closes_b = run()
        assert rounds_a == rounds_b
        assert closes_a == closes_b

    def test_everyone_offline_records_skipped_round(self, spec, config):
        """Sessions of ~0.5s against a 10s round deadline: by the second
        round everyone is offline (returns ~500s later), so the round must
        be recorded as skipped — not deadlock, not raise — and the clock
        must jump to the next arrival."""
        with build_trainer(spec, config, "fixed,churn=0.5/500",
                           "deadline:10", num_clients=3) as trainer:
            result = trainer.run()
        offline = [
            r for r in result.rounds if r.skipped and r.active_clients == 0
        ]
        assert offline, "expected a nobody-online skipped round"
        for record in offline:
            assert record.reported_clients == 0
            assert record.upload_bytes == 0
            assert np.isnan(record.mean_loss)

    def test_late_joiners_begin_mid_sequence(self, spec, config):
        """Uniform arrivals over a long horizon: clients that join after
        round 0 still train (their begin_task rides the lazy stream)."""
        with build_trainer(spec, config, "uniform:30", "deadline:auto",
                           num_clients=6) as trainer:
            result = trainer.run()
            arrivals = trainer.schedule.arrival
            closes = list(trainer.round_closes)
        # somebody genuinely arrived after the first round closed
        assert arrivals.max() > closes[0]
        # and the federation grew across rounds within the first stage
        actives = [r.active_clients for r in result.rounds[:2]]
        assert actives[0] <= actives[1]

    def test_arrivals_never_reached_raises(self, spec, config):
        with pytest.raises(ValueError):
            # impossible spec caught at parse time, not deadlock at run time
            build_trainer(spec, config, "uniform:-5")


class TestLatencyDrivenOpens:
    """Round opens follow the simulated network round trip: close waits on
    the slowest upload leg, and the next open waits on the broadcast's
    slowest download leg."""

    def build(self, spec, config, network, num_clients=3):
        scen = create_scenario("class-inc")
        bench = scen.build(spec, num_clients=num_clients,
                           rng=np.random.default_rng(0))
        return create_trainer(
            "fedavg", bench, config, population="fixed",
            with_cost_model=False, network=network,
        )

    def test_degenerate_all_unit_latency_pin(self, spec, config):
        """The regression pin: infinite bandwidth + a 1-second protocol
        latency (charged on the upload leg) and no cost model make every
        round's trip exactly one virtual second — opens [0, 1, 2, ...],
        closes [1, 2, 3, ...], downloads free."""
        import math

        from repro.edge.network import NetworkModel

        network = NetworkModel(
            bandwidth_bytes_per_second=math.inf, round_latency_seconds=1.0
        )
        with self.build(spec, config, network) as trainer:
            trainer.run()
            opens = list(trainer.round_opens)
            closes = list(trainer.round_closes)
        assert len(opens) == len(closes) == 4  # 2 tasks x 2 rounds
        assert opens == [float(i) for i in range(4)]
        assert closes == [float(i + 1) for i in range(4)]

    def test_finite_downlink_delays_next_open(self, spec, config):
        """With finite bandwidth the next round opens exactly one
        broadcast-download after the previous close (uniform links: every
        receiver downloads the same bytes at the same rate)."""
        from repro.edge.network import NetworkModel

        bandwidth = 1e6
        network = NetworkModel(
            bandwidth_bytes_per_second=bandwidth, round_latency_seconds=0.0
        )
        with self.build(spec, config, network) as trainer:
            result = trainer.run()
            opens = list(trainer.round_opens)
            closes = list(trainer.round_closes)
        for index, record in enumerate(result.rounds[:-1]):
            receivers = record.reported_clients
            per_client_down = record.download_bytes / receivers
            expected = closes[index] + per_client_down / bandwidth
            assert opens[index + 1] == pytest.approx(expected, rel=1e-12)
        # the download leg genuinely delayed something
        assert any(
            opens[i + 1] > closes[i] for i in range(len(closes) - 1)
        )

    def test_opens_and_closes_stay_paired_under_churn(self, spec, config):
        with build_trainer(spec, config, "fixed,churn=0.5/500",
                           "deadline:10", num_clients=3) as trainer:
            trainer.run()
            opens = list(trainer.round_opens)
            closes = list(trainer.round_closes)
        assert len(opens) == len(closes)
        assert all(o <= c for o, c in zip(opens, closes))
        assert opens == sorted(opens)


class TestEvictionEndToEnd:
    def test_bounded_carry_records_evictions(self, spec, config):
        """A tight fixed deadline with max=1 measured lateness evicts
        grossly late stragglers and re-syncs them."""
        with build_trainer(spec, config, "fixed",
                           "deadline:0.005,max=2",
                           num_clients=4) as trainer:
            result = trainer.run()
        total = sum(r.evicted for r in result.rounds)
        assert result.total_evicted_clients == total
