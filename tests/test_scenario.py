"""Tests for the pluggable scenario API: streams, partitioners, families."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import (
    DirichletPartitioner,
    RangePartitioner,
    Scenario,
    TaskStream,
    allocate_task_classes,
    available_scenarios,
    build_benchmark,
    cifar100_like,
    create_scenario,
    svhn_like,
    task_classes,
)
from repro.data.scenario import ClassIncrementalScenario

FAMILIES = (
    "class-inc",
    "domain-inc:drift=0.3",
    "label-shift:dirichlet:0.3",
    "quantity-skew:powerlaw:0.5",
    "blurry:overlap=0.2",
    "async-arrival",
)


def small_spec(num_tasks=3):
    return cifar100_like(train_per_class=6, test_per_class=2).with_tasks(num_tasks)


def assert_tasks_equal(a, b):
    assert a.task_id == b.task_id
    assert a.position == b.position
    assert np.array_equal(a.classes, b.classes)
    assert np.array_equal(a.train_x, b.train_x)
    assert np.array_equal(a.train_y, b.train_y)
    assert np.array_equal(a.test_x, b.test_x)
    assert np.array_equal(a.test_y, b.test_y)


class TestRegistry:
    def test_unknown_scenario_raises(self):
        with pytest.raises(KeyError):
            create_scenario("imagenet-inc")

    def test_instance_passes_through(self):
        scenario = create_scenario("blurry:overlap=0.3")
        assert create_scenario(scenario) is scenario

    def test_none_is_class_incremental(self):
        assert create_scenario(None).describe() == "class-inc"

    def test_catalogue_names(self):
        assert available_scenarios() == sorted(FAMILIES_SET := {
            f.split(":")[0] for f in FAMILIES
        })
        assert "class-inc" in FAMILIES_SET

    @pytest.mark.parametrize(
        "spec_str,canonical",
        [
            ("class-inc", "class-inc"),
            ("domain-inc", "domain-inc:drift=0.3"),
            ("domain-inc:0.5", "domain-inc:drift=0.5"),
            ("domain-inc:drift=0.5", "domain-inc:drift=0.5"),
            ("label-shift", "label-shift:dirichlet:0.3"),
            ("label-shift:dirichlet:0.1", "label-shift:dirichlet:0.1"),
            ("label-shift:alpha=0.1", "label-shift:dirichlet:0.1"),
            ("blurry", "blurry:overlap=0.2"),
            ("blurry:0.5", "blurry:overlap=0.5"),
            ("async-arrival", "async-arrival"),
        ],
    )
    def test_describe_canonicalizes(self, spec_str, canonical):
        assert create_scenario(spec_str).describe() == canonical

    def test_custom_class_inc_describe_round_trips(self):
        scenario = ClassIncrementalScenario(
            classes_per_client=(1, 2), sample_fraction=(1.0, 1.0),
            shuffle_task_order=False, client_feature_shift=False,
        )
        spec_str = scenario.describe()
        assert spec_str == (
            "class-inc:classes=1-2:fraction=1-1:order=fixed:shift=off"
        )
        rebuilt = create_scenario(spec_str)
        assert rebuilt.describe() == spec_str
        assert rebuilt.partitioner.classes_per_client == (1, 2)
        assert rebuilt.partitioner.sample_fraction == (1.0, 1.0)
        assert not rebuilt.shuffle_task_order
        assert not rebuilt.client_feature_shift

    @pytest.mark.parametrize(
        "bad",
        [
            "class-inc:0.5",            # positional argument
            "class-inc:classes=five",   # malformed range
            "class-inc:order=random",   # unknown mode
            "class-inc:rho=0.5",        # unknown parameter
            "domain-inc:drift=lots",    # non-numeric
            "domain-inc:drift=2.0",     # out of range
            "domain-inc:0.1:0.2",       # too many positionals
            "blurry:overlap=-0.1",
            "label-shift:dirichlet:0",  # alpha must be positive
            "domain-inc:rho=0.5",       # unknown parameter
            "domain-inc:0.1:drift=0.2", # positional + named
        ],
    )
    def test_malformed_specs_rejected(self, bad):
        with pytest.raises(ValueError):
            create_scenario(bad)


class TestClassIncRegression:
    """Pinned contract: class-inc is bit-identical to the legacy builder."""

    def test_matches_build_benchmark_exactly(self):
        spec = small_spec(3)
        legacy = build_benchmark(spec, num_clients=4,
                                 rng=np.random.default_rng(11))
        scen = create_scenario("class-inc").build(
            spec, num_clients=4, rng=np.random.default_rng(11)
        )
        assert scen.scenario == "class-inc"
        for lc, sc in zip(legacy.clients, scen.clients):
            assert np.array_equal(lc.transform.gain, sc.transform.gain)
            assert np.array_equal(lc.transform.bias, sc.transform.bias)
            assert lc.num_tasks == sc.num_tasks
            for p in range(spec.num_tasks):
                assert_tasks_equal(lc.task_at(p), sc.task_at(p))

    def test_matches_single_client_variant(self):
        spec = small_spec(2)
        legacy = build_benchmark(
            spec, num_clients=1, rng=np.random.default_rng(3),
            classes_per_client=(spec.classes_per_task, spec.classes_per_task),
            sample_fraction=(1.0, 1.0),
            shuffle_task_order=False, client_feature_shift=False,
        )
        scen = ClassIncrementalScenario(
            classes_per_client=(spec.classes_per_task, spec.classes_per_task),
            sample_fraction=(1.0, 1.0),
            shuffle_task_order=False, client_feature_shift=False,
        ).build(spec, num_clients=1, rng=np.random.default_rng(3))
        for p in range(spec.num_tasks):
            assert_tasks_equal(
                legacy.clients[0].task_at(p), scen.clients[0].task_at(p)
            )

    def test_build_benchmark_stamps_honest_provenance(self):
        from repro.data import single_client_benchmark

        spec = small_spec(2)
        default = build_benchmark(spec, num_clients=2,
                                  rng=np.random.default_rng(0))
        assert default.scenario == "class-inc"
        single = single_client_benchmark(spec, rng=np.random.default_rng(0))
        assert single.scenario == (
            f"class-inc:classes={spec.classes_per_task}-"
            f"{spec.classes_per_task}:fraction=1-1:order=fixed:shift=off"
        )
        # the recorded spec round-trips to an equivalent scenario
        rebuilt = create_scenario(single.scenario)
        assert rebuilt.describe() == single.scenario

    def test_eager_build_matches_lazy(self):
        spec = small_spec(3)
        lazy = create_scenario("class-inc").build(
            spec, num_clients=2, rng=np.random.default_rng(0)
        )
        eager = create_scenario("class-inc").build(
            spec, num_clients=2, rng=np.random.default_rng(0), eager=True
        )
        assert eager.clients[0].tasks.num_materialized == spec.num_tasks
        for lc, ec in zip(lazy.clients, eager.clients):
            for p in range(spec.num_tasks):
                assert_tasks_equal(lc.task_at(p), ec.task_at(p))


class TestTaskStream:
    def test_lazy_until_accessed(self):
        spec = small_spec(3)
        bench = create_scenario("class-inc").build(
            spec, num_clients=2, rng=np.random.default_rng(0)
        )
        stream = bench.clients[0].tasks
        assert stream.num_materialized == 0
        stream[0]
        assert stream.num_materialized == 1

    def test_sequential_stream_forces_prefix(self):
        spec = small_spec(4)
        bench = create_scenario("class-inc").build(
            spec, num_clients=1, rng=np.random.default_rng(0)
        )
        stream = bench.clients[0].tasks
        stream[2]
        assert stream.num_materialized == 3  # positions 0..2

    def test_independent_stream_random_access(self):
        spec = small_spec(4)
        bench = create_scenario("async-arrival").build(
            spec, num_clients=1, rng=np.random.default_rng(0)
        )
        stream = bench.clients[0].tasks
        stream[3]
        assert stream.num_materialized == 1

    def test_out_of_order_access_matches_eager(self):
        spec = small_spec(4)
        scenario = create_scenario("domain-inc:drift=0.4")
        lazy = scenario.build(spec, num_clients=2,
                              rng=np.random.default_rng(7))
        eager = scenario.build(spec, num_clients=2,
                               rng=np.random.default_rng(7), eager=True)
        for lc, ec in zip(lazy.clients, eager.clients):
            for p in (3, 0, 2, 1):
                assert_tasks_equal(lc.task_at(p), ec.task_at(p))

    def test_sequence_protocol(self):
        spec = small_spec(3)
        bench = create_scenario("blurry").build(
            spec, num_clients=1, rng=np.random.default_rng(0)
        )
        stream = bench.clients[0].tasks
        assert len(stream) == 3
        assert len(list(stream)) == 3
        assert stream[-1].position == 2
        with pytest.raises(IndexError):
            stream[3]

    def test_caching_returns_same_object(self):
        spec = small_spec(2)
        bench = create_scenario("class-inc").build(
            spec, num_clients=1, rng=np.random.default_rng(0)
        )
        assert bench.clients[0].task_at(0) is bench.clients[0].task_at(0)

    def test_invalid_length_rejected(self):
        with pytest.raises(ValueError):
            TaskStream(-1, lambda p: None)


class TestDeterminism:
    @pytest.mark.parametrize("family", FAMILIES)
    def test_same_seed_same_arrays(self, family):
        spec = small_spec(3)
        scenario = create_scenario(family)
        a = scenario.build(spec, num_clients=3, rng=np.random.default_rng(21))
        b = scenario.build(spec, num_clients=3, rng=np.random.default_rng(21))
        for ca, cb in zip(a.clients, b.clients):
            assert np.array_equal(ca.transform.gain, cb.transform.gain)
            for p in range(spec.num_tasks):
                assert_tasks_equal(ca.task_at(p), cb.task_at(p))

    @pytest.mark.parametrize("family", FAMILIES)
    def test_different_seed_differs(self, family):
        spec = small_spec(2)
        scenario = create_scenario(family)
        a = scenario.build(spec, num_clients=2, rng=np.random.default_rng(1))
        b = scenario.build(spec, num_clients=2, rng=np.random.default_rng(2))
        ta, tb = a.clients[0].task_at(0), b.clients[0].task_at(0)
        assert ta.train_x.shape != tb.train_x.shape or not np.allclose(
            ta.train_x, tb.train_x
        )


class TestFamilies:
    def test_domain_inc_pools_span_universe(self):
        spec = small_spec(3)
        bench = create_scenario("domain-inc:drift=0.3").build(
            spec, num_clients=4, rng=np.random.default_rng(0)
        )
        seen = set()
        for client in bench.clients:
            for task in client.tasks:
                seen.update(int(c) for c in task.classes)
        # classes from outside any single task's contiguous block appear
        assert max(seen) - min(seen) >= spec.classes_per_task

    def test_domain_inc_transforms_drift_across_tasks(self):
        spec = small_spec(3)
        scenario = create_scenario("domain-inc:drift=0.5")
        bench = scenario.build(spec, num_clients=1,
                               rng=np.random.default_rng(0))
        base = bench.clients[0].transform
        t0 = scenario.task_transform(spec, 0, base)
        t2 = scenario.task_transform(spec, 2, base)
        assert np.array_equal(t0.gain, base.gain)  # task 0 = reference domain
        assert not np.allclose(t2.gain, base.gain)

    def test_domain_inc_zero_drift_is_clientwise_stationary(self):
        spec = small_spec(2)
        scenario = create_scenario("domain-inc:drift=0")
        bench = scenario.build(spec, num_clients=1,
                               rng=np.random.default_rng(0))
        base = bench.clients[0].transform
        assert scenario.task_transform(spec, 1, base) is base

    def test_label_shift_budgets_are_skewed(self):
        spec = small_spec(2)
        bench = create_scenario("label-shift:dirichlet:0.2").build(
            spec, num_clients=6, rng=np.random.default_rng(0)
        )
        uneven = False
        for client in bench.clients:
            for task in client.tasks:
                counts = np.bincount(task.train_y, minlength=spec.num_classes)
                counts = counts[counts > 0]
                assert (counts >= 2).all()
                if len(counts) > 1 and counts.max() != counts.min():
                    uneven = True
                # label-shift keeps the class-incremental task structure
                pool = set(task_classes(spec, task.task_id).tolist())
                assert set(np.unique(task.train_y)) <= pool
        assert uneven

    def test_blurry_classes_leak_across_blocks(self):
        spec = small_spec(3)
        bench = create_scenario("blurry:overlap=0.5").build(
            spec, num_clients=6, rng=np.random.default_rng(0)
        )
        leaked = False
        for client in bench.clients:
            for task in client.tasks:
                pool = set(task_classes(spec, task.task_id).tolist())
                if not set(task.classes.tolist()) <= pool:
                    leaked = True
        assert leaked

    def test_blurry_zero_overlap_matches_blocks(self):
        spec = small_spec(2)
        bench = create_scenario("blurry:overlap=0").build(
            spec, num_clients=3, rng=np.random.default_rng(0)
        )
        for client in bench.clients:
            for task in client.tasks:
                pool = set(task_classes(spec, task.task_id).tolist())
                assert set(task.classes.tolist()) <= pool

    def test_async_arrival_orders_are_cyclic_shifts(self):
        spec = small_spec(4)
        bench = create_scenario("async-arrival").build(
            spec, num_clients=8, rng=np.random.default_rng(0)
        )
        ring = list(range(spec.num_tasks)) * 2
        offsets = set()
        for client in bench.clients:
            order = [t.task_id for t in client.tasks]
            offset = order[0]
            assert order == ring[offset:offset + spec.num_tasks]
            offsets.add(offset)
        assert len(offsets) > 1  # clients actually staggered


class TestPartitioners:
    def test_range_partitioner_validates(self):
        with pytest.raises(ValueError):
            RangePartitioner(classes_per_client=(0, 3))
        with pytest.raises(ValueError):
            RangePartitioner(sample_fraction=(0.5, 1.5))

    def test_dirichlet_partitioner_validates(self):
        with pytest.raises(ValueError):
            DirichletPartitioner(alpha=0.0)

    def test_dirichlet_always_keeps_a_class(self):
        part = DirichletPartitioner(alpha=0.05)
        spec = small_spec(2)
        rng = np.random.default_rng(0)
        for _ in range(50):
            chosen, counts = part.allocate(np.arange(10), rng, spec)
            assert len(chosen) >= 1
            assert (np.asarray(counts) >= 2).all()
            assert np.array_equal(chosen, np.sort(chosen))

    def test_allocation_clamps_small_pools(self):
        # pool smaller than the 2-class lower bound: clamp, don't crash
        rng = np.random.default_rng(0)
        chosen, per_class = allocate_task_classes(
            np.array([7]), rng, (2, 5), (0.5, 1.0), train_per_class=8
        )
        assert np.array_equal(chosen, [7])
        assert per_class >= 2

    def test_allocation_empty_pool_raises(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            allocate_task_classes(
                np.array([], dtype=int), rng, (2, 5), (0.5, 1.0), 8
            )

    def test_single_class_task_spec_builds(self):
        # classes_per_task=1 < the (2, 5) lower bound: previously an
        # invalid RNG range, now a whole-pool allocation
        from repro.data.specs import DatasetSpec

        tiny = DatasetSpec("tiny", 3, 3, 1, train_per_class=4,
                           test_per_class=2)
        bench = build_benchmark(tiny, num_clients=2,
                                rng=np.random.default_rng(0))
        for client in bench.clients:
            for task in client.tasks:
                assert len(task.classes) == 1


class TestScenarioRuns:
    """Scenario-built benchmarks drive the full trainer stack."""

    @pytest.mark.parametrize(
        "family", ("label-shift:dirichlet:0.3", "async-arrival")
    )
    def test_run_single_trains_under_scenario(self, family):
        from repro.experiments import get_preset, run_single

        result = run_single(
            "fedavg", svhn_like(), get_preset("unit"),
            scenario=family, use_cache=False,
        )
        assert result.scenario == family
        assert result.num_tasks == 2
        assert np.isfinite(result.final_accuracy)

    def test_scenario_instance_bypasses_cache(self):
        from repro.experiments import get_preset, run_single

        scenario = ClassIncrementalScenario(classes_per_client=(1, 2))
        a = run_single("fedavg", svhn_like(), get_preset("unit"),
                       scenario=scenario)
        b = run_single("fedavg", svhn_like(), get_preset("unit"),
                       scenario=scenario)
        assert a is not b

    def test_default_scenario_result_cached(self):
        from repro.experiments import clear_cache, get_preset, run_single

        clear_cache()
        a = run_single("fedavg", svhn_like(), get_preset("unit"))
        b = run_single("fedavg", svhn_like(), get_preset("unit"),
                       scenario="class-inc")
        assert a is b
        clear_cache()
