"""Tests for the executable convergence bounds (Section IV)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.theory import (
    ConvergenceConstants,
    gap_curve,
    global_weight_bound,
    local_weight_bound,
    theorem1_gap,
)
from repro.nn.schedules import InverseSqrtDecay


class TestConstants:
    def test_weights_must_sum_to_one(self):
        with pytest.raises(ValueError):
            ConvergenceConstants(client_weights=(0.5, 0.6))

    def test_variance_length_checked(self):
        with pytest.raises(ValueError):
            ConvergenceConstants(client_weights=(1.0,), grad_variances=(1.0, 1.0))

    def test_positive_constants_required(self):
        with pytest.raises(ValueError):
            ConvergenceConstants(mu=0.0)


class TestLemma1:
    def test_bound_positive(self):
        constants = ConvergenceConstants()
        schedule = InverseSqrtDecay(0.1)
        assert local_weight_bound(10, constants, schedule) > 0

    def test_bound_vanishes_with_sqrt_schedule(self):
        """Lemma 1 + the O(r^-1/2) constraint: the gap goes to 0."""
        constants = ConvergenceConstants()
        schedule = InverseSqrtDecay(0.1)
        early = local_weight_bound(10, constants, schedule)
        late = local_weight_bound(100_000, constants, schedule)
        assert late < early / 10

    def test_constant_lr_does_not_vanish(self):
        """Without decay the lambda^2 eta / 2 term persists (why Theorem 1
        requires the schedule)."""
        constants = ConvergenceConstants(grad_bound=2.0)
        eta = 0.1
        floor = constants.grad_bound**2 * eta / 2
        gap = constants.update_bound**2 / (2 * eta * 10**9) + floor
        assert gap > floor * 0.99

    def test_invalid_iteration(self):
        with pytest.raises(ValueError):
            local_weight_bound(0, ConvergenceConstants(), InverseSqrtDecay(0.1))


class TestLemma2:
    def test_bound_positive_and_finite(self):
        constants = ConvergenceConstants()
        for r in (1, 10, 1000):
            bound = global_weight_bound(r, constants)
            assert np.isfinite(bound)
            assert bound >= 0

    def test_bound_vanishes(self):
        constants = ConvergenceConstants()
        assert global_weight_bound(100_000, constants) < \
            global_weight_bound(10, constants)

    def test_heterogeneity_increases_bound(self):
        """More non-IID data (larger Omega) worsens the global bound."""
        iid = ConvergenceConstants(heterogeneity=0.0)
        noniid = ConvergenceConstants(heterogeneity=5.0)
        assert global_weight_bound(100, noniid) > global_weight_bound(100, iid)

    def test_integrated_norm_bound_used(self):
        constants = ConvergenceConstants()
        small = global_weight_bound(100, constants, integrated_norm=0.1)
        large = global_weight_bound(100, constants, integrated_norm=10.0)
        assert large > small


class TestTheorem1:
    def test_gap_decreases_monotonically_in_tail(self):
        rs = np.array([10, 100, 1000, 10_000, 100_000])
        curve = gap_curve(rs)
        assert (np.diff(curve) < 0).all()

    def test_gap_approaches_zero(self):
        assert theorem1_gap(10**7) < 1e-2
        assert theorem1_gap(10**7) < theorem1_gap(10) / 100

    def test_defaults_used(self):
        assert theorem1_gap(100) > 0
