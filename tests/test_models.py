"""Tests for the model zoo: all architectures, registry, body/head split."""

from __future__ import annotations

import numpy as np
import pytest

from repro import nn
from repro.models import (
    FIG9_MODELS,
    available_models,
    build_model,
    model_family,
    register_model,
)
from repro.nn import functional as F


@pytest.fixture(scope="module")
def batch():
    rng = np.random.default_rng(0)
    return nn.Tensor(rng.normal(size=(4, 3, 16, 16)).astype(np.float32))


class TestRegistry:
    def test_all_models_registered(self):
        names = available_models()
        for expected in (
            "six_cnn", "resnet18", "resnet152", "wide_resnet", "resnext",
            "inception", "densenet", "senet18", "mobilenet_v2",
            "mobilenet_v2_x2", "shufflenet_v2",
        ):
            assert expected in names

    def test_fig9_models_are_registered(self):
        for name in FIG9_MODELS:
            assert name in available_models()

    def test_unknown_model_raises(self):
        with pytest.raises(KeyError):
            build_model("alexnet", 10)

    def test_unknown_family_raises(self):
        with pytest.raises(KeyError):
            model_family("nope")

    def test_families_cover_six_categories(self):
        families = {model_family(name) for name in FIG9_MODELS}
        assert {"depth", "width", "multi-path", "feature-map", "lightweight"} <= families

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError):
            register_model("six_cnn", "baseline")(lambda *a, **k: None)


@pytest.mark.parametrize("name", available_models())
class TestEveryModel:
    def test_forward_shape(self, name, batch):
        model = build_model(name, num_classes=7, rng=np.random.default_rng(0))
        out = model(batch)
        assert out.shape == (4, 7)

    def test_backward_produces_grads(self, name, batch):
        model = build_model(name, num_classes=7, rng=np.random.default_rng(0))
        loss = F.cross_entropy(model(batch), np.array([0, 1, 2, 3]))
        loss.backward()
        grads = [p.grad for p in model.parameters()]
        assert all(g is not None for g in grads)
        assert any(np.abs(g).max() > 0 for g in grads)

    def test_deterministic_init(self, name):
        a = build_model(name, num_classes=5, rng=np.random.default_rng(7))
        b = build_model(name, num_classes=5, rng=np.random.default_rng(7))
        for (na, pa), (nb, pb) in zip(a.named_parameters(), b.named_parameters()):
            assert na == nb
            assert np.array_equal(pa.data, pb.data)

    def test_head_split(self, name):
        model = build_model(name, num_classes=5, rng=np.random.default_rng(0))
        head = model.head_parameter_names()
        body = model.body_parameter_names()
        assert head, f"{name} has no head parameters"
        assert body, f"{name} has no body parameters"
        assert set(head).isdisjoint(body)
        assert len(head) + len(body) == len(list(model.named_parameters()))

    def test_eval_mode_deterministic(self, name, batch):
        model = build_model(name, num_classes=5, rng=np.random.default_rng(0))
        model.eval()
        out1 = model.logits(batch.data)
        out2 = model.logits(batch.data)
        assert np.array_equal(out1, out2)


class TestArchitectureSpecifics:
    def test_six_cnn_has_six_weight_layers(self):
        model = build_model("six_cnn", num_classes=10, rng=np.random.default_rng(0))
        weights = [n for n, p in model.named_parameters() if p.data.ndim > 1]
        assert len(weights) == 6  # 4 conv + 2 fc

    def test_resnet152_depth(self):
        model = build_model("resnet152", num_classes=5, rng=np.random.default_rng(0))
        convs = [n for n, p in model.named_parameters() if p.data.ndim == 4]
        # 3+8+36+3 bottlenecks x 3 convs + stem + downsamples > 150
        assert len(convs) >= 150

    def test_wide_resnet_wider_than_resnet18(self):
        narrow = build_model("resnet18", num_classes=5, rng=np.random.default_rng(0))
        wide = build_model("wide_resnet", num_classes=5, rng=np.random.default_rng(0))
        assert wide.num_parameters() > 2 * narrow.num_parameters()

    def test_mobilenet_width_multiplier(self):
        x1 = build_model("mobilenet_v2", num_classes=5, rng=np.random.default_rng(0))
        x2 = build_model("mobilenet_v2_x2", num_classes=5, rng=np.random.default_rng(0))
        assert x2.num_parameters() > 2 * x1.num_parameters()

    def test_resnext_uses_groups(self):
        from repro.models.resnet import Bottleneck

        model = build_model("resnext", num_classes=5, rng=np.random.default_rng(0))
        grouped = [
            m for m in model.modules()
            if isinstance(m, nn.Conv2d) and m.groups > 1
        ]
        assert grouped

    def test_senet_has_se_modules(self):
        from repro.models.senet import SEModule

        model = build_model("senet18", num_classes=5, rng=np.random.default_rng(0))
        assert any(isinstance(m, SEModule) for m in model.modules())

    def test_densenet_concatenates(self, batch):
        model = build_model("densenet", num_classes=5, rng=np.random.default_rng(0))
        # channel growth means feature_dim exceeds stem width
        assert model.feature_dim > 12

    def test_channel_shuffle_is_permutation(self):
        shuffle = nn.ChannelShuffle(2)
        x = nn.Tensor(np.arange(8.0).reshape(1, 8, 1, 1))
        out = shuffle(x)
        assert sorted(out.data.ravel()) == sorted(x.data.ravel())
        assert not np.array_equal(out.data, x.data)

    def test_channel_shuffle_invalid_groups(self):
        shuffle = nn.ChannelShuffle(3)
        x = nn.Tensor(np.zeros((1, 8, 1, 1)))
        with pytest.raises(ValueError):
            shuffle(x)

    def test_num_classes_validation(self):
        with pytest.raises(ValueError):
            build_model("six_cnn", num_classes=1)

    def test_input_shape_validation(self):
        from repro.models.base import ImageClassifier

        with pytest.raises(ValueError):
            ImageClassifier(10, (3, 16))
