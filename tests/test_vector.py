"""Tests for parameter/gradient vector flattening."""

from __future__ import annotations

import numpy as np
import pytest

from repro import nn
from repro.nn import (
    gradients_to_vector,
    model_gradient,
    model_vector,
    parameters_to_vector,
    vector_to_gradients,
    vector_to_parameters,
)


@pytest.fixture
def model():
    return nn.Sequential(
        nn.Linear(3, 4, rng=np.random.default_rng(0)),
        nn.ReLU(),
        nn.Linear(4, 2, rng=np.random.default_rng(1)),
    )


class TestParameterVector:
    def test_round_trip(self, model):
        vector = parameters_to_vector(model.parameters())
        assert vector.dtype == np.float64
        assert vector.size == sum(p.size for p in model.parameters())
        vector_to_parameters(vector * 2.0, model.parameters())
        assert np.allclose(
            parameters_to_vector(model.parameters()), vector * 2.0, atol=1e-6
        )

    def test_size_mismatch_raises(self, model):
        with pytest.raises(ValueError):
            vector_to_parameters(np.zeros(3), model.parameters())

    def test_model_vector_helper(self, model):
        assert np.allclose(
            model_vector(model), parameters_to_vector(model.parameters())
        )


class TestGradientVector:
    def test_none_grads_become_zeros(self, model):
        vector = gradients_to_vector(model.parameters())
        assert np.allclose(vector, 0.0)

    def test_round_trip(self, model):
        x = nn.Tensor(np.ones((2, 3)))
        (model(x) ** 2).sum().backward()
        vector = gradients_to_vector(model.parameters())
        assert not np.allclose(vector, 0.0)
        vector_to_gradients(vector * -1.0, model.parameters())
        assert np.allclose(
            gradients_to_vector(model.parameters()), -vector, atol=1e-6
        )

    def test_model_gradient_helper(self, model):
        x = nn.Tensor(np.ones((2, 3)))
        (model(x) ** 2).sum().backward()
        assert np.allclose(
            model_gradient(model), gradients_to_vector(model.parameters())
        )

    def test_ordering_is_stable(self, model):
        # flattening twice gives the same layout
        x = nn.Tensor(np.ones((2, 3)))
        (model(x) ** 2).sum().backward()
        v1 = gradients_to_vector(model.parameters())
        v2 = gradients_to_vector(model.parameters())
        assert np.array_equal(v1, v2)

    def test_size_mismatch_raises(self, model):
        with pytest.raises(ValueError):
            vector_to_gradients(np.zeros(5), model.parameters())
