"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import FIGURES, main


class TestList:
    def test_list_prints_catalogue(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fedknow" in out
        assert "cifar100" in out
        assert "combined" in out
        assert "resnet18" in out
        assert "fig5" in out
        assert "class-inc" in out

    def test_list_shows_selectors(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "selectors" in out
        assert "magnitude" in out
        assert "fisher" in out
        assert "hybrid:<mix>" in out


class TestRun:
    def test_run_unit_scale(self, capsys):
        code = main([
            "run", "--method", "fedavg", "--dataset", "svhn",
            "--preset", "unit", "--seed", "2",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "accuracy" in out
        assert "forgetting" in out
        assert "fedavg" in out

    def test_run_overrides_clients_and_tasks(self, capsys):
        code = main([
            "run", "--method", "fedavg", "--dataset", "cifar100",
            "--preset", "unit", "--clients", "2", "--tasks", "2",
        ])
        assert code == 0

    def test_unknown_method_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "--method", "sgd", "--dataset", "svhn"])

    def test_unknown_dataset_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "--method", "fedavg", "--dataset", "imagenet"])

    def test_run_with_v2_delta_transport(self, capsys):
        code = main([
            "run", "--method", "fedavg", "--dataset", "cifar100",
            "--preset", "unit", "--wire", "v2", "--upload", "delta",
            "--upload-ratio", "0.1",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "v2:delta:0.1" in out
        assert "compression" in out

    def test_fp16_requires_wire_v2(self, capsys):
        code = main([
            "run", "--method", "fedavg", "--dataset", "cifar100",
            "--preset", "unit", "--fp16",
        ])
        assert code == 2
        assert "--wire v2" in capsys.readouterr().err

    def test_upload_ratio_validated(self, capsys):
        code = main([
            "run", "--method", "fedavg", "--dataset", "cifar100",
            "--preset", "unit", "--upload", "delta", "--upload-ratio", "0",
        ])
        assert code == 2
        assert "--upload-ratio" in capsys.readouterr().err

    def test_unknown_upload_mode_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "--method", "fedavg", "--dataset", "svhn",
                  "--upload", "zip"])

    def test_run_with_scenario(self, capsys):
        code = main([
            "run", "--method", "fedavg", "--dataset", "svhn",
            "--preset", "unit", "--scenario", "blurry:overlap=0.4",
        ])
        assert code == 0
        assert "blurry:overlap=0.4" in capsys.readouterr().out

    def test_invalid_scenario_rejected(self, capsys):
        code = main([
            "run", "--method", "fedavg", "--dataset", "svhn",
            "--preset", "unit", "--scenario", "imagenet-inc",
        ])
        assert code == 2
        assert "--scenario" in capsys.readouterr().err

    def test_combined_dataset_runs_from_cli(self, capsys):
        code = main([
            "run", "--method", "fedavg", "--dataset", "combined",
            "--preset", "unit", "--tasks", "2",
        ])
        assert code == 0
        assert "combined" in capsys.readouterr().out

    def test_run_with_shards_and_process_engine(self, capsys):
        code = main([
            "run", "--method", "fedavg", "--dataset", "cifar100",
            "--preset", "unit", "--engine", "process:2", "--shards", "2",
        ])
        assert code == 0
        assert "accuracy" in capsys.readouterr().out

    def test_process_engine_rejects_server_coupled_method(self, capsys):
        code = main([
            "run", "--method", "flcn", "--dataset", "cifar100",
            "--preset", "unit", "--engine", "process:2",
        ])
        assert code == 2
        assert "serial or thread" in capsys.readouterr().err

    def test_invalid_engine_rejected(self, capsys):
        code = main([
            "run", "--method", "fedavg", "--dataset", "cifar100",
            "--preset", "unit", "--engine", "quantum",
        ])
        assert code == 2
        assert "--engine" in capsys.readouterr().err

    def test_invalid_shards_rejected(self, capsys):
        code = main([
            "run", "--method", "fedavg", "--dataset", "cifar100",
            "--preset", "unit", "--shards", "0",
        ])
        assert code == 2
        assert "--shards" in capsys.readouterr().err

    def test_invalid_selector_rejected(self, capsys):
        code = main([
            "run", "--method", "fedknow", "--dataset", "cifar100",
            "--preset", "unit", "--selector", "entropy",
        ])
        assert code == 2
        err = capsys.readouterr().err
        assert "invalid --selector" in err
        assert "entropy" in err
        assert "magnitude" in err  # the error lists the known selectors

    def test_selector_on_non_extracting_method_rejected(self, capsys):
        code = main([
            "run", "--method", "fedavg", "--dataset", "cifar100",
            "--preset", "unit", "--selector", "fisher",
        ])
        assert code == 2
        err = capsys.readouterr().err
        assert "invalid --selector" in err
        assert "fedavg" in err

    def test_run_with_selector(self, capsys):
        code = main([
            "run", "--method", "fedknow", "--dataset", "svhn",
            "--preset", "unit", "--selector", "fisher",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "accuracy" in out
        assert "fisher" in out  # the summary records the selector


class TestFigure:
    def test_figures_catalogue_complete(self):
        for name in ("fig4", "fig5", "fig5-wire", "fig6", "fig7", "fig8",
                     "fig9", "fig10", "table1", "ablations", "fig4-hetero",
                     "fig-scenarios", "fig-scaling", "fig-eventsim",
                     "fig-curvature"):
            assert name in FIGURES

    def test_fig5_unit(self, capsys):
        from repro.experiments import clear_cache

        clear_cache()
        code = main(["figure", "fig5", "--preset", "unit"])
        assert code == 0
        out = capsys.readouterr().out
        assert "fedknow_gb" in out

    def test_unknown_figure_rejected(self):
        with pytest.raises(SystemExit):
            main(["figure", "fig99"])


class TestSimulate:
    def test_simulate_prints_report(self, capsys):
        code = main([
            "simulate", "--clients", "2000",
            "--population", "pareto:1.5,scale=0.01,churn=60/120",
            "--rounds", "3", "--shards", "4", "--max-staleness", "2",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "eventsim: 2000 clients" in out
        assert "per-round serving" in out

    def test_simulate_rejects_bad_spec(self, capsys):
        code = main(["simulate", "--clients", "10",
                     "--population", "weibull:2"])
        assert code == 2
        assert "population" in capsys.readouterr().err

    def test_simulate_rejects_bad_deadline(self, capsys):
        code = main(["simulate", "--clients", "10", "--deadline", "soon"])
        assert code == 2
        assert "deadline" in capsys.readouterr().err


class TestPopulationFlags:
    def test_run_with_population_and_max_staleness(self, capsys):
        code = main([
            "run", "--method", "fedavg", "--dataset", "cifar100",
            "--preset", "unit", "--clients", "3", "--tasks", "2",
            "--population", "fixed,churn=20/30",
            "--participation", "deadline:auto", "--max-staleness", "3",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "deadline:auto,max=3" in out
        assert "evicted" in out

    def test_max_staleness_needs_deadline_policy(self, capsys):
        code = main([
            "run", "--method", "fedavg", "--dataset", "cifar100",
            "--preset", "unit", "--max-staleness", "2",
        ])
        assert code == 2
        assert "max-staleness" in capsys.readouterr().err

    def test_invalid_population_rejected(self, capsys):
        code = main([
            "run", "--method", "fedavg", "--dataset", "cifar100",
            "--preset", "unit", "--population", "pareto",
        ])
        assert code == 2
        assert "population" in capsys.readouterr().err


class TestSearchCommand:
    def test_search_unit(self, capsys):
        from repro.experiments import clear_cache

        clear_cache()
        code = main(["search", "--preset", "unit"])
        assert code == 0
        assert "best" in capsys.readouterr().out


class TestServeCommands:
    def test_list_shows_engines(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "engines" in out
        assert "socket[:W]" in out
        assert "process[:W]" in out

    def test_invalid_engine_rejected_with_clear_message(self, capsys):
        code = main([
            "run", "--method", "fedavg", "--dataset", "svhn",
            "--preset", "unit", "--engine", "quantum",
        ])
        assert code == 2
        err = capsys.readouterr().err
        assert "invalid --engine" in err
        assert "quantum" in err
        assert "socket" in err  # the error lists the known engines

    def test_socket_engine_accepted_by_run(self, capsys):
        code = main([
            "run", "--method", "fedavg", "--dataset", "svhn",
            "--preset", "unit", "--engine", "socket:2",
        ])
        assert code == 0
        assert "accuracy" in capsys.readouterr().out

    def test_worker_rejects_malformed_connect(self, capsys):
        code = main(["worker", "--connect", "nonsense"])
        assert code == 2
        assert "HOST:PORT" in capsys.readouterr().err

    def test_worker_reports_unreachable_server(self, capsys):
        probe_code = main([
            "worker", "--connect", "127.0.0.1:1", "--retries", "1",
        ])
        assert probe_code == 1
        assert "could not connect" in capsys.readouterr().err

    def test_serve_validates_worker_count(self, capsys):
        code = main([
            "serve", "--method", "fedavg", "--dataset", "cifar100",
            "--preset", "unit", "--workers", "0",
        ])
        assert code == 2
        assert "--workers" in capsys.readouterr().err
