"""Focused tests for FedKnowClient's signature-selection and compute paths."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.client import FedKnowClient
from repro.core.config import FedKnowConfig
from repro.data import build_benchmark, cifar100_like
from repro.federated import TrainConfig
from repro.models import build_model


@pytest.fixture
def four_task_benchmark():
    spec = cifar100_like(train_per_class=10, test_per_class=4).with_tasks(4)
    return build_benchmark(spec, num_clients=1, rng=np.random.default_rng(0))


def make_client(benchmark, fedknow_config):
    spec = benchmark.spec

    def factory():
        return build_model(
            spec.model_name, spec.num_classes, input_shape=spec.input_shape,
            rng=np.random.default_rng(3), width=8,
        )

    config = TrainConfig(batch_size=8, lr=0.02, rounds_per_task=1,
                         iterations_per_round=3)
    return FedKnowClient(
        0, benchmark.clients[0], factory(), config,
        model_factory=factory, fedknow=fedknow_config,
        rng=np.random.default_rng(0),
    )


class TestConfigValidation:
    def test_invalid_ratio(self):
        with pytest.raises(ValueError):
            FedKnowConfig(knowledge_ratio=0.0)

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            FedKnowConfig(num_signature_gradients=0)

    def test_invalid_refresh(self):
        with pytest.raises(ValueError):
            FedKnowConfig(signature_refresh=0)

    def test_updated_copies(self):
        config = FedKnowConfig()
        changed = config.updated(knowledge_ratio=0.2)
        assert changed.knowledge_ratio == 0.2
        assert config.knowledge_ratio == 0.10

    def test_paper_defaults(self):
        config = FedKnowConfig()
        assert config.knowledge_ratio == 0.10  # rho = 10 %
        assert config.num_signature_gradients == 10  # k = 10
        assert config.distance_metric == "wasserstein"


class TestSignatureSelection:
    def test_selection_engages_when_store_exceeds_k(self, four_task_benchmark):
        config = FedKnowConfig(
            num_signature_gradients=2, signature_refresh=2,
            extraction_finetune_iterations=0,
            aggregation_integration=False,
        )
        client = make_client(four_task_benchmark, config)
        for position in range(3):
            client.begin_task(position)
            client.local_train(3)
            client.end_task()
        # 3 stored tasks > k=2: selection must be active on task 4
        client.begin_task(3)
        client.local_train(3)
        assert client._signature_indices is not None
        assert len(client._signature_indices) == 2

    def test_selection_skipped_when_store_small(self, four_task_benchmark):
        config = FedKnowConfig(
            num_signature_gradients=10, extraction_finetune_iterations=0,
            aggregation_integration=False,
        )
        client = make_client(four_task_benchmark, config)
        for position in range(2):
            client.begin_task(position)
            client.local_train(2)
            client.end_task()
        client.begin_task(2)
        client.local_train(2)
        assert client._signature_indices is None  # all tasks used directly

    def test_refresh_resets_at_task_boundary(self, four_task_benchmark):
        config = FedKnowConfig(
            num_signature_gradients=2, signature_refresh=100,
            extraction_finetune_iterations=0,
            aggregation_integration=False,
        )
        client = make_client(four_task_benchmark, config)
        for position in range(4):
            client.begin_task(position)
            client.local_train(2)
            client.end_task()
            assert client._signature_indices is None  # cleared by end_task

    def test_compute_units_include_restorations(self, four_task_benchmark):
        config = FedKnowConfig(
            num_signature_gradients=2, extraction_finetune_iterations=0,
            aggregation_integration=False,
        )
        client = make_client(four_task_benchmark, config)
        client.begin_task(0)
        client.local_train(3)
        base_units = client.take_compute_units()
        assert base_units == pytest.approx(3.0)  # no knowledge yet
        client.end_task()
        client.take_compute_units()
        client.begin_task(1)
        client.local_train(3)
        with_knowledge = client.take_compute_units()
        assert with_knowledge > base_units  # restorations cost extra passes


class TestKnowledgeGrowth:
    def test_store_bytes_grow_linearly(self, four_task_benchmark):
        config = FedKnowConfig(extraction_finetune_iterations=0,
                               aggregation_integration=False)
        client = make_client(four_task_benchmark, config)
        sizes = []
        for position in range(3):
            client.begin_task(position)
            client.local_train(2)
            client.end_task()
            sizes.append(client.store.nbytes)
        growth1 = sizes[1] - sizes[0]
        growth2 = sizes[2] - sizes[1]
        assert growth1 > 0
        assert growth2 == pytest.approx(growth1, rel=0.35)

    def test_knowledge_entries_record_task_metadata(self, four_task_benchmark):
        config = FedKnowConfig(extraction_finetune_iterations=0,
                               aggregation_integration=False)
        client = make_client(four_task_benchmark, config)
        client.begin_task(0)
        client.local_train(2)
        client.end_task()
        entry = client.store[0]
        task = four_task_benchmark.clients[0].tasks[0]
        assert entry.task_id == task.task_id
        assert np.array_equal(entry.classes, task.classes)
        assert entry.ratio == config.knowledge_ratio
