"""Tests for the metrics tracker (accuracy matrix, forgetting, accounting)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.metrics import RoundRecord, RunResult, accuracy_matrix_from_client_evals


def make_result(matrix, rounds=()):
    return RunResult(
        method="m", dataset="d", num_clients=2, num_tasks=matrix.shape[0],
        accuracy_matrix=np.asarray(matrix, dtype=float), rounds=list(rounds),
    )


def record(position=0, up=100, down=200, train=1.0, comm=2.0, active=2):
    return RoundRecord(
        position=position, round_index=0, upload_bytes=up, download_bytes=down,
        sim_train_seconds=train, sim_comm_seconds=comm, active_clients=active,
        mean_loss=0.5,
    )


class TestAccuracyMatrix:
    def test_builder_averages_clients(self):
        evals = [
            [[0.8], [0.6]],           # stage 0: two clients, task 0
            [[0.7, 0.9], [0.5, 0.7]], # stage 1
        ]
        matrix = accuracy_matrix_from_client_evals(evals)
        assert matrix[0, 0] == pytest.approx(0.7)
        assert matrix[1, 0] == pytest.approx(0.6)
        assert matrix[1, 1] == pytest.approx(0.8)
        assert np.isnan(matrix[0, 1])

    def test_builder_validates_lengths(self):
        with pytest.raises(ValueError):
            accuracy_matrix_from_client_evals([[[0.5, 0.5]]])


class TestAccuracyMetrics:
    def test_accuracy_curve_averages_learned_tasks(self):
        matrix = np.array([[0.9, np.nan], [0.5, 0.7]])
        result = make_result(matrix)
        assert result.accuracy_curve[0] == pytest.approx(0.9)
        assert result.accuracy_curve[1] == pytest.approx(0.6)
        assert result.final_accuracy == pytest.approx(0.6)

    def test_forgetting_rate_paper_definition(self):
        # task 0: 0.8 right after learning, 0.4 after task 1
        matrix = np.array([[0.8, np.nan], [0.4, 0.9]])
        result = make_result(matrix)
        assert result.forgetting_rate(0) == 0.0
        assert result.forgetting_rate(1) == pytest.approx(0.5)

    def test_forgetting_clipped_to_unit_interval(self):
        # accuracy improved on the old task => no negative forgetting
        matrix = np.array([[0.5, np.nan], [0.9, 0.9]])
        result = make_result(matrix)
        assert result.forgetting_rate(1) == 0.0

    def test_forgetting_curve_length(self):
        matrix = np.array([[0.5, np.nan], [0.4, 0.6]])
        assert len(make_result(matrix).forgetting_curve) == 2


class TestAccounting:
    def test_comm_totals(self):
        result = make_result(
            np.array([[0.5]]),
            rounds=[record(up=100, down=200), record(up=50, down=25)],
        )
        assert result.total_upload_bytes == 150
        assert result.total_download_bytes == 225
        assert result.total_comm_bytes == 375

    def test_upload_compression_zero_bytes_is_neutral(self):
        # a round with no uploads (skipped, or every client lost) has no
        # meaningful ratio: both zero-byte axes pin to 1.0, never 0 or a
        # division by zero
        empty = record(up=0, down=0)
        assert empty.upload_compression == 1.0
        zero_raw = RoundRecord(
            position=0, round_index=0, upload_bytes=10, download_bytes=0,
            sim_train_seconds=0.0, sim_comm_seconds=0.0, active_clients=0,
            mean_loss=float("nan"), raw_upload_bytes=0,
        )
        assert zero_raw.upload_compression == 1.0
        result = make_result(np.array([[0.5]]), rounds=[empty])
        assert result.upload_compression == 1.0

    def test_total_lost_clients(self):
        lost = record()
        lost.lost = 3
        result = make_result(np.array([[0.5]]), rounds=[record(), lost])
        assert result.total_lost_clients == 3

    def test_sim_time_totals(self):
        result = make_result(
            np.array([[0.5]]),
            rounds=[record(train=1.0, comm=2.0), record(train=3.0, comm=4.0)],
        )
        assert result.sim_train_seconds == pytest.approx(4.0)
        assert result.sim_comm_seconds == pytest.approx(6.0)
        assert result.sim_total_seconds == pytest.approx(10.0)

    def test_time_curve_cumulative_hours(self):
        rounds = [
            record(position=0, train=1800.0, comm=0.0),
            record(position=1, train=1800.0, comm=1800.0),
        ]
        result = make_result(np.array([[0.5, np.nan], [0.4, 0.6]]), rounds)
        curve = result.time_curve()
        assert curve[0] == pytest.approx(0.5)
        assert curve[1] == pytest.approx(1.5)

    def test_summary_keys(self):
        result = make_result(np.array([[0.5]]), rounds=[record()])
        summary = result.summary()
        assert set(summary) == {
            "method", "dataset", "scenario", "participation", "transport",
            "selector", "final_accuracy", "final_forgetting", "comm_gb",
            "upload_x", "sim_hours",
        }
