"""End-to-end integration tests: the paper's qualitative claims at tiny scale.

These run real (seconds-scale) federated continual training and check the
mechanisms FedKNOW's evaluation rests on: catastrophic forgetting exists and
FedKNOW mitigates it; communication accounting reflects FedWEIT's growth;
identical-seed runs are reproducible.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import build_benchmark, cifar100_like
from repro.edge import jetson_cluster
from repro.federated import TrainConfig, create_trainer


@pytest.fixture(scope="module")
def spec():
    return cifar100_like(train_per_class=16, test_per_class=6).with_tasks(3)


@pytest.fixture(scope="module")
def config():
    return TrainConfig(batch_size=12, lr=0.015, rounds_per_task=2,
                       iterations_per_round=6)


def run(method, spec, config, seed=7, **kwargs):
    bench = build_benchmark(spec, num_clients=3, rng=np.random.default_rng(seed))
    trainer = create_trainer(
        method, bench, config, cluster=jetson_cluster(), **kwargs
    )
    return trainer.run()


@pytest.fixture(scope="module")
def fedavg(spec, config):
    return run("fedavg", spec, config)


@pytest.fixture(scope="module")
def fedknow(spec, config):
    return run("fedknow", spec, config)


@pytest.fixture(scope="module")
def fedweit(spec, config):
    return run("fedweit", spec, config)


class TestQualitativeClaims:
    def test_sequential_finetuning_forgets(self, config):
        """Catastrophic forgetting exists in the substrate: a single client
        fine-tuning through its task sequence loses the first task.

        (In the federated runs below, aggregation across clients with
        different task orders partially masks forgetting at this tiny scale,
        so the mechanism is asserted in its pure sequential form.)
        """
        from repro.data import single_client_benchmark

        seq_spec = cifar100_like(train_per_class=24, test_per_class=8).with_tasks(4)
        bench = single_client_benchmark(seq_spec, rng=np.random.default_rng(0))
        trainer = create_trainer(
            "fedavg",
            bench,
            config.updated(rounds_per_task=3, iterations_per_round=10),
            with_cost_model=False,
        )
        result = trainer.run()
        first_then = result.accuracy_matrix[0, 0]
        first_now = result.accuracy_matrix[3, 0]
        assert first_now < first_then - 0.05, result.accuracy_matrix

    def test_fedknow_beats_fedavg(self, fedavg, fedknow):
        assert fedknow.final_accuracy > fedavg.final_accuracy

    def test_fedknow_retains_old_tasks(self, fedavg, fedknow):
        """After the final stage, FedKNOW's accuracy on earlier tasks is at
        least FedAvg's (the retention the integrator buys)."""
        last = fedknow.accuracy_matrix.shape[0] - 1
        old_fedknow = fedknow.accuracy_matrix[last, :last].mean()
        old_fedavg = fedavg.accuracy_matrix[last, :last].mean()
        assert old_fedknow >= old_fedavg - 0.02

    def test_fedknow_forgetting_bounded(self, fedknow):
        assert float(fedknow.forgetting_curve[-1]) < 0.25

    def test_fedweit_communicates_more(self, fedknow, fedweit):
        """FedWEIT's adaptive-weight traffic exceeds FedKNOW's FedAvg-only
        payloads (Fig. 5's claim)."""
        assert fedweit.total_comm_bytes > fedknow.total_comm_bytes

    def test_training_time_comparable(self, fedavg, fedknow):
        """FedKNOW's claim: accuracy gains 'without increasing model training
        time' materially — simulated hours within a small factor."""
        assert fedknow.sim_train_seconds < 3.0 * fedavg.sim_train_seconds

    def test_accuracy_matrix_filled(self, fedknow):
        matrix = fedknow.accuracy_matrix
        lower = np.tril_indices_from(matrix)
        assert np.isfinite(matrix[lower]).all()
        assert (matrix[lower] >= 0).all() and (matrix[lower] <= 1).all()


class TestReproducibility:
    def test_same_seed_same_result(self, spec, config):
        a = run("fedavg", spec, config, seed=3)
        b = run("fedavg", spec, config, seed=3)
        assert np.allclose(a.accuracy_matrix, b.accuracy_matrix, equal_nan=True)
        assert a.total_comm_bytes == b.total_comm_bytes

    def test_different_seed_different_data(self, spec, config):
        a = run("fedavg", spec, config, seed=3)
        b = run("fedavg", spec, config, seed=4)
        assert not np.allclose(a.accuracy_matrix, b.accuracy_matrix,
                               equal_nan=True)


class TestKnowledgeLifecycle:
    def test_fedknow_clients_accumulate_knowledge(self, spec, config):
        bench = build_benchmark(spec, num_clients=2,
                                rng=np.random.default_rng(0))
        trainer = create_trainer("fedknow", bench, config,
                                 cluster=jetson_cluster())
        trainer.run()
        for client in trainer.clients:
            assert len(client.store) == spec.num_tasks
            ratios = {entry.ratio for entry in client.store}
            assert ratios == {0.10}

    def test_fedknow_integrations_happened(self, spec, config):
        bench = build_benchmark(spec, num_clients=2,
                                rng=np.random.default_rng(0))
        trainer = create_trainer("fedknow", bench, config,
                                 cluster=jetson_cluster())
        trainer.run()
        total = sum(c.integration_stats["integrations"]
                    for c in trainer.clients)
        assert total > 0
