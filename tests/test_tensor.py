"""Tests for the autograd tensor engine."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.nn import Tensor, as_tensor, concat, no_grad, stack
from repro.nn.tensor import _unbroadcast

floats = hnp.arrays(
    np.float64,
    hnp.array_shapes(min_dims=1, max_dims=3, max_side=4),
    elements=st.floats(-5, 5, allow_nan=False, width=32),
)


class TestConstruction:
    def test_default_dtype_is_float32(self):
        assert Tensor([1.0, 2.0]).dtype == np.float32

    def test_explicit_dtype(self):
        assert Tensor([1.0], dtype=np.float64).dtype == np.float64

    def test_from_tensor_shares_semantics(self):
        t = Tensor([1.0, 2.0])
        u = Tensor(t)
        assert np.allclose(u.data, t.data)

    def test_requires_grad_flag(self):
        assert not Tensor([1.0]).requires_grad
        assert Tensor([1.0], requires_grad=True).requires_grad

    def test_shape_ndim_size(self):
        t = Tensor(np.zeros((2, 3)))
        assert t.shape == (2, 3)
        assert t.ndim == 2
        assert t.size == 6
        assert len(t) == 2

    def test_item_on_scalar(self):
        assert Tensor(3.5).item() == pytest.approx(3.5)

    def test_as_tensor_passthrough(self):
        t = Tensor([1.0])
        assert as_tensor(t) is t
        assert isinstance(as_tensor([1.0]), Tensor)


class TestBackwardBasics:
    def test_backward_on_non_grad_tensor_raises(self):
        with pytest.raises(RuntimeError):
            Tensor([1.0]).backward()

    def test_backward_on_non_scalar_requires_grad_arg(self):
        t = Tensor([1.0, 2.0], requires_grad=True)
        with pytest.raises(RuntimeError):
            (t * 2.0).backward()

    def test_simple_chain(self):
        x = Tensor(2.0, requires_grad=True)
        y = x * x + x
        y.backward()
        assert x.grad == pytest.approx(5.0)  # 2x + 1 at x=2

    def test_grad_accumulates_across_backwards(self):
        x = Tensor(1.0, requires_grad=True)
        (x * 3.0).backward()
        (x * 2.0).backward()
        assert x.grad == pytest.approx(5.0)

    def test_zero_grad(self):
        x = Tensor(1.0, requires_grad=True)
        (x * 3.0).backward()
        x.zero_grad()
        assert x.grad is None

    def test_detach_cuts_graph(self):
        x = Tensor(2.0, requires_grad=True)
        y = x.detach()
        assert not y.requires_grad

    def test_diamond_graph_accumulation(self):
        # x used twice: gradient must sum both paths
        x = Tensor(3.0, requires_grad=True)
        a = x * 2.0
        b = x * 4.0
        (a + b).backward()
        assert x.grad == pytest.approx(6.0)

    def test_deep_chain_no_recursion_error(self):
        x = Tensor(1.0, requires_grad=True)
        y = x
        for _ in range(2000):
            y = y + 0.001
        y.backward()
        assert x.grad == pytest.approx(1.0)

    def test_no_grad_disables_graph(self):
        x = Tensor(1.0, requires_grad=True)
        with no_grad():
            y = x * 2.0
        assert not y.requires_grad
        assert y._backward is None


class TestArithmetic:
    @given(floats)
    def test_add_backward_matches_ones(self, data):
        x = Tensor(data, requires_grad=True, dtype=np.float64)
        (x + x).sum().backward()
        assert np.allclose(x.grad, 2.0 * np.ones_like(data))

    def test_broadcast_add(self):
        x = Tensor(np.ones((2, 3)), requires_grad=True, dtype=np.float64)
        b = Tensor(np.ones(3), requires_grad=True, dtype=np.float64)
        (x + b).sum().backward()
        assert x.grad.shape == (2, 3)
        assert np.allclose(b.grad, [2.0, 2.0, 2.0])

    def test_mul_grad(self):
        x = Tensor([2.0, 3.0], requires_grad=True, dtype=np.float64)
        y = Tensor([5.0, 7.0], requires_grad=True, dtype=np.float64)
        (x * y).sum().backward()
        assert np.allclose(x.grad, [5.0, 7.0])
        assert np.allclose(y.grad, [2.0, 3.0])

    def test_div_grad(self):
        x = Tensor([4.0], requires_grad=True, dtype=np.float64)
        y = Tensor([2.0], requires_grad=True, dtype=np.float64)
        (x / y).sum().backward()
        assert np.allclose(x.grad, [0.5])
        assert np.allclose(y.grad, [-1.0])

    def test_rsub_rdiv(self):
        x = Tensor([2.0], requires_grad=True, dtype=np.float64)
        (10.0 - x).sum().backward()
        assert np.allclose(x.grad, [-1.0])
        x.zero_grad()
        (8.0 / x).sum().backward()
        assert np.allclose(x.grad, [-2.0])

    def test_pow_grad(self):
        x = Tensor([3.0], requires_grad=True, dtype=np.float64)
        (x**3).sum().backward()
        assert np.allclose(x.grad, [27.0])

    def test_pow_rejects_tensor_exponent(self):
        x = Tensor([1.0], requires_grad=True)
        with pytest.raises(TypeError):
            x ** Tensor([2.0])

    def test_neg(self):
        x = Tensor([1.0, -2.0], requires_grad=True, dtype=np.float64)
        (-x).sum().backward()
        assert np.allclose(x.grad, [-1.0, -1.0])

    def test_matmul_grads(self, gradcheck):
        rng = np.random.default_rng(3)
        a = Tensor(rng.normal(size=(3, 4)), requires_grad=True, dtype=np.float64)
        b = Tensor(rng.normal(size=(4, 2)), requires_grad=True, dtype=np.float64)
        ((a @ b) ** 2).sum().backward()

        def f():
            return float(((a.data @ b.data) ** 2).sum())

        assert np.allclose(gradcheck(f, a.data), a.grad, atol=1e-5)
        assert np.allclose(gradcheck(f, b.data), b.grad, atol=1e-5)


class TestElementwiseOps:
    @pytest.mark.parametrize(
        "op,derivative",
        [
            ("relu", lambda x: (x > 0).astype(float)),
            ("sigmoid", lambda x: (1 / (1 + np.exp(-x))) * (1 - 1 / (1 + np.exp(-x)))),
            ("tanh", lambda x: 1 - np.tanh(x) ** 2),
            ("exp", np.exp),
        ],
    )
    def test_derivatives(self, op, derivative):
        data = np.array([-1.5, -0.2, 0.3, 2.0])
        x = Tensor(data, requires_grad=True, dtype=np.float64)
        getattr(x, op)().sum().backward()
        assert np.allclose(x.grad, derivative(data), atol=1e-12)

    def test_log_sqrt_abs(self):
        data = np.array([0.5, 2.0, 4.0])
        x = Tensor(data, requires_grad=True, dtype=np.float64)
        x.log().sum().backward()
        assert np.allclose(x.grad, 1.0 / data)
        x.zero_grad()
        x.sqrt().sum().backward()
        assert np.allclose(x.grad, 0.5 / np.sqrt(data))
        y = Tensor([-2.0, 3.0], requires_grad=True, dtype=np.float64)
        y.abs().sum().backward()
        assert np.allclose(y.grad, [-1.0, 1.0])


class TestReductionsAndViews:
    def test_sum_axis_keepdims(self):
        x = Tensor(np.ones((2, 3, 4)), requires_grad=True, dtype=np.float64)
        s = x.sum(axis=(0, 2), keepdims=True)
        assert s.shape == (1, 3, 1)
        s.sum().backward()
        assert np.allclose(x.grad, np.ones((2, 3, 4)))

    def test_mean_gradient_scaling(self):
        x = Tensor(np.ones((4, 5)), requires_grad=True, dtype=np.float64)
        x.mean().backward()
        assert np.allclose(x.grad, np.full((4, 5), 1.0 / 20))

    def test_mean_axis(self):
        x = Tensor(np.arange(6.0).reshape(2, 3), requires_grad=True, dtype=np.float64)
        m = x.mean(axis=1)
        assert np.allclose(m.data, [1.0, 4.0])
        m.sum().backward()
        assert np.allclose(x.grad, np.full((2, 3), 1.0 / 3))

    def test_max_gradient_to_argmax(self):
        x = Tensor([[1.0, 5.0, 2.0]], requires_grad=True, dtype=np.float64)
        x.max(axis=1).sum().backward()
        assert np.allclose(x.grad, [[0.0, 1.0, 0.0]])

    def test_max_ties_split_gradient(self):
        x = Tensor([[2.0, 2.0]], requires_grad=True, dtype=np.float64)
        x.max(axis=1).sum().backward()
        assert np.allclose(x.grad.sum(), 1.0)

    def test_reshape_transpose_flatten(self):
        x = Tensor(np.arange(24.0).reshape(2, 3, 4), requires_grad=True,
                   dtype=np.float64)
        y = x.reshape(6, 4).transpose(1, 0).flatten()
        assert y.shape == (4, 6)
        y.sum().backward()
        assert np.allclose(x.grad, np.ones((2, 3, 4)))

    def test_getitem_scatter(self):
        x = Tensor(np.arange(10.0), requires_grad=True, dtype=np.float64)
        x[2:5].sum().backward()
        expected = np.zeros(10)
        expected[2:5] = 1.0
        assert np.allclose(x.grad, expected)

    def test_concat_backward_splits(self):
        a = Tensor(np.ones((2, 2)), requires_grad=True, dtype=np.float64)
        b = Tensor(np.ones((2, 3)), requires_grad=True, dtype=np.float64)
        (concat([a, b], axis=1) * 2.0).sum().backward()
        assert np.allclose(a.grad, np.full((2, 2), 2.0))
        assert np.allclose(b.grad, np.full((2, 3), 2.0))

    def test_stack_backward(self):
        a = Tensor(np.ones(3), requires_grad=True, dtype=np.float64)
        b = Tensor(np.ones(3), requires_grad=True, dtype=np.float64)
        s = stack([a, b], axis=0)
        assert s.shape == (2, 3)
        (s * np.array([[1.0], [2.0]])).sum().backward()
        assert np.allclose(a.grad, np.ones(3))
        assert np.allclose(b.grad, np.full(3, 2.0))


class TestUnbroadcast:
    @given(floats)
    def test_unbroadcast_identity(self, data):
        assert np.array_equal(_unbroadcast(data, data.shape), data)

    def test_unbroadcast_sums_leading(self):
        grad = np.ones((5, 2, 3))
        out = _unbroadcast(grad, (2, 3))
        assert out.shape == (2, 3)
        assert np.allclose(out, np.full((2, 3), 5.0))

    def test_unbroadcast_sums_size_one_dims(self):
        grad = np.ones((2, 3))
        out = _unbroadcast(grad, (2, 1))
        assert out.shape == (2, 1)
        assert np.allclose(out, np.full((2, 1), 3.0))
