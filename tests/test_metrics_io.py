"""Tests for RunResult JSON persistence."""

from __future__ import annotations

import numpy as np
import pytest

from repro.metrics import (
    RoundRecord,
    RunResult,
    load_result,
    load_results,
    result_from_dict,
    result_to_dict,
    save_result,
    save_results,
)


@pytest.fixture
def result():
    matrix = np.array([[0.8, np.nan], [0.6, 0.9]])
    rounds = [
        RoundRecord(0, 0, 100, 200, 1.5, 2.5, 3, 0.7),
        RoundRecord(1, 0, 150, 250, 1.0, 2.0, 3, np.nan),
    ]
    return RunResult("fedknow", "cifar100", 3, 2, matrix, rounds, 12.5)


class TestDictRoundTrip:
    def test_nan_encoded_as_none(self, result):
        payload = result_to_dict(result)
        assert payload["accuracy_matrix"][0][1] is None
        assert payload["rounds"][1]["mean_loss"] is None

    def test_round_trip_preserves_transport_fields(self, result):
        result.transport = "v2:delta:0.1"
        result.rounds[0].raw_upload_bytes = 400
        restored = result_from_dict(result_to_dict(result))
        assert restored.transport == "v2:delta:0.1"
        assert restored.rounds[0].raw_upload_bytes == 400
        assert restored.rounds[0].upload_compression == pytest.approx(4.0)
        # rounds without explicit raw accounting default to uncompressed
        assert restored.rounds[1].raw_upload_bytes == 150

    def test_legacy_payload_defaults(self, result):
        payload = result_to_dict(result)
        del payload["transport"]
        del payload["scenario"]
        del payload["selector"]
        for record in payload["rounds"]:
            del record["raw_upload_bytes"]
        restored = result_from_dict(payload)
        assert restored.transport == "v1:dense"
        assert restored.scenario == "class-inc"
        assert restored.selector == "magnitude"
        assert restored.upload_compression == 1.0

    def test_round_trip_preserves_selector(self, result):
        result.selector = "hybrid:0.5"
        restored = result_from_dict(result_to_dict(result))
        assert restored.selector == "hybrid:0.5"
        assert restored.summary()["selector"] == "hybrid:0.5"

    def test_round_trip_preserves_evicted(self, result):
        result.rounds[0].evicted = 3
        restored = result_from_dict(result_to_dict(result))
        assert restored.rounds[0].evicted == 3
        assert restored.rounds[1].evicted == 0
        assert restored.total_evicted_clients == 3
        # payloads written before bounded straggler carry lack the field
        payload = result_to_dict(result)
        for record in payload["rounds"]:
            del record["evicted"]
        assert result_from_dict(payload).total_evicted_clients == 0

    def test_round_trip_preserves_scenario(self, result):
        result.scenario = "blurry:overlap=0.2"
        restored = result_from_dict(result_to_dict(result))
        assert restored.scenario == "blurry:overlap=0.2"
        assert restored.summary()["scenario"] == "blurry:overlap=0.2"

    def test_round_trip_preserves_metrics(self, result):
        restored = result_from_dict(result_to_dict(result))
        assert restored.method == result.method
        assert restored.dataset == result.dataset
        assert np.allclose(
            restored.accuracy_matrix, result.accuracy_matrix, equal_nan=True
        )
        assert restored.total_comm_bytes == result.total_comm_bytes
        assert restored.sim_total_seconds == pytest.approx(
            result.sim_total_seconds
        )
        assert np.allclose(restored.accuracy_curve, result.accuracy_curve)
        assert np.allclose(restored.forgetting_curve, result.forgetting_curve)


class TestFileRoundTrip:
    def test_single_result(self, result, tmp_path):
        path = tmp_path / "run.json"
        save_result(result, path)
        restored = load_result(path)
        assert restored.final_accuracy == pytest.approx(result.final_accuracy)
        assert len(restored.rounds) == 2

    def test_many_results(self, result, tmp_path):
        path = tmp_path / "runs.json"
        save_results([result, result], path)
        restored = load_results(path)
        assert len(restored) == 2
        assert restored[0].method == "fedknow"

    def test_empty_collection(self, tmp_path):
        path = tmp_path / "empty.json"
        save_results([], path)
        assert load_results(path) == []
