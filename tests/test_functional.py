"""Numeric gradient checks and behaviour tests for nn.functional."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.nn import Tensor
from repro.nn import functional as F


def t(data, grad=True):
    return Tensor(data, requires_grad=grad, dtype=np.float64)


class TestIm2Col:
    def test_shapes(self, rng):
        x = rng.normal(size=(2, 3, 8, 8))
        cols, oh, ow = F.im2col(x, 3, 3, 1, 1, 1, 1)
        assert (oh, ow) == (8, 8)
        assert cols.shape == (2, 3 * 9, 64)

    def test_col2im_inverts_sum(self, rng):
        # col2im(im2col(x)) multiplies each pixel by its window multiplicity
        x = rng.normal(size=(1, 1, 4, 4))
        cols, _, _ = F.im2col(x, 2, 2, 2, 2, 0, 0)
        back = F.col2im(cols, x.shape, 2, 2, 2, 2, 0, 0)
        assert np.allclose(back, x)  # non-overlapping windows: exact inverse

    def test_window_too_large_raises(self, rng):
        x = rng.normal(size=(1, 1, 3, 3))
        with pytest.raises(ValueError):
            F.im2col(x, 5, 5, 1, 1, 0, 0)


class TestConv2d:
    def test_matches_manual_convolution(self):
        x = t(np.arange(16.0).reshape(1, 1, 4, 4))
        w = t(np.ones((1, 1, 2, 2)))
        out = F.conv2d(x, w, stride=2)
        expected = np.array([[[[0 + 1 + 4 + 5, 2 + 3 + 6 + 7],
                               [8 + 9 + 12 + 13, 10 + 11 + 14 + 15]]]])
        assert np.allclose(out.data, expected)

    @pytest.mark.parametrize("groups", [1, 2, 4])
    def test_gradcheck_groups(self, rng, gradcheck, groups):
        x = t(rng.normal(size=(2, 4, 5, 5)))
        w = t(rng.normal(size=(4, 4 // groups, 3, 3)))
        b = t(rng.normal(size=(4,)))
        out = F.conv2d(x, w, b, stride=1, padding=1, groups=groups)
        (out * out).sum().backward()

        def f():
            return float(
                (F.conv2d(x, w, b, stride=1, padding=1, groups=groups).data ** 2).sum()
            )

        for tensor in (x, w, b):
            assert np.allclose(gradcheck(f, tensor.data), tensor.grad, atol=1e-5)

    def test_depthwise(self, rng):
        x = t(rng.normal(size=(1, 6, 4, 4)))
        w = t(rng.normal(size=(6, 1, 3, 3)))
        out = F.conv2d(x, w, padding=1, groups=6)
        assert out.shape == (1, 6, 4, 4)

    def test_channel_mismatch_raises(self, rng):
        x = t(rng.normal(size=(1, 3, 4, 4)))
        w = t(rng.normal(size=(4, 2, 3, 3)))
        with pytest.raises(ValueError):
            F.conv2d(x, w)

    def test_groups_not_dividing_output_raises(self, rng):
        x = t(rng.normal(size=(1, 4, 4, 4)))
        w = t(rng.normal(size=(3, 2, 3, 3)))
        with pytest.raises(ValueError):
            F.conv2d(x, w, groups=2)


class TestPooling:
    def test_max_pool_values(self):
        x = t(np.array([[[[1.0, 2.0], [3.0, 4.0]]]]))
        out = F.max_pool2d(x, 2)
        assert out.data.item() == 4.0

    def test_max_pool_gradcheck(self, rng, gradcheck):
        x = t(rng.normal(size=(2, 3, 6, 6)))
        F.max_pool2d(x, 2).sum().backward()

        def f():
            return float(F.max_pool2d(x, 2).data.sum())

        assert np.allclose(gradcheck(f, x.data), x.grad, atol=1e-6)

    def test_max_pool_overlapping_with_padding(self, rng):
        x = t(rng.normal(size=(1, 2, 5, 5)))
        out = F.max_pool2d(x, 3, stride=1, padding=1)
        assert out.shape == (1, 2, 5, 5)

    def test_avg_pool_values(self):
        x = t(np.array([[[[1.0, 2.0], [3.0, 4.0]]]]))
        assert F.avg_pool2d(x, 2).data.item() == pytest.approx(2.5)

    def test_avg_pool_gradcheck(self, rng, gradcheck):
        x = t(rng.normal(size=(2, 2, 4, 4)))
        (F.avg_pool2d(x, 2) ** 2).sum().backward()

        def f():
            return float((F.avg_pool2d(x, 2).data ** 2).sum())

        assert np.allclose(gradcheck(f, x.data), x.grad, atol=1e-6)

    def test_global_avg_pool(self, rng):
        x = t(rng.normal(size=(2, 3, 4, 4)))
        out = F.global_avg_pool2d(x)
        assert out.shape == (2, 3)
        assert np.allclose(out.data, x.data.mean(axis=(2, 3)))


class TestBatchNorm:
    def test_training_normalises(self, rng):
        x = t(rng.normal(2.0, 3.0, size=(16, 4, 3, 3)))
        gamma = t(np.ones(4))
        beta = t(np.zeros(4))
        out = F.batch_norm(x, gamma, beta, np.zeros(4), np.ones(4), training=True)
        assert np.allclose(out.data.mean(axis=(0, 2, 3)), 0.0, atol=1e-5)
        assert np.allclose(out.data.std(axis=(0, 2, 3)), 1.0, atol=1e-3)

    def test_running_stats_updated(self, rng):
        x = t(rng.normal(5.0, 1.0, size=(32, 2, 2, 2)))
        running_mean = np.zeros(2)
        running_var = np.ones(2)
        F.batch_norm(x, t(np.ones(2)), t(np.zeros(2)), running_mean, running_var,
                     training=True, momentum=1.0)
        assert np.allclose(running_mean, x.data.mean(axis=(0, 2, 3)), atol=1e-5)

    def test_eval_uses_running_stats(self, rng):
        x = t(rng.normal(size=(4, 2, 2, 2)))
        running_mean = np.full(2, 1.0)
        running_var = np.full(2, 4.0)
        out = F.batch_norm(x, t(np.ones(2)), t(np.zeros(2)), running_mean,
                           running_var, training=False)
        expected = (x.data - 1.0) / np.sqrt(4.0 + 1e-5)
        assert np.allclose(out.data, expected, atol=1e-5)

    def test_gradcheck_training(self, rng, gradcheck):
        x = t(rng.normal(size=(4, 3, 2, 2)))
        gamma = t(rng.normal(size=(3,)))
        beta = t(rng.normal(size=(3,)))
        out = F.batch_norm(x, gamma, beta, np.zeros(3), np.ones(3), training=True)
        (out * out).sum().backward()

        def f():
            result = F.batch_norm(
                x, gamma, beta, np.zeros(3), np.ones(3), training=True
            )
            return float((result.data ** 2).sum())

        for tensor in (x, gamma, beta):
            assert np.allclose(gradcheck(f, tensor.data), tensor.grad, atol=1e-4)

    def test_2d_input(self, rng):
        x = t(rng.normal(size=(8, 5)))
        out = F.batch_norm(x, t(np.ones(5)), t(np.zeros(5)), np.zeros(5),
                           np.ones(5), training=True)
        assert out.shape == (8, 5)

    def test_3d_input_raises(self, rng):
        x = t(rng.normal(size=(2, 3, 4)))
        with pytest.raises(ValueError):
            F.batch_norm(x, t(np.ones(3)), t(np.zeros(3)), np.zeros(3),
                         np.ones(3), training=True)


class TestDropout:
    def test_eval_mode_is_identity(self, rng):
        x = t(rng.normal(size=(4, 4)))
        out = F.dropout(x, 0.5, training=False, rng=rng)
        assert out is x

    def test_training_scales_survivors(self, rng):
        x = t(np.ones((1000,)))
        out = F.dropout(x, 0.5, training=True, rng=rng)
        survivors = out.data[out.data > 0]
        assert np.allclose(survivors, 2.0)
        assert 0.3 < (out.data > 0).mean() < 0.7

    def test_invalid_p_raises(self, rng):
        with pytest.raises(ValueError):
            F.dropout(t(np.ones(2)), 1.0, training=True, rng=rng)


class TestSoftmaxFamily:
    def test_softmax_rows_sum_to_one(self, rng):
        x = t(rng.normal(size=(5, 7)))
        assert np.allclose(F.softmax(x).data.sum(axis=1), 1.0, atol=1e-6)

    def test_log_softmax_consistency(self, rng):
        x = t(rng.normal(size=(3, 4)))
        assert np.allclose(np.exp(F.log_softmax(x).data), F.softmax(x).data)

    def test_softmax_gradcheck(self, rng, gradcheck):
        x = t(rng.normal(size=(3, 4)))
        (F.softmax(x) ** 2).sum().backward()

        def f():
            return float((F.softmax(x).data ** 2).sum())

        assert np.allclose(gradcheck(f, x.data), x.grad, atol=1e-6)


class TestCrossEntropy:
    def test_perfect_prediction_low_loss(self):
        logits = t(np.array([[100.0, 0.0], [0.0, 100.0]]))
        loss = F.cross_entropy(logits, np.array([0, 1]))
        assert loss.item() < 1e-4

    def test_gradcheck(self, rng, gradcheck):
        logits = t(rng.normal(size=(5, 6)))
        labels = np.array([0, 1, 2, 3, 4])
        F.cross_entropy(logits, labels).backward()

        def f():
            return float(F.cross_entropy(logits, labels).data)

        assert np.allclose(gradcheck(f, logits.data), logits.grad, atol=1e-6)

    def test_masked_gradcheck(self, rng, gradcheck):
        logits = t(rng.normal(size=(4, 8)))
        mask = np.zeros(8, dtype=bool)
        mask[[1, 3, 5, 7]] = True
        labels = np.array([1, 3, 5, 7])
        F.cross_entropy(logits, labels, class_mask=mask).backward()

        def f():
            return float(F.cross_entropy(logits, labels, class_mask=mask).data)

        assert np.allclose(gradcheck(f, logits.data), logits.grad, atol=1e-6)

    def test_mask_zeroes_outside_gradient(self, rng):
        logits = t(rng.normal(size=(4, 8)))
        mask = np.zeros(8, dtype=bool)
        mask[:4] = True
        F.cross_entropy(logits, np.array([0, 1, 2, 3]), class_mask=mask).backward()
        assert np.allclose(logits.grad[:, 4:], 0.0)

    def test_label_shape_mismatch_raises(self, rng):
        logits = t(rng.normal(size=(4, 8)))
        with pytest.raises(ValueError):
            F.cross_entropy(logits, np.array([0, 1]))


class TestSoftCrossEntropy:
    def test_matches_hard_ce_on_onehot(self, rng):
        logits = t(rng.normal(size=(4, 5)))
        labels = np.array([0, 2, 1, 4])
        onehot = np.eye(5)[labels]
        soft = F.soft_cross_entropy(logits, onehot)
        hard = F.cross_entropy(
            Tensor(logits.data, requires_grad=True, dtype=np.float64), labels
        )
        assert soft.item() == pytest.approx(hard.item(), rel=1e-6)

    def test_gradcheck(self, rng, gradcheck):
        logits = t(rng.normal(size=(3, 6)))
        target = rng.random((3, 6))
        target /= target.sum(axis=1, keepdims=True)
        F.soft_cross_entropy(logits, target).backward()

        def f():
            return float(F.soft_cross_entropy(logits, target).data)

        assert np.allclose(gradcheck(f, logits.data), logits.grad, atol=1e-6)

    def test_shape_mismatch_raises(self, rng):
        logits = t(rng.normal(size=(3, 6)))
        with pytest.raises(ValueError):
            F.soft_cross_entropy(logits, np.ones((3, 5)))


class TestAccuracy:
    def test_perfect(self):
        logits = np.array([[3.0, 0.0], [0.0, 3.0]])
        assert F.accuracy(logits, np.array([0, 1])) == 1.0

    def test_masked_accuracy_ignores_excluded_classes(self):
        logits = np.array([[10.0, 0.0, 1.0]])
        mask = np.array([False, True, True])
        # class 0 has the largest logit but is masked out
        assert F.accuracy(logits, np.array([2]), class_mask=mask) == 1.0

    @given(st.integers(2, 8), st.integers(1, 16))
    def test_accuracy_bounded(self, classes, n):
        rng = np.random.default_rng(classes * 100 + n)
        logits = rng.normal(size=(n, classes))
        labels = rng.integers(0, classes, size=n)
        acc = F.accuracy(logits, labels)
        assert 0.0 <= acc <= 1.0
