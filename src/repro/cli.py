"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``run``      train one method on one dataset and print its metrics;
``trace``    ``run`` with telemetry forced on: same arguments, plus a
             Perfetto-loadable trace and metrics snapshot written under
             ``--telemetry`` (default ``telemetry/``);
``figure``   regenerate a paper table/figure (fig4 ... fig10, table1,
             ablations);
``simulate`` run the event-driven population simulator (no training):
             arrival/churn scheduling throughput at up to millions of
             simulated clients;
``search``   the SVHN hyperparameter search for FedKNOW (Section V-B);
``serve``    start a long-lived socket federation service and drive rounds
             over whatever workers connect;
``worker``   connect a worker process to a running ``repro serve`` (or any
             listening socket engine) and serve phases until released;
``list``     enumerate available methods / datasets / models / figures.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from .data import ALL_SPECS, available_scenarios, create_scenario, get_spec
from .edge import jetson_cluster, jetson_raspberry_cluster
from .experiments import (
    format_series,
    format_table,
    get_preset,
    run_aggregation_ablation,
    run_distance_ablation,
    run_fig4,
    run_fig5,
    run_fig5_wire,
    run_fig6,
    run_fig7,
    run_fig8,
    run_fig9,
    run_fig10,
    run_fig_curvature,
    run_fig_eventsim,
    run_fig_scaling,
    run_fig_scenarios,
    run_k_ablation,
    run_qp_ablation,
    run_single,
    run_table1,
)
from .experiments.search import search_fedknow
from .federated import ALL_METHODS
from .models import available_models

FIGURES = {
    "fig4": lambda preset: "\n\n".join(str(r) for r in run_fig4(preset=preset)),
    "fig4-hetero": lambda preset: "\n\n".join(
        str(r) for r in run_fig4(
            datasets=("cifar100", "fc100", "core50"),
            methods=("gem", "fedweit", "fedknow"),
            preset=preset,
            heterogeneous=True,
        )
    ),
    "table1": lambda preset: str(run_table1(preset=preset)),
    "fig5": lambda preset: str(run_fig5(preset=preset)),
    "fig5-wire": lambda preset: str(run_fig5_wire(preset=preset)),
    "fig6": lambda preset: str(run_fig6(preset=preset)),
    "fig7": lambda preset: str(run_fig7(preset=preset, num_tasks=6)),
    "fig8": lambda preset: str(run_fig8(preset=preset)),
    "fig8-sampled": lambda preset: str(
        run_fig8(preset=preset, participation="sampled:0.5")
    ),
    "fig9": lambda preset: str(run_fig9(preset=preset)),
    "fig10": lambda preset: str(run_fig10(preset=preset)),
    "fig-scenarios": lambda preset: str(run_fig_scenarios(preset=preset)),
    "fig-curvature": lambda preset: str(run_fig_curvature(preset=preset)),
    "fig-scaling": lambda preset: str(run_fig_scaling(preset=preset)),
    "fig-eventsim": lambda preset: str(run_fig_eventsim(preset=preset)),
    "ablations": lambda preset: "\n\n".join(
        str(fn(preset=preset))
        for fn in (
            run_distance_ablation,
            run_k_ablation,
            run_qp_ablation,
            run_aggregation_ablation,
        )
    ),
}


def _add_run_arguments(run_p: argparse.ArgumentParser,
                       telemetry_default: str | None = None) -> None:
    """The ``run`` argument set, shared verbatim by ``trace``."""
    run_p.add_argument("--method", required=True, choices=sorted(ALL_METHODS))
    run_p.add_argument("--dataset", required=True, choices=sorted(ALL_SPECS))
    run_p.add_argument("--preset", default="bench",
                       choices=("unit", "bench", "paper"))
    run_p.add_argument("--clients", type=int, default=None)
    run_p.add_argument("--tasks", type=int, default=None)
    run_p.add_argument("--seed", type=int, default=0)
    run_p.add_argument("--engine", default="serial",
                       help="round engine: 'serial', 'thread[:W]', "
                            "'process[:W]' — W workers of concurrent client "
                            "execution — 'batched[:B]' — B clients "
                            "stacked per captured-graph replay — or "
                            "'socket[:W]' — W socket-connected worker "
                            "processes with sticky client affinity "
                            "(identical metrics, faster wall clock)")
    run_p.add_argument("--shards", type=int, default=1,
                       help="partition each round's aggregation across this "
                            "many streaming shard accumulators (identical "
                            "global states; per-shard counts and merge time "
                            "land on the round records)")
    run_p.add_argument("--scenario", default="class-inc",
                       help="data scenario family: 'class-inc' (the paper's "
                            "setup), 'domain-inc[:drift=R]', "
                            "'label-shift:dirichlet:A', 'blurry[:overlap=R]', "
                            "or 'async-arrival'")
    run_p.add_argument("--selector", default=None,
                       help="signature-knowledge scoring rule for the "
                            "extracting methods: 'magnitude' (the paper's "
                            "top-|w| rule), 'fisher' (diagonal-Fisher "
                            "saliency F*w^2), or 'hybrid:<mix>' (a convex "
                            "blend; mix in [0,1] weights fisher); default: "
                            "the method's own default")
    run_p.add_argument("--participation", default="full",
                       help="participation policy: 'full', "
                            "'sampled:<fraction>' (a random fraction of "
                            "clients trains each round), "
                            "'deadline:<seconds>' (stragglers aggregate next "
                            "round at staleness-discounted weight), or "
                            "'deadline:auto[:<slack>]' (per-client deadlines "
                            "drawn from each device's network link)")
    run_p.add_argument("--deadline", type=float, default=None,
                       help="shorthand for --participation deadline:<seconds>")
    run_p.add_argument("--max-staleness", type=int, default=None,
                       help="bound on straggler carry for deadline policies: "
                            "updates pending more than K rounds are evicted "
                            "(shorthand for a ',max=K' participation option; "
                            "default 1, the one-round carry)")
    run_p.add_argument("--population", default=None,
                       help="arrival/churn process for the event-driven "
                            "trainer: 'fixed[,churn=ON/OFF]', 'uniform:<T>', "
                            "'pareto:<alpha>[,scale=S][,churn=ON/OFF]', or "
                            "'lognormal:<sigma>...'; clients join and leave "
                            "in virtual time (default: the synchronous "
                            "fixed-roster trainer)")
    run_p.add_argument("--wire", default="v1", choices=("v1", "v2"),
                       help="negotiated wire-format version: v1 (dense/"
                            "sparse records) or v2 (adds delta encoding, "
                            "per-entry flags and fp16 payloads)")
    run_p.add_argument("--upload", default="dense",
                       choices=("dense", "delta", "sparse"),
                       help="upload policy: full states, top-k deltas vs "
                            "the previous global state, or top-k signature "
                            "values (delta/sparse engage after warmup)")
    run_p.add_argument("--upload-ratio", type=float, default=0.1,
                       help="fraction of entries kept by delta/sparse "
                            "uploads (the paper's rho; default 0.1)")
    run_p.add_argument("--fp16", action="store_true",
                       help="ship float payload values as float16 "
                            "(requires --wire v2; lossy)")
    run_p.add_argument("--with-raspberry-pi", action="store_true",
                       help="use the 30-device heterogeneous cluster")
    run_p.add_argument("--telemetry", metavar="DIR", default=telemetry_default,
                       help="enable tracing for the run and write the "
                            "telemetry exports (spans.jsonl, trace.json, "
                            "metrics.prom, metrics.json, result.json) "
                            "under DIR")


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="FedKNOW (ICDE 2023) reproduction",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_p = sub.add_parser("run", help="train one method on one dataset")
    _add_run_arguments(run_p)

    trace_p = sub.add_parser(
        "trace",
        help="`run` with telemetry forced on (Perfetto trace + metrics "
             "snapshot written under --telemetry, default 'telemetry/')",
    )
    _add_run_arguments(trace_p, telemetry_default="telemetry")

    fig_p = sub.add_parser("figure", help="regenerate a paper table/figure")
    fig_p.add_argument("name", choices=sorted(FIGURES))
    fig_p.add_argument("--preset", default="bench",
                       choices=("unit", "bench", "paper"))

    sim_p = sub.add_parser(
        "simulate",
        help="event-driven population simulation (scheduling only, "
             "no model training)",
    )
    sim_p.add_argument("--clients", type=int, default=100_000,
                       help="simulated population size (default 100000)")
    sim_p.add_argument("--population", default="pareto:1.5",
                       help="arrival/churn spec, e.g. "
                            "'pareto:1.5,scale=0.001,churn=60/120' "
                            "(default pareto:1.5)")
    sim_p.add_argument("--rounds", type=int, default=10)
    sim_p.add_argument("--shards", type=int, default=16,
                       help="shard-local staleness cut-offs partition the "
                            "population into this many reporting shards")
    sim_p.add_argument("--max-staleness", type=int, default=2,
                       help="uploads later than this many of their shard's "
                            "round closes are evicted (default 2)")
    sim_p.add_argument("--deadline", default="auto",
                       help="'auto' (slack x each client's own nominal round "
                            "time) or a fixed per-round budget in seconds")
    sim_p.add_argument("--slack", type=float, default=1.5,
                       help="deadline slack multiplier under --deadline auto")
    sim_p.add_argument("--seed", type=int, default=0)
    sim_p.add_argument("--telemetry", metavar="DIR", default=None,
                       help="enable tracing for the simulation and write "
                            "the telemetry exports under DIR")

    search_p = sub.add_parser("search", help="FedKNOW rho x k search on SVHN")
    search_p.add_argument("--preset", default="bench",
                          choices=("unit", "bench", "paper"))

    serve_p = sub.add_parser(
        "serve",
        help="long-lived socket federation service: listens for "
             "`repro worker` connections and serves aggregation rounds",
    )
    serve_p.add_argument("--method", default="fedavg",
                         choices=sorted(ALL_METHODS))
    serve_p.add_argument("--dataset", default="cifar100",
                         choices=sorted(ALL_SPECS))
    serve_p.add_argument("--preset", default="bench",
                         choices=("unit", "bench", "paper"))
    serve_p.add_argument("--clients", type=int, default=None)
    serve_p.add_argument("--tasks", type=int, default=None)
    serve_p.add_argument("--seed", type=int, default=0)
    serve_p.add_argument("--workers", type=int, default=2,
                         help="worker connections to wait for before the "
                              "first round (later joiners are admitted at "
                              "round boundaries)")
    serve_p.add_argument("--host", default="127.0.0.1")
    serve_p.add_argument("--port", type=int, default=0,
                         help="listening port (0 binds an ephemeral port; "
                              "the bound address is printed at startup)")
    serve_p.add_argument("--shards", type=int, default=1,
                         help="shard aggregation across this many segment "
                              "groups; eligible segment partials are "
                              "accumulated on the workers that retained the "
                              "round's updates")
    serve_p.add_argument("--participation", default=None,
                         help="participation policy spec (see `repro run`)")
    serve_p.add_argument("--transport", default=None,
                         help="transport spec, e.g. 'v1:dense' or "
                              "'v2:delta:0.1' (see `repro run`)")
    serve_p.add_argument("--scenario", default="class-inc")
    serve_p.add_argument("--timeout", type=float, default=60.0,
                         help="seconds to wait for --workers connections")
    serve_p.add_argument("--telemetry", metavar="DIR", default=None,
                         help="enable tracing for the service and write "
                              "the telemetry exports under DIR")

    worker_p = sub.add_parser(
        "worker",
        help="connect a worker process to a running `repro serve`",
    )
    worker_p.add_argument("--connect", required=True, metavar="HOST:PORT",
                          help="address printed by `repro serve`")
    worker_p.add_argument("--retries", type=int, default=10,
                          help="connection attempts before giving up "
                               "(exponential backoff between attempts)")
    worker_p.add_argument("--assume-remote", action="store_true",
                          help="skip the shared-tmpfs probe and take framed "
                               "state broadcasts even on the server's host")

    sub.add_parser("list", help="list methods, datasets, models and figures")
    return parser


def _cmd_run(args) -> int:
    preset = get_preset(args.preset)
    if args.clients is not None:
        preset = preset.updated(num_clients=args.clients)
    if args.tasks is not None:
        preset = preset.updated(num_tasks=args.tasks)
    cluster = (
        jetson_raspberry_cluster() if args.with_raspberry_pi else jetson_cluster()
    )
    if args.deadline is not None and args.participation != "full":
        print("error: --deadline conflicts with --participation "
              f"{args.participation!r}; pass one or the other",
              file=sys.stderr)
        return 2
    participation = (
        f"deadline:{args.deadline:g}" if args.deadline is not None
        else args.participation
    )
    if args.max_staleness is not None:
        if not participation.startswith("deadline"):
            print("error: --max-staleness needs a deadline participation "
                  f"policy, got {participation!r}", file=sys.stderr)
            return 2
        if args.max_staleness < 1:
            print(f"error: --max-staleness must be >= 1, got "
                  f"{args.max_staleness}", file=sys.stderr)
            return 2
        participation += f",max={args.max_staleness}"
    if args.population is not None:
        try:
            from .edge import create_population

            create_population(args.population)
        except (KeyError, ValueError) as error:
            message = error.args[0] if error.args else error
            print(f"error: invalid --population: {message}", file=sys.stderr)
            return 2
    if args.fp16 and args.wire != "v2":
        print("error: --fp16 requires --wire v2", file=sys.stderr)
        return 2
    try:
        from .federated import (
            BATCH_SAFE_METHODS,
            PROCESS_UNSAFE_METHODS,
            create_engine,
        )

        engine = create_engine(args.engine)
        engine.close()
    except (KeyError, ValueError) as error:
        message = error.args[0] if error.args else error
        print(f"error: invalid --engine: {message}", file=sys.stderr)
        return 2
    if engine.needs_pickling and args.method in PROCESS_UNSAFE_METHODS:
        print(f"error: --engine {args.engine} cannot run {args.method!r}: "
              f"its clients exchange state with the live server mid-round; "
              f"use --engine serial or thread", file=sys.stderr)
        return 2
    if (getattr(engine, "batches_clients", False)
            and args.method not in BATCH_SAFE_METHODS):
        print(f"error: --engine {args.engine} cannot run {args.method!r}: "
              f"its local step is not a pure loss→backward→SGD "
              f"update; batch-safe methods: "
              f"{', '.join(sorted(BATCH_SAFE_METHODS))}", file=sys.stderr)
        return 2
    if args.shards < 1:
        print(f"error: --shards must be >= 1, got {args.shards}",
              file=sys.stderr)
        return 2
    if not 0.0 < args.upload_ratio <= 1.0:
        print(f"error: --upload-ratio must be in (0, 1], got "
              f"{args.upload_ratio:g}", file=sys.stderr)
        return 2
    wire = args.wire + ("+fp16" if args.fp16 else "")
    transport = f"{wire}:{args.upload}"
    if args.upload != "dense":
        transport += f":{args.upload_ratio:g}"
    try:
        create_scenario(args.scenario)
    except (KeyError, ValueError) as error:
        # str(KeyError) is the repr of its argument; unwrap the message
        message = error.args[0] if error.args else error
        print(f"error: invalid --scenario: {message}", file=sys.stderr)
        return 2
    try:
        from .federated import resolve_selector

        resolve_selector(args.method, args.selector)
    except (KeyError, ValueError) as error:
        message = error.args[0] if error.args else error
        print(f"error: invalid --selector: {message}", file=sys.stderr)
        return 2
    def execute():
        return run_single(
            args.method, get_spec(args.dataset), preset,
            cluster=cluster, seed=args.seed, use_cache=False,
            engine=args.engine,
            participation=participation, transport=transport,
            scenario=args.scenario, shards=args.shards,
            population=args.population, selector=args.selector,
        )

    exports = None
    if args.telemetry:
        from .metrics.io import save_result_with_telemetry
        from .obs import Telemetry

        with Telemetry(args.telemetry) as session:
            result = execute()
            exports = save_result_with_telemetry(
                result, session, args.telemetry
            )
    else:
        result = execute()
    stages = np.arange(1, len(result.accuracy_curve) + 1)
    print(format_series(
        f"{args.method} on {args.dataset} ({args.preset})",
        stages, np.round(result.accuracy_curve, 3),
        x_name="tasks", y_name="accuracy",
    ))
    print(format_series(
        "forgetting rate", stages, np.round(result.forgetting_curve, 3),
        x_name="tasks", y_name="rate",
    ))
    summary = result.summary()
    print(format_table(list(summary), [list(summary.values())]))
    if result.transport != "v1:dense":
        print(format_table(
            ["transport", "upload_gb", "raw_upload_gb", "compression"],
            [[
                result.transport,
                round(result.total_upload_bytes / 1e9, 4),
                round(result.total_raw_upload_bytes / 1e9, 4),
                f"{result.upload_compression:.2f}x",
            ]],
            title="transport (measured upload volume)",
        ))
    if (result.participation != "full"
            or result.total_evicted_clients
            or result.total_lost_clients):
        print(format_table(
            ["rounds", "planned", "reported", "stale", "evicted", "lost"],
            [[
                len(result.rounds),
                result.total_planned_clients,
                result.total_reported_clients,
                result.total_stale_clients,
                result.total_evicted_clients,
                result.total_lost_clients,
            ]],
            title="participation (client-rounds)",
        ))
    if exports is not None:
        print(f"telemetry written under {args.telemetry}: "
              + ", ".join(sorted(str(p) for p in exports.values())))
    return 0


def _cmd_simulate(args) -> int:
    from .federated import PopulationSimulator

    if args.clients < 1:
        print(f"error: --clients must be >= 1, got {args.clients}",
              file=sys.stderr)
        return 2
    if args.shards < 1:
        print(f"error: --shards must be >= 1, got {args.shards}",
              file=sys.stderr)
        return 2
    if args.max_staleness < 1:
        print(f"error: --max-staleness must be >= 1, got "
              f"{args.max_staleness}", file=sys.stderr)
        return 2
    deadline: float | str = args.deadline
    if deadline != "auto":
        try:
            deadline = float(deadline)
        except ValueError:
            print(f"error: --deadline must be 'auto' or a number, got "
                  f"{args.deadline!r}", file=sys.stderr)
            return 2
    try:
        simulator = PopulationSimulator(
            args.clients,
            population=args.population,
            num_rounds=args.rounds,
            shards=args.shards,
            max_staleness=args.max_staleness,
            deadline=deadline,
            slack=args.slack,
            seed=args.seed,
        )
    except (KeyError, ValueError) as error:
        message = error.args[0] if error.args else error
        print(f"error: {message}", file=sys.stderr)
        return 2
    if args.telemetry:
        from .obs import Telemetry

        with Telemetry(args.telemetry) as session:
            report = simulator.run()
            paths = session.flush()
        print("telemetry written under "
              f"{args.telemetry}: "
              + ", ".join(sorted(str(p) for p in paths.values())))
    else:
        report = simulator.run()
    print(report)
    rows = [
        [r.round_index, round(r.open_seconds, 2), round(r.close_seconds, 2),
         r.active, r.planned, r.reported, r.stale, r.evicted, r.lost,
         "yes" if r.skipped else ""]
        for r in report.rounds
    ]
    print(format_table(
        ["round", "open_s", "close_s", "active", "planned", "reported",
         "stale", "evicted", "lost", "skipped"],
        rows,
        title="per-round serving",
    ))
    return 0


def _cmd_serve(args) -> int:
    from .serve import FederationServer, RpcError

    if args.workers < 1:
        print(f"error: --workers must be >= 1, got {args.workers}",
              file=sys.stderr)
        return 2
    if args.shards < 1:
        print(f"error: --shards must be >= 1, got {args.shards}",
              file=sys.stderr)
        return 2
    server = FederationServer(
        args.method, args.dataset, args.preset,
        num_workers=args.workers, host=args.host, port=args.port,
        clients=args.clients, tasks=args.tasks, seed=args.seed,
        shards=args.shards, participation=args.participation,
        transport=args.transport, scenario=args.scenario,
    )
    try:
        host, port = server.address
        print(f"serving {args.method} on {args.dataset} ({args.preset}) "
              f"at {host}:{port}")
        print(f"attach workers with: repro worker --connect {host}:{port}")
        try:
            server.wait_for_workers(timeout=args.timeout)
        except RpcError as error:
            print(f"error: {error}", file=sys.stderr)
            return 1
        if args.telemetry:
            from .metrics.io import save_result_with_telemetry
            from .obs import Telemetry

            with Telemetry(args.telemetry) as session:
                result = server.run()
                exports = save_result_with_telemetry(
                    result, session, args.telemetry
                )
            print(f"telemetry written under {args.telemetry}: "
                  + ", ".join(sorted(str(p) for p in exports.values())))
        else:
            result = server.run()
        stages = np.arange(1, len(result.accuracy_curve) + 1)
        print(format_series(
            f"{args.method} on {args.dataset} ({args.preset})",
            stages, np.round(result.accuracy_curve, 3),
            x_name="tasks", y_name="accuracy",
        ))
        summary = result.summary()
        print(format_table(list(summary), [list(summary.values())]))
    finally:
        server.close()
    return 0


def _cmd_worker(args) -> int:
    from .serve import ConnectionClosed, RpcError, run_worker

    host, _, port_text = args.connect.rpartition(":")
    try:
        port = int(port_text)
        if not host:
            raise ValueError
    except ValueError:
        print(f"error: --connect wants HOST:PORT, got {args.connect!r}",
              file=sys.stderr)
        return 2
    try:
        worker_id = run_worker(
            host, port,
            attempts=args.retries,
            assume_remote=args.assume_remote,
        )
    except ConnectionClosed:
        # the server went away mid-session; the service survives worker
        # loss, so the symmetric exit is clean too
        print("server closed the connection", file=sys.stderr)
        return 0
    except (RpcError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    print(f"worker {worker_id} released by server")
    return 0


def _cmd_figure(args) -> int:
    print(FIGURES[args.name](get_preset(args.preset)))
    return 0


def _cmd_search(args) -> int:
    print(search_fedknow(preset=get_preset(args.preset)))
    return 0


def _cmd_list() -> int:
    from .curv.selector import SELECTOR_SPECS
    from .federated.engine import ENGINE_SPECS

    print(format_table(
        ["kind", "names"],
        [
            ["methods", ", ".join(sorted(ALL_METHODS))],
            ["datasets", ", ".join(sorted(ALL_SPECS))],
            ["engines", ", ".join(ENGINE_SPECS)],
            ["selectors", ", ".join(SELECTOR_SPECS)],
            ["scenarios", ", ".join(available_scenarios())],
            ["models", ", ".join(available_models())],
            ["figures", ", ".join(sorted(FIGURES))],
            ["presets", "unit, bench, paper"],
        ],
    ))
    return 0


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command in ("run", "trace"):
        return _cmd_run(args)
    if args.command == "figure":
        return _cmd_figure(args)
    if args.command == "simulate":
        return _cmd_simulate(args)
    if args.command == "search":
        return _cmd_search(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "worker":
        return _cmd_worker(args)
    return _cmd_list()


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
