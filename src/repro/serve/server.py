"""The long-lived federation service and its remote shard aggregator.

:class:`FederationServer` owns one training recipe (method, dataset spec,
preset scale), a listening :class:`~repro.serve.engine.SocketRoundEngine`
and the trainer built over it.  It stays up across rounds and worker
failures: workers connect (and reconnect) whenever they like, are admitted
at the next round boundary, and a worker that dies mid-round only loses its
own clients for that round — the participation policy replans with whoever
reports, and the round is recorded with its ``lost`` count.

:class:`RemoteShardedAggregator` extends the
:class:`~repro.federated.sharding.ShardedAggregator` merge tree across the
socket: a canonical merge segment whose updates were all produced this
round by one live worker is accumulated *on that worker* (over the dense
update states it retained from the train phase) and only the float64
partial sums cross the wire.  Everything else — stale straggler segments,
segments spanning workers, segments whose worker died — is computed
locally from the update states the server already holds.  The merge tree,
the weights and the fold order are exactly the base aggregator's, so the
result stays bit-identical to the unsharded server whatever mix of remote
and local partials a round ends up with.
"""

from __future__ import annotations

import time
from typing import Sequence

import numpy as np

from ..data import create_scenario, get_spec
from ..data.scenario import ClientDataFactory
from ..experiments.config import get_preset
from ..federated.protocol import ClientUpdate
from ..federated.registry import create_trainer
from ..federated.server import MERGE_SEGMENTS, StreamingAccumulator, shard_slices
from ..federated.sharding import ShardedAggregator
from ..metrics.tracker import RoundRecord, RunResult
from ..obs import metrics as _obs_metrics
from .engine import SocketRoundEngine

__all__ = ["FederationServer", "RemoteShardedAggregator"]


class RemoteShardedAggregator(ShardedAggregator):
    """Shard aggregation whose segment partials come from remote workers."""

    def __init__(self, server, num_shards: int, socket_engine: SocketRoundEngine):
        super().__init__(server, num_shards, engine=None)
        self.socket_engine = socket_engine
        #: Segments served remotely in the most recent round.
        self.last_remote_segments = 0
        #: Reason -> segment count for the most recent round's demotions
        #: (segments folded locally instead of on a worker).
        self.last_demotions: dict[str, int] = {}

    def aggregate_updates(
        self,
        updates: Sequence[ClientUpdate],
        staleness_discount: float = 0.5,
    ) -> dict[str, np.ndarray]:
        updates = list(updates)
        if not updates:
            raise ValueError(
                "cannot aggregate an empty round: zero reported clients "
                "(the trainer records empty rounds as skipped instead)"
            )
        weights = [u.effective_weight(staleness_discount) for u in updates]
        total = float(sum(weights))
        if total <= 0:
            raise ValueError("aggregation weights must sum to a positive value")
        segments = shard_slices(len(updates), min(len(updates), MERGE_SEGMENTS))
        groups = shard_slices(len(segments), min(self.num_shards, len(segments)))
        base = self.server.global_state
        engine = self.socket_engine

        # a segment is remote-eligible when every update in it is fresh and
        # was produced this round by the same live worker (which therefore
        # retained the dense states the partial sum needs); anything else
        # is demoted to local folding, classified by why
        per_link: dict = {}
        requested: set[int] = set()
        demoted: dict[str, int] = {}
        for seg_index, segment in enumerate(segments):
            links = set()
            reason = None
            for index in range(segment.start, segment.stop):
                update = updates[index]
                if update.staleness != 0:
                    reason = "stale"
                    break
                link = engine.origin_link(update.client_id)
                if link is None:
                    reason = "orphaned"
                    break
                links.add(link)
            if reason is None and len(links) > 1:
                reason = "split"
            if reason is not None:
                demoted[reason] = demoted.get(reason, 0) + 1
                continue
            requested.add(seg_index)
            per_link.setdefault(links.pop(), []).append((
                seg_index,
                [
                    (updates[index].client_id, weights[index] / total)
                    for index in range(segment.start, segment.stop)
                ],
            ))
        remote = engine.fetch_partials(per_link) if per_link else {}
        failed = len(requested) - len(remote)
        if failed:
            demoted["failed"] = demoted.get("failed", 0) + failed
        partials: list[StreamingAccumulator] = []
        for seg_index, segment in enumerate(segments):
            accumulator = remote.get(seg_index)
            if accumulator is None:
                accumulator = StreamingAccumulator(base=base)
                for index in range(segment.start, segment.stop):
                    accumulator.add(updates[index].state, weights[index] / total)
            partials.append(accumulator)
        self.last_remote_segments = len(remote)
        self.last_demotions = demoted
        _obs_metrics.METRICS.counter("serve.segments_remote").inc(len(remote))
        if demoted:
            for reason, count in demoted.items():
                _obs_metrics.METRICS.counter(
                    f"serve.segments_demoted_{reason}"
                ).inc(count)
            _obs_metrics.METRICS.warn(
                "serve.segments_demoted",
                f"{sum(demoted.values())} of {len(segments)} merge segments "
                f"demoted to local folding ({demoted})",
                amount=sum(demoted.values()),
                **demoted,
            )
        self.last_shard_counts = tuple(
            sum(seg.stop - seg.start for seg in segments[group])
            for group in groups
        )
        started = time.perf_counter()
        merged = self.merge(partials)
        self.last_merge_seconds = time.perf_counter() - started
        return self.server.install_aggregate(merged)


class FederationServer:
    """A long-lived socket federation service around one training recipe.

    Listens before any worker exists, admits ``repro worker`` connections
    at round boundaries, and keeps serving rounds across worker deaths and
    reconnects.  ``run`` drives the full task sequence; ``run_rounds``
    steps individual rounds (the reconnect tests and interactive serving
    use this), and ``sync_clients`` pulls the workers' authoritative client
    replicas back before out-of-band evaluation.
    """

    def __init__(
        self,
        method: str = "fedavg",
        dataset: str = "cifar100",
        preset: str = "bench",
        *,
        num_workers: int = 2,
        host: str = "127.0.0.1",
        port: int = 0,
        clients: int | None = None,
        tasks: int | None = None,
        seed: int = 0,
        shards: int = 1,
        participation: str | None = None,
        transport: str | None = None,
        scenario: str = "class-inc",
    ):
        preset_obj = get_preset(preset) if isinstance(preset, str) else preset
        if clients is not None:
            preset_obj = preset_obj.updated(num_clients=clients)
        if tasks is not None:
            preset_obj = preset_obj.updated(num_tasks=tasks)
        spec = get_spec(dataset) if isinstance(dataset, str) else dataset
        scaled = preset_obj.apply_to_spec(spec)
        scenario_obj = create_scenario(scenario)
        benchmark = scenario_obj.build(
            scaled,
            num_clients=preset_obj.num_clients,
            rng=np.random.default_rng(seed),
        )
        self.num_workers = num_workers
        self.engine = SocketRoundEngine(
            max_workers=num_workers, spawn_workers=False, host=host, port=port
        )
        self.engine.listen()
        self.trainer = create_trainer(
            method,
            benchmark,
            preset_obj.train_config(seed=seed),
            model_seed=1000 + seed,
            rng=np.random.default_rng(seed + 1),
            engine=self.engine,
            participation=participation,
            transport=transport,
            shards=shards,
            data_factory=ClientDataFactory(
                scenario_obj, scaled, preset_obj.num_clients, seed
            ),
        )
        self._position: int | None = None
        self._round_index = 0

    # ------------------------------------------------------------------
    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)`` workers should connect to."""
        return self.engine.address

    def wait_for_workers(
        self, count: int | None = None, timeout: float = 60.0
    ) -> None:
        """Block until ``count`` (default: ``num_workers``) workers join."""
        self.engine.wait_for_workers(
            self.num_workers if count is None else count, timeout=timeout
        )

    def connected_workers(self) -> int:
        self.engine.poll_admissions()
        return len(self.engine._live())

    # ------------------------------------------------------------------
    def run(self, num_positions: int | None = None) -> RunResult:
        """Serve the full task sequence and return the run's metrics."""
        return self.trainer.run(num_positions)

    def run_rounds(
        self, num_rounds: int = 1, position: int = 0
    ) -> list[RoundRecord]:
        """Step ``num_rounds`` rounds of one task stage.

        Newly connected (or reconnected) workers are admitted at each
        round's dispatch; a stage is begun lazily the first time it is
        stepped.
        """
        if self._position != position:
            self.trainer._begin_position(position)
            self._position = position
            self._round_index = 0
        records = []
        for _ in range(num_rounds):
            records.append(
                self.trainer._run_round(position, self._round_index)
            )
            self._round_index += 1
        return records

    def sync_clients(self) -> None:
        """Adopt the workers' authoritative client replicas parent-side."""
        self.trainer._sync_engine_clients()

    def close(self) -> None:
        self.trainer.close()

    def __enter__(self) -> "FederationServer":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> bool:
        self.close()
        return False
