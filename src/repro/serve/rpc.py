"""Framed socket protocol for the federation service.

The serve subsystem speaks a minimal length-prefixed protocol over TCP:
every frame is one message-type byte followed by a big-endian ``u32``
payload length and the payload bytes.  Control messages (phase dispatch,
collected results, partial-sum requests) are pickled with protocol 5;
state broadcasts carry the existing wire-format bytes produced by
:func:`repro.utils.serialization.encode_state`, so remote workers decode
exactly what local workers read from the tmpfs broadcast file.

Connections are explicit about failure: a closed or half-read socket
raises :class:`ConnectionClosed`, a frame that violates the protocol
raises :class:`ProtocolError`, and every read honours a per-connection
timeout so a dead peer cannot hang a round forever.  ``connect_with_retry``
gives workers bounded exponential backoff while the server comes up, and
the HELLO/WELCOME handshake carries an explicit protocol version so
mismatched builds fail loudly instead of mis-parsing frames.
"""

from __future__ import annotations

import enum
import pickle
import socket
import struct
import time

from ..obs import metrics as _obs_metrics
from ..obs import trace as _obs_trace

#: First bytes of every HELLO — guards against a stray client speaking a
#: different protocol on the same port.
MAGIC = b"RSRV"

#: Bumped whenever the frame layout or a message payload changes shape.
#: v2: PHASE payloads carry a span context, RESULT payloads a telemetry
#: tail (worker spans + metrics delta) — see :mod:`repro.obs`.
PROTOCOL_VERSION = 2

# Cached instrument handles (always-on; ``drain`` zeroes them in place).
_FRAMES_SENT = _obs_metrics.METRICS.counter("rpc.frames_sent")
_FRAMES_RECEIVED = _obs_metrics.METRICS.counter("rpc.frames_received")
_BYTES_SENT = _obs_metrics.METRICS.counter("rpc.bytes_sent")
_BYTES_RECEIVED = _obs_metrics.METRICS.counter("rpc.bytes_received")
_CONNECT_RETRIES = _obs_metrics.METRICS.counter("rpc.connect_retries")

#: Frame header: one message-type byte + big-endian u32 payload length.
_HEADER = struct.Struct(">BI")

#: Payloads beyond this are a protocol violation (corrupt length prefix),
#: not a legitimate broadcast — 1 GiB comfortably clears any model state.
MAX_FRAME_BYTES = 1 << 30

#: Default per-read timeout; phases train whole rounds, so generous.
DEFAULT_TIMEOUT = 120.0


class MessageType(enum.IntEnum):
    """Message-type byte of each frame."""

    HELLO = 1            # worker -> server: magic + version + remote flag
    WELCOME = 2          # server -> worker: worker id, probe, data factory
    READY = 3            # worker -> server: handshake complete, local flag
    PHASE = 4            # server -> worker: run a phase over assigned items
    RESULT = 5           # worker -> server: phase results (+ retained ids)
    STATE = 6            # server -> worker: framed global-state broadcast
    RESET = 7            # server -> worker: task boundary, drop caches
    COLLECT = 8          # server -> worker: ship cached client replicas back
    PARTIAL = 9          # server -> worker: segment partial-sum requests
    PARTIAL_RESULT = 10  # worker -> server: accumulated segment partials
    ERROR = 11           # either side: remote exception (payload: message)
    BYE = 12             # server -> worker: shut down cleanly


class RpcError(ConnectionError):
    """Base class for serve-protocol connection failures."""


class ConnectionClosed(RpcError):
    """The peer closed the socket (EOF mid-frame counts)."""


class ProtocolError(RpcError):
    """The peer sent bytes that violate the framed protocol."""


class RemoteError(RuntimeError):
    """The peer reported an exception through an ERROR frame."""


def _recv_exact(sock: socket.socket, num_bytes: int) -> bytes:
    chunks = []
    remaining = num_bytes
    while remaining:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            raise ConnectionClosed(
                f"peer closed connection with {remaining} of {num_bytes} "
                f"frame bytes outstanding"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


class Connection:
    """One framed peer connection (server->worker or worker->server).

    Wraps a connected socket with frame send/receive, pickled control
    payloads, and a configurable read timeout (``None`` blocks forever —
    the worker side, which legitimately idles between rounds).
    """

    def __init__(self, sock: socket.socket, timeout: float | None = DEFAULT_TIMEOUT):
        sock.settimeout(timeout)
        # round frames are latency-sensitive (many small control messages)
        try:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        except OSError:  # pragma: no cover - non-TCP test doubles
            pass
        self.sock = sock
        self.closed = False

    def settimeout(self, timeout: float | None) -> None:
        self.sock.settimeout(timeout)

    def send(self, kind: MessageType, payload: bytes = b"") -> None:
        if len(payload) > MAX_FRAME_BYTES:
            raise ProtocolError(
                f"frame payload of {len(payload)} bytes exceeds the "
                f"{MAX_FRAME_BYTES}-byte protocol limit"
            )
        tracer = _obs_trace.TRACER
        try:
            if tracer.enabled:
                with tracer.span("rpc_frame", dir="send", kind=kind.name,
                                 bytes=len(payload)):
                    self.sock.sendall(
                        _HEADER.pack(int(kind), len(payload)) + payload
                    )
            else:
                self.sock.sendall(
                    _HEADER.pack(int(kind), len(payload)) + payload
                )
        except OSError as exc:
            raise ConnectionClosed(f"send failed: {exc}") from exc
        _FRAMES_SENT.inc()
        _BYTES_SENT.inc(_HEADER.size + len(payload))

    def send_obj(self, kind: MessageType, obj) -> None:
        self.send(kind, pickle.dumps(obj, protocol=5))

    def recv(self) -> tuple[MessageType, bytes]:
        try:
            header = _recv_exact(self.sock, _HEADER.size)
            kind_byte, length = _HEADER.unpack(header)
            if length > MAX_FRAME_BYTES:
                raise ProtocolError(
                    f"frame announces {length} payload bytes, beyond the "
                    f"{MAX_FRAME_BYTES}-byte protocol limit"
                )
            tracer = _obs_trace.TRACER
            if tracer.enabled:
                # timed from after the header so the span measures the
                # payload transfer, not the idle wait for a frame to start
                with tracer.span("rpc_frame", dir="recv", kind=kind_byte,
                                 bytes=length):
                    payload = _recv_exact(self.sock, length)
            else:
                payload = _recv_exact(self.sock, length)
        except socket.timeout as exc:
            raise RpcError("read timed out waiting for a frame") from exc
        except OSError as exc:
            if isinstance(exc, RpcError):
                raise
            raise ConnectionClosed(f"recv failed: {exc}") from exc
        try:
            kind = MessageType(kind_byte)
        except ValueError:
            raise ProtocolError(f"unknown message type byte {kind_byte}")
        _FRAMES_RECEIVED.inc()
        _BYTES_RECEIVED.inc(_HEADER.size + length)
        return kind, payload

    def recv_obj(self) -> tuple[MessageType, object]:
        kind, payload = self.recv()
        return kind, (pickle.loads(payload) if payload else None)

    def expect(self, *kinds: MessageType) -> tuple[MessageType, object]:
        """Receive one frame; unwrap ERROR frames, enforce expected kinds."""
        kind, obj = self.recv_obj()
        if kind == MessageType.ERROR and MessageType.ERROR not in kinds:
            raise RemoteError(str(obj))
        if kind not in kinds:
            raise ProtocolError(
                f"expected {'/'.join(k.name for k in kinds)}, got {kind.name}"
            )
        return kind, obj

    def close(self) -> None:
        if not self.closed:
            self.closed = True
            try:
                self.sock.close()
            except OSError:  # pragma: no cover
                pass


def connect_with_retry(
    host: str,
    port: int,
    attempts: int = 10,
    backoff: float = 0.05,
    timeout: float | None = DEFAULT_TIMEOUT,
) -> Connection:
    """Connect to the federation server with bounded exponential backoff.

    Workers typically race the server's ``listen``; retrying with doubling
    sleeps (capped at one second per wait) absorbs that startup window.
    The final failure re-raises the last ``OSError``.
    """
    if attempts < 1:
        raise ValueError(f"need at least one connection attempt, got {attempts}")
    delay = backoff
    last: OSError | None = None
    for attempt in range(attempts):
        try:
            sock = socket.create_connection((host, port), timeout=10.0)
            return Connection(sock, timeout=timeout)
        except OSError as exc:
            last = exc
            if attempt + 1 < attempts:
                _CONNECT_RETRIES.inc()
                time.sleep(delay)
                delay = min(delay * 2, 1.0)
    raise RpcError(
        f"could not connect to federation server at {host}:{port} after "
        f"{attempts} attempts: {last}"
    )
