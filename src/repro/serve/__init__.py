"""repro.serve — the socket federation service.

A long-lived :class:`FederationServer` serves aggregation rounds to
socket-connected worker processes over the framed protocol in
:mod:`repro.serve.rpc`.  The :class:`SocketRoundEngine` implements the
ordinary :class:`~repro.federated.engine.RoundEngine` contract, so
trainers, participation policies, transports and metrics work unchanged —
and bit-identically to the serial engine — while clients stay pinned to
their worker between rounds (sticky affinity) and shard aggregation pulls
segment partials from the workers that retained the round's updates.

Start a service with ``repro serve`` and attach workers with
``repro worker --connect HOST:PORT`` (see the README's Serving section),
or use ``create_trainer(..., engine="socket:W")`` for a self-managed
worker pool on one host.
"""

from .engine import ServeStateHandle, SocketRoundEngine
from .rpc import (
    MAGIC,
    PROTOCOL_VERSION,
    Connection,
    ConnectionClosed,
    MessageType,
    ProtocolError,
    RemoteError,
    RpcError,
    connect_with_retry,
)
from .server import FederationServer, RemoteShardedAggregator
from .worker import ClientRef, WorkerSession, run_worker

__all__ = [
    "MAGIC",
    "PROTOCOL_VERSION",
    "ClientRef",
    "Connection",
    "ConnectionClosed",
    "FederationServer",
    "MessageType",
    "ProtocolError",
    "RemoteError",
    "RemoteShardedAggregator",
    "RpcError",
    "ServeStateHandle",
    "SocketRoundEngine",
    "WorkerSession",
    "connect_with_retry",
    "run_worker",
]
