"""Worker side of the socket federation service.

A worker process connects to the :class:`~repro.serve.server.FederationServer`
(or a self-spawned :class:`~repro.serve.engine.SocketRoundEngine`), completes
the version handshake, and then serves frames until the server says BYE or
the connection drops:

* **PHASE** — run a phase callable over this worker's assigned items.  The
  worker keeps **persistent client replicas**: a client crosses the socket
  once, is cached by id, and every later round's dispatch ships a tiny
  :class:`ClientRef` stub instead — momentum buffers, RNG state and method
  state stay put.  Task data is rebuilt locally from the WELCOME's pickled
  data factory (the same :func:`repro.federated.engine.worker_client_data`
  path process-pool workers use).
* **STATE** — a framed global-state broadcast for remote workers; local
  workers read the tmpfs file instead and never receive this frame.
* **PARTIAL** — accumulate segment partial sums over the client updates
  retained from the round's train phase, so shard aggregation ships one
  float64 partial per segment instead of every client state.
* **RESET** — task boundary: drop client replicas, retained updates,
  broadcasts and the materialized task-data cache.
* **COLLECT** — ship the cached client replicas back so the trainer can
  run end-of-task evaluation on authoritative state.

Phase exceptions travel back as ERROR frames (the engine re-raises them
parent-side); only protocol violations and a dead socket end the loop.
"""

from __future__ import annotations

import os
import traceback

from ..federated import engine as engine_mod
from ..federated.base import FederatedClient
from ..federated.protocol import ClientUpdate
from ..federated.server import StreamingAccumulator
from ..obs import metrics as _obs_metrics
from ..obs import trace as _obs_trace
from ..utils.serialization import decode_state
from .rpc import (
    MAGIC,
    PROTOCOL_VERSION,
    Connection,
    ConnectionClosed,
    MessageType,
    ProtocolError,
    connect_with_retry,
)

import numpy as np

__all__ = ["ClientRef", "WorkerSession", "run_worker", "get_broadcast"]


class ClientRef:
    """Affinity stub: stands in for a client cached on the other side."""

    __slots__ = ("client_id",)

    def __init__(self, client_id: int):
        self.client_id = client_id

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ClientRef({self.client_id})"


#: Framed broadcasts decoded by this worker, newest last.  Two can be live
#: at once (the round's receive broadcast plus the transport's shared dense
#: base for the next train phase), so pruning keeps the two most recent.
_BROADCASTS: dict[str, dict] = {}
_BROADCAST_KEEP = 2


def get_broadcast(token: str):
    """Resolve a framed broadcast by token (None when not this worker's)."""
    return _BROADCASTS.get(token)


def _store_broadcast(token: str, state: dict) -> None:
    _BROADCASTS[token] = state
    while len(_BROADCASTS) > _BROADCAST_KEEP:
        del _BROADCASTS[next(iter(_BROADCASTS))]


_FRAMED_DECODES = _obs_metrics.METRICS.counter("broadcast.framed_decodes")


def _dense_state(state) -> bool:
    return all(isinstance(value, np.ndarray) for value in state.values())


class WorkerSession:
    """One connected worker's frame loop and caches."""

    def __init__(self, conn: Connection, worker_id: int):
        self.conn = conn
        self.worker_id = worker_id
        #: Persistent client replicas, by client id (the affinity cache).
        self.clients: dict[int, FederatedClient] = {}
        #: Dense update states retained from the latest PHASE, by client id.
        self.retained: dict[int, dict] = {}
        #: Session tracer, created on the first traced PHASE and kept so
        #: span ids stay unique across this worker's phases.
        self._tracer: _obs_trace.Tracer | None = None
        #: True while the session tracer is installed as the process
        #: tracer (it stays installed *between* traced phases so the
        #: RESULT send and the next PHASE recv record rpc_frame spans;
        #: those ship with the following phase's telemetry).
        self._tracing = False

    def _tracer_for(self, ctx) -> _obs_trace.Tracer:
        tracer = self._tracer
        if tracer is None or tracer.trace_id != ctx[0]:
            tracer = self._tracer = _obs_trace.Tracer(
                trace_id=ctx[0],
                origin=f"sw{self.worker_id}p{os.getpid()}",
                process=f"worker-{self.worker_id}",
            )
        tracer.adopt(ctx)
        return tracer

    # -- frame handlers ------------------------------------------------
    def _handle_phase(self, payload: bytes) -> None:
        import pickle

        fn, entries, span_ctx = pickle.loads(payload)
        self.retained = {}
        resolved = []
        for index, item in entries:
            if isinstance(item, ClientRef):
                cached = self.clients.get(item.client_id)
                if cached is None:
                    raise ProtocolError(
                        f"server referenced client {item.client_id}, which "
                        f"this worker has not cached"
                    )
                item = cached
            elif isinstance(item, FederatedClient):
                # first crossing (or re-assignment after a worker failure):
                # adopt the shipped replica as this worker's authoritative copy
                self.clients[item.client_id] = item
            resolved.append((index, item))
        results = []
        retained_ids = []
        if span_ctx is None:
            if self._tracing:
                # the server turned telemetry off: return to the no-op
                # path and discard spans that will never be collected
                _obs_trace.set_tracer(_obs_trace.NullTracer())
                self._tracer.drain()
                self._tracing = False
            for index, item in resolved:
                result = fn(item)
                results.append(
                    (index, self._stub_result(result, retained_ids))
                )
            self.conn.send_obj(
                MessageType.RESULT, (results, tuple(retained_ids), None)
            )
            return
        # traced phase: run under a session tracer adopted into the
        # server's round span, then ship spans + a metrics delta back
        tracer = self._tracer_for(span_ctx)
        if _obs_trace.TRACER is not tracer:
            _obs_trace.set_tracer(tracer)
            self._tracing = True
        for index, item in resolved:
            result = fn(item)
            results.append(
                (index, self._stub_result(result, retained_ids))
            )
        telemetry = (tracer.drain(), _obs_metrics.METRICS.drain())
        self.conn.send_obj(
            MessageType.RESULT, (results, tuple(retained_ids), telemetry)
        )

    def _stub_result(self, result, retained_ids: list[int]):
        """Replace cached clients with stubs; retain dense update states."""
        if isinstance(result, FederatedClient):
            return ClientRef(result.client_id)
        if not isinstance(result, tuple):
            return result
        out = []
        for part in result:
            if isinstance(part, FederatedClient):
                out.append(ClientRef(part.client_id))
                continue
            if isinstance(part, ClientUpdate) and _dense_state(part.state):
                self.retained[part.client_id] = part.state
                retained_ids.append(part.client_id)
            out.append(part)
        return tuple(out)

    def _handle_state(self, payload: bytes) -> None:
        import pickle

        token, wire_bytes = pickle.loads(payload)
        _store_broadcast(token, decode_state(wire_bytes))
        _FRAMED_DECODES.inc()

    def _handle_partial(self, payload: bytes) -> None:
        import pickle

        requests = pickle.loads(payload)
        partials = []
        for seg_index, terms in requests:
            accumulator = StreamingAccumulator(base=None)
            for client_id, coeff in terms:
                state = self.retained.get(client_id)
                if state is None:
                    raise KeyError(
                        f"no retained update for client {client_id}; cannot "
                        f"serve segment {seg_index} remotely"
                    )
                accumulator.add(state, coeff)
            partials.append((seg_index, accumulator))
        self.conn.send_obj(MessageType.PARTIAL_RESULT, partials)

    def _handle_reset(self) -> None:
        self.clients = {}
        self.retained = {}
        _BROADCASTS.clear()
        engine_mod._STATE_CACHE.clear()
        # drop materialized task arrays; the factory rebuilds lazily
        engine_mod._DATA_CACHE = None

    def _handle_collect(self) -> None:
        self.conn.send_obj(
            MessageType.RESULT, list(self.clients.values())
        )

    # -- loop ----------------------------------------------------------
    def run(self) -> None:
        while True:
            try:
                kind, payload = self.conn.recv()
            except ConnectionClosed:
                return
            if kind == MessageType.BYE:
                return
            try:
                if kind == MessageType.PHASE:
                    self._handle_phase(payload)
                elif kind == MessageType.STATE:
                    self._handle_state(payload)
                elif kind == MessageType.PARTIAL:
                    self._handle_partial(payload)
                elif kind == MessageType.RESET:
                    self._handle_reset()
                elif kind == MessageType.COLLECT:
                    self._handle_collect()
                else:
                    raise ProtocolError(
                        f"worker cannot handle {kind.name} frames"
                    )
            except ConnectionClosed:
                return
            except Exception:
                # report the failure and stay alive: the engine decides
                # whether to re-raise (phase bugs) or fall back (partials)
                self.conn.send_obj(
                    MessageType.ERROR, traceback.format_exc()
                )


def run_worker(
    host: str,
    port: int,
    *,
    attempts: int = 10,
    backoff: float = 0.05,
    assume_remote: bool = False,
) -> int:
    """Connect, handshake, and serve frames until the server lets go.

    ``assume_remote`` skips the tmpfs probe, forcing framed STATE
    broadcasts even on the server's host — the remote code path under test
    on one machine.  Returns the worker id the server assigned.
    """
    conn = connect_with_retry(host, port, attempts=attempts,
                              backoff=backoff, timeout=None)
    try:
        conn.send_obj(MessageType.HELLO, {
            "magic": MAGIC,
            "version": PROTOCOL_VERSION,
            "remote": bool(assume_remote),
        })
        _, welcome = conn.expect(MessageType.WELCOME)
        if welcome["version"] != PROTOCOL_VERSION:
            raise ProtocolError(
                f"server speaks protocol v{welcome['version']}, this worker "
                f"v{PROTOCOL_VERSION}"
            )
        local = False
        if not assume_remote and welcome.get("probe_path"):
            # shared-filesystem probe: when the server's tmpfs probe file is
            # readable with the advertised token, broadcasts can ride the
            # shared-memory file instead of the socket
            try:
                with open(welcome["probe_path"], "r") as handle:
                    local = handle.read() == welcome["probe_token"]
            except OSError:
                local = False
        conn.send_obj(MessageType.READY, {"local": local})
        engine_mod._init_worker(welcome["data_factory"])
        WorkerSession(conn, welcome["worker_id"]).run()
        return welcome["worker_id"]
    finally:
        conn.close()
