"""`SocketRoundEngine`: the round engine of the socket federation service.

Implements the :class:`~repro.federated.engine.RoundEngine` contract over
the framed TCP protocol of :mod:`repro.serve.rpc`.  Two modes share all of
the machinery:

* ``socket:W`` (self-managed) — the engine listens on a loopback port and
  spawns ``W`` worker processes running :func:`repro.serve.worker.run_worker`;
  workers that die are respawned at the next round's dispatch.
* service mode (``spawn_workers=False``) — the engine only listens; external
  ``repro worker`` processes connect whenever they like and are admitted at
  round boundaries (:class:`~repro.serve.server.FederationServer` runs this
  mode and also blocks in ``wait_for_workers`` at startup).

**Sticky worker↔client affinity.**  A client is assigned to a worker the
first time it is mapped and stays there: the full client object crosses the
socket once, later dispatches ship a :class:`~repro.serve.worker.ClientRef`
stub, and results likewise return stubs for cached clients — momentum
buffers, optimiser and RNG state, and (factory-rebuilt) task data stop
crossing the process boundary between rounds.  The parent's replicas go
stale during a task; ``collect_clients`` ships the authoritative worker
replicas back for end-of-task evaluation, and task boundaries RESET every
cache and rebalance affinity over the workers then alive.

**Failure containment.**  ``may_lose_items`` is the engine's contract
extension: when a worker dies mid-phase (socket error or read timeout),
its items come back as ``None`` instead of poisoning the round — the
trainer drops the lost clients from the round (the participation policy
already tolerates fewer reports than planned) and records them on the
:class:`~repro.metrics.tracker.RoundRecord`.  The dead worker's clients are
reassigned to surviving workers from the parent's last-synced replicas; a
fresh broadcast re-synchronizes their weights on the next round.

Results are bit-identical to the serial engine for the same reason the
process engine's are: clients are independent within a round, the per-client
float operations are unchanged, and outputs are reassembled in item order.
"""

from __future__ import annotations

import os
import pickle
import socket
import tempfile
import time
import uuid
from typing import Callable, Iterable, Mapping, TypeVar

import multiprocessing

import numpy as np

from ..federated.base import FederatedClient
from ..federated.engine import RoundEngine, SharedStateHandle, StateHandle
from ..federated.server import StreamingAccumulator
from ..obs import metrics as _obs_metrics
from ..obs import trace as _obs_trace
from ..utils.serialization import encode_state
from .rpc import (
    MAGIC,
    PROTOCOL_VERSION,
    Connection,
    MessageType,
    RemoteError,
    RpcError,
)
from .worker import ClientRef, run_worker

T = TypeVar("T")
R = TypeVar("R")

__all__ = ["ServeStateHandle", "SocketRoundEngine"]

#: How long the engine waits for one phase RESULT before declaring the
#: worker dead.  Phases run whole local-training rounds, so generous.
PHASE_TIMEOUT = 300.0


class ServeStateHandle(SharedStateHandle):
    """Broadcast handle that resolves locally, via tmpfs, or via STATE frames.

    Parent-side it is a plain :class:`SharedStateHandle` (dict passthrough
    plus the tmpfs file for local workers).  Worker-side, remote workers
    find the state in their framed-broadcast store by token; local workers
    fall back to reading the shared-memory file exactly like process-pool
    workers do.
    """

    def resolve(self) -> Mapping[str, np.ndarray]:
        if self._local is not None:
            return self._local
        from .worker import get_broadcast

        cached = get_broadcast(self.token)
        if cached is not None:
            _obs_metrics.METRICS.counter("broadcast.cache_hits").inc()
            return cached
        return super().resolve()


class _WorkerLink:
    """Parent-side record of one connected worker."""

    def __init__(self, conn: Connection, worker_id: int, local: bool):
        self.conn = conn
        self.worker_id = worker_id
        self.local = local
        self.alive = True
        #: Client ids whose authoritative replica lives on this worker.
        self.cached: set[int] = set()
        #: Client ids whose latest dense update state the worker retained.
        self.retained: set[int] = set()
        #: Affinity load counter (clients assigned since the last rebalance).
        self.assigned = 0


def _spawned_worker(host: str, port: int) -> None:
    """Entry point of self-managed worker processes."""
    try:
        run_worker(host, port)
    except BaseException:  # pragma: no cover - exit code is the signal
        os._exit(1)


class SocketRoundEngine(RoundEngine):
    """Round work dispatched to socket-connected worker processes."""

    name = "socket"
    needs_pickling = True
    #: Contract extension: a dead worker loses its items (``None`` results)
    #: instead of failing the round; the trainer must tolerate and record.
    may_lose_items = True
    #: Trainer-visible marker: shard aggregation can request segment
    #: partials from the workers that retained this round's updates.
    remote_partials = True

    def __init__(
        self,
        max_workers: int | None = None,
        data_factory=None,
        host: str = "127.0.0.1",
        port: int = 0,
        spawn_workers: bool = True,
        phase_timeout: float = PHASE_TIMEOUT,
    ):
        self.max_workers = max_workers or os.cpu_count() or 1
        if self.max_workers < 1:
            raise ValueError(f"need at least one worker, got {max_workers}")
        self.data_factory = data_factory
        self.host = host
        self.port = port
        self.spawn_workers = spawn_workers
        self.phase_timeout = phase_timeout
        self._listener: socket.socket | None = None
        self._links: list[_WorkerLink] = []
        self._processes: list[multiprocessing.Process] = []
        self._affinity: dict[int, _WorkerLink] = {}
        self._origin: dict[int, _WorkerLink] = {}
        self._next_worker_id = 0
        self._probe_path: str | None = None
        self._probe_token: str | None = None

    # ------------------------------------------------------------------
    # listening and admission
    # ------------------------------------------------------------------
    def set_data_factory(self, data_factory) -> None:
        """Install the worker-side client-data factory (pre-admission only)."""
        if self._links:
            raise RuntimeError(
                "cannot install a data factory after workers have connected"
            )
        self.data_factory = data_factory

    def listen(self) -> tuple[str, int]:
        """Bind and listen (idempotent); returns the bound ``(host, port)``."""
        if self._listener is None:
            sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            sock.bind((self.host, self.port))
            sock.listen(64)
            self._listener = sock
            # shared-filesystem probe: workers that can read this token
            # through tmpfs share broadcasts by file instead of by frame
            shm_dir = "/dev/shm" if os.path.isdir("/dev/shm") else None
            fd, self._probe_path = tempfile.mkstemp(
                prefix="repro-serve-", suffix=".probe", dir=shm_dir
            )
            self._probe_token = uuid.uuid4().hex
            with os.fdopen(fd, "w") as handle:
                handle.write(self._probe_token)
        return self.address

    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)`` — valid after :meth:`listen`."""
        if self._listener is None:
            raise RuntimeError("engine is not listening yet")
        name = self._listener.getsockname()
        return name[0], name[1]

    def _live(self) -> list[_WorkerLink]:
        return [link for link in self._links if link.alive]

    def _admit_one(self, timeout: float) -> _WorkerLink | None:
        """Accept and handshake at most one worker connection."""
        self._listener.settimeout(timeout)
        try:
            sock, _ = self._listener.accept()
        except (socket.timeout, BlockingIOError):
            return None
        conn = Connection(sock, timeout=10.0)
        try:
            _, hello = conn.expect(MessageType.HELLO)
            if hello.get("magic") != MAGIC:
                raise RpcError("peer did not speak the serve protocol")
            if hello.get("version") != PROTOCOL_VERSION:
                conn.send_obj(
                    MessageType.ERROR,
                    f"protocol version mismatch: server v{PROTOCOL_VERSION}, "
                    f"worker v{hello.get('version')}",
                )
                raise RpcError("protocol version mismatch")
            worker_id = self._next_worker_id
            self._next_worker_id += 1
            conn.send_obj(MessageType.WELCOME, {
                "version": PROTOCOL_VERSION,
                "worker_id": worker_id,
                "probe_path": self._probe_path,
                "probe_token": self._probe_token,
                "data_factory": self.data_factory,
            })
            _, ready = conn.expect(MessageType.READY)
        except (RpcError, OSError):
            conn.close()
            return None
        conn.settimeout(self.phase_timeout)
        link = _WorkerLink(conn, worker_id, local=bool(ready.get("local")))
        self._links.append(link)
        return link

    def poll_admissions(self) -> int:
        """Admit every worker currently waiting to connect (non-blocking)."""
        admitted = 0
        if self._listener is None:
            return admitted
        while self._admit_one(timeout=0.0) is not None:
            admitted += 1
        return admitted

    def wait_for_workers(self, count: int, timeout: float = 30.0) -> None:
        """Block until ``count`` workers are connected (or raise)."""
        self.listen()
        deadline = time.monotonic() + timeout
        while len(self._live()) < count:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise RpcError(
                    f"only {len(self._live())} of {count} workers connected "
                    f"within {timeout:.0f}s"
                )
            self._admit_one(timeout=min(remaining, 0.5))

    def _ensure_workers(self) -> None:
        self.listen()
        self.poll_admissions()
        if self.spawn_workers:
            self._processes = [p for p in self._processes if p.is_alive()]
            missing = self.max_workers - len(self._live())
            if missing > 0:
                host, port = self.address
                for _ in range(missing):
                    process = multiprocessing.Process(
                        target=_spawned_worker, args=(host, port), daemon=True
                    )
                    process.start()
                    self._processes.append(process)
                self.wait_for_workers(self.max_workers)
        if not self._live():
            raise RuntimeError(
                "no connected workers; start some with "
                "`repro worker --connect HOST:PORT`"
            )

    # ------------------------------------------------------------------
    # failure containment
    # ------------------------------------------------------------------
    def _mark_dead(self, link: _WorkerLink) -> None:
        if not link.alive:
            return
        link.alive = False
        link.conn.close()
        _obs_metrics.METRICS.warn(
            "serve.workers_lost",
            f"worker {link.worker_id} lost mid-round; its clients are "
            f"reassigned at the next dispatch",
            worker_id=link.worker_id,
            cached_clients=len(link.cached),
        )
        # unpin the dead worker's clients: the next dispatch reassigns them
        # to surviving workers from the parent's last-synced replicas
        for client_id in [
            cid for cid, owner in self._affinity.items() if owner is link
        ]:
            del self._affinity[client_id]
        for client_id in [
            cid for cid, owner in self._origin.items() if owner is link
        ]:
            del self._origin[client_id]
        link.cached = set()
        link.retained = set()

    # ------------------------------------------------------------------
    # the RoundEngine contract
    # ------------------------------------------------------------------
    def _affinity_for(
        self, client_id: int, live: list[_WorkerLink]
    ) -> _WorkerLink:
        link = self._affinity.get(client_id)
        if link is not None and link.alive:
            return link
        link = min(live, key=lambda l: (l.assigned, l.worker_id))
        link.assigned += 1
        self._affinity[client_id] = link
        return link

    def map(self, fn: Callable[[T], R], items: Iterable[T]) -> list[R]:
        items = list(items)
        if not items:
            return []
        self._ensure_workers()
        live = self._live()
        self._origin = {}
        # injected into every PHASE payload so worker-side spans stitch
        # under the caller's open (round) span; None when tracing is off
        span_ctx = _obs_trace.current_context()
        assignments: dict[int, list[tuple[int, T]]] = {}
        by_link = {link.worker_id: link for link in live}
        for index, item in enumerate(items):
            if isinstance(item, FederatedClient):
                link = self._affinity_for(item.client_id, live)
            else:
                link = live[index % len(live)]
            assignments.setdefault(link.worker_id, []).append((index, item))
        pending: list[_WorkerLink] = []
        for worker_id, entries in assignments.items():
            link = by_link[worker_id]
            wire = []
            for index, item in entries:
                if (
                    isinstance(item, FederatedClient)
                    and item.client_id in link.cached
                ):
                    wire.append((index, ClientRef(item.client_id)))
                else:
                    wire.append((index, item))
            try:
                link.conn.send(
                    MessageType.PHASE,
                    pickle.dumps((fn, wire, span_ctx), protocol=5),
                )
            except RpcError:
                self._mark_dead(link)
                continue
            for _, item in entries:
                if isinstance(item, FederatedClient):
                    link.cached.add(item.client_id)
            pending.append(link)
        by_client = {
            item.client_id: item
            for item in items
            if isinstance(item, FederatedClient)
        }
        results: list[R | None] = [None] * len(items)
        phase_error: RemoteError | None = None
        for link in pending:
            try:
                _, (entries, retained_ids, telemetry) = link.conn.expect(
                    MessageType.RESULT
                )
            except RemoteError as exc:
                # a phase bug, not a transport failure: keep draining the
                # other workers so the stream stays in sync, then re-raise
                phase_error = phase_error or exc
                continue
            except RpcError:
                self._mark_dead(link)
                continue
            if telemetry is not None:
                _obs_trace.TRACER.absorb(telemetry[0])
                _obs_metrics.METRICS.merge(telemetry[1])
            link.retained = set(retained_ids)
            for client_id in retained_ids:
                self._origin[client_id] = link
            for index, result in entries:
                results[index] = self._substitute(result, by_client)
        if phase_error is not None:
            raise phase_error
        return results

    @staticmethod
    def _substitute(result, by_client: dict[int, FederatedClient]):
        """Swap returned stubs for the parent's replica of the same client."""
        if isinstance(result, ClientRef):
            return by_client[result.client_id]
        if not isinstance(result, tuple):
            return result
        return tuple(
            by_client[part.client_id] if isinstance(part, ClientRef) else part
            for part in result
        )

    def begin_task(self, position: int) -> None:
        if self._listener is None:
            return
        # (re)admissions happen at task boundaries too, then every cache is
        # dropped and affinity rebalances over the workers alive right now
        self.poll_admissions()
        for link in self._live():
            try:
                link.conn.send(MessageType.RESET)
            except RpcError:
                self._mark_dead(link)
                continue
            link.cached = set()
            link.retained = set()
            link.assigned = 0
        self._affinity = {}
        self._origin = {}

    def share_state(self, state: Mapping[str, np.ndarray]) -> StateHandle:
        handle = ServeStateHandle(state)
        remote = [link for link in self._live() if not link.local]
        if remote:
            payload = pickle.dumps(
                (handle.token, encode_state(dict(state))), protocol=5
            )
            for link in remote:
                try:
                    link.conn.send(MessageType.STATE, payload)
                except RpcError:
                    self._mark_dead(link)
        return handle

    # ------------------------------------------------------------------
    # trainer extensions: end-of-task sync and remote segment partials
    # ------------------------------------------------------------------
    def collect_clients(self) -> list[FederatedClient]:
        """Ship every worker's cached client replicas back (authoritative)."""
        collected: list[FederatedClient] = []
        for link in self._live():
            if not link.cached:
                continue
            try:
                link.conn.send(MessageType.COLLECT)
                _, clients = link.conn.expect(MessageType.RESULT)
            except RpcError:
                self._mark_dead(link)
                continue
            collected.extend(clients)
        return collected

    def origin_link(self, client_id: int) -> _WorkerLink | None:
        """The live worker retaining ``client_id``'s latest update, if any."""
        link = self._origin.get(client_id)
        if link is not None and link.alive and client_id in link.retained:
            return link
        return None

    def fetch_partials(
        self, per_link: dict[_WorkerLink, list]
    ) -> dict[int, StreamingAccumulator]:
        """Request segment partial sums from workers; best-effort.

        Sends every worker its batch of ``(segment_index, [(client_id,
        coeff), ...])`` requests first, then collects.  Segments a worker
        fails to serve (death or a missing retained state) are simply
        absent from the result — the caller recomputes them locally from
        the updates it already holds.
        """
        sent: list[_WorkerLink] = []
        for link, requests in per_link.items():
            try:
                link.conn.send(
                    MessageType.PARTIAL, pickle.dumps(requests, protocol=5)
                )
            except RpcError:
                self._mark_dead(link)
                continue
            sent.append(link)
        partials: dict[int, StreamingAccumulator] = {}
        for link in sent:
            try:
                _, served = link.conn.expect(MessageType.PARTIAL_RESULT)
            except RemoteError:
                continue
            except RpcError:
                self._mark_dead(link)
                continue
            for segment_index, accumulator in served:
                partials[segment_index] = accumulator
        return partials

    # ------------------------------------------------------------------
    # teardown
    # ------------------------------------------------------------------
    def close(self) -> None:
        for link in self._links:
            if link.alive:
                try:
                    link.conn.send(MessageType.BYE)
                except RpcError:
                    pass
            link.alive = False
            link.conn.close()
        self._links = []
        self._affinity = {}
        self._origin = {}
        for process in self._processes:
            process.join(timeout=5.0)
            if process.is_alive():  # pragma: no cover - stuck worker
                process.terminate()
                process.join(timeout=5.0)
        self._processes = []
        if self._listener is not None:
            self._listener.close()
            self._listener = None
        if self._probe_path is not None:
            try:
                os.unlink(self._probe_path)
            except FileNotFoundError:
                pass
            self._probe_path = None
