"""Evaluation metrics for federated continual learning."""

from .io import (
    load_result,
    load_results,
    result_from_dict,
    result_to_dict,
    save_result,
    save_results,
)
from .tracker import RoundRecord, RunResult, accuracy_matrix_from_client_evals

__all__ = [
    "RoundRecord",
    "RunResult",
    "accuracy_matrix_from_client_evals",
    "load_result",
    "load_results",
    "result_from_dict",
    "result_to_dict",
    "save_result",
    "save_results",
]
