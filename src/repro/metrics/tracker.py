"""Experiment metrics: average accuracy, forgetting rate, communication, time.

The paper's metrics (Section V-A / V-D):

* **accuracy of task ``t_m``** — the average top-1 accuracy over all ``m``
  learned tasks (averaged across clients here);
* **forgetting rate of task ``k`` after ``m`` tasks** — the drop of task
  ``k``'s accuracy relative to its accuracy right after it was learned:
  ``(acc_k(k) - acc_k(m)) / acc_k(k)``, reported as the mean over ``k < m``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass
class RoundRecord:
    """Accounting for one global aggregation round."""

    position: int
    round_index: int
    upload_bytes: int
    download_bytes: int
    sim_train_seconds: float
    sim_comm_seconds: float
    active_clients: int
    mean_loss: float
    # participation accounting (defaults describe full synchronous rounds,
    # the pre-policy behaviour: everyone planned, everyone reported in time)
    planned_clients: int = -1
    reported_clients: int = -1
    stale_clients: int = 0
    #: Straggler updates dropped this round for exceeding the policy's
    #: ``max_staleness`` carry bound (0 under the default one-round carry).
    evicted: int = 0
    #: What the round's uploads would have cost as dense v1 (the transport
    #: compression baseline); defaults to ``upload_bytes`` (no compression).
    raw_upload_bytes: int = -1
    #: Updates each aggregation shard consumed (empty = unsharded round).
    shard_reported: tuple[int, ...] = ()
    #: Wall seconds spent merging shard partial sums (0 when unsharded).
    merge_seconds: float = 0.0
    #: True when nobody reported and no straggler work was pending: the
    #: global model was left untouched and aggregation never ran.
    skipped: bool = False
    #: Planned clients whose worker died mid-round (socket engine); their
    #: round work was dropped and the policy replanned with the survivors.
    lost: int = 0

    def __post_init__(self):
        if self.planned_clients < 0:
            self.planned_clients = self.active_clients
        if self.reported_clients < 0:
            self.reported_clients = self.planned_clients
        if self.raw_upload_bytes < 0:
            self.raw_upload_bytes = self.upload_bytes
        self.shard_reported = tuple(self.shard_reported)

    @property
    def upload_compression(self) -> float:
        """Compressed-vs-raw upload ratio (1.0 = dense, >1 = savings).

        A round with no uploads at all (skipped, or every client lost) has
        no meaningful ratio on either axis, so both zero-byte cases pin to
        the neutral 1.0 instead of returning 0 or dividing by zero.
        """
        if self.upload_bytes <= 0 or self.raw_upload_bytes <= 0:
            return 1.0
        return self.raw_upload_bytes / self.upload_bytes


@dataclass
class RunResult:
    """Complete record of one federated continual-learning run."""

    method: str
    dataset: str
    num_clients: int
    num_tasks: int
    # accuracy_matrix[m, k] = mean accuracy on task k after learning m+1 tasks
    accuracy_matrix: np.ndarray = field(default_factory=lambda: np.zeros((0, 0)))
    rounds: list[RoundRecord] = field(default_factory=list)
    wall_seconds: float = 0.0
    #: Participation policy spec the run executed under (``"full"``,
    #: ``"sampled:0.5"``, ``"deadline:30"``, ...).
    participation: str = "full"
    #: Transport spec the run executed under (``"v1:dense"``,
    #: ``"v2:delta:0.1"``, ``"v2+fp16:sparse:0.05"``, ...).
    transport: str = "v1:dense"
    #: Scenario spec the run's data was built from (``"class-inc"``,
    #: ``"domain-inc:drift=0.3"``, ``"blurry:overlap=0.2"``, ...).
    scenario: str = "class-inc"
    #: Signature-knowledge selector spec the run executed under
    #: (``"magnitude"``, ``"fisher"``, ``"hybrid:0.5"``, ...); methods that
    #: extract no signature knowledge record the ``"magnitude"`` default.
    selector: str = "magnitude"

    # ------------------------------------------------------------------
    # accuracy metrics
    # ------------------------------------------------------------------
    @property
    def accuracy_curve(self) -> np.ndarray:
        """Average accuracy over learned tasks, after each task stage."""
        m = self.accuracy_matrix.shape[0]
        return np.array(
            [self.accuracy_matrix[stage, : stage + 1].mean() for stage in range(m)]
        )

    @property
    def final_accuracy(self) -> float:
        curve = self.accuracy_curve
        return float(curve[-1]) if len(curve) else float("nan")

    def forgetting_rate(self, stage: int) -> float:
        """Mean forgetting over tasks learned strictly before ``stage``."""
        if stage <= 0:
            return 0.0
        rates = []
        for k in range(stage):
            acc_then = self.accuracy_matrix[k, k]
            acc_now = self.accuracy_matrix[stage, k]
            if acc_then > 0:
                rates.append(np.clip((acc_then - acc_now) / acc_then, 0.0, 1.0))
        return float(np.mean(rates)) if rates else 0.0

    @property
    def forgetting_curve(self) -> np.ndarray:
        m = self.accuracy_matrix.shape[0]
        return np.array([self.forgetting_rate(stage) for stage in range(m)])

    # ------------------------------------------------------------------
    # communication / time metrics
    # ------------------------------------------------------------------
    @property
    def total_upload_bytes(self) -> int:
        return int(sum(r.upload_bytes for r in self.rounds))

    @property
    def total_raw_upload_bytes(self) -> int:
        """Upload volume the run would have cost as dense v1."""
        return int(sum(r.raw_upload_bytes for r in self.rounds))

    @property
    def upload_compression(self) -> float:
        """Run-level compressed-vs-raw upload ratio (1.0 = no compression)."""
        total = self.total_upload_bytes
        if total <= 0 or self.total_raw_upload_bytes <= 0:
            return 1.0
        return self.total_raw_upload_bytes / total

    @property
    def total_download_bytes(self) -> int:
        return int(sum(r.download_bytes for r in self.rounds))

    @property
    def total_comm_bytes(self) -> int:
        return self.total_upload_bytes + self.total_download_bytes

    @property
    def sim_train_seconds(self) -> float:
        return float(sum(r.sim_train_seconds for r in self.rounds))

    @property
    def sim_comm_seconds(self) -> float:
        return float(sum(r.sim_comm_seconds for r in self.rounds))

    @property
    def sim_total_seconds(self) -> float:
        return self.sim_train_seconds + self.sim_comm_seconds

    def time_curve(self) -> np.ndarray:
        """Cumulative simulated time (hours) at the end of each task stage."""
        per_stage: dict[int, float] = {}
        for record in self.rounds:
            per_stage.setdefault(record.position, 0.0)
            per_stage[record.position] += (
                record.sim_train_seconds + record.sim_comm_seconds
            )
        stages = sorted(per_stage)
        return np.cumsum([per_stage[s] for s in stages]) / 3600.0

    # ------------------------------------------------------------------
    # participation metrics
    # ------------------------------------------------------------------
    @property
    def total_planned_clients(self) -> int:
        return int(sum(r.planned_clients for r in self.rounds))

    @property
    def total_reported_clients(self) -> int:
        return int(sum(r.reported_clients for r in self.rounds))

    @property
    def total_stale_clients(self) -> int:
        return int(sum(r.stale_clients for r in self.rounds))

    @property
    def total_evicted_clients(self) -> int:
        """Straggler updates dropped for exceeding ``max_staleness``."""
        return int(sum(r.evicted for r in self.rounds))

    @property
    def total_lost_clients(self) -> int:
        """Planned clients dropped because their worker died mid-round."""
        return int(sum(r.lost for r in self.rounds))

    @property
    def skipped_rounds(self) -> int:
        """Rounds that aggregated nothing (no reports, nothing pending)."""
        return sum(1 for r in self.rounds if r.skipped)

    @property
    def merge_seconds(self) -> float:
        """Total wall seconds spent merging shard partials across the run."""
        return float(sum(r.merge_seconds for r in self.rounds))

    def summary(self) -> dict:
        """Compact dictionary used by the experiment reports."""
        return {
            "method": self.method,
            "dataset": self.dataset,
            "scenario": self.scenario,
            "participation": self.participation,
            "transport": self.transport,
            "selector": self.selector,
            "final_accuracy": round(self.final_accuracy, 4),
            "final_forgetting": round(float(self.forgetting_curve[-1]), 4)
            if self.accuracy_matrix.size
            else float("nan"),
            "comm_gb": round(self.total_comm_bytes / 1e9, 4),
            "upload_x": round(self.upload_compression, 3),
            "sim_hours": round(self.sim_total_seconds / 3600.0, 4),
        }


def accuracy_matrix_from_client_evals(evals: list[list[list[float]]]) -> np.ndarray:
    """Build the mean accuracy matrix from per-stage, per-client accuracy lists.

    ``evals[m][c]`` is the list of per-task accuracies of client ``c`` after
    stage ``m`` (length ``m + 1``).
    """
    stages = len(evals)
    matrix = np.full((stages, stages), np.nan)
    for stage, client_accs in enumerate(evals):
        stacked = np.array(client_accs)  # (clients, stage+1)
        if stacked.ndim != 2 or stacked.shape[1] != stage + 1:
            raise ValueError(
                f"stage {stage}: expected per-client lists of length {stage + 1}"
            )
        matrix[stage, : stage + 1] = stacked.mean(axis=0)
    return matrix
