"""Persisting run results to JSON.

Experiments at ``paper`` scale take hours; saving each :class:`RunResult` lets
reports (EXPERIMENTS.md tables, figures) be rebuilt without retraining, and
lets results be diffed across code versions.
"""

from __future__ import annotations

import json
import os
from typing import Iterable

import numpy as np

from .tracker import RoundRecord, RunResult


def result_to_dict(result: RunResult) -> dict:
    """Convert a :class:`RunResult` to a JSON-serialisable dictionary."""
    return {
        "method": result.method,
        "dataset": result.dataset,
        "scenario": result.scenario,
        "participation": result.participation,
        "transport": result.transport,
        "selector": result.selector,
        "num_clients": result.num_clients,
        "num_tasks": result.num_tasks,
        "accuracy_matrix": [
            [None if np.isnan(v) else float(v) for v in row]
            for row in result.accuracy_matrix
        ],
        "wall_seconds": result.wall_seconds,
        "rounds": [
            {
                "position": r.position,
                "round_index": r.round_index,
                "upload_bytes": r.upload_bytes,
                "download_bytes": r.download_bytes,
                "sim_train_seconds": r.sim_train_seconds,
                "sim_comm_seconds": r.sim_comm_seconds,
                "active_clients": r.active_clients,
                "mean_loss": None if np.isnan(r.mean_loss) else r.mean_loss,
                "planned_clients": r.planned_clients,
                "reported_clients": r.reported_clients,
                "stale_clients": r.stale_clients,
                "evicted": r.evicted,
                "raw_upload_bytes": r.raw_upload_bytes,
                "shard_reported": list(r.shard_reported),
                "merge_seconds": r.merge_seconds,
                "skipped": r.skipped,
                "lost": r.lost,
            }
            for r in result.rounds
        ],
    }


def result_from_dict(payload: dict) -> RunResult:
    """Inverse of :func:`result_to_dict`."""
    matrix = np.array(
        [
            [np.nan if v is None else v for v in row]
            for row in payload["accuracy_matrix"]
        ],
        dtype=float,
    )
    if matrix.size == 0:
        matrix = np.zeros((0, 0))
    rounds = [
        RoundRecord(
            position=r["position"],
            round_index=r["round_index"],
            upload_bytes=r["upload_bytes"],
            download_bytes=r["download_bytes"],
            sim_train_seconds=r["sim_train_seconds"],
            sim_comm_seconds=r["sim_comm_seconds"],
            active_clients=r["active_clients"],
            mean_loss=np.nan if r["mean_loss"] is None else r["mean_loss"],
            # absent in payloads written before participation policies
            planned_clients=r.get("planned_clients", -1),
            reported_clients=r.get("reported_clients", -1),
            stale_clients=r.get("stale_clients", 0),
            # absent in payloads written before bounded straggler carry
            evicted=r.get("evicted", 0),
            # absent in payloads written before the transport redesign
            raw_upload_bytes=r.get("raw_upload_bytes", -1),
            # absent in payloads written before the sharded population
            # subsystem
            shard_reported=tuple(r.get("shard_reported", ())),
            merge_seconds=r.get("merge_seconds", 0.0),
            skipped=r.get("skipped", False),
            # absent in payloads written before the socket federation service
            lost=r.get("lost", 0),
        )
        for r in payload["rounds"]
    ]
    return RunResult(
        method=payload["method"],
        dataset=payload["dataset"],
        num_clients=payload["num_clients"],
        num_tasks=payload["num_tasks"],
        accuracy_matrix=matrix,
        rounds=rounds,
        wall_seconds=payload["wall_seconds"],
        participation=payload.get("participation", "full"),
        transport=payload.get("transport", "v1:dense"),
        # absent in payloads written before the scenario API
        scenario=payload.get("scenario", "class-inc"),
        # absent in payloads written before the curvature subsystem
        selector=payload.get("selector", "magnitude"),
    )


def save_result(result: RunResult, path: str | os.PathLike) -> None:
    """Write one result as JSON."""
    with open(path, "w") as handle:
        json.dump(result_to_dict(result), handle, indent=1)


def load_result(path: str | os.PathLike) -> RunResult:
    """Load one result previously written by :func:`save_result`."""
    with open(path) as handle:
        return result_from_dict(json.load(handle))


def save_result_with_telemetry(
    result: RunResult, session, out_dir: str | os.PathLike
) -> dict:
    """Persist a run result next to its telemetry session's exports.

    Flushes the :class:`~repro.obs.export.Telemetry` session into
    ``out_dir`` (``spans.jsonl``, ``trace.json``, ``metrics.prom``,
    ``metrics.json``) and writes the run's ``result.json`` beside them,
    so one directory captures both what the run produced and how it ran.
    Returns the format -> path mapping, including ``"result"``.
    """
    paths = dict(session.flush(out_dir))
    result_path = os.path.join(os.fspath(out_dir), "result.json")
    save_result(result, result_path)
    paths["result"] = result_path
    return paths


def save_results(results: Iterable[RunResult], path: str | os.PathLike) -> None:
    """Write a collection of results as one JSON array."""
    with open(path, "w") as handle:
        json.dump([result_to_dict(r) for r in results], handle, indent=1)


def load_results(path: str | os.PathLike) -> list[RunResult]:
    """Load a collection written by :func:`save_results`."""
    with open(path) as handle:
        return [result_from_dict(p) for p in json.load(handle)]
