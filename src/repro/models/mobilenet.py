"""MobileNetV2 (Fig. 9's lightweight family).

Inverted-residual blocks: pointwise expansion, depthwise 3x3, linear
pointwise projection, with a residual connection when the shapes allow.  The
paper evaluates width multipliers 1.0 and 2.0; ``width_mult`` scales all
channel counts.
"""

from __future__ import annotations

import numpy as np

from .. import nn
from ..utils.rng import get_rng
from .base import ImageClassifier


def _scale(channels: int, mult: float) -> int:
    return max(int(round(channels * mult)), 4)


class InvertedResidual(nn.Module):
    """MobileNetV2 building block (expansion -> depthwise -> projection)."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        stride: int,
        expand_ratio: int,
        rng: np.random.Generator | None = None,
    ):
        super().__init__()
        rng = get_rng(rng)
        hidden = in_channels * expand_ratio
        self.use_residual = stride == 1 and in_channels == out_channels
        layers = []
        if expand_ratio != 1:
            layers += [
                nn.Conv2d(in_channels, hidden, 1, bias=False, rng=rng),
                nn.BatchNorm2d(hidden),
                nn.ReLU(),
            ]
        layers += [
            nn.Conv2d(
                hidden, hidden, 3, stride=stride, padding=1, groups=hidden,
                bias=False, rng=rng,
            ),
            nn.BatchNorm2d(hidden),
            nn.ReLU(),
            nn.Conv2d(hidden, out_channels, 1, bias=False, rng=rng),
            nn.BatchNorm2d(out_channels),
        ]
        self.block = nn.Sequential(*layers)

    def forward(self, x: nn.Tensor) -> nn.Tensor:
        out = self.block(x)
        return out + x if self.use_residual else out


class MobileNetV2(ImageClassifier):
    """Scaled-down MobileNetV2 with configurable width multiplier."""

    # (expand_ratio, channels, repeats, stride) per stage
    DEFAULT_CONFIG = (
        (1, 8, 1, 1),
        (2, 12, 2, 2),
        (2, 16, 2, 2),
        (2, 24, 1, 1),
    )

    def __init__(
        self,
        num_classes: int,
        input_shape: tuple[int, int, int] = (3, 16, 16),
        width_mult: float = 1.0,
        rng: np.random.Generator | None = None,
    ):
        super().__init__(num_classes, input_shape)
        rng = get_rng(rng)
        c = self.input_shape[0]
        self.width_mult = width_mult
        stem_channels = _scale(8, width_mult)
        self.stem = nn.Sequential(
            nn.Conv2d(c, stem_channels, 3, padding=1, bias=False, rng=rng),
            nn.BatchNorm2d(stem_channels),
            nn.ReLU(),
        )
        blocks = []
        in_channels = stem_channels
        for expand, channels, repeats, stride in self.DEFAULT_CONFIG:
            out_channels = _scale(channels, width_mult)
            for index in range(repeats):
                blocks.append(
                    InvertedResidual(
                        in_channels,
                        out_channels,
                        stride if index == 0 else 1,
                        expand,
                        rng=rng,
                    )
                )
                in_channels = out_channels
        self.blocks = nn.Sequential(*blocks)
        head_channels = _scale(32, width_mult)
        self.head = nn.Sequential(
            nn.Conv2d(in_channels, head_channels, 1, bias=False, rng=rng),
            nn.BatchNorm2d(head_channels),
            nn.ReLU(),
        )
        self.pool = nn.GlobalAvgPool2d()
        self.feature_dim = head_channels
        self.classifier = nn.Linear(head_channels, num_classes, rng=rng)

    def forward_features(self, x: nn.Tensor) -> nn.Tensor:
        return self.pool(self.head(self.blocks(self.stem(x))))


def mobilenet_v2(
    num_classes: int,
    input_shape: tuple[int, int, int] = (3, 16, 16),
    width_mult: float = 1.0,
    rng: np.random.Generator | None = None,
) -> MobileNetV2:
    """MobileNetV2 with width multiplier 1.0 (paper also evaluates 2.0)."""
    return MobileNetV2(num_classes, input_shape, width_mult, rng=rng)


def mobilenet_v2_x2(
    num_classes: int,
    input_shape: tuple[int, int, int] = (3, 16, 16),
    rng: np.random.Generator | None = None,
) -> MobileNetV2:
    """MobileNetV2 with width multiplier 2.0."""
    return MobileNetV2(num_classes, input_shape, 2.0, rng=rng)
