"""Common base class for image-classification models.

Every model in the zoo follows the same contract:

* ``forward_features(x) -> Tensor`` produces a flat embedding;
* ``forward(x) -> Tensor`` produces logits over **all** classes in the
  dataset (task-incremental evaluation masks logits per task via the
  ``class_mask`` arguments of the loss / accuracy functions);
* the classification head is stored in the attribute ``classifier`` so the
  representation/head split needed by FedRep and by FedKNOW's per-task head
  knowledge is the parameter-name prefix ``"classifier"``.
"""

from __future__ import annotations

import numpy as np

from ..nn.module import Module, Parameter
from ..nn.tensor import Tensor


class ImageClassifier(Module):
    """Base class: a feature body plus a ``classifier`` head."""

    def __init__(self, num_classes: int, input_shape: tuple[int, int, int]):
        super().__init__()
        if num_classes < 2:
            raise ValueError(f"need at least two classes, got {num_classes}")
        if len(input_shape) != 3:
            raise ValueError(f"input_shape must be (C, H, W), got {input_shape}")
        self.num_classes = num_classes
        self.input_shape = tuple(int(s) for s in input_shape)

    # ------------------------------------------------------------------
    # body / head split
    # ------------------------------------------------------------------
    def head_parameter_names(self) -> list[str]:
        """Names of parameters belonging to the classification head."""
        return [n for n, _ in self.named_parameters() if n.startswith("classifier")]

    def body_parameter_names(self) -> list[str]:
        """Names of parameters belonging to the feature body."""
        return [
            n for n, _ in self.named_parameters() if not n.startswith("classifier")
        ]

    def body_parameters(self) -> list[Parameter]:
        return [
            p for n, p in self.named_parameters() if not n.startswith("classifier")
        ]

    def head_parameters(self) -> list[Parameter]:
        return [p for n, p in self.named_parameters() if n.startswith("classifier")]

    # ------------------------------------------------------------------
    # forward contract
    # ------------------------------------------------------------------
    def forward_features(self, x: Tensor) -> Tensor:
        raise NotImplementedError

    def forward(self, x: Tensor) -> Tensor:
        return self.classifier(self.forward_features(x))

    def logits(self, inputs: np.ndarray) -> np.ndarray:
        """Convenience: numpy in, numpy logits out (no autograd graph)."""
        from ..nn.tensor import Tensor, no_grad

        with no_grad():
            return self.forward(Tensor(inputs)).data
