"""ShuffleNetV2 (Fig. 9's second lightweight representative).

Stride-1 units split channels in half, transform one half, concatenate and
shuffle; stride-2 units transform both halves and double the channels.
"""

from __future__ import annotations

import numpy as np

from .. import nn
from ..nn.tensor import concat
from ..utils.rng import get_rng
from .base import ImageClassifier


def _branch(
    in_channels: int,
    out_channels: int,
    stride: int,
    rng: np.random.Generator,
) -> nn.Sequential:
    """1x1 -> depthwise 3x3 -> 1x1 transform used in both unit types."""
    return nn.Sequential(
        nn.Conv2d(in_channels, out_channels, 1, bias=False, rng=rng),
        nn.BatchNorm2d(out_channels),
        nn.ReLU(),
        nn.Conv2d(
            out_channels, out_channels, 3, stride=stride, padding=1,
            groups=out_channels, bias=False, rng=rng,
        ),
        nn.BatchNorm2d(out_channels),
        nn.Conv2d(out_channels, out_channels, 1, bias=False, rng=rng),
        nn.BatchNorm2d(out_channels),
        nn.ReLU(),
    )


class ShuffleUnit(nn.Module):
    """Stride-1 ShuffleNetV2 unit with channel split and shuffle."""

    def __init__(self, channels: int, rng: np.random.Generator | None = None):
        super().__init__()
        rng = get_rng(rng)
        if channels % 2:
            raise ValueError(f"channels must be even, got {channels}")
        half = channels // 2
        self.half = half
        self.branch = _branch(half, half, 1, rng)
        self.shuffle = nn.ChannelShuffle(2)

    def forward(self, x: nn.Tensor) -> nn.Tensor:
        left = x[:, : self.half]
        right = x[:, self.half :]
        out = concat([left, self.branch(right)], axis=1)
        return self.shuffle(out)


class ShuffleDownUnit(nn.Module):
    """Stride-2 ShuffleNetV2 unit: both branches are transformed, channels double."""

    def __init__(
        self, in_channels: int, out_channels: int, rng: np.random.Generator | None = None
    ):
        super().__init__()
        rng = get_rng(rng)
        half = out_channels // 2
        self.branch_main = _branch(in_channels, half, 2, rng)
        self.branch_proj = nn.Sequential(
            nn.Conv2d(
                in_channels, in_channels, 3, stride=2, padding=1,
                groups=in_channels, bias=False, rng=rng,
            ),
            nn.BatchNorm2d(in_channels),
            nn.Conv2d(in_channels, half, 1, bias=False, rng=rng),
            nn.BatchNorm2d(half),
            nn.ReLU(),
        )
        self.shuffle = nn.ChannelShuffle(2)

    def forward(self, x: nn.Tensor) -> nn.Tensor:
        out = concat([self.branch_proj(x), self.branch_main(x)], axis=1)
        return self.shuffle(out)


class ShuffleNetV2(ImageClassifier):
    """Small ShuffleNetV2: stem, two shuffle stages, 1x1 head."""

    def __init__(
        self,
        num_classes: int,
        input_shape: tuple[int, int, int] = (3, 16, 16),
        width: int = 16,
        units_per_stage: int = 2,
        rng: np.random.Generator | None = None,
    ):
        super().__init__(num_classes, input_shape)
        rng = get_rng(rng)
        c = self.input_shape[0]
        self.stem = nn.Sequential(
            nn.Conv2d(c, width, 3, padding=1, bias=False, rng=rng),
            nn.BatchNorm2d(width),
            nn.ReLU(),
        )
        stages = []
        channels = width
        for _ in range(2):
            stages.append(ShuffleDownUnit(channels, channels * 2, rng=rng))
            channels *= 2
            for _ in range(units_per_stage - 1):
                stages.append(ShuffleUnit(channels, rng=rng))
        self.stages = nn.Sequential(*stages)
        head_channels = channels * 2
        self.head = nn.Sequential(
            nn.Conv2d(channels, head_channels, 1, bias=False, rng=rng),
            nn.BatchNorm2d(head_channels),
            nn.ReLU(),
        )
        self.pool = nn.GlobalAvgPool2d()
        self.feature_dim = head_channels
        self.classifier = nn.Linear(head_channels, num_classes, rng=rng)

    def forward_features(self, x: nn.Tensor) -> nn.Tensor:
        return self.pool(self.head(self.stages(self.stem(x))))


def shufflenet_v2(
    num_classes: int,
    input_shape: tuple[int, int, int] = (3, 16, 16),
    width: int = 16,
    rng: np.random.Generator | None = None,
) -> ShuffleNetV2:
    """Default small ShuffleNetV2."""
    return ShuffleNetV2(num_classes, input_shape, width, rng=rng)
