"""Inception network (Fig. 9's width / multi-branch family).

Each inception module runs four parallel branches — 1x1, 1x1->3x3,
1x1->3x3->3x3 (the factorised 5x5 of InceptionV3), and pool->1x1 — and
concatenates their outputs along the channel axis.
"""

from __future__ import annotations

import numpy as np

from .. import nn
from ..nn.tensor import concat
from ..utils.rng import get_rng
from .base import ImageClassifier


class ConvBNReLU(nn.Module):
    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size,
        stride=1,
        padding=0,
        rng: np.random.Generator | None = None,
    ):
        super().__init__()
        rng = get_rng(rng)
        self.conv = nn.Conv2d(
            in_channels, out_channels, kernel_size, stride, padding, bias=False, rng=rng
        )
        self.bn = nn.BatchNorm2d(out_channels)

    def forward(self, x: nn.Tensor) -> nn.Tensor:
        return self.bn(self.conv(x)).relu()


class InceptionModule(nn.Module):
    """Four-branch inception block; output channels = sum of branch widths."""

    def __init__(
        self,
        in_channels: int,
        b1: int,
        b3_reduce: int,
        b3: int,
        b5_reduce: int,
        b5: int,
        pool_proj: int,
        rng: np.random.Generator | None = None,
    ):
        super().__init__()
        rng = get_rng(rng)
        self.branch1 = ConvBNReLU(in_channels, b1, 1, rng=rng)
        self.branch3 = nn.Sequential(
            ConvBNReLU(in_channels, b3_reduce, 1, rng=rng),
            ConvBNReLU(b3_reduce, b3, 3, padding=1, rng=rng),
        )
        self.branch5 = nn.Sequential(
            ConvBNReLU(in_channels, b5_reduce, 1, rng=rng),
            ConvBNReLU(b5_reduce, b5, 3, padding=1, rng=rng),
            ConvBNReLU(b5, b5, 3, padding=1, rng=rng),
        )
        self.branch_pool = nn.Sequential(
            nn.MaxPool2d(3, stride=1, padding=1),
            ConvBNReLU(in_channels, pool_proj, 1, rng=rng),
        )
        self.out_channels = b1 + b3 + b5 + pool_proj

    def forward(self, x: nn.Tensor) -> nn.Tensor:
        return concat(
            [self.branch1(x), self.branch3(x), self.branch5(x), self.branch_pool(x)],
            axis=1,
        )


class Inception(ImageClassifier):
    """Small InceptionV3-style network: stem, two inception stages, head."""

    def __init__(
        self,
        num_classes: int,
        input_shape: tuple[int, int, int] = (3, 16, 16),
        width: int = 8,
        rng: np.random.Generator | None = None,
    ):
        super().__init__(num_classes, input_shape)
        rng = get_rng(rng)
        c = self.input_shape[0]
        self.stem = ConvBNReLU(c, width, 3, padding=1, rng=rng)
        self.inception1 = InceptionModule(
            width, width, width // 2, width, width // 2, width, width // 2, rng=rng
        )
        self.pool1 = nn.MaxPool2d(2)
        mid = self.inception1.out_channels
        self.inception2 = InceptionModule(
            mid, width * 2, width, width * 2, width, width, width, rng=rng
        )
        self.pool2 = nn.MaxPool2d(2)
        self.gap = nn.GlobalAvgPool2d()
        self.feature_dim = self.inception2.out_channels
        self.classifier = nn.Linear(self.feature_dim, num_classes, rng=rng)

    def forward_features(self, x: nn.Tensor) -> nn.Tensor:
        out = self.pool1(self.inception1(self.stem(x)))
        out = self.pool2(self.inception2(out))
        return self.gap(out)


def inception(
    num_classes: int,
    input_shape: tuple[int, int, int] = (3, 16, 16),
    width: int = 8,
    rng: np.random.Generator | None = None,
) -> Inception:
    """Default small Inception."""
    return Inception(num_classes, input_shape, width, rng=rng)
