"""DenseNet (Fig. 9's multi-path connectivity family).

Faithful block structure — every layer receives the concatenation of all
previous feature maps within its dense block — with growth rate and depth
scaled for CPU execution.
"""

from __future__ import annotations

import numpy as np

from .. import nn
from ..nn.tensor import concat
from ..utils.rng import get_rng
from .base import ImageClassifier


class DenseLayer(nn.Module):
    """BN-ReLU-Conv(3x3) producing ``growth_rate`` new channels."""

    def __init__(
        self, in_channels: int, growth_rate: int, rng: np.random.Generator | None = None
    ):
        super().__init__()
        rng = get_rng(rng)
        self.bn = nn.BatchNorm2d(in_channels)
        self.conv = nn.Conv2d(in_channels, growth_rate, 3, padding=1, bias=False, rng=rng)

    def forward(self, x: nn.Tensor) -> nn.Tensor:
        return self.conv(self.bn(x).relu())


class DenseBlock(nn.Module):
    """Stack of dense layers with cumulative channel concatenation."""

    def __init__(
        self,
        in_channels: int,
        num_layers: int,
        growth_rate: int,
        rng: np.random.Generator | None = None,
    ):
        super().__init__()
        self.layers = nn.ModuleList()
        channels = in_channels
        for _ in range(num_layers):
            self.layers.append(DenseLayer(channels, growth_rate, rng=rng))
            channels += growth_rate
        self.out_channels = channels

    def forward(self, x: nn.Tensor) -> nn.Tensor:
        features = x
        for layer in self.layers:
            new = layer(features)
            features = concat([features, new], axis=1)
        return features


class Transition(nn.Module):
    """1x1 conv compression followed by 2x2 average pooling."""

    def __init__(
        self, in_channels: int, out_channels: int, rng: np.random.Generator | None = None
    ):
        super().__init__()
        rng = get_rng(rng)
        self.bn = nn.BatchNorm2d(in_channels)
        self.conv = nn.Conv2d(in_channels, out_channels, 1, bias=False, rng=rng)
        self.pool = nn.AvgPool2d(2)

    def forward(self, x: nn.Tensor) -> nn.Tensor:
        return self.pool(self.conv(self.bn(x).relu()))


class DenseNet(ImageClassifier):
    """DenseNet with three dense blocks and two transitions."""

    def __init__(
        self,
        num_classes: int,
        input_shape: tuple[int, int, int] = (3, 16, 16),
        growth_rate: int = 6,
        block_layers: tuple[int, ...] = (3, 3, 3),
        rng: np.random.Generator | None = None,
    ):
        super().__init__(num_classes, input_shape)
        rng = get_rng(rng)
        c = self.input_shape[0]
        stem_channels = 2 * growth_rate
        self.stem = nn.Sequential(
            nn.Conv2d(c, stem_channels, 3, padding=1, bias=False, rng=rng),
            nn.BatchNorm2d(stem_channels),
            nn.ReLU(),
        )
        modules = []
        channels = stem_channels
        for index, num_layers in enumerate(block_layers):
            block = DenseBlock(channels, num_layers, growth_rate, rng=rng)
            modules.append(block)
            channels = block.out_channels
            if index != len(block_layers) - 1:
                compressed = channels // 2
                modules.append(Transition(channels, compressed, rng=rng))
                channels = compressed
        self.blocks = nn.Sequential(*modules)
        self.final_bn = nn.BatchNorm2d(channels)
        self.pool = nn.GlobalAvgPool2d()
        self.feature_dim = channels
        self.classifier = nn.Linear(channels, num_classes, rng=rng)

    def forward_features(self, x: nn.Tensor) -> nn.Tensor:
        out = self.blocks(self.stem(x))
        return self.pool(self.final_bn(out).relu())


def densenet(
    num_classes: int,
    input_shape: tuple[int, int, int] = (3, 16, 16),
    growth_rate: int = 6,
    rng: np.random.Generator | None = None,
) -> DenseNet:
    """Default small DenseNet."""
    return DenseNet(num_classes, input_shape, growth_rate, rng=rng)
