"""Squeeze-and-Excitation networks (Fig. 9's feature-map-exploitation / attention family)."""

from __future__ import annotations

import numpy as np

from .. import nn
from ..utils.rng import get_rng
from .base import ImageClassifier
from .resnet import BasicBlock, ResNet


class SEModule(nn.Module):
    """Channel attention: squeeze (global pool) -> excite (bottleneck MLP) -> scale."""

    def __init__(
        self, channels: int, reduction: int = 4, rng: np.random.Generator | None = None
    ):
        super().__init__()
        rng = get_rng(rng)
        hidden = max(channels // reduction, 2)
        self.fc1 = nn.Linear(channels, hidden, rng=rng)
        self.fc2 = nn.Linear(hidden, channels, rng=rng)

    def forward(self, x: nn.Tensor) -> nn.Tensor:
        n, c = x.shape[0], x.shape[1]
        squeezed = x.mean(axis=(2, 3))
        scale = self.fc2(self.fc1(squeezed).relu()).sigmoid()
        return x * scale.reshape(n, c, 1, 1)


def senet18(
    num_classes: int,
    input_shape: tuple[int, int, int] = (3, 16, 16),
    width: int = 8,
    se_reduction: int = 4,
    rng: np.random.Generator | None = None,
) -> ResNet:
    """SENet-18: ResNet-18 with an SE block after every residual block's second BN."""
    return ResNet(
        num_classes,
        BasicBlock,
        (2, 2, 2, 2),
        input_shape,
        width,
        se_reduction=se_reduction,
        rng=rng,
    )
