"""ResNet family: ResNet-18, ResNet-152, WideResNet, and the SE variant's base.

Channel widths are scaled down from the ImageNet originals (the paper runs on
Jetson GPUs; this reproduction runs the same block structure on CPU with a
configurable base width).  Depth configurations are faithful: ResNet-18 is
BasicBlock x [2,2,2,2]; ResNet-152 is Bottleneck x [3,8,36,3].
"""

from __future__ import annotations

import numpy as np

from .. import nn
from ..utils.rng import get_rng
from .base import ImageClassifier


class BasicBlock(nn.Module):
    """Two 3x3 convolutions with identity (or 1x1-projected) skip."""

    expansion = 1

    def __init__(
        self,
        in_channels: int,
        channels: int,
        stride: int = 1,
        rng: np.random.Generator | None = None,
        se_module: nn.Module | None = None,
    ):
        super().__init__()
        rng = get_rng(rng)
        self.conv1 = nn.Conv2d(
            in_channels, channels, 3, stride=stride, padding=1, bias=False, rng=rng
        )
        self.bn1 = nn.BatchNorm2d(channels)
        self.conv2 = nn.Conv2d(channels, channels, 3, padding=1, bias=False, rng=rng)
        self.bn2 = nn.BatchNorm2d(channels)
        self.se = se_module if se_module is not None else nn.Identity()
        out_channels = channels * self.expansion
        if stride != 1 or in_channels != out_channels:
            # The paper highlights these downsample projections: FedWEIT's
            # weight decomposition damages them (Section V-B), which FedKNOW's
            # magnitude-based knowledge preserves.
            self.downsample = nn.Sequential(
                nn.Conv2d(
                    in_channels, out_channels, 1, stride=stride, bias=False, rng=rng
                ),
                nn.BatchNorm2d(out_channels),
            )
        else:
            self.downsample = nn.Identity()

    def forward(self, x: nn.Tensor) -> nn.Tensor:
        out = self.bn1(self.conv1(x)).relu()
        out = self.bn2(self.conv2(out))
        out = self.se(out)
        return (out + self.downsample(x)).relu()


class Bottleneck(nn.Module):
    """1x1 reduce -> 3x3 (optionally grouped) -> 1x1 expand, with skip."""

    expansion = 4

    def __init__(
        self,
        in_channels: int,
        channels: int,
        stride: int = 1,
        groups: int = 1,
        rng: np.random.Generator | None = None,
        se_module: nn.Module | None = None,
    ):
        super().__init__()
        rng = get_rng(rng)
        self.conv1 = nn.Conv2d(in_channels, channels, 1, bias=False, rng=rng)
        self.bn1 = nn.BatchNorm2d(channels)
        self.conv2 = nn.Conv2d(
            channels,
            channels,
            3,
            stride=stride,
            padding=1,
            groups=groups,
            bias=False,
            rng=rng,
        )
        self.bn2 = nn.BatchNorm2d(channels)
        out_channels = channels * self.expansion
        self.conv3 = nn.Conv2d(channels, out_channels, 1, bias=False, rng=rng)
        self.bn3 = nn.BatchNorm2d(out_channels)
        self.se = se_module if se_module is not None else nn.Identity()
        if stride != 1 or in_channels != out_channels:
            self.downsample = nn.Sequential(
                nn.Conv2d(
                    in_channels, out_channels, 1, stride=stride, bias=False, rng=rng
                ),
                nn.BatchNorm2d(out_channels),
            )
        else:
            self.downsample = nn.Identity()

    def forward(self, x: nn.Tensor) -> nn.Tensor:
        out = self.bn1(self.conv1(x)).relu()
        out = self.bn2(self.conv2(out)).relu()
        out = self.bn3(self.conv3(out))
        out = self.se(out)
        return (out + self.downsample(x)).relu()


class ResNet(ImageClassifier):
    """Configurable residual network over ``(N, C, H, W)`` inputs."""

    def __init__(
        self,
        num_classes: int,
        block_type: type = BasicBlock,
        stage_blocks: tuple[int, ...] = (2, 2, 2, 2),
        input_shape: tuple[int, int, int] = (3, 16, 16),
        width: int = 8,
        groups: int = 1,
        se_reduction: int = 0,
        rng: np.random.Generator | None = None,
    ):
        super().__init__(num_classes, input_shape)
        rng = get_rng(rng)
        c = self.input_shape[0]
        self.width = width
        self.stem = nn.Sequential(
            nn.Conv2d(c, width, 3, padding=1, bias=False, rng=rng),
            nn.BatchNorm2d(width),
            nn.ReLU(),
        )
        stages = []
        in_channels = width
        channels = width
        for stage_index, num_blocks in enumerate(stage_blocks):
            stride = 1 if stage_index == 0 else 2
            blocks = []
            for block_index in range(num_blocks):
                se = self._make_se(channels * block_type.expansion, se_reduction, rng)
                kwargs = {"rng": rng, "se_module": se}
                if block_type is Bottleneck:
                    kwargs["groups"] = groups
                blocks.append(
                    block_type(
                        in_channels,
                        channels,
                        stride=stride if block_index == 0 else 1,
                        **kwargs,
                    )
                )
                in_channels = channels * block_type.expansion
            stages.append(nn.Sequential(*blocks))
            channels *= 2
        self.stages = nn.Sequential(*stages)
        self.pool = nn.GlobalAvgPool2d()
        self.feature_dim = in_channels
        self.classifier = nn.Linear(in_channels, num_classes, rng=rng)

    @staticmethod
    def _make_se(
        channels: int, reduction: int, rng: np.random.Generator
    ) -> nn.Module | None:
        if reduction <= 0:
            return None
        from .senet import SEModule

        return SEModule(channels, reduction, rng=rng)

    def forward_features(self, x: nn.Tensor) -> nn.Tensor:
        return self.pool(self.stages(self.stem(x)))


def resnet18(
    num_classes: int,
    input_shape: tuple[int, int, int] = (3, 16, 16),
    width: int = 8,
    rng: np.random.Generator | None = None,
) -> ResNet:
    """ResNet-18: BasicBlock x [2, 2, 2, 2] (the paper's MiniImageNet/TinyImageNet model)."""
    return ResNet(
        num_classes, BasicBlock, (2, 2, 2, 2), input_shape, width, rng=rng
    )


def resnet152(
    num_classes: int,
    input_shape: tuple[int, int, int] = (3, 16, 16),
    width: int = 4,
    rng: np.random.Generator | None = None,
) -> ResNet:
    """ResNet-152: Bottleneck x [3, 8, 36, 3] (Fig. 9's depth representative)."""
    return ResNet(
        num_classes, Bottleneck, (3, 8, 36, 3), input_shape, width, rng=rng
    )


def wide_resnet(
    num_classes: int,
    input_shape: tuple[int, int, int] = (3, 16, 16),
    width: int = 16,
    rng: np.random.Generator | None = None,
) -> ResNet:
    """WideResNet: ResNet-18 structure at double width (Fig. 9's width representative)."""
    return ResNet(
        num_classes, BasicBlock, (2, 2, 2, 2), input_shape, width, rng=rng
    )


def resnext(
    num_classes: int,
    input_shape: tuple[int, int, int] = (3, 16, 16),
    width: int = 8,
    groups: int = 4,
    rng: np.random.Generator | None = None,
) -> ResNet:
    """ResNeXt: grouped-bottleneck residual network (cardinality via ``groups``)."""
    return ResNet(
        num_classes,
        Bottleneck,
        (2, 2, 2, 2),
        input_shape,
        width,
        groups=groups,
        rng=rng,
    )
