"""Model zoo: the paper's 6-layer CNN, ResNet-18, and the eight Fig. 9 DNNs."""

from .base import ImageClassifier
from .densenet import DenseNet, densenet
from .inception import Inception, inception
from .mobilenet import MobileNetV2, mobilenet_v2, mobilenet_v2_x2
from .resnet import BasicBlock, Bottleneck, ResNet, resnet18, resnet152, resnext, wide_resnet
from .senet import SEModule, senet18
from .shufflenet import ShuffleNetV2, shufflenet_v2
from .six_cnn import SixCNN
from .zoo import (
    FIG9_MODELS,
    available_models,
    build_model,
    model_family,
    register_model,
)

__all__ = [
    "BasicBlock",
    "Bottleneck",
    "DenseNet",
    "FIG9_MODELS",
    "ImageClassifier",
    "Inception",
    "MobileNetV2",
    "ResNet",
    "SEModule",
    "ShuffleNetV2",
    "SixCNN",
    "available_models",
    "build_model",
    "densenet",
    "inception",
    "mobilenet_v2",
    "mobilenet_v2_x2",
    "model_family",
    "register_model",
    "resnet18",
    "resnet152",
    "resnext",
    "senet18",
    "shufflenet_v2",
    "wide_resnet",
]
