"""The 6-layer CNN used by the paper for CIFAR-100 / FC100 / CORe50.

Four 3x3 convolutions (two per stage, max-pooled between stages) followed by
two fully-connected layers — six weighted layers total, matching the "6-layer
CNN model [19]" of Section V-A.
"""

from __future__ import annotations

import numpy as np

from .. import nn
from ..utils.rng import get_rng
from .base import ImageClassifier


class SixCNN(ImageClassifier):
    """6-layer CNN: [conv-conv-pool] x2 -> fc -> fc."""

    def __init__(
        self,
        num_classes: int,
        input_shape: tuple[int, int, int] = (3, 16, 16),
        width: int = 16,
        rng: np.random.Generator | None = None,
    ):
        super().__init__(num_classes, input_shape)
        rng = get_rng(rng)
        c, h, w = self.input_shape
        self.width = width
        self.features = nn.Sequential(
            nn.Conv2d(c, width, 3, padding=1, rng=rng),
            nn.ReLU(),
            nn.Conv2d(width, width, 3, padding=1, rng=rng),
            nn.ReLU(),
            nn.MaxPool2d(2),
            nn.Conv2d(width, 2 * width, 3, padding=1, rng=rng),
            nn.ReLU(),
            nn.Conv2d(2 * width, 2 * width, 3, padding=1, rng=rng),
            nn.ReLU(),
            nn.MaxPool2d(2),
            nn.Flatten(),
        )
        feat_dim = 2 * width * (h // 4) * (w // 4)
        hidden = 4 * width
        self.neck = nn.Sequential(
            nn.Linear(feat_dim, hidden, rng=rng),
            nn.ReLU(),
        )
        self.classifier = nn.Linear(hidden, num_classes, rng=rng)

    def forward_features(self, x: nn.Tensor) -> nn.Tensor:
        return self.neck(self.features(x))
