"""Model registry and factory.

Maps the model names used throughout the experiment configs to constructor
functions, and records the architecture *family* each model represents in the
paper's Figure 9 taxonomy (depth / multi-path / width / feature-map
exploitation / attention / lightweight).
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from .base import ImageClassifier
from .densenet import densenet
from .inception import inception
from .mobilenet import mobilenet_v2, mobilenet_v2_x2
from .resnet import resnet18, resnet152, resnext, wide_resnet
from .senet import senet18
from .shufflenet import shufflenet_v2
from .six_cnn import SixCNN

ModelFactory = Callable[..., ImageClassifier]

_REGISTRY: dict[str, ModelFactory] = {}
_FAMILIES: dict[str, str] = {}


def register_model(name: str, family: str) -> Callable[[ModelFactory], ModelFactory]:
    """Decorator/registrar adding a factory under ``name`` with its family tag."""

    def decorator(factory: ModelFactory) -> ModelFactory:
        if name in _REGISTRY:
            raise ValueError(f"model {name!r} already registered")
        _REGISTRY[name] = factory
        _FAMILIES[name] = family
        return factory

    return decorator


def _register_defaults() -> None:
    register_model("six_cnn", "baseline")(
        lambda num_classes, **kw: SixCNN(num_classes, **kw)
    )
    register_model("resnet18", "depth")(resnet18)
    register_model("resnet152", "depth")(resnet152)
    register_model("wide_resnet", "width")(wide_resnet)
    register_model("resnext", "width")(resnext)
    register_model("inception", "width")(inception)
    register_model("densenet", "multi-path")(densenet)
    register_model("senet18", "feature-map")(senet18)
    register_model("mobilenet_v2", "lightweight")(mobilenet_v2)
    register_model("mobilenet_v2_x2", "lightweight")(mobilenet_v2_x2)
    register_model("shufflenet_v2", "lightweight")(shufflenet_v2)


_register_defaults()

#: The eight networks evaluated in Figure 9 (six architecture categories).
FIG9_MODELS: tuple[str, ...] = (
    "wide_resnet",
    "resnext",
    "resnet152",
    "senet18",
    "mobilenet_v2",
    "mobilenet_v2_x2",
    "shufflenet_v2",
    "densenet",
)


def available_models() -> list[str]:
    """Names of all registered models."""
    return sorted(_REGISTRY)


def model_family(name: str) -> str:
    """Architecture family (Fig. 9 taxonomy) of a registered model."""
    if name not in _FAMILIES:
        raise KeyError(f"unknown model {name!r}; known: {available_models()}")
    return _FAMILIES[name]


def build_model(
    name: str,
    num_classes: int,
    input_shape: tuple[int, int, int] = (3, 16, 16),
    rng: np.random.Generator | None = None,
    **kwargs,
) -> ImageClassifier:
    """Instantiate a registered model by name."""
    if name not in _REGISTRY:
        raise KeyError(f"unknown model {name!r}; known: {available_models()}")
    return _REGISTRY[name](
        num_classes, input_shape=input_shape, rng=rng, **kwargs
    )
