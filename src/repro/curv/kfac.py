"""Per-layer K-FAC curvature factors from one tapped tape replay.

K-FAC approximates a layer's Fisher block as a Kronecker product
``F ~= A (x) G`` of two small second-moment matrices: ``A = E[a a^T]`` over
the layer's input activations and ``G = E[g g^T]`` over the per-sample
gradients at its pre-activation output.  One
:meth:`~repro.nn.graph.GraphTape.replay_grad_tapped` pass over the captured
loss graph surfaces both — the activation value at each layer node's first
argument slot and the backward gradient at its output slot — so all layers'
factors cost a single forward/backward.

Conventions (weights only; biases ride separate ``add`` nodes and are not
factored):

* ``matmul`` (``x @ W``, ``W`` of shape ``(in, out)``): ``A`` is
  ``(in, in)``, ``G`` is ``(out, out)``, both sample means with the loss's
  1/N mean-scaling undone so rows are per-sample gradients.
* ``conv2d`` (groups=1): activations are the im2col patches, ``A`` of shape
  ``(K, K)`` with ``K = c_in*kh*kw`` summed over spatial positions per
  sample; ``G`` of shape ``(c_out, c_out)`` averaged over samples and
  positions (the KFC convention).

For a single sample at a single spatial position the Kronecker diagonal is
*exact*: ``G_oo * A_ii = (g_o a_i)**2``, the empirical Fisher diagonal —
the property the tests pin.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..nn.functional import im2col
from .tape import LossTape


@dataclass
class KFACFactor:
    """One layer's Kronecker pair and the metadata to map it to a weight."""

    name: str  # weight parameter name, e.g. "features.0.weight"
    op: str  # "matmul" | "conv2d"
    a: np.ndarray  # (in, in) activation factor, float64
    g: np.ndarray  # (out, out) pre-activation gradient factor, float64
    weight_shape: tuple[int, ...]

    def diagonal_importance(self) -> np.ndarray:
        """``kron(A, G)``'s diagonal reshaped to the weight's shape."""
        da = np.diag(self.a)
        dg = np.diag(self.g)
        if self.op == "matmul":
            # W is (in, out): F[(i, o)] ~= A_ii * G_oo
            return np.outer(da, dg).reshape(self.weight_shape)
        # conv W is (c_out, c_in*kh*kw) row-major per output channel
        return np.outer(dg, da).reshape(self.weight_shape)


def kfac_factors(
    model,
    x: np.ndarray,
    y: np.ndarray,
    class_mask: np.ndarray,
    tape: LossTape | None = None,
) -> list[KFACFactor]:
    """Kronecker factors for every matmul/conv2d layer, one tapped replay.

    Grouped convolutions (``groups > 1``) are skipped — their Fisher blocks
    are block-diagonal per group and not representable as a single
    Kronecker pair.
    """
    x = np.asarray(x)
    y = np.asarray(y)
    n = len(y)
    if n == 0:
        raise ValueError("cannot estimate K-FAC factors from 0 samples")
    mask = np.asarray(class_mask, dtype=bool)
    if tape is None:
        tape = LossTape(model, x, y, mask)
    elif tape.batch != n:
        raise ValueError(
            f"tape was captured at batch {tape.batch}, got {n} samples"
        )
    slot_to_param = {ps.slot: k for k, ps in enumerate(tape.tape.param_slots)}
    layers = []
    for node in tape.tape.nodes:
        if node.op.name not in ("matmul", "conv2d"):
            continue
        if len(node.arg_slots) < 2:
            continue
        k = slot_to_param.get(node.arg_slots[1])
        if k is None:
            continue  # weight is a constant, not a trained parameter
        if node.op.name == "conv2d" and node.params.get("groups", 1) != 1:
            continue
        layers.append((node, k))
    taps = set()
    for node, _ in layers:
        taps.add(node.arg_slots[0])
        taps.add(node.out_slot)
    _, _, tap_values, tap_grads = tape.tape.replay_grad_tapped(
        {"x": x, "y": y, "mask": mask}, tape.slot_arrays(model), taps=taps
    )
    factors: list[KFACFactor] = []
    for node, k in layers:
        grad = tap_grads.get(node.out_slot)
        if grad is None:
            continue
        name = tape.param_names[tape.order[k]]
        weight_shape = tuple(node.arg_shapes[1])
        # undo the loss's 1/N mean-scaling so rows are per-sample gradients
        grad = grad.astype(np.float64) * n
        act = tap_values[node.arg_slots[0]]
        if node.op.name == "matmul":
            a2 = act.astype(np.float64)
            g2 = grad
            a_factor = a2.T @ a2 / n
            g_factor = g2.T @ g2 / n
        else:
            c_out, c_in_g, kh, kw = weight_shape
            sh, sw = node.params["sh"], node.params["sw"]
            ph, pw = node.params["ph"], node.params["pw"]
            cols, oh, ow = im2col(act, kh, kw, sh, sw, ph, pw)
            spatial = oh * ow
            patch = cols.transpose(0, 2, 1).reshape(-1, c_in_g * kh * kw)
            patch = patch.astype(np.float64)
            a_factor = patch.T @ patch / n
            g2 = grad.reshape(n, c_out, spatial)
            g2 = g2.transpose(0, 2, 1).reshape(-1, c_out)
            g_factor = g2.T @ g2 / (n * spatial)
        factors.append(
            KFACFactor(
                name=name,
                op=node.op.name,
                a=a_factor,
                g=g_factor,
                weight_shape=weight_shape,
            )
        )
    return factors
