"""Pluggable scoring of signature-task weights (the `--selector` seam).

FedKNOW's knowledge extractor keeps the global top-``rho`` *scored* weights
of a trained model (Eq. 1).  The score function is this seam:

* ``magnitude`` — ``|w_j|``, the paper's weight-magnitude criterion and the
  default.  Bit-identical to the pre-seam extractor.
* ``fisher`` — the diagonal-Laplace saliency ``F_j * w_j**2`` (the leading
  term of the loss increase when ``w_j`` is pruned to zero, optimal brain
  damage style), with ``F_j`` the empirical Fisher diagonal estimated on a
  sample of the task's training data.
* ``hybrid:<mix>`` — a convex blend of the two criteria, each normalized by
  its mean so the mixing weight is scale-free; ``hybrid:0`` ranks like
  magnitude, ``hybrid:1`` like fisher.

Scores only *rank*; the extractor's tie-aware top-k, per-parameter index
splitting and wire format are untouched by the choice of selector.
"""

from __future__ import annotations

import numpy as np

from ..utils.rng import get_rng
from .fisher import empirical_fisher_diagonal

#: The spec strings `repro list` advertises and `--selector` accepts.
SELECTOR_SPECS = ("magnitude", "fisher", "hybrid:<mix>")


class SignatureSelector:
    """Scores every model weight; the extractor keeps the top-``rho``."""

    def scores(self, model, task, rng=None) -> np.ndarray:
        """A flat score per weight, canonical ``named_parameters`` order."""
        raise NotImplementedError

    def describe(self) -> str:
        """The canonical spec string that recreates this selector."""
        raise NotImplementedError


class MagnitudeSelector(SignatureSelector):
    """The paper's criterion: absolute weight magnitude (Eq. 1)."""

    def scores(self, model, task, rng=None) -> np.ndarray:
        return np.concatenate(
            [np.abs(p.data).ravel() for _, p in model.named_parameters()]
        )

    def describe(self) -> str:
        return "magnitude"


class FisherSelector(SignatureSelector):
    """Diagonal-Laplace saliency ``F_j * w_j**2``.

    ``max_samples`` caps the Fisher estimate's sample count (drawn without
    replacement from the task's training set when it is larger); estimation
    rides the batched tape replay, so the cost is a handful of batched
    steps once per task.
    """

    def __init__(self, max_samples: int = 256, chunk: int = 32):
        if max_samples < 1:
            raise ValueError(f"max_samples must be >= 1, got {max_samples}")
        self.max_samples = max_samples
        self.chunk = chunk

    def scores(self, model, task, rng=None) -> np.ndarray:
        x, y = task.train_x, task.train_y
        if len(y) > self.max_samples:
            keep = get_rng(rng).choice(len(y), self.max_samples, replace=False)
            keep.sort()
            x, y = x[keep], y[keep]
        fisher = empirical_fisher_diagonal(
            model, x, y, task.class_mask(), chunk=self.chunk
        )
        weights = np.concatenate(
            [p.data.ravel() for _, p in model.named_parameters()]
        ).astype(np.float64)
        return fisher * weights * weights

    def describe(self) -> str:
        return "fisher"


class HybridSelector(SignatureSelector):
    """Convex blend of mean-normalized magnitude and Fisher saliencies."""

    def __init__(self, mix: float = 0.5, max_samples: int = 256,
                 chunk: int = 32):
        if not 0.0 <= mix <= 1.0:
            raise ValueError(f"hybrid mix must be in [0, 1], got {mix}")
        self.mix = float(mix)
        self._magnitude = MagnitudeSelector()
        self._fisher = FisherSelector(max_samples=max_samples, chunk=chunk)

    @staticmethod
    def _normalized(scores: np.ndarray) -> np.ndarray:
        mean = scores.mean()
        return scores / mean if mean > 0 else scores

    def scores(self, model, task, rng=None) -> np.ndarray:
        magnitude = self._magnitude.scores(model, task).astype(np.float64)
        fisher = self._fisher.scores(model, task, rng=rng)
        return ((1.0 - self.mix) * self._normalized(magnitude)
                + self.mix * self._normalized(fisher))

    def describe(self) -> str:
        return f"hybrid:{self.mix:g}"


def create_selector(spec=None) -> SignatureSelector:
    """Build a selector from a spec string (``None`` means ``magnitude``).

    Raises ``ValueError`` naming the known specs for anything unknown, so
    CLI validation can surface the catalogue.
    """
    if spec is None:
        return MagnitudeSelector()
    if isinstance(spec, SignatureSelector):
        return spec
    name, _, arg = str(spec).partition(":")
    if name == "magnitude" and not arg:
        return MagnitudeSelector()
    if name == "fisher" and not arg:
        return FisherSelector()
    if name == "hybrid":
        if not arg:
            raise ValueError(
                f"selector spec {spec!r} needs a mix in [0, 1] "
                f"(e.g. hybrid:0.5); known selectors: "
                f"{', '.join(SELECTOR_SPECS)}"
            )
        try:
            mix = float(arg)
        except ValueError:
            raise ValueError(
                f"selector spec {spec!r} has a non-numeric mix; known "
                f"selectors: {', '.join(SELECTOR_SPECS)}"
            ) from None
        return HybridSelector(mix=mix)
    raise ValueError(
        f"unknown selector {spec!r}; known selectors: "
        f"{', '.join(SELECTOR_SPECS)}"
    )
