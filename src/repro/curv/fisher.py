"""Diagonal Fisher information estimators.

Two standard flavours over the masked cross-entropy loss:

* **empirical** — ``F_j = (1/N) sum_n (dL_n/dw_j)**2`` with the dataset's
  true labels.  Cheap, and the right quantity for importance scoring
  (optimal-brain-damage saliencies use exactly these squared gradients).
* **Monte-Carlo** — labels sampled from the model's own masked predictive
  softmax, giving an unbiased estimate of the true Fisher
  ``E_{y~p(y|x)}[(d log p / dw)**2]``.

Both replay a batch-1 :class:`~repro.curv.tape.LossTape` with the samples
stacked along the batched client axis, so estimation costs roughly one
batched training step per chunk.
"""

from __future__ import annotations

import numpy as np

from ..utils.rng import get_rng
from .tape import LossTape


def _masked_probs(model, x: np.ndarray, mask: np.ndarray) -> np.ndarray:
    """Predictive softmax restricted to the task's classes, rows sum to 1."""
    logits = model.logits(x).astype(np.float64)
    masked = np.where(mask, logits, -np.inf)
    masked -= masked.max(axis=1, keepdims=True)
    exp = np.exp(masked)
    return exp / exp.sum(axis=1, keepdims=True)


def empirical_fisher_diagonal(
    model,
    x: np.ndarray,
    y: np.ndarray,
    class_mask: np.ndarray,
    chunk: int = 32,
    tape: LossTape | None = None,
) -> np.ndarray:
    """Mean squared per-sample gradient at the true labels, flat float64.

    The result is in canonical ``named_parameters`` order and is invariant
    (up to float64 summation order) to any permutation of the samples.
    """
    x = np.asarray(x)
    y = np.asarray(y)
    if len(y) == 0:
        raise ValueError("cannot estimate Fisher information from 0 samples")
    if tape is None:
        tape = LossTape(model, x[:1], y[:1], class_mask)
    total = tape.squared_grad_sum(model, x, y, class_mask, chunk=chunk)
    return total / len(y)


def mc_fisher_diagonal(
    model,
    x: np.ndarray,
    class_mask: np.ndarray,
    num_samples: int = 1,
    rng: np.random.Generator | None = None,
    chunk: int = 32,
    tape: LossTape | None = None,
) -> np.ndarray:
    """Monte-Carlo Fisher diagonal: labels drawn from the model's softmax."""
    x = np.asarray(x)
    if len(x) == 0:
        raise ValueError("cannot estimate Fisher information from 0 samples")
    if num_samples < 1:
        raise ValueError(f"num_samples must be >= 1, got {num_samples}")
    rng = get_rng(rng)
    mask = np.asarray(class_mask, dtype=bool)
    probs = _masked_probs(model, x, mask)
    # inverse-CDF sampling; clip guards the float edge where the cumulative
    # sum lands just short of 1.0 and u falls past it
    last_active = int(np.flatnonzero(mask).max())
    cumulative = np.cumsum(probs, axis=1)
    if tape is None:
        y_ex = np.zeros((1,), dtype=np.int64)
        tape = LossTape(model, x[:1], y_ex, mask)
    total = np.zeros(tape.dim, dtype=np.float64)
    for _ in range(num_samples):
        u = rng.random((len(x), 1))
        labels = (cumulative < u).sum(axis=1)
        labels = np.minimum(labels, last_active).astype(tape.label_dtype)
        total += tape.squared_grad_sum(model, x, labels, mask, chunk=chunk)
    return total / (len(x) * num_samples)
