"""Diagonal Hessian via the Gauss-Newton approximation.

For a softmax cross-entropy loss the generalized Gauss-Newton diagonal is

    H_jj  ~=  (1/N) sum_n sum_c p_nc * (dL(x_n, c)/dw_j)**2

— the label-expectation of squared gradients under the model's own
predictive distribution, which for this loss family *equals* the exact
Fisher diagonal.  Unlike the Monte-Carlo Fisher it sums the class
expectation exactly (one replay sweep per active class), so it is
deterministic and strictly positive semi-definite by construction.
"""

from __future__ import annotations

import numpy as np

from .fisher import _masked_probs
from .tape import LossTape


def gauss_newton_diagonal(
    model,
    x: np.ndarray,
    class_mask: np.ndarray,
    chunk: int = 32,
    tape: LossTape | None = None,
    prob_floor: float = 1e-12,
) -> np.ndarray:
    """Exact GGN/Fisher diagonal over the masked classes, flat float64.

    Classes whose total predictive mass is below ``prob_floor`` are skipped
    (their weighted contribution is numerically zero anyway).
    """
    x = np.asarray(x)
    if len(x) == 0:
        raise ValueError("cannot estimate curvature from 0 samples")
    mask = np.asarray(class_mask, dtype=bool)
    probs = _masked_probs(model, x, mask)
    if tape is None:
        y_ex = np.zeros((1,), dtype=np.int64)
        tape = LossTape(model, x[:1], y_ex, mask)
    total = np.zeros(tape.dim, dtype=np.float64)
    for c in np.flatnonzero(mask):
        weights = probs[:, c]
        if weights.sum() <= prob_floor:
            continue
        labels = np.full(len(x), c, dtype=tape.label_dtype)
        total += tape.squared_grad_sum(
            model, x, labels, mask, weights=weights, chunk=chunk
        )
    return total / len(x)
