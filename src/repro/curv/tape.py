"""Loss-graph capture and per-sample gradient replay for curvature estimation.

Curvature estimators need many gradients of the *same* loss graph at fixed
weights — one per sample (diagonal Fisher), one per class (Gauss-Newton), or
one tapped pass (K-FAC).  Re-paying dynamic autograd dispatch for each would
dominate the estimate, so this module captures the masked cross-entropy loss
once on a :class:`~repro.nn.graph.GraphTape` and replays it:

* :meth:`LossTape.squared_grad_sum` stacks samples along the tape's batched
  client axis (``replay_grad_batched`` with the live weights broadcast across
  the batch — zero copies, the replay only reads), so per-sample gradients
  ride the same zero-dispatch path as batched training.  Graphs containing
  ops without a batched form (e.g. batch norm) fall back to serial replay.
* K-FAC reads layer activations and pre-activation gradients through
  :meth:`~repro.nn.graph.GraphTape.replay_grad_tapped`.

The capture runs on a throwaway pickle-copy of the model in eval mode, so
estimation never mutates the live model or its running buffers.  Replays read
the *live* model's weights via :meth:`slot_arrays`, so one captured tape
serves a whole task even as training moves the weights.
"""

from __future__ import annotations

import pickle

import numpy as np

from ..nn import functional as F
from ..nn.graph import GraphTape
from ..nn.tensor import Tensor


class LossTape:
    """A captured masked cross-entropy loss over an example batch.

    ``x_example`` / ``y_example`` fix the capture's batch size: capture at
    batch 1 for per-sample replay (:meth:`squared_grad_sum` re-batches along
    the client axis), or at the full batch for tapped K-FAC passes.
    """

    def __init__(
        self,
        model,
        x_example: np.ndarray,
        y_example: np.ndarray,
        class_mask: np.ndarray,
    ):
        x_example = np.asarray(x_example)
        y_example = np.asarray(y_example)
        mask = np.asarray(class_mask, dtype=bool)
        self.model = pickle.loads(pickle.dumps(model))
        self.model.eval()
        self.input_dtype = x_example.dtype
        self.label_dtype = y_example.dtype
        self.batch = int(len(y_example))
        x_t = Tensor(np.array(x_example, copy=True))
        y_t = Tensor(np.array(y_example, copy=True), dtype=y_example.dtype)
        mask_t = Tensor(np.array(mask, copy=True), dtype=mask.dtype)
        self.tape = GraphTape()
        with self.tape.capture():
            self.tape.add_input("x", x_t)
            self.tape.add_input("y", y_t)
            self.tape.add_input("mask", mask_t)
            loss = F.cross_entropy(self.model(x_t), y_t, class_mask=mask_t)
            self.tape.set_output(loss)
        # slot k of the tape maps to parameter index order[k] of the model;
        # a parameter the loss never touches simply has no slot (zero grads)
        self.order = self.tape.bind_parameters(self.model.parameters())
        sizes = [int(p.data.size) for p in self.model.parameters()]
        self.param_offsets = np.concatenate([[0], np.cumsum(sizes)]).astype(int)
        self.dim = int(self.param_offsets[-1])
        #: canonical flat offset of each tape param slot
        self.slot_offsets = [
            int(self.param_offsets[self.order[k]])
            for k in range(self.tape.num_params)
        ]
        self.param_names = [name for name, _ in model.named_parameters()]

    @classmethod
    def for_task(cls, model, task, batch: int = 1) -> "LossTape":
        """Capture for ``task``'s sample shape at the given batch size."""
        shape = (batch,) + tuple(task.train_x.shape[1:])
        x_ex = np.zeros(shape, dtype=task.train_x.dtype)
        y_ex = np.zeros((batch,), dtype=task.train_y.dtype)
        return cls(model, x_ex, y_ex, task.class_mask())

    def slot_arrays(self, model) -> list[np.ndarray]:
        """The live model's parameter arrays in tape slot order."""
        params = [p.data for _, p in model.named_parameters()]
        if len(params) != len(self.param_offsets) - 1:
            raise ValueError(
                f"model has {len(params)} parameters, tape was captured "
                f"with {len(self.param_offsets) - 1}"
            )
        return [params[self.order[k]] for k in range(self.tape.num_params)]

    # ------------------------------------------------------------------
    # per-sample gradient accumulation
    # ------------------------------------------------------------------
    def squared_grad_sum(
        self,
        model,
        x: np.ndarray,
        y: np.ndarray,
        class_mask: np.ndarray,
        weights: np.ndarray | None = None,
        chunk: int = 32,
    ) -> np.ndarray:
        """``sum_n w_n * g_n**2`` over per-sample loss gradients ``g_n``.

        Returns a flat float64 vector in canonical ``named_parameters``
        order.  ``weights`` defaults to all-ones.  Requires a batch-1
        capture; samples are chunked along the batched-replay client axis
        (the per-slice arithmetic is bit-identical to serial replay for the
        ``batch_exact`` op set, so the result does not depend on ``chunk``).
        """
        if self.batch != 1:
            raise ValueError(
                f"per-sample replay needs a batch-1 capture, got batch "
                f"{self.batch}"
            )
        x = np.asarray(x)
        y = np.asarray(y, dtype=self.label_dtype)
        mask = np.asarray(class_mask, dtype=bool)
        n = len(y)
        arrays = self.slot_arrays(model)
        out = np.zeros(self.dim, dtype=np.float64)
        use_batched = not self.tape.batch_unsupported_ops()
        for start in range(0, n, max(1, int(chunk))):
            xb = x[start:start + chunk]
            yb = y[start:start + chunk]
            b = len(yb)
            wb = None
            if weights is not None:
                wb = np.asarray(weights[start:start + chunk], dtype=np.float64)
            if use_batched and b > 1:
                inputs = {
                    "x": xb[:, None],
                    "y": yb.reshape(b, 1),
                    "mask": np.broadcast_to(mask, (b,) + mask.shape),
                }
                stacked = [
                    np.broadcast_to(a, (b,) + a.shape) for a in arrays
                ]
                _, grads = self.tape.replay_grad_batched(inputs, stacked, b)
                for k, g in enumerate(grads):
                    if g is None:
                        continue
                    flat = g.reshape(b, -1).astype(np.float64)
                    sq = flat * flat
                    contrib = sq.sum(axis=0) if wb is None else wb @ sq
                    lo = self.slot_offsets[k]
                    out[lo:lo + flat.shape[1]] += contrib
            else:
                for i in range(b):
                    inputs = {
                        "x": xb[i:i + 1], "y": yb[i:i + 1], "mask": mask,
                    }
                    _, grads = self.tape.replay_grad(inputs, arrays)
                    w_i = 1.0 if wb is None else float(wb[i])
                    for k, g in enumerate(grads):
                        if g is None:
                            continue
                        flat = g.ravel().astype(np.float64)
                        lo = self.slot_offsets[k]
                        out[lo:lo + flat.size] += w_i * flat * flat
        return out
