"""Curvature estimation over the captured loss graph.

Second-order loss geometry for the FedKNOW reproduction: diagonal Fisher
(empirical and Monte-Carlo), the exact Gauss-Newton/Fisher diagonal, and
per-layer K-FAC Kronecker factors — all computed by replaying a
:class:`~repro.nn.graph.GraphTape` capture of the masked cross-entropy
loss, so estimation rides the same zero-dispatch path as batched training.

The consumer-facing seam is :class:`SignatureSelector`: pluggable scoring
of signature-task weights for the knowledge extractor (``magnitude`` /
``fisher`` / ``hybrid:<mix>``), selected per run via ``--selector``.
"""

from .fisher import empirical_fisher_diagonal, mc_fisher_diagonal
from .hessian import gauss_newton_diagonal
from .kfac import KFACFactor, kfac_factors
from .selector import (
    SELECTOR_SPECS,
    FisherSelector,
    HybridSelector,
    MagnitudeSelector,
    SignatureSelector,
    create_selector,
)
from .tape import LossTape

__all__ = [
    "SELECTOR_SPECS",
    "FisherSelector",
    "HybridSelector",
    "KFACFactor",
    "LossTape",
    "MagnitudeSelector",
    "SignatureSelector",
    "create_selector",
    "empirical_fisher_diagonal",
    "gauss_newton_diagonal",
    "kfac_factors",
    "mc_fisher_diagonal",
]
