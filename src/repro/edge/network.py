"""Bandwidth-limited network model for client <-> server communication.

Fig. 6 of the paper sweeps the per-client bandwidth cap from 50 KB/s to
10 MB/s (the default elsewhere is 1 MB/s); communication time is payload
size divided by bandwidth plus a small per-round protocol latency.

Two layers model a link:

* :class:`NetworkModel` — the federation-wide link budget.  It stays a
  frozen value object (it participates in experiment cache keys) and is
  symmetric by default, but can carry distinct ``uplink_bytes_per_second``
  and ``downlink_bytes_per_second`` caps.
* :class:`NetworkLink` — one client's concrete link, derived from the
  model and the client's :class:`~repro.edge.device.DeviceProfile`
  (``uplink_scale`` / ``downlink_scale``; Raspberry-Pi-class boards sit on
  asymmetric consumer links).  The protocol latency is charged **once per
  round-trip** — the upload leg carries it (the request opens the round),
  the download leg rides the open connection.
"""

from __future__ import annotations

from dataclasses import dataclass

KB = 1000
MB = 1000**2

#: The eight bandwidth settings of Fig. 6.
FIG6_BANDWIDTHS: tuple[int, ...] = (
    50 * KB,
    100 * KB,
    250 * KB,
    500 * KB,
    1 * MB,
    2 * MB,
    5 * MB,
    10 * MB,
)


@dataclass(frozen=True)
class NetworkLink:
    """One client's link to the server: asymmetric bandwidth + latency."""

    uplink_bytes_per_second: float
    downlink_bytes_per_second: float
    round_latency_seconds: float = 0.05

    def __post_init__(self):
        if self.uplink_bytes_per_second <= 0 or self.downlink_bytes_per_second <= 0:
            raise ValueError("link bandwidth must be positive")
        if self.round_latency_seconds < 0:
            raise ValueError("latency must be non-negative")

    @property
    def symmetric(self) -> bool:
        return self.uplink_bytes_per_second == self.downlink_bytes_per_second

    def upload_seconds(self, num_bytes: float) -> float:
        """Time for the upload leg (carries the round's protocol latency)."""
        if num_bytes < 0:
            raise ValueError(f"num_bytes must be non-negative, got {num_bytes}")
        return num_bytes / self.uplink_bytes_per_second + self.round_latency_seconds

    def download_seconds(self, num_bytes: float) -> float:
        """Time for the download leg (rides the round's open connection)."""
        if num_bytes < 0:
            raise ValueError(f"num_bytes must be non-negative, got {num_bytes}")
        return num_bytes / self.downlink_bytes_per_second

    def round_trip_seconds(self, up_bytes: float, down_bytes: float) -> float:
        """Upload + download time with the protocol latency charged once.

        On a symmetric link this is computed as ``(up + down) / bandwidth +
        latency`` — the exact float path of the pre-transport trainer — so
        dense-v1 accounting stays bit-identical.
        """
        if self.symmetric:
            if up_bytes < 0 or down_bytes < 0:
                raise ValueError("byte counts must be non-negative")
            return (
                (up_bytes + down_bytes) / self.uplink_bytes_per_second
                + self.round_latency_seconds
            )
        return self.upload_seconds(up_bytes) + self.download_seconds(down_bytes)


@dataclass(frozen=True)
class NetworkModel:
    """Per-client link budget to the central server.

    ``bandwidth_bytes_per_second`` is the symmetric default (and the Fig. 6
    sweep knob); ``uplink_bytes_per_second`` / ``downlink_bytes_per_second``
    override one direction when the federation's links are asymmetric.
    """

    bandwidth_bytes_per_second: float = 1 * MB
    round_latency_seconds: float = 0.05
    uplink_bytes_per_second: float | None = None
    downlink_bytes_per_second: float | None = None

    def __post_init__(self):
        if self.bandwidth_bytes_per_second <= 0:
            raise ValueError("bandwidth must be positive")
        if self.round_latency_seconds < 0:
            raise ValueError("latency must be non-negative")
        for value in (self.uplink_bytes_per_second, self.downlink_bytes_per_second):
            if value is not None and value <= 0:
                raise ValueError("directional bandwidth must be positive")

    @property
    def uplink(self) -> float:
        return (
            self.uplink_bytes_per_second
            if self.uplink_bytes_per_second is not None
            else self.bandwidth_bytes_per_second
        )

    @property
    def downlink(self) -> float:
        return (
            self.downlink_bytes_per_second
            if self.downlink_bytes_per_second is not None
            else self.bandwidth_bytes_per_second
        )

    def link_for_device(self, device=None) -> NetworkLink:
        """The concrete link of a client running on ``device``.

        Device profiles scale the shared budget deterministically
        (``uplink_scale`` / ``downlink_scale``), so runs stay reproducible
        and cacheable; ``device=None`` returns the unscaled reference link.
        """
        up_scale = getattr(device, "uplink_scale", 1.0)
        down_scale = getattr(device, "downlink_scale", 1.0)
        return NetworkLink(
            uplink_bytes_per_second=self.uplink * up_scale,
            downlink_bytes_per_second=self.downlink * down_scale,
            round_latency_seconds=self.round_latency_seconds,
        )

    def transfer_seconds(self, num_bytes: float) -> float:
        """Time to move ``num_bytes`` over the symmetric reference link."""
        if num_bytes < 0:
            raise ValueError(f"num_bytes must be non-negative, got {num_bytes}")
        return num_bytes / self.bandwidth_bytes_per_second + self.round_latency_seconds


def format_bandwidth(bytes_per_second: float) -> str:
    """Human-readable bandwidth label (matches the paper's axis labels)."""
    if bytes_per_second >= MB:
        value = bytes_per_second / MB
        unit = "MB/s"
    else:
        value = bytes_per_second / KB
        unit = "KB/s"
    text = f"{value:.0f}" if value == int(value) else f"{value:.1f}"
    return f"{text} {unit}"
