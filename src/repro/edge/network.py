"""Bandwidth-limited network model for client <-> server communication.

Fig. 6 of the paper sweeps the per-client bandwidth cap from 50 KB/s to
10 MB/s (the default elsewhere is 1 MB/s); communication time is payload
size divided by bandwidth plus a small per-round protocol latency.
"""

from __future__ import annotations

from dataclasses import dataclass

KB = 1000
MB = 1000**2

#: The eight bandwidth settings of Fig. 6.
FIG6_BANDWIDTHS: tuple[int, ...] = (
    50 * KB,
    100 * KB,
    250 * KB,
    500 * KB,
    1 * MB,
    2 * MB,
    5 * MB,
    10 * MB,
)


@dataclass(frozen=True)
class NetworkModel:
    """Symmetric per-client link to the central server."""

    bandwidth_bytes_per_second: float = 1 * MB
    round_latency_seconds: float = 0.05

    def __post_init__(self):
        if self.bandwidth_bytes_per_second <= 0:
            raise ValueError("bandwidth must be positive")
        if self.round_latency_seconds < 0:
            raise ValueError("latency must be non-negative")

    def transfer_seconds(self, num_bytes: float) -> float:
        """Time to move ``num_bytes`` over this link."""
        if num_bytes < 0:
            raise ValueError(f"num_bytes must be non-negative, got {num_bytes}")
        return num_bytes / self.bandwidth_bytes_per_second + self.round_latency_seconds


def format_bandwidth(bytes_per_second: float) -> str:
    """Human-readable bandwidth label (matches the paper's axis labels)."""
    if bytes_per_second >= MB:
        value = bytes_per_second / MB
        unit = "MB/s"
    else:
        value = bytes_per_second / KB
        unit = "KB/s"
    text = f"{value:.0f}" if value == int(value) else f"{value:.1f}"
    return f"{text} {unit}"
