"""Cost model bridging this reproduction's scaled models to real-scale costs.

The repository's networks are width/resolution-scaled so they train on CPU,
but the paper's time / memory / communication results depend on *real* model
sizes (a 45 MB ResNet-18, a 117 MB ResNet-152, GB-scale transfer volumes).
:class:`ModelCostModel` measures the scaled model (parameters, forward FLOPs,
activation sizes via the op profiler) and projects every byte / FLOP quantity
to the published reference scale of the corresponding architecture, so the
simulated hours and gigabytes are directly comparable to the paper's figures.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..models.base import ImageClassifier
from ..nn.profiler import profile_forward

#: Training requires roughly a forward plus a ~2x backward pass.
TRAIN_FLOPS_MULTIPLIER = 3.0

BYTES_PER_PARAM = 4  # float32


@dataclass(frozen=True)
class ReferenceModel:
    """Published size/compute figures for the real architecture."""

    params: float  # parameter count
    flops_per_sample: float  # forward FLOPs per sample at the paper's resolution


# Published parameter counts and forward-FLOP figures (ImageNet-resolution for
# the Fig. 9 networks; CIFAR resolution for the 6-layer CNN).
REFERENCE_MODELS: dict[str, ReferenceModel] = {
    "six_cnn": ReferenceModel(1.5e6, 1.5e8),
    "resnet18": ReferenceModel(11.69e6, 1.82e9),
    "resnet152": ReferenceModel(60.19e6, 11.58e9),
    "wide_resnet": ReferenceModel(68.88e6, 11.44e9),
    "resnext": ReferenceModel(25.03e6, 4.26e9),
    "inception": ReferenceModel(23.83e6, 5.73e9),
    "densenet": ReferenceModel(7.98e6, 2.87e9),
    "senet18": ReferenceModel(11.78e6, 1.82e9),
    "mobilenet_v2": ReferenceModel(3.50e6, 3.00e8),
    "mobilenet_v2_x2": ReferenceModel(11.20e6, 1.17e9),
    "shufflenet_v2": ReferenceModel(2.28e6, 1.46e8),
}

#: Bytes of one raw training sample in the real datasets (float32 CHW).
REFERENCE_SAMPLE_BYTES: dict[str, int] = {
    "cifar100": 3 * 32 * 32 * 4,
    "fc100": 3 * 32 * 32 * 4,
    "core50": 3 * 128 * 128 * 4,
    "miniimagenet": 3 * 84 * 84 * 4,
    "tinyimagenet": 3 * 64 * 64 * 4,
    "svhn": 3 * 32 * 32 * 4,
    "combined": 3 * 84 * 84 * 4,
}


class ModelCostModel:
    """Projects scaled-model quantities onto the real architecture's scale."""

    def __init__(
        self,
        model: ImageClassifier,
        model_name: str,
        dataset_name: str = "cifar100",
    ):
        if model_name not in REFERENCE_MODELS:
            raise KeyError(
                f"no reference figures for model {model_name!r}; "
                f"known: {sorted(REFERENCE_MODELS)}"
            )
        self.model_name = model_name
        self.dataset_name = dataset_name
        self.reference = REFERENCE_MODELS[model_name]
        self.our_params = model.num_parameters()
        our_flops, our_act_elems = profile_forward(model, model.input_shape)
        self.our_flops_per_sample = max(our_flops, 1.0)
        self.our_activation_elems = max(our_act_elems, 1.0)
        self.param_scale = self.reference.params / self.our_params
        self.flops_scale = self.reference.flops_per_sample / self.our_flops_per_sample
        our_sample_bytes = 4 * int(
            model.input_shape[0] * model.input_shape[1] * model.input_shape[2]
        )
        self.sample_scale = (
            REFERENCE_SAMPLE_BYTES.get(dataset_name, our_sample_bytes)
            / our_sample_bytes
        )

    # ------------------------------------------------------------------
    # size projections
    # ------------------------------------------------------------------
    @property
    def real_model_bytes(self) -> int:
        """Real model payload (what one FedAvg up- or down-link carries)."""
        return int(self.reference.params * BYTES_PER_PARAM)

    def real_state_bytes(self, our_state_bytes: int) -> int:
        """Project bytes of model-derived state (weights, masks, knowledge)."""
        return int(our_state_bytes * self.param_scale)

    def real_sample_store_bytes(self, our_sample_store_bytes: int) -> int:
        """Project bytes of stored raw samples (episodic memories)."""
        return int(our_sample_store_bytes * self.sample_scale)

    # ------------------------------------------------------------------
    # compute / memory projections
    # ------------------------------------------------------------------
    def train_flops(self, batch_size: int, compute_units: float) -> float:
        """Real FLOPs for ``compute_units`` forward+backward batch passes."""
        return (
            TRAIN_FLOPS_MULTIPLIER
            * self.reference.flops_per_sample
            * batch_size
            * compute_units
        )

    def training_memory_bytes(self, batch_size: int) -> int:
        """Peak training memory: weights + grads + optimiser + activations.

        Activation volume scales sub-linearly with FLOPs (spatial resolution
        contributes to both, channel width only linearly to activations);
        the 2/3-power law is a standard approximation.
        """
        weights = self.reference.params * BYTES_PER_PARAM
        real_act_elems = self.our_activation_elems * self.flops_scale ** (2.0 / 3.0)
        activations = real_act_elems * BYTES_PER_PARAM * batch_size * 2  # fwd + saved
        framework_overhead = 512 * 1024**2  # CUDA context / runtime footprint
        return int(3 * weights + activations + framework_overhead)
