"""Stochastic arrival and churn processes for simulated populations.

Deployment-scale federations are not a fixed roster: clients discover the
service over time (heavy-tailed install/arrival bursts) and alternate
between connected sessions and offline gaps.  A :class:`PopulationModel`
describes that process; :meth:`PopulationModel.schedule` draws one concrete
:class:`PopulationSchedule` — per-client first-arrival times plus optional
per-client session/off-time durations — which the event-driven simulators
in :mod:`repro.federated.simulation` unroll into arrival/departure events.

Draws follow the repo's ``SeedSequence`` sub-RNG discipline: each purpose
(arrivals, session lengths, off times) gets its own
``SeedSequence(entropy=seed, spawn_key=(purpose,))`` stream, so schedules
are reproducible, order-independent, and O(population) to construct.

Models are addressed by compact specs (the CLI's ``--population`` flag):

* ``"fixed"`` — everyone present from ``t=0``, no churn: the **degenerate**
  model under which the event-driven trainer must reproduce the synchronous
  trainer's round stream bit-identically;
* ``"uniform:<T>"`` — arrivals uniform over ``[0, T)``;
* ``"pareto:<alpha>"`` — heavy-tailed (Lomax) inter-arrival gaps with shape
  ``alpha > 1`` (mean gap ``scale / (alpha - 1)``);
* ``"lognormal:<sigma>"`` — log-normal inter-arrival gaps
  ``scale * exp(sigma * N(0, 1))``.

Every family except ``fixed`` accepts ``,scale=<s>`` (gap/horizon scale in
simulated seconds) and ``,churn=<on>/<off>`` (mean session length / mean
offline gap; per-client durations are log-normal around those means, and
sessions repeat cyclically).  Example::

    pareto:1.5,scale=0.2,churn=300/600
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: ``spawn_key`` purposes of the model's sub-RNG streams.
_ARRIVALS, _SESSIONS, _OFFTIMES = 0, 1, 2

#: Dispersion of per-client session/off-time durations around their means.
CHURN_SIGMA = 1.0


@dataclass(frozen=True)
class PopulationSchedule:
    """One drawn realization of a population's arrival/churn process.

    ``arrival[i]`` is client ``i``'s first-arrival time.  With churn,
    client ``i`` repeats a cycle of ``session[i]`` seconds online followed
    by ``offtime[i]`` seconds offline, starting at its arrival; without
    churn both arrays are ``None`` and clients stay online forever.
    """

    arrival: np.ndarray
    session: np.ndarray | None = None
    offtime: np.ndarray | None = None

    @property
    def num_clients(self) -> int:
        return len(self.arrival)

    @property
    def has_churn(self) -> bool:
        return self.session is not None

    def departure_after(self, client_id: int, arrival_time: float) -> float:
        """When the session starting at ``arrival_time`` ends."""
        if self.session is None:
            return float("inf")
        return arrival_time + float(self.session[client_id])

    def return_after(self, client_id: int, departure_time: float) -> float:
        """When the client comes back online after leaving."""
        if self.offtime is None:
            return float("inf")
        return departure_time + float(self.offtime[client_id])

    def present_at(self, t: float) -> np.ndarray:
        """Boolean presence mask over the population at time ``t``."""
        arrived = self.arrival <= t
        if self.session is None:
            return arrived
        cycle = self.session + self.offtime
        phase = (t - self.arrival) % cycle
        return arrived & (phase < self.session)


@dataclass(frozen=True)
class PopulationModel:
    """A parameterized arrival/churn process (see the module docstring)."""

    family: str
    shape: float = 0.0
    scale: float = 1.0
    churn_on: float | None = None
    churn_off: float | None = None

    def __post_init__(self):
        if self.family not in ("fixed", "uniform", "pareto", "lognormal"):
            raise ValueError(f"unknown population family {self.family!r}")
        if self.family == "pareto" and self.shape <= 1.0:
            raise ValueError(
                f"pareto arrivals need shape alpha > 1 (finite mean gap), "
                f"got {self.shape:g}"
            )
        if self.family == "lognormal" and self.shape < 0:
            raise ValueError(f"lognormal sigma must be >= 0, got {self.shape:g}")
        if self.family == "uniform" and self.shape <= 0:
            raise ValueError(
                f"uniform arrivals need a positive horizon, got {self.shape:g}"
            )
        if self.scale <= 0:
            raise ValueError(f"scale must be positive, got {self.scale:g}")
        if (self.churn_on is None) != (self.churn_off is None):
            raise ValueError("churn needs both a session and an off-time mean")
        if self.churn_on is not None and (
            self.churn_on <= 0 or self.churn_off <= 0
        ):
            raise ValueError(
                f"churn means must be positive, got "
                f"{self.churn_on:g}/{self.churn_off:g}"
            )

    @property
    def has_churn(self) -> bool:
        return self.churn_on is not None

    @property
    def degenerate(self) -> bool:
        """True for the everyone-at-t=0, no-churn model: the regime where
        the event-driven trainer collapses to the synchronous one."""
        return self.family == "fixed" and not self.has_churn

    def describe(self) -> str:
        """Canonical spec string (stable across runs; used in cache keys)."""
        if self.family == "fixed":
            base = "fixed"
        else:
            base = f"{self.family}:{self.shape:g}"
            if self.scale != 1.0:
                base += f",scale={self.scale:g}"
        if self.has_churn:
            base += f",churn={self.churn_on:g}/{self.churn_off:g}"
        return base

    def _rng(self, seed: int, purpose: int) -> np.random.Generator:
        return np.random.default_rng(
            np.random.SeedSequence(entropy=seed, spawn_key=(purpose,))
        )

    def schedule(self, num_clients: int, seed: int = 0) -> PopulationSchedule:
        """Draw a concrete per-client schedule for ``num_clients`` clients."""
        if num_clients < 1:
            raise ValueError(f"need at least one client, got {num_clients}")
        if self.family == "fixed":
            arrival = np.zeros(num_clients)
        elif self.family == "uniform":
            rng = self._rng(seed, _ARRIVALS)
            arrival = rng.uniform(0.0, self.shape * self.scale, num_clients)
        else:
            rng = self._rng(seed, _ARRIVALS)
            if self.family == "pareto":
                gaps = self.scale * rng.pareto(self.shape, num_clients)
            else:
                gaps = self.scale * np.exp(
                    self.shape * rng.standard_normal(num_clients)
                )
            arrival = np.cumsum(gaps)
        session = offtime = None
        if self.has_churn:
            # log-normal durations whose *mean* is the spec's value:
            # E[exp(sigma z - sigma^2 / 2)] = 1
            correction = np.exp(-0.5 * CHURN_SIGMA**2)
            draws = self._rng(seed, _SESSIONS).standard_normal(num_clients)
            session = self.churn_on * correction * np.exp(CHURN_SIGMA * draws)
            draws = self._rng(seed, _OFFTIMES).standard_normal(num_clients)
            offtime = self.churn_off * correction * np.exp(CHURN_SIGMA * draws)
        return PopulationSchedule(
            arrival=arrival, session=session, offtime=offtime
        )


def create_population(
    population: str | PopulationModel,
) -> PopulationModel:
    """Resolve a :class:`PopulationModel` from a spec, or pass one through.

    Specs: ``"fixed"``, ``"uniform:<T>"``, ``"pareto:<alpha>"``,
    ``"lognormal:<sigma>"`` — optionally followed by ``,scale=<s>`` and/or
    ``,churn=<on>/<off>`` (not on ``fixed``).
    """
    if isinstance(population, PopulationModel):
        return population
    head, *extras = population.split(",")
    name, _, main = head.partition(":")
    if name not in ("fixed", "uniform", "pareto", "lognormal"):
        raise KeyError(
            f"unknown population family {population!r}; known: "
            f"['fixed', 'lognormal', 'pareto', 'uniform']"
        )
    kwargs: dict = {}
    for extra in extras:
        key, eq, value = extra.partition("=")
        if not eq or key not in ("scale", "churn"):
            raise ValueError(
                f"population spec {population!r} has an unknown option "
                f"{extra!r}; options are 'scale=<s>' and 'churn=<on>/<off>'"
            )
        try:
            if key == "scale":
                kwargs["scale"] = float(value)
            else:
                on, sep, off = value.partition("/")
                if not sep:
                    raise ValueError
                kwargs["churn_on"] = float(on)
                kwargs["churn_off"] = float(off)
        except ValueError:
            raise ValueError(
                f"population spec {population!r} has a malformed value for "
                f"{key!r}: {value!r}"
            ) from None
    if name == "fixed":
        if main or "scale" in kwargs:
            raise ValueError(
                "the fixed population takes no argument (everyone arrives "
                "at t=0); churn is allowed: 'fixed,churn=<on>/<off>'"
            )
        return PopulationModel(family="fixed", **kwargs)
    if not main:
        raise ValueError(
            f"population family {name!r} needs an argument, e.g. "
            f"'pareto:1.5', 'lognormal:0.8' or 'uniform:600'"
        )
    try:
        shape = float(main)
    except ValueError:
        raise ValueError(
            f"population spec {population!r} has a non-numeric argument "
            f"{main!r}"
        ) from None
    return PopulationModel(family=name, shape=shape, **kwargs)
