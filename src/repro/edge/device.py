"""Edge device profiles (the paper's testbed, Section V-A).

Each profile records an *effective training throughput* (sustained FLOP/s
during DNN training, a conservative fraction of the peak) and the device's
memory capacity.  These drive the simulated training-time and out-of-memory
behaviour that replaces the physical Jetson / Raspberry Pi cluster.
"""

from __future__ import annotations

from dataclasses import dataclass

GB = 1024**3


@dataclass(frozen=True)
class DeviceProfile:
    """An edge device's compute, memory, and link capabilities.

    ``uplink_scale`` / ``downlink_scale`` multiply the federation's
    :class:`~repro.edge.network.NetworkModel` budget into this device's
    concrete per-client link: the bench-powered Jetsons sit on the lab's
    full link, while Raspberry-Pi-class boards model asymmetric consumer
    connections whose upload direction is the constrained one.
    """

    name: str
    flops_per_second: float  # effective sustained training throughput
    memory_bytes: int
    has_gpu: bool = True
    uplink_scale: float = 1.0
    downlink_scale: float = 1.0

    def __post_init__(self):
        if self.flops_per_second <= 0:
            raise ValueError(f"{self.name}: flops_per_second must be positive")
        if self.memory_bytes <= 0:
            raise ValueError(f"{self.name}: memory_bytes must be positive")
        if self.uplink_scale <= 0 or self.downlink_scale <= 0:
            raise ValueError(f"{self.name}: link scales must be positive")

    def training_seconds(self, flops: float) -> float:
        """Time to execute ``flops`` of training work on this device."""
        if flops < 0:
            raise ValueError(f"flops must be non-negative, got {flops}")
        return flops / self.flops_per_second


# The paper's testbed devices.  Effective throughputs are sustained training
# rates (roughly 15-20 % of peak fp16 for the Jetsons; NEON CPU for the Pi).
JETSON_AGX = DeviceProfile("jetson_agx", 2.0e12, 32 * GB)
JETSON_XAVIER_NX = DeviceProfile("jetson_xavier_nx", 1.0e12, 16 * GB)
JETSON_TX2 = DeviceProfile("jetson_tx2", 2.5e11, 8 * GB)
JETSON_NANO = DeviceProfile("jetson_nano", 8.0e10, 4 * GB)
RASPBERRY_PI_2GB = DeviceProfile(
    "raspberry_pi_2gb", 6.0e9, 2 * GB, has_gpu=False,
    uplink_scale=0.5, downlink_scale=0.8,
)
RASPBERRY_PI_4GB = DeviceProfile(
    "raspberry_pi_4gb", 6.0e9, 4 * GB, has_gpu=False,
    uplink_scale=0.5, downlink_scale=0.8,
)
RASPBERRY_PI_8GB = DeviceProfile(
    "raspberry_pi_8gb", 6.0e9, 8 * GB, has_gpu=False,
    uplink_scale=0.5, downlink_scale=0.8,
)

DEVICE_CATALOG = {
    profile.name: profile
    for profile in (
        JETSON_AGX,
        JETSON_XAVIER_NX,
        JETSON_TX2,
        JETSON_NANO,
        RASPBERRY_PI_2GB,
        RASPBERRY_PI_4GB,
        RASPBERRY_PI_8GB,
    )
}


def get_device(name: str) -> DeviceProfile:
    """Look up a device profile by name."""
    if name not in DEVICE_CATALOG:
        raise KeyError(f"unknown device {name!r}; known: {sorted(DEVICE_CATALOG)}")
    return DEVICE_CATALOG[name]
