"""Edge substrate: device profiles, cost projection, network, clusters,
and population arrival/churn processes."""

from .arrivals import (
    CHURN_SIGMA,
    PopulationModel,
    PopulationSchedule,
    create_population,
)
from .cluster import (
    EdgeCluster,
    jetson_cluster,
    jetson_raspberry_cluster,
    uniform_cluster,
)
from .cost import (
    BYTES_PER_PARAM,
    REFERENCE_MODELS,
    REFERENCE_SAMPLE_BYTES,
    TRAIN_FLOPS_MULTIPLIER,
    ModelCostModel,
    ReferenceModel,
)
from .device import (
    DEVICE_CATALOG,
    GB,
    DeviceProfile,
    JETSON_AGX,
    JETSON_NANO,
    JETSON_TX2,
    JETSON_XAVIER_NX,
    RASPBERRY_PI_2GB,
    RASPBERRY_PI_4GB,
    RASPBERRY_PI_8GB,
    get_device,
)
from .network import (
    FIG6_BANDWIDTHS,
    KB,
    MB,
    NetworkLink,
    NetworkModel,
    format_bandwidth,
)

__all__ = [
    "BYTES_PER_PARAM",
    "CHURN_SIGMA",
    "DEVICE_CATALOG",
    "DeviceProfile",
    "EdgeCluster",
    "FIG6_BANDWIDTHS",
    "GB",
    "JETSON_AGX",
    "JETSON_NANO",
    "JETSON_TX2",
    "JETSON_XAVIER_NX",
    "KB",
    "MB",
    "ModelCostModel",
    "NetworkLink",
    "NetworkModel",
    "PopulationModel",
    "PopulationSchedule",
    "RASPBERRY_PI_2GB",
    "RASPBERRY_PI_4GB",
    "RASPBERRY_PI_8GB",
    "REFERENCE_MODELS",
    "REFERENCE_SAMPLE_BYTES",
    "ReferenceModel",
    "TRAIN_FLOPS_MULTIPLIER",
    "create_population",
    "format_bandwidth",
    "get_device",
    "jetson_cluster",
    "jetson_raspberry_cluster",
    "uniform_cluster",
]
