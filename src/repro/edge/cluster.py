"""Heterogeneous edge clusters (the paper's 20- and 30-device testbeds)."""

from __future__ import annotations

from dataclasses import dataclass, field

from .device import (
    DeviceProfile,
    JETSON_AGX,
    JETSON_NANO,
    JETSON_TX2,
    JETSON_XAVIER_NX,
    RASPBERRY_PI_2GB,
    RASPBERRY_PI_4GB,
    RASPBERRY_PI_8GB,
)


@dataclass
class EdgeCluster:
    """An ordered collection of devices; client ``i`` runs on device ``i % n``."""

    devices: list[DeviceProfile] = field(default_factory=list)

    def __post_init__(self):
        if not self.devices:
            raise ValueError("cluster needs at least one device")

    def __len__(self) -> int:
        return len(self.devices)

    def device_for_client(
        self, client_id: int, num_clients: int | None = None
    ) -> DeviceProfile:
        """Deterministic client -> device placement.

        With ``num_clients`` given and fewer clients than devices, clients are
        spread across the whole catalogue (client i gets device
        ``i * n_devices // num_clients``), so scaled-down experiments still
        sample every device type — including the Raspberry Pis at the end of
        the heterogeneous cluster.  Otherwise placement is round-robin.
        """
        if num_clients and 0 < num_clients < len(self.devices):
            index = (client_id * len(self.devices)) // num_clients
            return self.devices[min(index, len(self.devices) - 1)]
        return self.devices[client_id % len(self.devices)]

    @property
    def slowest(self) -> DeviceProfile:
        return min(self.devices, key=lambda d: d.flops_per_second)

    @property
    def min_memory(self) -> int:
        return min(d.memory_bytes for d in self.devices)


def jetson_cluster() -> EdgeCluster:
    """The paper's 20-device cluster: 2 AGX + 2 TX2 + 8 Xavier NX + 8 Nano."""
    return EdgeCluster(
        [JETSON_AGX] * 2 + [JETSON_TX2] * 2 + [JETSON_XAVIER_NX] * 8 + [JETSON_NANO] * 8
    )


def jetson_raspberry_cluster() -> EdgeCluster:
    """The 30-device cluster of Fig. 4(d-f): 20 Jetsons + 10 Raspberry Pis.

    The Pi mix follows Section V-B: one 2 GB, five 4 GB, four 8 GB boards.
    The 2 GB board is what runs out of memory under FedWEIT after 7 tasks.
    """
    cluster = jetson_cluster()
    pis = (
        [RASPBERRY_PI_2GB]
        + [RASPBERRY_PI_4GB] * 5
        + [RASPBERRY_PI_8GB] * 4
    )
    return EdgeCluster(cluster.devices + pis)


def uniform_cluster(device: DeviceProfile, count: int) -> EdgeCluster:
    """A homogeneous cluster of ``count`` identical devices."""
    if count < 1:
        raise ValueError(f"count must be >= 1, got {count}")
    return EdgeCluster([device] * count)
