"""Deterministic random-number management.

All stochastic components (weight init, data generation, client sampling,
dropout) draw from explicit :class:`numpy.random.Generator` objects.  A global
default generator exists for convenience; experiments re-seed it so that every
compared method sees identical initial weights and data order, matching the
paper's controlled-comparison protocol (Section V-B).
"""

from __future__ import annotations

import numpy as np

_DEFAULT_SEED = 0
_default_rng = np.random.default_rng(_DEFAULT_SEED)


def seed_all(seed: int) -> None:
    """Reset the global default generator to ``seed``."""
    global _default_rng
    _default_rng = np.random.default_rng(seed)


def get_rng(rng: np.random.Generator | None = None) -> np.random.Generator:
    """Return ``rng`` if given, else the global default generator."""
    return rng if rng is not None else _default_rng


def spawn(rng: np.random.Generator, n: int) -> list[np.random.Generator]:
    """Derive ``n`` independent child generators from ``rng``."""
    seeds = rng.integers(0, 2**63 - 1, size=n, dtype=np.int64)
    return [np.random.default_rng(int(s)) for s in seeds]
