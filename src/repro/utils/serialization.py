"""State-dict serialisation, the sparse wire codec, and size accounting.

Wire format (version 1, little-endian)
--------------------------------------
A payload is a fixed header followed by one record per state entry::

    header:  magic ``b"FKSC"`` | version u8 | entry count u32
    record:  name length u16 | name (utf-8)
             kind u8 (0 = dense, 1 = sparse)
             dtype length u8 | dtype string (numpy ``dtype.str``, e.g. ``<f4``)
             ndim u8 | shape dims (u32 each)
             dense  -> C-order array bytes
             sparse -> nnz u32 | indices (int32) | values (dtype above)

Dense records carry full arrays (model state dicts, BN buffers).  Sparse
records carry ``{indices: int32, values: float32, shape}`` triples — the
top-``rho`` signature weights of a
:class:`~repro.core.knowledge.TaskKnowledge` or a top-k state delta.  Flat
positions are int32 on the wire, so no array may exceed ``2**31 - 1``
elements (:func:`sparse_topk` and the knowledge extractor guard this).

:func:`encoded_num_bytes` computes the exact payload size without
materialising it (tests assert it equals ``len(encode_state(...))``) and is
the canonical measure of message size used by the communication-cost
experiments (Figures 5 and 6).  :func:`state_num_bytes` remains the raw
sum-of-array-bytes measure for in-memory accounting.
"""

from __future__ import annotations

import os
import struct
from dataclasses import dataclass
from typing import Mapping, Union

import numpy as np

WIRE_MAGIC = b"FKSC"
WIRE_VERSION = 1

_HEADER = struct.Struct("<4sBI")
_MAX_INDEX = np.iinfo(np.int32).max


@dataclass
class SparseTensor:
    """A sparse view of a dense array: flat int32 positions plus values."""

    indices: np.ndarray  # flat C-order positions, int32
    values: np.ndarray
    shape: tuple[int, ...]

    def __post_init__(self):
        self.indices = np.ascontiguousarray(self.indices, dtype=np.int32)
        self.values = np.ascontiguousarray(self.values)
        self.shape = tuple(int(dim) for dim in self.shape)
        if self.indices.ndim != 1 or self.values.ndim != 1:
            raise ValueError("indices and values must be one-dimensional")
        if self.indices.size != self.values.size:
            raise ValueError(
                f"{self.indices.size} indices but {self.values.size} values"
            )
        size = int(np.prod(self.shape))
        if size > _MAX_INDEX + 1:
            raise ValueError(
                f"shape {self.shape} exceeds int32-addressable elements"
            )
        if self.indices.size and not (
            0 <= int(self.indices.min()) and int(self.indices.max()) < size
        ):
            # guards against corrupt payloads: a negative index would
            # otherwise scatter silently via Python wrap-around indexing
            raise ValueError(
                f"sparse indices out of range for {size} elements"
            )

    @property
    def nnz(self) -> int:
        return int(self.values.size)

    def to_dense(self) -> np.ndarray:
        """Materialise the dense array (zeros off-support)."""
        flat = np.zeros(int(np.prod(self.shape)), dtype=self.values.dtype)
        flat[self.indices] = self.values
        return flat.reshape(self.shape)


#: A state entry on the wire: a dense array or a sparse record.
WireValue = Union[np.ndarray, SparseTensor]


def state_num_bytes(state: Mapping[str, np.ndarray]) -> int:
    """Raw payload size, in bytes, of a ``name -> array`` state mapping."""
    return int(sum(np.asarray(v).nbytes for v in state.values()))


# ----------------------------------------------------------------------
# top-k magnitude selection (shared by the codec and the knowledge extractor)
# ----------------------------------------------------------------------
def topk_magnitude_indices(magnitudes: np.ndarray, count: int) -> np.ndarray:
    """Positions of the ``count`` largest magnitudes, deterministically.

    Tie-aware: when magnitudes tie at the selection boundary, the lowest flat
    positions win, so exactly ``count`` positions are returned regardless of
    duplicated values.  Returned sorted ascending.
    """
    magnitudes = np.asarray(magnitudes).ravel()
    d = magnitudes.size
    if count >= d:
        return np.arange(d, dtype=np.int64)
    if count <= 0:
        return np.empty(0, dtype=np.int64)
    boundary = np.partition(magnitudes, d - count)[d - count]
    above = np.flatnonzero(magnitudes > boundary)
    need = count - above.size
    ties = np.flatnonzero(magnitudes == boundary)[:need]
    return np.sort(np.concatenate([above, ties]))


def sparse_topk(array: np.ndarray, count: int) -> SparseTensor:
    """Sparsify ``array`` to its ``count`` largest-magnitude entries."""
    array = np.asarray(array)
    if array.size > _MAX_INDEX + 1:
        raise ValueError(
            f"array with {array.size} elements overflows int32 positions"
        )
    flat = array.ravel()
    keep = topk_magnitude_indices(np.abs(flat), count).astype(np.int32)
    return SparseTensor(keep, flat[keep].copy(), array.shape)


def sparse_delta_state(
    state: Mapping[str, np.ndarray],
    base: Mapping[str, np.ndarray],
    ratio: float,
) -> dict[str, WireValue]:
    """Encode ``state`` as top-``ratio`` sparse deltas from ``base``.

    Float entries become :class:`SparseTensor` deltas keeping the largest
    ``round(ratio * size)`` magnitude differences; non-float entries (integer
    BN counters and the like) pass through dense.  The receiver reconstructs
    ``base[key] + delta`` — exact whenever the true delta has at most the
    retained number of nonzeros.
    """
    if not 0.0 < ratio <= 1.0:
        raise ValueError(f"ratio must be in (0, 1], got {ratio}")
    encoded: dict[str, WireValue] = {}
    for name, value in state.items():
        value = np.asarray(value)
        if not np.issubdtype(value.dtype, np.floating):
            encoded[name] = value.copy()
            continue
        delta = value - np.asarray(base[name])
        count = max(1, int(round(ratio * delta.size)))
        encoded[name] = sparse_topk(delta, count)
    return encoded


# ----------------------------------------------------------------------
# wire codec
# ----------------------------------------------------------------------
def _record_meta(name: str, value: WireValue) -> tuple[bytes, bytes, tuple[int, ...]]:
    raw_name = name.encode("utf-8")
    if len(raw_name) > 0xFFFF:
        raise ValueError(f"entry name too long for the wire format: {name!r}")
    dtype = value.values.dtype if isinstance(value, SparseTensor) else value.dtype
    raw_dtype = dtype.str.encode("ascii")
    shape = value.shape
    if len(shape) > 0xFF:
        raise ValueError(f"too many dimensions for the wire format: {shape}")
    return raw_name, raw_dtype, shape


def encode_state(state: Mapping[str, WireValue]) -> bytes:
    """Pack a state mapping (dense arrays and/or sparse records) to bytes."""
    chunks = [_HEADER.pack(WIRE_MAGIC, WIRE_VERSION, len(state))]
    for name, value in state.items():
        if not isinstance(value, SparseTensor):
            # note: ascontiguousarray would promote 0-d arrays to 1-d and
            # desynchronise the size arithmetic in encoded_num_bytes
            value = np.asarray(value)
            if not value.flags.c_contiguous:
                value = np.ascontiguousarray(value)
        raw_name, raw_dtype, shape = _record_meta(name, value)
        sparse = isinstance(value, SparseTensor)
        chunks.append(struct.pack("<H", len(raw_name)))
        chunks.append(raw_name)
        chunks.append(struct.pack("<BB", int(sparse), len(raw_dtype)))
        chunks.append(raw_dtype)
        chunks.append(struct.pack(f"<B{len(shape)}I", len(shape), *shape))
        if sparse:
            chunks.append(struct.pack("<I", value.nnz))
            chunks.append(value.indices.tobytes())
            chunks.append(value.values.tobytes())
        else:
            chunks.append(value.tobytes())
    return b"".join(chunks)


def decode_state(payload: bytes | bytearray | memoryview) -> dict[str, WireValue]:
    """Unpack a payload produced by :func:`encode_state` (lossless)."""
    view = memoryview(payload)
    magic, version, count = _HEADER.unpack_from(view, 0)
    if magic != WIRE_MAGIC:
        raise ValueError(f"bad wire magic {magic!r}")
    if version != WIRE_VERSION:
        raise ValueError(f"unsupported wire version {version}")
    offset = _HEADER.size
    state: dict[str, WireValue] = {}
    for _ in range(count):
        (name_len,) = struct.unpack_from("<H", view, offset)
        offset += 2
        name = bytes(view[offset:offset + name_len]).decode("utf-8")
        offset += name_len
        sparse, dtype_len = struct.unpack_from("<BB", view, offset)
        offset += 2
        dtype = np.dtype(bytes(view[offset:offset + dtype_len]).decode("ascii"))
        offset += dtype_len
        (ndim,) = struct.unpack_from("<B", view, offset)
        offset += 1
        shape = struct.unpack_from(f"<{ndim}I", view, offset)
        offset += 4 * ndim
        if sparse:
            (nnz,) = struct.unpack_from("<I", view, offset)
            offset += 4
            indices = np.frombuffer(view, np.int32, nnz, offset).copy()
            offset += nnz * 4
            values = np.frombuffer(view, dtype, nnz, offset).copy()
            offset += nnz * dtype.itemsize
            state[name] = SparseTensor(indices, values, shape)
        else:
            size = int(np.prod(shape)) if shape else 1
            array = np.frombuffer(view, dtype, size, offset).copy()
            offset += size * dtype.itemsize
            state[name] = array.reshape(shape)
    if offset != len(view):
        raise ValueError(
            f"trailing bytes in payload: read {offset} of {len(view)}"
        )
    return state


def encoded_num_bytes(state: Mapping[str, WireValue]) -> int:
    """Exact :func:`encode_state` payload size, computed without encoding."""
    total = _HEADER.size
    for name, value in state.items():
        if not isinstance(value, SparseTensor):
            value = np.asarray(value)
        raw_name, raw_dtype, shape = _record_meta(name, value)
        total += 2 + len(raw_name) + 2 + len(raw_dtype) + 1 + 4 * len(shape)
        if isinstance(value, SparseTensor):
            total += 4 + value.nnz * (4 + value.values.dtype.itemsize)
        else:
            total += value.size * value.dtype.itemsize
    return int(total)


# ----------------------------------------------------------------------
# on-disk persistence
# ----------------------------------------------------------------------
def save_state(state: Mapping[str, np.ndarray], path: str | os.PathLike) -> None:
    """Persist a state dict as a compressed ``.npz`` archive."""
    np.savez_compressed(path, **{k: np.asarray(v) for k, v in state.items()})


def load_state(path: str | os.PathLike) -> dict[str, np.ndarray]:
    """Load a state dict previously written by :func:`save_state`."""
    with np.load(path) as archive:
        return {key: archive[key] for key in archive.files}
