"""State-dict serialisation and size accounting.

``state_num_bytes`` is the canonical measure of message size used by the
communication-cost experiments (Figures 5 and 6): a state dict transmitted
between a client and the server costs the sum of its arrays' byte sizes.
"""

from __future__ import annotations

import os
from typing import Mapping

import numpy as np


def state_num_bytes(state: Mapping[str, np.ndarray]) -> int:
    """Total payload size, in bytes, of a ``name -> array`` state mapping."""
    return int(sum(np.asarray(v).nbytes for v in state.values()))


def save_state(state: Mapping[str, np.ndarray], path: str | os.PathLike) -> None:
    """Persist a state dict as a compressed ``.npz`` archive."""
    np.savez_compressed(path, **{k: np.asarray(v) for k, v in state.items()})


def load_state(path: str | os.PathLike) -> dict[str, np.ndarray]:
    """Load a state dict previously written by :func:`save_state`."""
    with np.load(path) as archive:
        return {key: archive[key] for key in archive.files}
