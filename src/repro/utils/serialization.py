"""State-dict serialisation, the sparse wire codec, and size accounting.

Wire format v1 (little-endian)
------------------------------
A payload is a fixed header followed by one record per state entry::

    header:  magic ``b"FKSC"`` | version u8 | entry count u32
    record:  name length u16 | name (utf-8)
             kind u8 (0 = dense, 1 = sparse)
             dtype length u8 | dtype string (numpy ``dtype.str``, e.g. ``<f4``)
             ndim u8 | shape dims (u32 each)
             dense  -> C-order array bytes
             sparse -> nnz u32 | indices (int32) | values (dtype above)

Dense records carry full arrays (model state dicts, BN buffers).  Sparse
records carry ``{indices: int32, values: float32, shape}`` triples — the
top-``rho`` signature weights of a
:class:`~repro.core.knowledge.TaskKnowledge` or a top-k state delta.  Flat
positions are int32 on the wire, so no array may exceed ``2**31 - 1``
elements (:func:`sparse_topk` and the knowledge extractor guard this).

Wire format v2
--------------
Version 2 keeps the header and record framing (the kind byte becomes a
flags byte, so framing overhead is byte-identical to v1) and adds three
per-entry capabilities, negotiated through the version byte by the
transport layer (:mod:`repro.federated.transport`):

* ``FLAG_SPARSE`` — the record is an ``indices + values`` pair (as in v1);
* ``FLAG_DELTA``  — the record's values are *offsets from a base state*
  both peers share (the previous global model); the decoder reconstructs
  ``base + value``.  Without this flag a sparse record carries absolute
  values that overwrite the base at the kept positions;
* ``FLAG_FP16``   — floating-point values travel as float16 and are
  upcast to the recorded dtype on decode (the one lossy option; v2 with
  the flag clear round-trips bit-exactly, i.e. at v1 precision).

:func:`encoded_num_bytes` / :func:`encoded_num_bytes_v2` compute the exact
payload size without materialising it (tests assert equality with the real
encoders) and are the canonical measure of message size used by the
communication-cost experiments (Figures 5 and 6).  :func:`state_num_bytes`
remains the raw sum-of-array-bytes measure for in-memory accounting.
"""

from __future__ import annotations

import os
import struct
from dataclasses import dataclass
from typing import AbstractSet, Mapping, Union

import numpy as np

from ..obs import metrics as _obs_metrics
from ..obs import trace as _obs_trace

WIRE_MAGIC = b"FKSC"
WIRE_VERSION = 1
WIRE_V1 = 1
WIRE_V2 = 2
#: Every wire version this codec can decode (v1 is the mandatory baseline).
SUPPORTED_WIRE_VERSIONS: tuple[int, ...] = (WIRE_V1, WIRE_V2)

_ENCODED_BYTES = _obs_metrics.METRICS.counter("codec.encoded_bytes")
_DECODED_BYTES = _obs_metrics.METRICS.counter("codec.decoded_bytes")

#: v2 per-entry encoding flags.
FLAG_SPARSE = 0x01
FLAG_DELTA = 0x02
FLAG_FP16 = 0x04

_HEADER = struct.Struct("<4sBI")
_MAX_INDEX = np.iinfo(np.int32).max


@dataclass
class SparseTensor:
    """A sparse view of a dense array: flat int32 positions plus values."""

    indices: np.ndarray  # flat C-order positions, int32
    values: np.ndarray
    shape: tuple[int, ...]

    def __post_init__(self):
        self.indices = np.ascontiguousarray(self.indices, dtype=np.int32)
        self.values = np.ascontiguousarray(self.values)
        self.shape = tuple(int(dim) for dim in self.shape)
        if self.indices.ndim != 1 or self.values.ndim != 1:
            raise ValueError("indices and values must be one-dimensional")
        if self.indices.size != self.values.size:
            raise ValueError(
                f"{self.indices.size} indices but {self.values.size} values"
            )
        size = int(np.prod(self.shape))
        if size > _MAX_INDEX + 1:
            raise ValueError(
                f"shape {self.shape} exceeds int32-addressable elements"
            )
        if self.indices.size and not (
            0 <= int(self.indices.min()) and int(self.indices.max()) < size
        ):
            # guards against corrupt payloads: a negative index would
            # otherwise scatter silently via Python wrap-around indexing
            raise ValueError(
                f"sparse indices out of range for {size} elements"
            )

    @property
    def nnz(self) -> int:
        return int(self.values.size)

    def to_dense(self) -> np.ndarray:
        """Materialise the dense array (zeros off-support)."""
        flat = np.zeros(int(np.prod(self.shape)), dtype=self.values.dtype)
        flat[self.indices] = self.values
        return flat.reshape(self.shape)


#: A state entry on the wire: a dense array or a sparse record.
WireValue = Union[np.ndarray, SparseTensor]


def state_num_bytes(state: Mapping[str, np.ndarray]) -> int:
    """Raw payload size, in bytes, of a ``name -> array`` state mapping."""
    return int(sum(np.asarray(v).nbytes for v in state.values()))


# ----------------------------------------------------------------------
# top-k magnitude selection (shared by the codec and the knowledge extractor)
# ----------------------------------------------------------------------
def topk_magnitude_indices(magnitudes: np.ndarray, count: int) -> np.ndarray:
    """Positions of the ``count`` largest magnitudes, deterministically.

    Tie-aware: when magnitudes tie at the selection boundary, the lowest flat
    positions win, so exactly ``count`` positions are returned regardless of
    duplicated values.  Returned sorted ascending.
    """
    magnitudes = np.asarray(magnitudes).ravel()
    d = magnitudes.size
    if count >= d:
        return np.arange(d, dtype=np.int64)
    if count <= 0:
        return np.empty(0, dtype=np.int64)
    boundary = np.partition(magnitudes, d - count)[d - count]
    above = np.flatnonzero(magnitudes > boundary)
    need = count - above.size
    ties = np.flatnonzero(magnitudes == boundary)[:need]
    return np.sort(np.concatenate([above, ties]))


def sparse_topk(array: np.ndarray, count: int) -> SparseTensor:
    """Sparsify ``array`` to its ``count`` largest-magnitude entries."""
    array = np.asarray(array)
    if array.size > _MAX_INDEX + 1:
        raise ValueError(
            f"array with {array.size} elements overflows int32 positions"
        )
    flat = array.ravel()
    keep = topk_magnitude_indices(np.abs(flat), count).astype(np.int32)
    return SparseTensor(keep, flat[keep].copy(), array.shape)


def sparse_delta_state(
    state: Mapping[str, np.ndarray],
    base: Mapping[str, np.ndarray],
    ratio: float,
) -> dict[str, WireValue]:
    """Encode ``state`` as top-``ratio`` sparse deltas from ``base``.

    Float entries become :class:`SparseTensor` deltas keeping the largest
    ``round(ratio * size)`` magnitude differences; non-float entries (integer
    BN counters and the like) pass through dense.  The receiver reconstructs
    ``base[key] + delta`` — exact whenever the true delta has at most the
    retained number of nonzeros.
    """
    if not 0.0 < ratio <= 1.0:
        raise ValueError(f"ratio must be in (0, 1], got {ratio}")
    encoded: dict[str, WireValue] = {}
    for name, value in state.items():
        value = np.asarray(value)
        if not np.issubdtype(value.dtype, np.floating):
            encoded[name] = value.copy()
            continue
        delta = value - np.asarray(base[name])
        count = max(1, int(round(ratio * delta.size)))
        encoded[name] = sparse_topk(delta, count)
    return encoded


def sparse_topk_state(
    state: Mapping[str, np.ndarray], ratio: float
) -> dict[str, WireValue]:
    """Encode ``state`` keeping its top-``ratio`` absolute magnitudes.

    Float entries become :class:`SparseTensor` records of their largest
    ``round(ratio * size)`` magnitude *values* (not deltas); non-float
    entries pass through dense.  The v2 receiver overwrites a shared base
    state at the kept positions — the signature-weight upload shape of the
    paper's knowledge transfer.
    """
    if not 0.0 < ratio <= 1.0:
        raise ValueError(f"ratio must be in (0, 1], got {ratio}")
    encoded: dict[str, WireValue] = {}
    for name, value in state.items():
        value = np.asarray(value)
        if not np.issubdtype(value.dtype, np.floating):
            encoded[name] = value.copy()
            continue
        count = max(1, int(round(ratio * value.size)))
        encoded[name] = sparse_topk(value, count)
    return encoded


# ----------------------------------------------------------------------
# wire codec
# ----------------------------------------------------------------------
def _record_meta(name: str, value: WireValue) -> tuple[bytes, bytes, tuple[int, ...]]:
    raw_name = name.encode("utf-8")
    if len(raw_name) > 0xFFFF:
        raise ValueError(f"entry name too long for the wire format: {name!r}")
    dtype = value.values.dtype if isinstance(value, SparseTensor) else value.dtype
    raw_dtype = dtype.str.encode("ascii")
    shape = value.shape
    if len(shape) > 0xFF:
        raise ValueError(f"too many dimensions for the wire format: {shape}")
    return raw_name, raw_dtype, shape


def encode_state(state: Mapping[str, WireValue]) -> bytes:
    """Pack a state mapping (dense arrays and/or sparse records) to bytes."""
    tracer = _obs_trace.TRACER
    if not tracer.enabled:
        payload = _encode_state(state)
        _ENCODED_BYTES.inc(len(payload))
        return payload
    with tracer.span("encode", wire=WIRE_V1, entries=len(state)) as span:
        payload = _encode_state(state)
        span.attrs["bytes"] = len(payload)
    _ENCODED_BYTES.inc(len(payload))
    return payload


def _encode_state(state: Mapping[str, WireValue]) -> bytes:
    chunks = [_HEADER.pack(WIRE_MAGIC, WIRE_VERSION, len(state))]
    for name, value in state.items():
        if not isinstance(value, SparseTensor):
            # note: ascontiguousarray would promote 0-d arrays to 1-d and
            # desynchronise the size arithmetic in encoded_num_bytes
            value = np.asarray(value)
            if not value.flags.c_contiguous:
                value = np.ascontiguousarray(value)
        raw_name, raw_dtype, shape = _record_meta(name, value)
        sparse = isinstance(value, SparseTensor)
        chunks.append(struct.pack("<H", len(raw_name)))
        chunks.append(raw_name)
        chunks.append(struct.pack("<BB", int(sparse), len(raw_dtype)))
        chunks.append(raw_dtype)
        chunks.append(struct.pack(f"<B{len(shape)}I", len(shape), *shape))
        if sparse:
            chunks.append(struct.pack("<I", value.nnz))
            chunks.append(value.indices.tobytes())
            chunks.append(value.values.tobytes())
        else:
            chunks.append(value.tobytes())
    return b"".join(chunks)


def peek_wire_version(payload: bytes | bytearray | memoryview) -> int:
    """Read and validate a payload's header; returns its version byte."""
    view = memoryview(payload)
    try:
        magic, version, _ = _HEADER.unpack_from(view, 0)
    except struct.error:
        raise ValueError(
            f"payload too short for a wire header ({len(view)} bytes)"
        ) from None
    if magic != WIRE_MAGIC:
        raise ValueError(f"bad wire magic {magic!r}")
    return int(version)


def _parse_records(
    payload: bytes | bytearray | memoryview,
) -> list[tuple[str, int, np.dtype, tuple[int, ...], np.ndarray, np.ndarray | None]]:
    """Walk a payload's record framing, shared by the v1 and v2 decoders.

    Returns ``(name, flags, dtype, shape, stored, indices)`` tuples —
    ``stored`` holds the raw wire values (float16 when ``FLAG_FP16`` is
    set, which v1 never produces), ``indices`` is ``None`` for dense
    records.  Any framing damage — truncation, corrupted dtype strings,
    trailing bytes — surfaces as :class:`ValueError`.
    """
    view = memoryview(payload)
    _, _, count = _HEADER.unpack_from(view, 0)
    offset = _HEADER.size
    records = []
    try:
        for _ in range(count):
            (name_len,) = struct.unpack_from("<H", view, offset)
            offset += 2
            name = bytes(view[offset:offset + name_len]).decode("utf-8")
            offset += name_len
            flags, dtype_len = struct.unpack_from("<BB", view, offset)
            offset += 2
            dtype = np.dtype(bytes(view[offset:offset + dtype_len]).decode("ascii"))
            offset += dtype_len
            (ndim,) = struct.unpack_from("<B", view, offset)
            offset += 1
            shape = struct.unpack_from(f"<{ndim}I", view, offset)
            offset += 4 * ndim
            wire_dtype = np.dtype(np.float16) if flags & FLAG_FP16 else dtype
            indices = None
            if flags & FLAG_SPARSE:
                (nnz,) = struct.unpack_from("<I", view, offset)
                offset += 4
                indices = np.frombuffer(view, np.int32, nnz, offset).copy()
                offset += nnz * 4
                stored = np.frombuffer(view, wire_dtype, nnz, offset)
                offset += nnz * wire_dtype.itemsize
            else:
                size = int(np.prod(shape)) if shape else 1
                stored = np.frombuffer(view, wire_dtype, size, offset)
                offset += size * wire_dtype.itemsize
            records.append((name, flags, dtype, shape, stored, indices))
    except (struct.error, ValueError, TypeError) as exc:
        # TypeError covers np.dtype() choking on a corrupted dtype string
        raise ValueError(f"truncated or corrupt payload: {exc}") from None
    if offset != len(view):
        raise ValueError(
            f"trailing bytes in payload: read {offset} of {len(view)}"
        )
    return records


def decode_state(payload: bytes | bytearray | memoryview) -> dict[str, WireValue]:
    """Unpack a payload produced by :func:`encode_state` (lossless, v1)."""
    _DECODED_BYTES.inc(len(payload))
    tracer = _obs_trace.TRACER
    if not tracer.enabled:
        return _decode_state(payload)
    with tracer.span("decode", wire=WIRE_V1, bytes=len(payload)):
        return _decode_state(payload)


def _decode_state(payload: bytes | bytearray | memoryview) -> dict[str, WireValue]:
    version = peek_wire_version(payload)
    if version != WIRE_V1:
        raise ValueError(f"unsupported wire version {version}")
    state: dict[str, WireValue] = {}
    for name, flags, dtype, shape, stored, indices in _parse_records(payload):
        if flags & FLAG_SPARSE:
            state[name] = SparseTensor(indices, stored.copy(), shape)
        else:
            state[name] = stored.copy().reshape(shape)
    return state


def encoded_num_bytes(state: Mapping[str, WireValue]) -> int:
    """Exact :func:`encode_state` payload size, computed without encoding."""
    total = _HEADER.size
    for name, value in state.items():
        if not isinstance(value, SparseTensor):
            value = np.asarray(value)
        raw_name, raw_dtype, shape = _record_meta(name, value)
        total += 2 + len(raw_name) + 2 + len(raw_dtype) + 1 + 4 * len(shape)
        if isinstance(value, SparseTensor):
            total += 4 + value.nnz * (4 + value.values.dtype.itemsize)
        else:
            total += value.size * value.dtype.itemsize
    return int(total)


# ----------------------------------------------------------------------
# wire codec, version 2 (delta / fp16 / per-entry flags)
# ----------------------------------------------------------------------
def _fp16_applies(dtype: np.dtype, fp16: bool) -> bool:
    """fp16 compression applies to floating values wider than 2 bytes."""
    return fp16 and np.issubdtype(dtype, np.floating) and dtype.itemsize > 2


def _wire_values(value: np.ndarray, fp16: bool) -> np.ndarray:
    if not value.flags.c_contiguous:
        value = np.ascontiguousarray(value)
    if _fp16_applies(value.dtype, fp16):
        return value.astype(np.float16)
    return value


def encode_state_v2(
    state: Mapping[str, WireValue],
    delta_keys: AbstractSet[str] = frozenset(),
    fp16: bool = False,
) -> bytes:
    """Pack a state mapping as a version-2 payload.

    ``delta_keys`` names the entries whose values are offsets from a base
    state both peers share; ``fp16`` ships floating values as float16 (the
    recorded dtype stays the original, so the decoder upcasts).  With both
    off, the payload is byte-for-byte the v1 encoding except for the
    version byte.
    """
    tracer = _obs_trace.TRACER
    if not tracer.enabled:
        payload = _encode_state_v2(state, delta_keys, fp16)
        _ENCODED_BYTES.inc(len(payload))
        return payload
    with tracer.span("encode", wire=WIRE_V2, entries=len(state),
                     fp16=fp16) as span:
        payload = _encode_state_v2(state, delta_keys, fp16)
        span.attrs["bytes"] = len(payload)
    _ENCODED_BYTES.inc(len(payload))
    return payload


def _encode_state_v2(
    state: Mapping[str, WireValue],
    delta_keys: AbstractSet[str],
    fp16: bool,
) -> bytes:
    chunks = [_HEADER.pack(WIRE_MAGIC, WIRE_V2, len(state))]
    for name, value in state.items():
        sparse = isinstance(value, SparseTensor)
        if not sparse:
            value = np.asarray(value)
        raw_name, raw_dtype, shape = _record_meta(name, value)
        flags = (
            (FLAG_SPARSE if sparse else 0)
            | (FLAG_DELTA if name in delta_keys else 0)
        )
        dtype = value.values.dtype if sparse else value.dtype
        if _fp16_applies(dtype, fp16):
            flags |= FLAG_FP16
        chunks.append(struct.pack("<H", len(raw_name)))
        chunks.append(raw_name)
        chunks.append(struct.pack("<BB", flags, len(raw_dtype)))
        chunks.append(raw_dtype)
        chunks.append(struct.pack(f"<B{len(shape)}I", len(shape), *shape))
        if sparse:
            chunks.append(struct.pack("<I", value.nnz))
            chunks.append(value.indices.tobytes())
            chunks.append(_wire_values(value.values, fp16).tobytes())
        else:
            chunks.append(_wire_values(value, fp16).tobytes())
    return b"".join(chunks)


def scatter_onto_base(
    base_value: np.ndarray,
    record: SparseTensor,
    add: bool = True,
    name: str = "?",
) -> np.ndarray:
    """Materialise a sparse record against a base array (copying the base).

    ``add=True`` treats the record as a delta (``base + values`` at the
    kept positions); ``add=False`` overwrites the base there.  The single
    reconstruction used by the v2 decoder and the v1 legacy convention.
    """
    rebuilt = np.array(base_value, copy=True)
    if rebuilt.shape != record.shape:
        raise ValueError(
            f"sparse entry {name!r} has shape {record.shape}, "
            f"base has {rebuilt.shape}"
        )
    flat = rebuilt.reshape(-1)
    values = record.values.astype(rebuilt.dtype, copy=False)
    if add:
        flat[record.indices] += values
    else:
        flat[record.indices] = values
    return rebuilt


def _reconstruct_v2(
    name: str,
    flags: int,
    dtype: np.dtype,
    shape: tuple[int, ...],
    stored: np.ndarray,
    indices: np.ndarray | None,
    base: Mapping[str, np.ndarray] | None,
) -> WireValue:
    """Materialise one decoded v2 record against an optional base state."""
    values = stored.astype(dtype) if flags & FLAG_FP16 else stored
    if not flags & FLAG_SPARSE:
        dense = values.reshape(shape)
        if not flags & FLAG_DELTA:
            return dense.copy() if dense.base is not None else dense
        if base is None or name not in base:
            raise ValueError(
                f"delta entry {name!r} requires the shared base state"
            )
        base_value = np.asarray(base[name])
        if base_value.shape != dense.shape:
            raise ValueError(
                f"delta entry {name!r} has shape {dense.shape}, "
                f"base has {base_value.shape}"
            )
        return (base_value + dense).astype(dtype, copy=False)
    record = SparseTensor(indices, values.copy(), shape)
    if base is None or name not in base:
        # no base on this end: hand the sparse record through (the legacy
        # server convention materialises it against its own global state)
        return record
    return scatter_onto_base(
        base[name], record, add=bool(flags & FLAG_DELTA), name=name
    )


def decode_state_v2(
    payload: bytes | bytearray | memoryview,
    base: Mapping[str, np.ndarray] | None = None,
) -> dict[str, WireValue]:
    """Unpack a v2 payload, reconstructing delta entries against ``base``.

    Dense records decode to arrays; dense deltas require ``base`` and
    return ``base + delta``.  Sparse records are materialised against
    ``base`` when it is given (``FLAG_DELTA`` adds onto the base, absolute
    records overwrite it at the kept positions); without a base they stay
    :class:`SparseTensor` records.
    """
    _DECODED_BYTES.inc(len(payload))
    tracer = _obs_trace.TRACER
    if not tracer.enabled:
        return _decode_state_v2(payload, base)
    with tracer.span("decode", wire=WIRE_V2, bytes=len(payload)):
        return _decode_state_v2(payload, base)


def _decode_state_v2(
    payload: bytes | bytearray | memoryview,
    base: Mapping[str, np.ndarray] | None,
) -> dict[str, WireValue]:
    version = peek_wire_version(payload)
    if version != WIRE_V2:
        raise ValueError(f"unsupported wire version {version} (expected 2)")
    # reconstruction runs after framing validation so its own errors (e.g.
    # a delta entry without a base) keep their meaning
    state: dict[str, WireValue] = {}
    for name, flags, dtype, shape, stored, indices in _parse_records(payload):
        state[name] = _reconstruct_v2(
            name, flags, dtype, shape, stored, indices, base
        )
    return state


def encoded_num_bytes_v2(
    state: Mapping[str, WireValue],
    delta_keys: AbstractSet[str] = frozenset(),
    fp16: bool = False,
) -> int:
    """Exact :func:`encode_state_v2` payload size, without encoding."""
    del delta_keys  # the delta flag changes interpretation, not size
    total = _HEADER.size
    for name, value in state.items():
        sparse = isinstance(value, SparseTensor)
        if not sparse:
            value = np.asarray(value)
        raw_name, raw_dtype, shape = _record_meta(name, value)
        total += 2 + len(raw_name) + 2 + len(raw_dtype) + 1 + 4 * len(shape)
        dtype = value.values.dtype if sparse else value.dtype
        itemsize = 2 if _fp16_applies(dtype, fp16) else dtype.itemsize
        if sparse:
            total += 4 + value.nnz * (4 + itemsize)
        else:
            total += value.size * itemsize
    return int(total)


def decode_payload(
    payload: bytes | bytearray | memoryview,
    base: Mapping[str, np.ndarray] | None = None,
) -> dict[str, WireValue]:
    """Version-dispatching decoder: v1 and v2 payloads, one entry point."""
    version = peek_wire_version(payload)
    if version == WIRE_V1:
        return decode_state(payload)
    if version == WIRE_V2:
        return decode_state_v2(payload, base=base)
    raise ValueError(
        f"unsupported wire version {version}; "
        f"supported: {SUPPORTED_WIRE_VERSIONS}"
    )


# ----------------------------------------------------------------------
# on-disk persistence
# ----------------------------------------------------------------------
def save_state(state: Mapping[str, np.ndarray], path: str | os.PathLike) -> None:
    """Persist a state dict as a compressed ``.npz`` archive."""
    np.savez_compressed(path, **{k: np.asarray(v) for k, v in state.items()})


def load_state(path: str | os.PathLike) -> dict[str, np.ndarray]:
    """Load a state dict previously written by :func:`save_state`."""
    with np.load(path) as archive:
        return {key: archive[key] for key in archive.files}
