"""Shared utilities: deterministic RNG handling, serialisation helpers."""

from .rng import get_rng, seed_all, spawn
from .serialization import load_state, save_state, state_num_bytes

__all__ = ["get_rng", "seed_all", "spawn", "load_state", "save_state", "state_num_bytes"]
