"""Shared utilities: deterministic RNG handling, serialisation, wire codec."""

from .rng import get_rng, seed_all, spawn
from .serialization import (
    SparseTensor,
    decode_state,
    encode_state,
    encoded_num_bytes,
    load_state,
    save_state,
    sparse_delta_state,
    sparse_topk,
    state_num_bytes,
    topk_magnitude_indices,
)

__all__ = [
    "SparseTensor",
    "decode_state",
    "encode_state",
    "encoded_num_bytes",
    "get_rng",
    "load_state",
    "save_state",
    "seed_all",
    "sparse_delta_state",
    "sparse_topk",
    "spawn",
    "state_num_bytes",
    "topk_magnitude_indices",
]
