"""Ablations of FedKNOW's design choices (called out in DESIGN.md).

1. signature-task dissimilarity metric (Wasserstein / cosine / L2);
2. number of signature gradients k (the paper's {5, 10, 20} search space);
3. NNQP solver (active-set vs projected gradient);
4. post-aggregation gradient integration on/off (isolates the
   negative-transfer prevention mechanism).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.config import FedKnowConfig
from ..data.specs import cifar100_like
from ..edge.cluster import jetson_cluster
from ..metrics.tracker import RunResult
from .config import BENCH, ScalePreset
from .reporting import format_table
from .runner import run_single

DISTANCE_METRICS: tuple[str, ...] = ("wasserstein", "cosine", "l2")
K_VALUES: tuple[int, ...] = (2, 5, 10)
QP_SOLVERS: tuple[str, ...] = ("active_set", "projected_gradient")


@dataclass
class AblationReport:
    """(variant -> result) for one ablated design axis."""

    axis: str
    results: dict[str, RunResult] = field(default_factory=dict)

    @property
    def rows(self) -> list[list]:
        return [
            [
                variant,
                round(result.final_accuracy, 3),
                round(float(result.forgetting_curve[-1]), 3),
                round(result.wall_seconds, 2),
            ]
            for variant, result in self.results.items()
        ]

    def __str__(self) -> str:
        return format_table(
            ["variant", "final_acc", "forgetting", "wall_s"],
            self.rows,
            title=f"Ablation: {self.axis}",
        )


def _run_variant(config: FedKnowConfig, preset: ScalePreset, seed: int) -> RunResult:
    return run_single(
        "fedknow",
        cifar100_like(),
        preset,
        cluster=jetson_cluster(),
        seed=seed,
        method_kwargs={"fedknow_config": config},
    )


def run_distance_ablation(
    preset: ScalePreset = BENCH, seed: int = 0
) -> AblationReport:
    """Compare the dissimilarity metrics for signature-task selection."""
    report = AblationReport(axis="distance metric")
    for metric in DISTANCE_METRICS:
        # force selection pressure: fewer signature slots than stored tasks
        config = FedKnowConfig(num_signature_gradients=2, distance_metric=metric)
        report.results[metric] = _run_variant(config, preset, seed)
    return report


def run_k_ablation(preset: ScalePreset = BENCH, seed: int = 0) -> AblationReport:
    """Sweep the number of signature gradients k."""
    report = AblationReport(axis="signature gradients k")
    for k in K_VALUES:
        config = FedKnowConfig(num_signature_gradients=k)
        report.results[f"k={k}"] = _run_variant(config, preset, seed)
    return report


def run_qp_ablation(preset: ScalePreset = BENCH, seed: int = 0) -> AblationReport:
    """Compare the two NNQP solvers end-to-end."""
    report = AblationReport(axis="NNQP solver")
    for solver in QP_SOLVERS:
        config = FedKnowConfig(qp_solver=solver)
        report.results[solver] = _run_variant(config, preset, seed)
    return report


def run_aggregation_ablation(
    preset: ScalePreset = BENCH, seed: int = 0
) -> AblationReport:
    """Toggle the post-aggregation integration (negative-transfer prevention)."""
    report = AblationReport(axis="post-aggregation integration")
    for enabled in (True, False):
        config = FedKnowConfig(aggregation_integration=enabled)
        label = "integration_on" if enabled else "integration_off"
        report.results[label] = _run_variant(config, preset, seed)
    return report
