"""Experiment harness: one module per table/figure of the paper's evaluation."""

from .ablations import (
    AblationReport,
    run_aggregation_ablation,
    run_distance_ablation,
    run_k_ablation,
    run_qp_ablation,
)
from .config import BENCH, PAPER, PRESETS, UNIT, ScalePreset, get_preset
from .fig4_accuracy import (
    FIG4_DATASETS,
    HETEROGENEOUS_DATASETS,
    TOP3_METHODS,
    Fig4Report,
    run_fig4,
    run_fig4_panel,
)
from .fig5_comm_volume import (
    WIRE_VARIANTS,
    Fig5Report,
    Fig5WireReport,
    run_fig5,
    run_fig5_wire,
)
from .fig6_bandwidth import Fig6Report, comm_seconds_under_bandwidth, run_fig6
from .fig_scaling import (
    FigEventSimReport,
    FigScalingReport,
    ScalingRow,
    SimScalingRow,
    run_fig_eventsim,
    run_fig_scaling,
)
from .fig_curvature import (
    SELECTOR_SWEEP,
    FigCurvatureReport,
    run_fig_curvature,
)
from .fig_scenarios import (
    SCENARIO_FAMILIES,
    FigScenariosReport,
    run_fig_scenarios,
)
from .fig7_tasks import Fig7Report, run_fig7
from .fig8_clients import Fig8Report, run_fig8
from .fig9_dnns import Fig9Report, run_fig9
from .fig10_params import Fig10Report, run_fig10
from .reporting import format_series, format_table
from .runner import clear_cache, run_methods, run_single
from .search import SearchResult, grid_search, search_fedknow
from .table1_improvement import Table1Report, improvement_curve, run_table1

__all__ = [
    "AblationReport",
    "BENCH",
    "FIG4_DATASETS",
    "Fig10Report",
    "Fig4Report",
    "Fig5Report",
    "Fig5WireReport",
    "Fig6Report",
    "FigCurvatureReport",
    "FigEventSimReport",
    "FigScalingReport",
    "FigScenariosReport",
    "Fig7Report",
    "Fig8Report",
    "Fig9Report",
    "HETEROGENEOUS_DATASETS",
    "PAPER",
    "PRESETS",
    "SCENARIO_FAMILIES",
    "SELECTOR_SWEEP",
    "ScalePreset",
    "SearchResult",
    "TOP3_METHODS",
    "Table1Report",
    "UNIT",
    "WIRE_VARIANTS",
    "clear_cache",
    "comm_seconds_under_bandwidth",
    "format_series",
    "format_table",
    "get_preset",
    "grid_search",
    "improvement_curve",
    "run_aggregation_ablation",
    "run_distance_ablation",
    "run_fig10",
    "run_fig4",
    "run_fig4_panel",
    "run_fig5",
    "run_fig5_wire",
    "run_fig6",
    "run_fig7",
    "run_fig8",
    "run_fig9",
    "run_fig_curvature",
    "run_fig_eventsim",
    "run_fig_scaling",
    "run_fig_scenarios",
    "run_k_ablation",
    "run_methods",
    "run_qp_ablation",
    "run_single",
    "run_table1",
    "search_fedknow",
    "improvement_curve",
]
