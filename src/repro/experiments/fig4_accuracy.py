"""Fig. 4 — accuracy and training time of 12 methods on five datasets.

Panels (a)-(c), (g), (h): all 12 methods on the 20-Jetson cluster, one panel
per dataset.  Panels (d)-(f): the top-3 methods (GEM, FedWEIT, FedKNOW) on
the 30-device cluster that adds 10 Raspberry Pis — this variant exercises the
memory simulation (FedWEIT's growing state OOMs the 2 GB Pi) and the 12x
training-time inflation the paper reports for CPU devices.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..data.specs import get_spec
from ..edge.cluster import jetson_cluster, jetson_raspberry_cluster
from ..federated.registry import ALL_METHODS
from ..metrics.tracker import RunResult
from .config import BENCH, ScalePreset
from .reporting import format_table
from .runner import run_single

FIG4_DATASETS: tuple[str, ...] = (
    "cifar100",
    "fc100",
    "core50",
    "miniimagenet",
    "tinyimagenet",
)

#: Datasets of the heterogeneous (with-Raspberry-Pi) panels (d)-(f).
HETEROGENEOUS_DATASETS: tuple[str, ...] = ("cifar100", "fc100", "core50")

#: The three strongest methods, compared on the heterogeneous cluster.
TOP3_METHODS: tuple[str, ...] = ("gem", "fedweit", "fedknow")


@dataclass
class Fig4Report:
    """One panel: every method's accuracy curve and simulated time."""

    dataset: str
    heterogeneous: bool
    results: dict[str, RunResult] = field(default_factory=dict)

    @property
    def rows(self) -> list[list]:
        rows = []
        for method, result in sorted(
            self.results.items(), key=lambda kv: -kv[1].final_accuracy
        ):
            rows.append(
                [
                    method,
                    round(result.final_accuracy, 3),
                    round(float(result.forgetting_curve[-1]), 3),
                    round(result.sim_total_seconds / 3600.0, 3),
                ]
            )
        return rows

    def best_method(self) -> str:
        return max(self.results, key=lambda m: self.results[m].final_accuracy)

    def __str__(self) -> str:
        suffix = " (+Raspberry Pi)" if self.heterogeneous else " (20 Jetson)"
        return format_table(
            ["method", "final_acc", "forgetting", "sim_hours"],
            self.rows,
            title=f"Fig.4 {self.dataset}{suffix}",
        )


def run_fig4_panel(
    dataset: str,
    methods: tuple[str, ...] | None = None,
    preset: ScalePreset = BENCH,
    heterogeneous: bool = False,
    seed: int = 0,
) -> Fig4Report:
    """Run one Fig. 4 panel (one dataset, many methods)."""
    methods = methods or ALL_METHODS
    cluster = jetson_raspberry_cluster() if heterogeneous else jetson_cluster()
    spec = get_spec(dataset)
    report = Fig4Report(dataset=dataset, heterogeneous=heterogeneous)
    for method in methods:
        report.results[method] = run_single(
            method, spec, preset, cluster=cluster, seed=seed
        )
    return report


def run_fig4(
    datasets: tuple[str, ...] = FIG4_DATASETS,
    methods: tuple[str, ...] | None = None,
    preset: ScalePreset = BENCH,
    heterogeneous: bool = False,
    seed: int = 0,
) -> list[Fig4Report]:
    """Run the full Fig. 4 grid."""
    return [
        run_fig4_panel(dataset, methods, preset, heterogeneous, seed)
        for dataset in datasets
    ]
