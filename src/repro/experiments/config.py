"""Experiment scale presets.

Every experiment accepts a :class:`ScalePreset`:

* ``unit``  — seconds-scale configs for CI tests;
* ``bench`` — the default for ``pytest benchmarks/`` (regenerates every
  table/figure in minutes while preserving the paper's qualitative shape);
* ``paper`` — the full workload sizes of Section V (20 clients, all tasks,
  15 rounds x 25 iterations; hours of CPU time).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..data.specs import DatasetSpec
from ..federated.config import TrainConfig


@dataclass(frozen=True)
class ScalePreset:
    """A named bundle of experiment sizes."""

    name: str
    num_clients: int
    num_tasks: int | None  # None = use all tasks in the dataset spec
    train_per_class: int
    test_per_class: int
    rounds_per_task: int
    iterations_per_round: int
    batch_size: int = 12
    lr: float = 0.01
    lr_decay: float = 1e-4
    seed: int = 0
    #: Participation policy spec ("full", "sampled:<fraction>",
    #: "deadline:<seconds>") applied to every run at this preset.
    participation: str = "full"

    def apply_to_spec(self, spec: DatasetSpec) -> DatasetSpec:
        """Scale a dataset spec's sample counts / task count to this preset."""
        scaled = spec.scaled(self.train_per_class, self.test_per_class)
        if self.num_tasks is not None and self.num_tasks < spec.num_tasks:
            scaled = scaled.with_tasks(self.num_tasks)
        return scaled

    def train_config(self, **overrides) -> TrainConfig:
        """Build the matching :class:`TrainConfig`."""
        config = TrainConfig(
            batch_size=self.batch_size,
            lr=self.lr,
            lr_decay=self.lr_decay,
            rounds_per_task=self.rounds_per_task,
            iterations_per_round=self.iterations_per_round,
            seed=self.seed,
            participation=self.participation,
        )
        return config.updated(**overrides) if overrides else config

    def updated(self, **overrides) -> "ScalePreset":
        return replace(self, **overrides)


UNIT = ScalePreset(
    name="unit",
    num_clients=2,
    num_tasks=2,
    train_per_class=8,
    test_per_class=4,
    rounds_per_task=1,
    iterations_per_round=3,
    batch_size=8,
)

BENCH = ScalePreset(
    name="bench",
    num_clients=3,
    num_tasks=3,
    train_per_class=16,
    test_per_class=6,
    rounds_per_task=2,
    iterations_per_round=6,
    batch_size=12,
)

PAPER = ScalePreset(
    name="paper",
    num_clients=20,
    num_tasks=None,
    train_per_class=24,
    test_per_class=8,
    rounds_per_task=10,
    iterations_per_round=25,
    batch_size=16,
)

PRESETS = {"unit": UNIT, "bench": BENCH, "paper": PAPER}


def get_preset(name: str) -> ScalePreset:
    """Look up a scale preset by name."""
    if name not in PRESETS:
        raise KeyError(f"unknown preset {name!r}; known: {sorted(PRESETS)}")
    return PRESETS[name]
