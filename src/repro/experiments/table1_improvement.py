"""Table I — per-task percentage accuracy improvement of FedKNOW.

For each dataset and each task stage ``m``, the table reports

    100 * (acc_FedKNOW(m) - mean_baselines(m)) / mean_baselines(m),

where the mean is over the 11 baseline techniques, and the accuracy is the
average accuracy over the ``m`` learned tasks (the paper's Table I).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..metrics.tracker import RunResult
from .fig4_accuracy import FIG4_DATASETS, run_fig4_panel
from .config import BENCH, ScalePreset
from .reporting import format_table


@dataclass
class Table1Report:
    """Improvement (%) of FedKNOW over the baseline mean, per task stage."""

    datasets: list[str]
    improvements: dict[str, np.ndarray] = field(default_factory=dict)
    overall: dict[str, float] = field(default_factory=dict)

    @property
    def rows(self) -> list[list]:
        max_tasks = max(len(v) for v in self.improvements.values())
        rows = []
        for stage in range(max_tasks):
            row: list = [f"Task{stage + 1}"]
            for dataset in self.datasets:
                values = self.improvements[dataset]
                row.append(
                    f"{values[stage]:+.2f}%" if stage < len(values) else "-"
                )
            rows.append(row)
        return rows

    def mean_improvement(self, dataset: str) -> float:
        return float(np.mean(self.improvements[dataset]))

    def __str__(self) -> str:
        table = format_table(
            ["task"] + list(self.datasets),
            self.rows,
            title="Table I: FedKNOW accuracy improvement over 11-baseline mean",
        )
        means = ", ".join(
            f"{d}: {self.mean_improvement(d):+.2f}%" for d in self.datasets
        )
        return f"{table}\nmean per dataset: {means}"


def improvement_curve(
    fedknow: RunResult, baselines: list[RunResult]
) -> np.ndarray:
    """Per-stage improvement (%) of FedKNOW over the mean baseline accuracy."""
    fk = fedknow.accuracy_curve
    base = np.mean([b.accuracy_curve for b in baselines], axis=0)
    return 100.0 * (fk - base) / np.maximum(base, 1e-9)


def run_table1(
    datasets: tuple[str, ...] = FIG4_DATASETS,
    preset: ScalePreset = BENCH,
    methods: tuple[str, ...] | None = None,
    seed: int = 0,
) -> Table1Report:
    """Compute Table I from the Fig. 4 runs (memoised, so shared work)."""
    report = Table1Report(datasets=list(datasets))
    for dataset in datasets:
        panel = run_fig4_panel(dataset, methods=methods, preset=preset, seed=seed)
        fedknow = panel.results["fedknow"]
        baselines = [r for m, r in panel.results.items() if m != "fedknow"]
        curve = improvement_curve(fedknow, baselines)
        report.improvements[dataset] = curve
        report.overall[dataset] = float(np.mean(curve))
    return report
