"""Hyperparameter grid search on the held-out SVHN-like dataset.

Section V-B's protocol: to avoid test-set leakage, hyperparameters are tuned
by accuracy on a separate 2-task SVHN benchmark, and the best setting is
reused on the real workloads.  :func:`grid_search` implements the generic
sweep; :func:`search_fedknow` reproduces the paper's rho / k search.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import product
from typing import Any, Mapping

from ..core.config import FedKnowConfig
from ..data.specs import svhn_like
from .config import BENCH, ScalePreset
from .reporting import format_table
from .runner import run_single


@dataclass
class SearchResult:
    """Outcome of a grid search: per-setting accuracy plus the winner."""

    method: str
    entries: list[tuple[dict, float]] = field(default_factory=list)

    @property
    def best(self) -> tuple[dict, float]:
        return max(self.entries, key=lambda e: e[1])

    @property
    def rows(self) -> list[list]:
        return [
            [", ".join(f"{k}={v}" for k, v in params.items()), round(acc, 3)]
            for params, acc in sorted(self.entries, key=lambda e: -e[1])
        ]

    def __str__(self) -> str:
        table = format_table(
            ["setting", "svhn_acc"], self.rows,
            title=f"Hyperparameter search ({self.method}) on SVHN",
        )
        params, acc = self.best
        return f"{table}\nbest: {params} (acc {acc:.3f})"


def grid_search(
    method: str,
    grid: Mapping[str, list[Any]],
    preset: ScalePreset = BENCH,
    seed: int = 0,
    method_kwargs_builder=None,
) -> SearchResult:
    """Evaluate every combination in ``grid`` on the SVHN-like benchmark.

    ``method_kwargs_builder(params) -> dict`` translates one grid point into
    the ``method_kwargs`` of :func:`~repro.experiments.runner.run_single`;
    by default the params are passed through unchanged.
    """
    spec = svhn_like()
    preset = preset.updated(num_tasks=None)  # SVHN already has only 2 tasks
    result = SearchResult(method=method)
    names = list(grid)
    for values in product(*(grid[name] for name in names)):
        params = dict(zip(names, values))
        kwargs = (
            method_kwargs_builder(params) if method_kwargs_builder else dict(params)
        )
        run = run_single(
            method, spec, preset, seed=seed, method_kwargs=kwargs
        )
        result.entries.append((params, run.final_accuracy))
    return result


def search_fedknow(
    ratios: tuple[float, ...] = (0.05, 0.10, 0.20),
    ks: tuple[int, ...] = (5, 10, 20),
    preset: ScalePreset = BENCH,
    seed: int = 0,
) -> SearchResult:
    """The paper's rho x k search for FedKNOW (Section V-B)."""

    def build(params: dict) -> dict:
        return {
            "fedknow_config": FedKnowConfig(
                knowledge_ratio=params["rho"],
                num_signature_gradients=params["k"],
            )
        }

    return grid_search(
        "fedknow",
        {"rho": list(ratios), "k": list(ks)},
        preset=preset,
        seed=seed,
        method_kwargs_builder=build,
    )
