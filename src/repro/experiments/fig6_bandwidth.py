"""Fig. 6 — communication time under different network bandwidths.

Eight bandwidth settings from 50 KB/s to 10 MB/s, two DNNs (the 6-layer CNN
and ResNet-18), FedKNOW vs FedWEIT.  Transfer volumes are measured from one
training run per (method, model); times are the measured per-round payloads
replayed through each bandwidth setting.  Per-round payloads are the wire
codec's exact encoded byte counts
(:func:`repro.utils.serialization.encoded_num_bytes`), so the replayed hours
reflect what the sparse/dense wire format actually transfers.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..data.specs import cifar100_like, miniimagenet_like
from ..edge.cluster import jetson_cluster
from ..edge.network import FIG6_BANDWIDTHS, NetworkModel, format_bandwidth
from ..metrics.tracker import RunResult
from .config import BENCH, ScalePreset
from .reporting import format_table
from .runner import run_single

#: Fig. 6's two panels: (label, dataset spec builder).
FIG6_MODELS = (
    ("6cnn", cifar100_like),
    ("resnet18", miniimagenet_like),
)


def comm_seconds_under_bandwidth(
    result: RunResult, bandwidth_bytes_per_second: float
) -> float:
    """Replay a run's per-round payloads through a different bandwidth.

    Each round is replayed as one round-trip on the link — upload and
    download legs priced separately, protocol latency charged once.
    """
    network = NetworkModel(bandwidth_bytes_per_second=bandwidth_bytes_per_second)
    link = network.link_for_device(None)
    total = 0.0
    for record in result.rounds:
        active = max(record.active_clients, 1)
        total += link.round_trip_seconds(
            record.upload_bytes / active, record.download_bytes / active
        )
    return total


@dataclass
class Fig6Report:
    """Communication time (hours) per bandwidth, model and method."""

    bandwidths: tuple[int, ...]
    # times[model_label][method] = list of hours aligned with bandwidths
    times: dict[str, dict[str, list[float]]] = field(default_factory=dict)

    @property
    def rows(self) -> list[list]:
        rows = []
        for model_label, methods in self.times.items():
            for method, hours in methods.items():
                rows.append(
                    [model_label, method]
                    + [round(h, 4) for h in hours]
                )
        return rows

    def __str__(self) -> str:
        headers = ["model", "method"] + [
            format_bandwidth(b) for b in self.bandwidths
        ]
        return format_table(
            headers, self.rows, title="Fig.6: communication time (hours) vs bandwidth"
        )


def run_fig6(
    preset: ScalePreset = BENCH,
    bandwidths: tuple[int, ...] = FIG6_BANDWIDTHS,
    seed: int = 0,
    transport: str = "v1:dense",
) -> Fig6Report:
    """Measure communication time across the Fig. 6 bandwidth sweep."""
    report = Fig6Report(bandwidths=bandwidths)
    cluster = jetson_cluster()
    for label, spec_builder in FIG6_MODELS:
        spec = spec_builder()
        report.times[label] = {}
        for method in ("fedknow", "fedweit"):
            result = run_single(method, spec, preset, cluster=cluster, seed=seed,
                                transport=transport)
            report.times[label][method] = [
                comm_seconds_under_bandwidth(result, bw) / 3600.0
                for bw in bandwidths
            ]
    return report
