"""Fig. 9 — applicability to eight modern DNN architectures.

GEM, FedWEIT and FedKNOW retrain each of the eight Fig. 9 networks
(WideResNet, ResNeXt, ResNet-152, SENet18, MobileNetV2 x1/x2, ShuffleNetV2,
DenseNet) over the MiniImageNet task sequence; FedKNOW's magnitude-based
knowledge is architecture-agnostic, whereas FedWEIT's decomposition struggles
on compact networks (Section V-E).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from ..data.specs import miniimagenet_like
from ..edge.cluster import jetson_cluster
from ..metrics.tracker import RunResult
from ..models.zoo import FIG9_MODELS, model_family
from .config import BENCH, ScalePreset
from .fig4_accuracy import TOP3_METHODS
from .reporting import format_table
from .runner import run_single


@dataclass
class Fig9Report:
    """Final accuracy of each method on each architecture."""

    models: tuple[str, ...]
    # results[model][method]
    results: dict[str, dict[str, RunResult]] = field(default_factory=dict)

    @property
    def rows(self) -> list[list]:
        rows = []
        for model in self.models:
            entry = self.results[model]
            row: list = [model, model_family(model)]
            for method in sorted(entry):
                row.append(round(entry[method].final_accuracy, 3))
            rows.append(row)
        return rows

    def best_method_per_model(self) -> dict[str, str]:
        return {
            model: max(entry, key=lambda m: entry[m].final_accuracy)
            for model, entry in self.results.items()
        }

    def __str__(self) -> str:
        methods = sorted(next(iter(self.results.values())))
        return format_table(
            ["model", "family"] + [f"acc_{m}" for m in methods],
            self.rows,
            title="Fig.9: applicability to six DNN categories (final avg accuracy)",
        )


def run_fig9(
    preset: ScalePreset = BENCH,
    models: tuple[str, ...] = FIG9_MODELS,
    methods: tuple[str, ...] = TOP3_METHODS,
    seed: int = 0,
) -> Fig9Report:
    """Run the architecture-applicability comparison."""
    report = Fig9Report(models=tuple(models))
    cluster = jetson_cluster()
    base_spec = miniimagenet_like()
    for model in models:
        spec = replace(base_spec, model_name=model)
        report.results[model] = {}
        for method in methods:
            report.results[model][method] = run_single(
                method, spec, preset, cluster=cluster, seed=seed
            )
    return report
