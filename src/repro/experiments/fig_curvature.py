"""fig-curvature — magnitude vs curvature-scored signature knowledge.

FedKNOW's knowledge extractor keeps the top weights by absolute magnitude
(Section III-B).  The curvature subsystem makes that scoring rule pluggable:
a diagonal-Fisher saliency (``F_j * w_j**2``, the diagonal-Laplace importance
of keeping weight ``j``) and a magnitude/Fisher hybrid.  This figure sweeps
the selector for FedKNOW across every scenario family of fig-scenarios and
adds the variational-Bayes baseline (``fedvb``) as a curvature-native
reference column, answering: does second-order information change *which*
weights are worth retaining, and does its ranking survive a scenario change?
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..data.specs import get_spec
from ..edge.cluster import jetson_cluster
from ..metrics.tracker import RunResult
from .config import BENCH, ScalePreset
from .fig_scenarios import SCENARIO_FAMILIES
from .reporting import format_table
from .runner import run_single

#: The signature-knowledge scoring rules the ablation compares.
SELECTOR_SWEEP: tuple[str, ...] = ("magnitude", "fisher", "hybrid:0.5")


@dataclass
class FigCurvatureReport:
    """Accuracy / forgetting per (selector, scenario family) for FedKNOW,
    plus the fedvb reference column."""

    dataset: str
    selectors: tuple[str, ...] = SELECTOR_SWEEP
    scenarios: tuple[str, ...] = SCENARIO_FAMILIES
    # results[column][scenario spec] = RunResult; columns are
    # "fedknow@<selector>" rows plus optionally "fedvb"
    results: dict[str, dict[str, RunResult]] = field(default_factory=dict)

    def accuracy(self, column: str, scenario: str) -> float:
        return self.results[column][scenario].final_accuracy

    def forgetting(self, column: str, scenario: str) -> float:
        result = self.results[column][scenario]
        return float(result.forgetting_curve[-1])

    def best_selector(self, scenario: str) -> str:
        """The column with the highest final accuracy under ``scenario``."""
        return max(self.results, key=lambda c: self.accuracy(c, scenario))

    def labels(self) -> dict[str, str]:
        """Column label per scenario: the family name, or the full spec
        when several compared scenarios share a family."""
        families = [s.split(":")[0] for s in self.scenarios]
        return {
            spec: family if families.count(family) == 1 else spec
            for spec, family in zip(self.scenarios, families)
        }

    @property
    def rows(self) -> list[list]:
        rows = []
        for column in self.results:
            row = [column]
            for scenario in self.scenarios:
                row.append(round(self.accuracy(column, scenario), 3))
                row.append(round(self.forgetting(column, scenario), 3))
            rows.append(row)
        return rows

    def __str__(self) -> str:
        labels = self.labels()
        headers = ["selection"]
        for scenario in self.scenarios:
            headers += [f"{labels[scenario]}_acc", f"{labels[scenario]}_fgt"]
        table = format_table(
            headers,
            self.rows,
            title=(
                "Fig-curvature: magnitude vs curvature-scored signature "
                f"knowledge ({self.dataset})"
            ),
        )
        winners = ", ".join(
            f"{labels[s]}: {self.best_selector(s)}" for s in self.scenarios
        )
        return f"{table}\nbest per scenario — {winners}"


def run_fig_curvature(
    dataset: str = "cifar100",
    selectors: tuple[str, ...] = SELECTOR_SWEEP,
    scenarios: tuple[str, ...] = SCENARIO_FAMILIES,
    preset: ScalePreset = BENCH,
    seed: int = 0,
    with_fedvb: bool = True,
) -> FigCurvatureReport:
    """Sweep FedKNOW's signature selector across the scenario families.

    Each selector runs the *same* FedKNOW configuration (identical data,
    initial weights and schedule); only the extractor's scoring rule
    differs.  ``with_fedvb`` appends the variational-Bayes baseline as a
    reference column.
    """
    report = FigCurvatureReport(
        dataset=dataset,
        selectors=tuple(selectors),
        scenarios=tuple(scenarios),
    )
    cluster = jetson_cluster()
    spec = get_spec(dataset)
    columns: list[tuple[str, str, str | None]] = [
        (f"fedknow@{selector}", "fedknow", selector)
        for selector in report.selectors
    ]
    if with_fedvb:
        columns.append(("fedvb", "fedvb", None))
    for column, method, selector in columns:
        entries: dict[str, RunResult] = {}
        for scenario in report.scenarios:
            entries[scenario] = run_single(
                method, spec, preset, cluster=cluster, seed=seed,
                scenario=scenario, selector=selector,
            )
        report.results[column] = entries
    return report
