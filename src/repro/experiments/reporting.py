"""Plain-text reporting: aligned tables and series (the repo has no plotting
dependencies, so every figure is regenerated as the numeric series behind it)."""

from __future__ import annotations

from typing import Sequence


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence], title: str | None = None
) -> str:
    """Render an aligned ASCII table."""
    cells = [[str(h) for h in headers]] + [[_fmt(c) for c in row] for row in rows]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    separator = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(cells[0], widths)))
    lines.append(separator)
    for row in cells[1:]:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(
    label: str, xs: Sequence, ys: Sequence, x_name: str = "x", y_name: str = "y"
) -> str:
    """Render a named (x, y) series as two aligned rows."""
    x_cells = [_fmt(x) for x in xs]
    y_cells = [_fmt(y) for y in ys]
    widths = [max(len(a), len(b)) for a, b in zip(x_cells, y_cells)]
    line_x = "  ".join(c.rjust(w) for c, w in zip(x_cells, widths))
    line_y = "  ".join(c.rjust(w) for c, w in zip(y_cells, widths))
    return f"{label}\n  {x_name:>10s}: {line_x}\n  {y_name:>10s}: {line_y}"


def _fmt(value) -> str:
    if isinstance(value, float):
        if value != value:  # nan
            return "nan"
        if abs(value) >= 1000 or (abs(value) < 0.001 and value != 0):
            return f"{value:.3g}"
        return f"{value:.3f}".rstrip("0").rstrip(".") or "0"
    return str(value)
