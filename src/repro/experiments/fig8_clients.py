"""Fig. 8 — scalability in the number of clients (50 and 100 in the paper).

With more clients, each holds fewer samples and the population is more
heterogeneous, so negative knowledge transfer intensifies; FedKNOW's
gradient integration keeps both the highest accuracy and lowest forgetting.
MiniImageNet / ResNet-18, the top-3 methods.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..data.specs import miniimagenet_like
from ..edge.cluster import jetson_cluster
from ..metrics.tracker import RunResult
from .config import BENCH, ScalePreset
from .fig4_accuracy import TOP3_METHODS
from .reporting import format_table
from .runner import run_single

#: Paper client counts; benches scale these down proportionally.
PAPER_CLIENT_COUNTS: tuple[int, ...] = (50, 100)


@dataclass
class Fig8Report:
    """Accuracy / forgetting at several federation sizes."""

    client_counts: tuple[int, ...]
    # results[num_clients][method]
    results: dict[int, dict[str, RunResult]] = field(default_factory=dict)
    participation: str = "full"

    @property
    def rows(self) -> list[list]:
        rows = []
        for count in self.client_counts:
            for method, result in self.results[count].items():
                rows.append(
                    [
                        count,
                        method,
                        round(result.final_accuracy, 3),
                        round(float(result.forgetting_curve[-1]), 3),
                    ]
                )
        return rows

    def __str__(self) -> str:
        title = "Fig.8: accuracy / forgetting vs number of clients"
        if self.participation != "full":
            title += f" ({self.participation} participation)"
        return format_table(
            ["clients", "method", "final_acc", "forgetting"],
            self.rows,
            title=title,
        )


def run_fig8(
    preset: ScalePreset = BENCH,
    client_counts: tuple[int, ...] | None = None,
    methods: tuple[str, ...] = TOP3_METHODS,
    seed: int = 0,
    participation: str = "full",
) -> Fig8Report:
    """Run the client-scaling comparison.

    Default counts scale the paper's 50/100 down proportionally to the
    preset (bench: 6/10; paper preset uses the real 50/100).
    ``participation`` reruns the sweep under partial participation — e.g.
    ``"sampled:0.5"`` trains half the population per round, the regime real
    50+-client federations operate in.
    """
    if client_counts is None:
        client_counts = (
            PAPER_CLIENT_COUNTS if preset.name == "paper" else (6, 10)
        )
    spec = miniimagenet_like()
    report = Fig8Report(
        client_counts=tuple(client_counts), participation=participation
    )
    cluster = jetson_cluster()
    for count in client_counts:
        sized = preset.updated(num_clients=count)
        report.results[count] = {}
        for method in methods:
            report.results[count][method] = run_single(
                method, spec, sized, cluster=cluster, seed=seed,
                participation=participation,
            )
    return report
