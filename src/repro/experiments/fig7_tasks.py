"""Fig. 7 — scalability in the number of tasks (the 80-task workload).

The paper combines MiniImageNet + CIFAR-100 + TinyImageNet into an 80-task
sequence trained with ResNet-18 on 20 clients, comparing GEM, FedWEIT and
FedKNOW on average accuracy and average forgetting rate as tasks accumulate.
At ``bench`` scale the combined dataset is shortened (the preset's
``num_tasks``), preserving the trend's shape.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..data.specs import combined_spec
from ..edge.cluster import jetson_cluster
from ..metrics.tracker import RunResult
from .config import BENCH, ScalePreset
from .fig4_accuracy import TOP3_METHODS
from .reporting import format_series
from .runner import run_single


@dataclass
class Fig7Report:
    """Accuracy / forgetting trajectories over a long task sequence."""

    num_tasks: int
    results: dict[str, RunResult] = field(default_factory=dict)

    def accuracy_curves(self) -> dict[str, np.ndarray]:
        return {m: r.accuracy_curve for m, r in self.results.items()}

    def forgetting_curves(self) -> dict[str, np.ndarray]:
        return {m: r.forgetting_curve for m, r in self.results.items()}

    def __str__(self) -> str:
        stages = np.arange(1, self.num_tasks + 1)
        blocks = ["Fig.7: accuracy / forgetting vs number of tasks"]
        for method, result in self.results.items():
            blocks.append(
                format_series(
                    f"[{method}] avg accuracy", stages, result.accuracy_curve,
                    x_name="tasks", y_name="accuracy",
                )
            )
            blocks.append(
                format_series(
                    f"[{method}] forgetting", stages, result.forgetting_curve,
                    x_name="tasks", y_name="rate",
                )
            )
        return "\n".join(blocks)


def run_fig7(
    preset: ScalePreset = BENCH,
    num_tasks: int | None = None,
    methods: tuple[str, ...] = TOP3_METHODS,
    seed: int = 0,
) -> Fig7Report:
    """Run the long-task-sequence comparison.

    ``num_tasks`` defaults to the preset's task budget (80 at paper scale).
    """
    if num_tasks is None:
        num_tasks = preset.num_tasks if preset.num_tasks is not None else 80
    spec = combined_spec(num_tasks=num_tasks)
    # the preset must not re-truncate the combined spec
    preset = preset.updated(num_tasks=None)
    report = Fig7Report(num_tasks=num_tasks)
    cluster = jetson_cluster()
    for method in methods:
        report.results[method] = run_single(
            method, spec, preset, cluster=cluster, seed=seed
        )
    return report
