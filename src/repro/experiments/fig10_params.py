"""Fig. 10 — knowledge-retention parameter settings.

Three ways of retaining previous knowledge, each under several budgets
(MiniImageNet / ResNet-18):

* GEM storing 10 / 20 / 50 / 100 % of each task's training samples;
* FedWEIT using all clients' adaptive weights vs only its own;
* FedKNOW retaining rho = 5 / 10 / 20 % of model weights.

Reported: final average accuracy and simulated training time — FedKNOW's
training time is nearly flat in rho, which is what lets it use more knowledge
for more accuracy (the paper's key observation).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.config import FedKnowConfig
from ..data.specs import miniimagenet_like
from ..edge.cluster import jetson_cluster
from ..metrics.tracker import RunResult
from .config import BENCH, ScalePreset
from .reporting import format_table
from .runner import run_single

GEM_FRACTIONS: tuple[float, ...] = (0.10, 0.20, 0.50, 1.00)
FEDKNOW_RATIOS: tuple[float, ...] = (0.05, 0.10, 0.20)


@dataclass
class Fig10Report:
    """(setting -> result) for the three retention mechanisms."""

    results: dict[str, RunResult] = field(default_factory=dict)

    @property
    def rows(self) -> list[list]:
        return [
            [
                setting,
                round(result.final_accuracy, 3),
                round(result.sim_train_seconds / 3600.0, 3),
            ]
            for setting, result in self.results.items()
        ]

    def __str__(self) -> str:
        return format_table(
            ["setting", "final_acc", "train_hours"],
            self.rows,
            title="Fig.10: knowledge-retention parameter settings",
        )


def run_fig10(
    preset: ScalePreset = BENCH,
    seed: int = 0,
    gem_fractions: tuple[float, ...] = GEM_FRACTIONS,
    fedknow_ratios: tuple[float, ...] = FEDKNOW_RATIOS,
) -> Fig10Report:
    """Run the parameter-setting sweep of Fig. 10."""
    spec = miniimagenet_like()
    cluster = jetson_cluster()
    report = Fig10Report()
    for fraction in gem_fractions:
        result = run_single(
            "gem", spec, preset, cluster=cluster, seed=seed,
            method_kwargs={"strategy_kwargs": {"memory_fraction": fraction}},
        )
        report.results[f"gem_{int(fraction * 100)}%"] = result
    for use_foreign, label in ((True, "fedweit_all_clients"), (False, "fedweit_own_only")):
        result = run_single(
            "fedweit", spec, preset, cluster=cluster, seed=seed,
            method_kwargs={"use_foreign": use_foreign},
        )
        report.results[label] = result
    for ratio in fedknow_ratios:
        result = run_single(
            "fedknow", spec, preset, cluster=cluster, seed=seed,
            method_kwargs={
                "fedknow_config": FedKnowConfig(knowledge_ratio=ratio)
            },
        )
        report.results[f"fedknow_rho{int(ratio * 100)}%"] = result
    return report
