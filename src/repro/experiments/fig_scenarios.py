"""fig-scenarios — method robustness across data-scenario families.

The paper evaluates one scenario family (Section V-A's class-incremental
split).  With the pluggable scenario API the same 12-method comparison runs
under domain drift, Dirichlet label shift, blurry task boundaries and
staggered task arrival, answering the question the FCL surveys pose: does a
method's ranking survive a change of scenario?  Reported per (method,
scenario): final average accuracy and final forgetting rate.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..data.specs import get_spec
from ..edge.cluster import jetson_cluster
from ..metrics.tracker import RunResult
from .config import BENCH, ScalePreset
from .reporting import format_table
from .runner import run_single

#: The scenario families compared by the figure (>= 4 beyond-paper settings).
SCENARIO_FAMILIES: tuple[str, ...] = (
    "class-inc",
    "domain-inc:drift=0.3",
    "label-shift:dirichlet:0.3",
    "blurry:overlap=0.2",
    "async-arrival",
)


@dataclass
class FigScenariosReport:
    """Accuracy / forgetting of every method under every scenario family."""

    dataset: str
    scenarios: tuple[str, ...] = SCENARIO_FAMILIES
    # results[method][scenario spec] = RunResult
    results: dict[str, dict[str, RunResult]] = field(default_factory=dict)

    def accuracy(self, method: str, scenario: str) -> float:
        return self.results[method][scenario].final_accuracy

    def forgetting(self, method: str, scenario: str) -> float:
        result = self.results[method][scenario]
        return float(result.forgetting_curve[-1])

    def best_method(self, scenario: str) -> str:
        """The method with the highest final accuracy under ``scenario``."""
        return max(self.results, key=lambda m: self.accuracy(m, scenario))

    def labels(self) -> dict[str, str]:
        """Column label per scenario: the family name, or the full spec
        when several compared scenarios share a family (parameter sweeps)."""
        families = [s.split(":")[0] for s in self.scenarios]
        return {
            spec: family if families.count(family) == 1 else spec
            for spec, family in zip(self.scenarios, families)
        }

    @property
    def rows(self) -> list[list]:
        rows = []
        for method in self.results:
            row = [method]
            for scenario in self.scenarios:
                row.append(round(self.accuracy(method, scenario), 3))
                row.append(round(self.forgetting(method, scenario), 3))
            rows.append(row)
        return rows

    def __str__(self) -> str:
        labels = self.labels()
        headers = ["method"]
        for scenario in self.scenarios:
            headers += [f"{labels[scenario]}_acc", f"{labels[scenario]}_fgt"]
        table = format_table(
            headers,
            self.rows,
            title=(
                "Fig-scenarios: accuracy / forgetting across scenario "
                f"families ({self.dataset})"
            ),
        )
        winners = ", ".join(
            f"{labels[s]}: {self.best_method(s)}" for s in self.scenarios
        )
        return f"{table}\nbest per scenario — {winners}"


def run_fig_scenarios(
    dataset: str = "cifar100",
    methods: tuple[str, ...] | None = None,
    scenarios: tuple[str, ...] = SCENARIO_FAMILIES,
    preset: ScalePreset = BENCH,
    seed: int = 0,
) -> FigScenariosReport:
    """Run every method under every scenario family on one dataset.

    ``methods`` defaults to all 12 methods of the Fig. 4 comparison.
    """
    from ..federated.registry import ALL_METHODS

    methods = tuple(methods) if methods is not None else ALL_METHODS
    report = FigScenariosReport(dataset=dataset, scenarios=tuple(scenarios))
    cluster = jetson_cluster()
    spec = get_spec(dataset)
    for method in methods:
        entries: dict[str, RunResult] = {}
        for scenario in report.scenarios:
            entries[scenario] = run_single(
                method, spec, preset, cluster=cluster, seed=seed,
                scenario=scenario,
            )
        report.results[method] = entries
    return report
