"""Fig. 5 — total communication volume (GB): FedKNOW vs FedWEIT per dataset.

FedKNOW (like all the FedAvg-based methods) only exchanges model weights;
FedWEIT additionally uploads sparse adaptive weights every round and
broadcasts every other client's adaptives at each task start, so its volume
grows with clients and tasks.  The paper reports a 34.28 % average reduction
for FedKNOW.

Volumes are accumulated from the per-round ``upload_bytes`` /
``download_bytes`` records, which the clients measure as the wire codec's
exact encoded payload sizes (:func:`repro.utils.serialization.encoded_num_bytes`)
— dense records for model states, ``{indices: int32, values: float32}``
records for sparse adaptives — not from ``nbytes`` arithmetic.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..data.specs import get_spec
from ..edge.cluster import jetson_cluster
from ..metrics.tracker import RunResult
from .config import BENCH, ScalePreset
from .fig4_accuracy import FIG4_DATASETS
from .reporting import format_table
from .runner import run_single


@dataclass
class Fig5Report:
    """Total communication volume per dataset for the two FCL methods."""

    datasets: list[str]
    volumes: dict[str, dict[str, float]] = field(default_factory=dict)  # GB

    @property
    def rows(self) -> list[list]:
        rows = []
        for dataset in self.datasets:
            entry = self.volumes[dataset]
            saving = 100.0 * (1.0 - entry["fedknow"] / max(entry["fedweit"], 1e-12))
            rows.append(
                [
                    dataset,
                    round(entry["fedknow"], 3),
                    round(entry["fedweit"], 3),
                    f"{saving:.1f}%",
                ]
            )
        return rows

    def mean_saving_percent(self) -> float:
        savings = []
        for entry in self.volumes.values():
            savings.append(100.0 * (1.0 - entry["fedknow"] / entry["fedweit"]))
        return float(np.mean(savings))

    def __str__(self) -> str:
        table = format_table(
            ["dataset", "fedknow_gb", "fedweit_gb", "saving"],
            self.rows,
            title="Fig.5: total communication volume (GB)",
        )
        return f"{table}\nmean saving: {self.mean_saving_percent():.2f}%"


def run_fig5(
    datasets: tuple[str, ...] = FIG4_DATASETS,
    preset: ScalePreset = BENCH,
    seed: int = 0,
) -> Fig5Report:
    """Measure total communication volume of FedKNOW vs FedWEIT."""
    report = Fig5Report(datasets=list(datasets))
    cluster = jetson_cluster()
    for dataset in datasets:
        spec = get_spec(dataset)
        entry = {}
        for method in ("fedknow", "fedweit"):
            result: RunResult = run_single(
                method, spec, preset, cluster=cluster, seed=seed
            )
            entry[method] = result.total_comm_bytes / 1e9
        report.volumes[dataset] = entry
    return report
