"""Fig. 5 — total communication volume (GB): FedKNOW vs FedWEIT per dataset.

FedKNOW (like all the FedAvg-based methods) only exchanges model weights;
FedWEIT additionally uploads sparse adaptive weights every round and
broadcasts every other client's adaptives at each task start, so its volume
grows with clients and tasks.  The paper reports a 34.28 % average reduction
for FedKNOW.

Volumes are accumulated from the per-round ``upload_bytes`` /
``download_bytes`` records, which the clients measure as the wire codec's
exact encoded payload sizes (:func:`repro.utils.serialization.encoded_num_bytes`)
— dense records for model states, ``{indices: int32, values: float32}``
records for sparse adaptives — not from ``nbytes`` arithmetic.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..data.specs import get_spec
from ..edge.cluster import jetson_cluster
from ..metrics.tracker import RunResult
from .config import BENCH, ScalePreset
from .fig4_accuracy import FIG4_DATASETS
from .reporting import format_table
from .runner import run_single


@dataclass
class Fig5Report:
    """Total communication volume per dataset for the two FCL methods."""

    datasets: list[str]
    volumes: dict[str, dict[str, float]] = field(default_factory=dict)  # GB

    @property
    def rows(self) -> list[list]:
        rows = []
        for dataset in self.datasets:
            entry = self.volumes[dataset]
            saving = 100.0 * (1.0 - entry["fedknow"] / max(entry["fedweit"], 1e-12))
            rows.append(
                [
                    dataset,
                    round(entry["fedknow"], 3),
                    round(entry["fedweit"], 3),
                    f"{saving:.1f}%",
                ]
            )
        return rows

    def mean_saving_percent(self) -> float:
        savings = []
        for entry in self.volumes.values():
            savings.append(100.0 * (1.0 - entry["fedknow"] / entry["fedweit"]))
        return float(np.mean(savings))

    def __str__(self) -> str:
        table = format_table(
            ["dataset", "fedknow_gb", "fedweit_gb", "saving"],
            self.rows,
            title="Fig.5: total communication volume (GB)",
        )
        return f"{table}\nmean saving: {self.mean_saving_percent():.2f}%"


def run_fig5(
    datasets: tuple[str, ...] = FIG4_DATASETS,
    preset: ScalePreset = BENCH,
    seed: int = 0,
    transport: str = "v1:dense",
) -> Fig5Report:
    """Measure total communication volume of FedKNOW vs FedWEIT."""
    report = Fig5Report(datasets=list(datasets))
    cluster = jetson_cluster()
    for dataset in datasets:
        spec = get_spec(dataset)
        entry = {}
        for method in ("fedknow", "fedweit"):
            result: RunResult = run_single(
                method, spec, preset, cluster=cluster, seed=seed,
                transport=transport,
            )
            entry[method] = result.total_comm_bytes / 1e9
        report.volumes[dataset] = entry
    return report


#: The fig5-wire comparison: label -> transport spec.
WIRE_VARIANTS: tuple[tuple[str, str], ...] = (
    ("dense-v1", "v1:dense"),
    ("delta-v2", "v2:delta:0.1"),
    ("sparse-v2", "v2:sparse:0.1"),
)


@dataclass
class Fig5WireReport:
    """Upload volume per method under the negotiated transport variants.

    Raw Fig. 5 upload volumes for every method under dense v1, top-k delta
    v2 and signature-sparse v2 uploads, plus each variant's measured
    compressed-vs-raw ratio — what the pluggable transport buys per method.
    """

    dataset: str
    variants: tuple[tuple[str, str], ...] = WIRE_VARIANTS
    # uploads[method][variant_label] = (upload_gb, compression_x)
    uploads: dict[str, dict[str, tuple[float, float]]] = field(
        default_factory=dict
    )

    @property
    def rows(self) -> list[list]:
        rows = []
        for method, entries in self.uploads.items():
            row = [method]
            for label, _ in self.variants:
                gb, ratio = entries[label]
                row.append(round(gb, 4))
                row.append(f"{ratio:.2f}x")
            rows.append(row)
        return rows

    def __str__(self) -> str:
        headers = ["method"]
        for label, _ in self.variants:
            headers += [f"{label}_gb", f"{label}_x"]
        return format_table(
            headers,
            self.rows,
            title=(
                f"Fig.5-wire: upload volume by transport ({self.dataset})"
            ),
        )


def run_fig5_wire(
    dataset: str = "cifar100",
    methods: tuple[str, ...] | None = None,
    preset: ScalePreset = BENCH,
    seed: int = 0,
    variants: tuple[tuple[str, str], ...] = WIRE_VARIANTS,
) -> Fig5WireReport:
    """Compare Fig. 5 upload volumes across negotiated transports.

    Runs every method under each transport variant and reports measured
    upload gigabytes plus the channel's compressed-vs-raw ratio.
    """
    from ..federated.registry import ALL_METHODS

    methods = tuple(methods) if methods is not None else ALL_METHODS
    report = Fig5WireReport(dataset=dataset, variants=tuple(variants))
    cluster = jetson_cluster()
    spec = get_spec(dataset)
    for method in methods:
        entries: dict[str, tuple[float, float]] = {}
        for label, transport in report.variants:
            result = run_single(
                method, spec, preset, cluster=cluster, seed=seed,
                transport=transport,
            )
            entries[label] = (
                result.total_upload_bytes / 1e9,
                result.upload_compression,
            )
        report.uploads[method] = entries
    return report
