"""Shared experiment runner with in-process result caching.

Several of the paper's tables are different views of the same runs (Table I
summarises Fig. 4; Fig. 5's volumes come from the same training jobs), so
:func:`run_single` memoises results by their full setting.  Benchmarks that
execute in one pytest session therefore pay for each training run once.
"""

from __future__ import annotations

import numpy as np

from ..data.federated import build_benchmark
from ..data.specs import DatasetSpec
from ..edge.cluster import EdgeCluster
from ..edge.network import NetworkModel
from ..federated.registry import create_trainer
from ..metrics.tracker import RunResult
from .config import ScalePreset

_CACHE: dict[tuple, RunResult] = {}


def clear_cache() -> None:
    """Drop all memoised run results."""
    _CACHE.clear()


def _cache_key(
    method: str,
    spec: DatasetSpec,
    preset: ScalePreset,
    seed: int,
    cluster: EdgeCluster | None,
    network: NetworkModel | None,
    model_kwargs: dict | None,
    method_kwargs: dict | None,
) -> tuple:
    cluster_key = (
        tuple(d.name for d in cluster.devices) if cluster is not None else None
    )
    network_key = (
        network.bandwidth_bytes_per_second if network is not None else None
    )
    return (
        method,
        spec.name,
        spec.num_tasks,
        spec.train_per_class,
        spec.test_per_class,
        spec.model_name,
        preset.name,
        preset.num_clients,
        preset.rounds_per_task,
        preset.iterations_per_round,
        seed,
        cluster_key,
        network_key,
        repr(sorted((model_kwargs or {}).items())),
        repr(sorted((method_kwargs or {}).items(), key=lambda kv: kv[0])),
    )


def run_single(
    method: str,
    spec: DatasetSpec,
    preset: ScalePreset,
    cluster: EdgeCluster | None = None,
    network: NetworkModel | None = None,
    seed: int | None = None,
    model_kwargs: dict | None = None,
    method_kwargs: dict | None = None,
    use_cache: bool = True,
    engine: str = "serial",
) -> RunResult:
    """Train ``method`` on ``spec`` at ``preset`` scale and return its metrics.

    ``engine`` selects the round engine ("serial" or "thread"); both produce
    identical metrics, so it does not participate in the result cache key.
    """
    seed = preset.seed if seed is None else seed
    scaled = preset.apply_to_spec(spec)
    key = _cache_key(
        method, scaled, preset, seed, cluster, network, model_kwargs, method_kwargs
    )
    if use_cache and key in _CACHE:
        return _CACHE[key]
    benchmark = build_benchmark(
        scaled, num_clients=preset.num_clients, rng=np.random.default_rng(seed)
    )
    trainer = create_trainer(
        method,
        benchmark,
        preset.train_config(),
        model_seed=1000 + seed,
        rng=np.random.default_rng(seed + 1),
        cluster=cluster,
        network=network,
        model_kwargs=model_kwargs,
        method_kwargs=method_kwargs,
        engine=engine,
    )
    try:
        result = trainer.run()
    finally:
        trainer.engine.close()
    if use_cache:
        _CACHE[key] = result
    return result


def run_methods(
    methods: list[str],
    spec: DatasetSpec,
    preset: ScalePreset,
    **kwargs,
) -> dict[str, RunResult]:
    """Run several methods on the same workload (shared data and init)."""
    return {
        method: run_single(method, spec, preset, **kwargs) for method in methods
    }
