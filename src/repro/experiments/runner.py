"""Shared experiment runner with in-process result caching.

Several of the paper's tables are different views of the same runs (Table I
summarises Fig. 4; Fig. 5's volumes come from the same training jobs), so
:func:`run_single` memoises results by their full setting.  Benchmarks that
execute in one pytest session therefore pay for each training run once.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from ..data.scenario import ClientDataFactory, Scenario, create_scenario
from ..data.specs import DatasetSpec
from ..edge.arrivals import PopulationModel, create_population
from ..edge.cluster import EdgeCluster
from ..edge.network import NetworkModel
from ..federated.participation import ParticipationPolicy
from ..federated.registry import create_trainer
from ..federated.transport import Transport
from ..metrics.tracker import RunResult
from .config import ScalePreset

_CACHE: dict[tuple, RunResult] = {}


def clear_cache() -> None:
    """Drop all memoised run results."""
    _CACHE.clear()


def _freeze(value):
    """Recursively canonicalize a kwargs value for use in a cache key.

    Mappings become key-sorted tuples at *every* nesting level (two dicts
    with different insertion orders hash identically); sequences become
    tuples; everything else is keyed by its repr.
    """
    if isinstance(value, Mapping):
        return tuple(
            (repr(k), _freeze(v)) for k, v in sorted(value.items(), key=lambda kv: repr(kv[0]))
        )
    if isinstance(value, (list, tuple)):
        return tuple(_freeze(v) for v in value)
    if isinstance(value, (set, frozenset)):
        return tuple(sorted((_freeze(v) for v in value), key=repr))
    return repr(value)


def _cache_key(
    method: str,
    spec: DatasetSpec,
    preset: ScalePreset,
    seed: int,
    cluster: EdgeCluster | None,
    network: NetworkModel | None,
    model_kwargs: dict | None,
    method_kwargs: dict | None,
    participation: str,
    transport: str,
    scenario: str = "class-inc",
    shards: int = 1,
    population: str | None = None,
    selector: str = "magnitude",
) -> tuple:
    cluster_key = (
        tuple(d.name for d in cluster.devices) if cluster is not None else None
    )
    network_key = (
        (network.bandwidth_bytes_per_second, network.uplink,
         network.downlink, network.round_latency_seconds)
        if network is not None else None
    )
    return (
        method,
        spec.name,
        spec.num_tasks,
        spec.train_per_class,
        spec.test_per_class,
        spec.model_name,
        preset.name,
        preset.num_clients,
        preset.rounds_per_task,
        preset.iterations_per_round,
        seed,
        cluster_key,
        network_key,
        _freeze(model_kwargs or {}),
        _freeze(method_kwargs or {}),
        participation,
        transport,
        scenario,
        shards,
        population,
        selector,
    )


def run_single(
    method: str,
    spec: DatasetSpec,
    preset: ScalePreset,
    cluster: EdgeCluster | None = None,
    network: NetworkModel | None = None,
    seed: int | None = None,
    model_kwargs: dict | None = None,
    method_kwargs: dict | None = None,
    use_cache: bool = True,
    engine: str = "serial",
    participation: str | ParticipationPolicy | None = None,
    transport: str | Transport | None = None,
    scenario: str | Scenario | None = None,
    shards: int = 1,
    population: str | PopulationModel | None = None,
    selector: str | None = None,
) -> RunResult:
    """Train ``method`` on ``spec`` at ``preset`` scale and return its metrics.

    ``engine`` selects the round engine ("serial", "thread[:W]" or
    "process[:W]"); all produce identical training metrics, so it does not
    participate in the result cache key.  ``shards`` > 1 partitions each
    round's aggregation across that many streaming shard accumulators;
    the final states stay bit-identical but per-shard accounting lands on
    the round records, so shards *are* part of the cache key.
    ``participation`` selects who trains/reports each round ("full",
    "sampled:<fraction>", "deadline:<seconds>", "deadline:auto"); it
    changes the metrics, so it *is* part of the cache key.  ``None`` defers
    to the preset.
    ``transport`` selects the wire format and upload policy ("v1:dense",
    "v2:delta:0.1", ...); it changes the comm metrics, so it is part of the
    cache key too.  ``scenario`` selects the data scenario family
    ("class-inc", "domain-inc:drift=0.3", ...; ``None`` is the paper's
    class-incremental default) and is likewise part of the cache key.
    ``population`` ("fixed", "pareto:1.5,churn=300/600", ...) switches to
    the event-driven trainer whose client presence follows that
    arrival/churn process; it changes who trains each round, so its
    canonical spec joins the cache key (``None`` keeps the synchronous
    trainer).
    ``selector`` picks the signature-knowledge scoring rule ("magnitude",
    "fisher", "hybrid:<mix>"; ``None`` defers to the method's default) for
    the extracting methods; it changes which weights are retained, so its
    canonical spec is part of the cache key.
    Passing a :class:`ParticipationPolicy`, :class:`Transport`, or
    :class:`Scenario` *instance* bypasses the cache entirely — instances
    may carry non-canonical state (sampling RNG, pending stragglers,
    negotiated channel bases, custom allocation ranges) that the spec
    string cannot identify.
    """
    seed = preset.seed if seed is None else seed
    scaled = preset.apply_to_spec(spec)
    if participation is None:
        participation = preset.participation
    if isinstance(participation, ParticipationPolicy):
        use_cache = False
    if isinstance(transport, Transport):
        use_cache = False
        transport_key = transport.describe()
    else:
        # normalise spec strings ("v2:delta" == "v2:delta:0.1") so
        # equivalent transports share a cache entry — and reject malformed
        # specs before any training runs
        from ..federated.transport import create_transport

        transport_key = create_transport(transport).describe()
    participation_key = str(participation)
    if isinstance(scenario, Scenario):
        use_cache = False
        scenario_obj = scenario
    else:
        scenario_obj = create_scenario(scenario)
    population_key = (
        create_population(population).describe()
        if population is not None else None
    )
    # canonicalise ("hybrid:0.50" == "hybrid:0.5") and reject unknown specs
    # or selector/method mismatches before any training runs
    from ..federated.registry import resolve_selector

    selector_key = resolve_selector(method, selector)
    key = _cache_key(
        method, scaled, preset, seed, cluster, network,
        model_kwargs, method_kwargs, participation_key, transport_key,
        scenario_obj.describe(), shards, population_key, selector_key,
    )
    if use_cache and key in _CACHE:
        return _CACHE[key]
    benchmark = scenario_obj.build(
        scaled, num_clients=preset.num_clients, rng=np.random.default_rng(seed)
    )
    # the exact recipe that built ``benchmark`` — process engines ship it to
    # workers so clients cross the boundary without their task arrays
    data_factory = ClientDataFactory(
        scenario_obj, scaled, preset.num_clients, seed
    )
    with create_trainer(
        method,
        benchmark,
        # thread the resolved seed into the config so seed sweeps also vary
        # the participation policy's sampling RNG
        preset.train_config(seed=seed),
        model_seed=1000 + seed,
        rng=np.random.default_rng(seed + 1),
        cluster=cluster,
        network=network,
        model_kwargs=model_kwargs,
        method_kwargs=method_kwargs,
        engine=engine,
        participation=participation,
        transport=transport,
        shards=shards,
        data_factory=data_factory,
        population=population,
        selector=selector,
    ) as trainer:
        result = trainer.run()
    if use_cache:
        _CACHE[key] = result
    return result


def run_methods(
    methods: list[str],
    spec: DatasetSpec,
    preset: ScalePreset,
    **kwargs,
) -> dict[str, RunResult]:
    """Run several methods on the same workload (shared data and init)."""
    return {
        method: run_single(method, spec, preset, **kwargs) for method in methods
    }
