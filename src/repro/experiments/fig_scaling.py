"""Population-scaling figure: round throughput vs federation size.

The paper's evaluation tops out at 50 edge clients (Fig. 8); this figure
measures the *systems* side of client scaling — wall-clock rounds/sec and
peak RSS as the population grows — across the execution/aggregation grid
the sharded population subsystem opens up:

* round engines: ``serial`` (reference), ``thread``, ``process`` (GIL-free
  worker processes with worker-rebuilt task data and shared-memory
  global-state broadcast), ``batched`` (clients stacked along a leading
  axis on a captured graph tape — one batched forward/backward per step),
  ``socket`` (the serve subsystem's framed-TCP workers with sticky
  client affinity — clients cross the wire once per task, not per round);
* aggregation shards: 1 (the single streaming accumulator) vs K independent
  shard accumulators merged in fixed order.

Every configuration must land on the **same global model**: the
``state_ok`` column checks the final global state bit-for-bit against the
serial unsharded reference at the same population, so the throughput table
doubles as a regression harness for the bit-identity contract.

Measurement notes: each row times ``FederatedTrainer.run_task`` (task
setup + the aggregation rounds, no end-of-stage evaluation) on a fresh
trainer.  ``peak_rss_mb`` is ``ru_maxrss`` of the process and its workers —
a high-water mark, so within one invocation it only moves when a bigger
configuration raises it; read it vs population, not between same-size rows.
The report title records the host's CPU count: the process engine's win
over serial is a multi-core effect (on a single-core host every process row
is serial execution plus IPC overhead, so serial necessarily stays ahead).
"""

from __future__ import annotations

import os
import resource
import time
from dataclasses import dataclass, field

import numpy as np

from ..data.scenario import ClientDataFactory, create_scenario
from ..data.specs import cifar100_like
from ..federated.config import TrainConfig
from ..federated.registry import create_trainer
from ..federated.simulation import PopulationSimulator
from .config import BENCH, ScalePreset
from .reporting import format_table

#: Populations per preset.  The paper-scale sweep covers the ROADMAP's
#: 50 -> 10k growth target; bench keeps the >=256-client point where the
#: process engine's win over serial must be measurable.
PRESET_POPULATIONS: dict[str, tuple[int, ...]] = {
    "unit": (8, 16),
    "bench": (64, 256),
    "paper": (50, 250, 1000, 10000),
}

PRESET_ROUNDS: dict[str, int] = {"unit": 2, "bench": 3, "paper": 5}

#: Populations for the event-driven serving sweep (clients in virtual
#: time, no model training): the paper preset covers the ROADMAP's
#: million-client asynchronous-serving target.
PRESET_SIM_POPULATIONS: dict[str, tuple[int, ...]] = {
    "unit": (1_000, 10_000),
    "bench": (10_000, 100_000),
    "paper": (100_000, 1_000_000),
}

PRESET_SIM_ROUNDS: dict[str, int] = {"unit": 5, "bench": 10, "paper": 10}


def _peak_rss_mb() -> float:
    """High-water RSS of this process + its (reaped) workers, in MB."""
    self_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    child_kb = resource.getrusage(resource.RUSAGE_CHILDREN).ru_maxrss
    return (self_kb + child_kb) / 1024.0


@dataclass
class ScalingRow:
    """One (population, engine, shards) measurement."""

    population: int
    engine: str
    shards: int
    rounds: int
    wall_seconds: float
    rounds_per_sec: float
    peak_rss_mb: float
    state_ok: bool


@dataclass
class FigScalingReport:
    """Round throughput across populations, engines and shard counts."""

    rows: list[ScalingRow] = field(default_factory=list)
    method: str = "fedavg"
    cpus: int = field(default_factory=lambda: os.cpu_count() or 1)

    def speedup(self, population: int, engine: str) -> float:
        """Rounds/sec of ``engine`` relative to serial at ``population``
        (shards = 1 on both sides); NaN when either row is missing."""
        by_key = {
            (r.population, r.engine, r.shards): r.rounds_per_sec
            for r in self.rows
        }
        reference = by_key.get((population, "serial", 1))
        measured = by_key.get((population, engine, 1))
        if not reference or not measured:
            return float("nan")
        return measured / reference

    def __str__(self) -> str:
        return format_table(
            ["clients", "engine", "shards", "rounds/s", "wall_s",
             "peak_rss_mb", "state_ok"],
            [
                [
                    row.population,
                    row.engine,
                    row.shards,
                    round(row.rounds_per_sec, 3),
                    round(row.wall_seconds, 2),
                    round(row.peak_rss_mb, 1),
                    "yes" if row.state_ok else "NO",
                ]
                for row in self.rows
            ],
            title=(
                f"fig-scaling: {self.method} round throughput vs population "
                f"({self.cpus} CPU{'s' if self.cpus != 1 else ''})"
            ),
        )


@dataclass
class SimScalingRow:
    """One (population-size, population-spec) event-simulation measurement."""

    population: int
    spec: str
    max_staleness: int
    rounds: int
    virtual_seconds: float
    wall_seconds: float
    rounds_per_sec: float
    clients_per_sec: float
    peak_rss_mb: float
    peak_present: int
    evicted: int
    lost: int
    staleness: str


@dataclass
class FigEventSimReport:
    """Event-driven serving throughput vs population size."""

    rows: list[SimScalingRow] = field(default_factory=list)
    cpus: int = field(default_factory=lambda: os.cpu_count() or 1)

    def __str__(self) -> str:
        return format_table(
            ["clients", "population", "maxstale", "rounds", "virtual_s",
             "wall_s", "rounds/s", "clients/s", "peak_rss_mb", "present",
             "staleness"],
            [
                [
                    row.population,
                    row.spec,
                    row.max_staleness,
                    row.rounds,
                    round(row.virtual_seconds, 1),
                    round(row.wall_seconds, 2),
                    round(row.rounds_per_sec, 2),
                    int(row.clients_per_sec),
                    round(row.peak_rss_mb, 1),
                    row.peak_present,
                    row.staleness,
                ]
                for row in self.rows
            ],
            title=(
                f"fig-eventsim: asynchronous serving throughput vs "
                f"population ({self.cpus} CPU"
                f"{'s' if self.cpus != 1 else ''})"
            ),
        )


def run_fig_eventsim(
    preset: ScalePreset = BENCH,
    populations: tuple[int, ...] | None = None,
    population_specs: tuple[str, ...] = (
        "fixed",
        "pareto:1.5,scale=0.001,churn=60/120",
    ),
    max_staleness: int = 2,
    shards: int = 16,
    rounds: int | None = None,
    seed: int = 0,
) -> FigEventSimReport:
    """Measure the event-driven simulator's scheduling throughput.

    Unlike :func:`run_fig_scaling` no model trains here: the sweep
    exercises the *serving* side — priority-queue event scheduling, churn,
    shard-local staleness cut-offs — at populations far beyond what
    per-client trainer state admits (10^5–10^6 clients).  Each row reports
    wall-clock rounds/sec, scheduling throughput in client round-slots/sec,
    peak RSS, and the staleness histogram of aggregated uploads
    (``s:count``, plus ``evict:n`` for updates dropped past the bound).
    """
    populations = (
        populations
        if populations is not None
        else PRESET_SIM_POPULATIONS.get(
            preset.name, PRESET_SIM_POPULATIONS["bench"]
        )
    )
    if rounds is None:
        rounds = PRESET_SIM_ROUNDS.get(preset.name, 10)
    report = FigEventSimReport()
    for population in populations:
        for spec in population_specs:
            sim = PopulationSimulator(
                population,
                population=spec,
                num_rounds=rounds,
                shards=shards,
                max_staleness=max_staleness,
                seed=seed,
            )
            measured = sim.run()
            report.rows.append(
                SimScalingRow(
                    population=population,
                    spec=measured.population,
                    max_staleness=max_staleness,
                    rounds=len(measured.rounds),
                    virtual_seconds=measured.virtual_seconds,
                    wall_seconds=measured.wall_seconds,
                    rounds_per_sec=measured.rounds_per_second,
                    clients_per_sec=measured.clients_per_second,
                    peak_rss_mb=_peak_rss_mb(),
                    peak_present=measured.peak_present,
                    evicted=measured.evicted,
                    lost=measured.lost,
                    staleness=measured.histogram_label(),
                )
            )
    return report


def run_fig_scaling(
    preset: ScalePreset = BENCH,
    populations: tuple[int, ...] | None = None,
    engines: tuple[str, ...] = (
        "serial", "thread", "process", "batched", "socket"
    ),
    shard_counts: tuple[int, ...] = (1, 4, 16),
    method: str = "fedavg",
    rounds: int | None = None,
    seed: int = 0,
) -> FigScalingReport:
    """Measure rounds/sec and peak RSS across the scaling grid.

    Per population the grid is ``engines`` at 1 shard plus the extra
    ``shard_counts`` on the serial engine (sharding is aggregation-side and
    orthogonal to the round engine).  Each cell trains ``method`` for one
    task stage of ``rounds`` aggregation rounds on a deliberately small
    synthetic workload — the point is the round machinery, not the model.
    """
    populations = (
        populations
        if populations is not None
        else PRESET_POPULATIONS.get(preset.name, PRESET_POPULATIONS["bench"])
    )
    if rounds is None:
        rounds = PRESET_ROUNDS.get(preset.name, 3)
    spec = cifar100_like(train_per_class=4, test_per_class=2).with_tasks(1)
    scenario = create_scenario("class-inc")
    config = TrainConfig(
        batch_size=8,
        lr=0.01,
        rounds_per_task=rounds,
        iterations_per_round=4,
        seed=seed,
    )
    report = FigScalingReport(method=method)
    for population in populations:
        # the serial unsharded row leads the grid: it is the bit-identity
        # reference every other row's state_ok is checked against
        grid = [("serial", 1)]
        grid += [(engine, 1) for engine in engines if engine != "serial"]
        grid += [("serial", k) for k in shard_counts if k != 1]
        reference_state: dict[str, np.ndarray] | None = None
        for engine, shards in grid:
            benchmark = scenario.build(
                spec, num_clients=population, rng=np.random.default_rng(seed)
            )
            data_factory = ClientDataFactory(scenario, spec, population, seed)
            with create_trainer(
                method,
                benchmark,
                config,
                with_cost_model=False,
                engine=engine,
                shards=shards,
                data_factory=data_factory,
            ) as trainer:
                started = time.perf_counter()
                records = trainer.run_task(0)
                wall = time.perf_counter() - started
                state = {
                    key: value.copy()
                    for key, value in trainer.server.global_state.items()
                }
            if reference_state is None:
                reference_state = state  # serial, 1 shard: the reference
            state_ok = set(reference_state) == set(state) and all(
                np.array_equal(reference_state[key], state[key])
                for key in reference_state
            )
            report.rows.append(
                ScalingRow(
                    population=population,
                    engine=engine,
                    shards=shards,
                    rounds=len(records),
                    wall_seconds=wall,
                    rounds_per_sec=len(records) / wall if wall > 0 else 0.0,
                    peak_rss_mb=_peak_rss_mb(),
                    state_ok=state_ok,
                )
            )
    return report
