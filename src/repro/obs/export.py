"""Telemetry exporters and the enable/flush session wrapper.

Three export formats, all dependency-free:

- ``write_spans_jsonl`` — one span dict per line, the raw record.
- ``chrome_trace`` / ``write_chrome_trace`` — Chrome ``trace_event``
  JSON, loadable in Perfetto / ``chrome://tracing``: complete events
  (``"ph": "X"``) with microsecond timestamps, one pid lane per origin
  process, plus flow arrows are unnecessary because child spans carry
  explicit ``parent_id`` args.
- ``MetricsRegistry.prometheus_text`` (re-exported via ``flush``) — a
  Prometheus text snapshot, plus a JSON twin for programmatic reads.

:class:`Telemetry` is the session object the CLI's ``--telemetry PATH``
flag creates: it installs a real :class:`~repro.obs.trace.Tracer`,
snapshots the metrics registry on entry (so the flushed snapshot covers
just the session), and ``flush()`` writes ``spans.jsonl``,
``trace.json``, ``metrics.prom``, and ``metrics.json`` under the path.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from .metrics import METRICS, MetricsRegistry
from .trace import Tracer, set_tracer


def write_spans_jsonl(spans: list[dict[str, Any]], path: Path) -> None:
    with path.open("w", encoding="utf-8") as fh:
        for span in spans:
            fh.write(json.dumps(span) + "\n")


def chrome_trace(spans: list[dict[str, Any]]) -> dict[str, Any]:
    """Convert span dicts to Chrome ``trace_event`` JSON (dict form)."""
    events: list[dict[str, Any]] = []
    pids: dict[str, int] = {}
    for span in spans:
        process = span.get("process") or "main"
        pid = pids.get(process)
        if pid is None:
            pid = pids[process] = len(pids) + 1
            events.append({
                "name": "process_name", "ph": "M", "pid": pid, "tid": 0,
                "args": {"name": process},
            })
        args = dict(span.get("attrs") or {})
        args["span_id"] = span["span_id"]
        if span.get("parent_id"):
            args["parent_id"] = span["parent_id"]
        events.append({
            "name": span["name"],
            "cat": "repro",
            "ph": "X",
            "ts": span["start"] * 1e6,
            "dur": max(span["end"] - span["start"], 0.0) * 1e6,
            "pid": pid,
            "tid": 0,
            "args": args,
        })
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(spans: list[dict[str, Any]], path: Path) -> None:
    path.write_text(json.dumps(chrome_trace(spans)))


def _subtract(snap: dict[str, Any], base: dict[str, Any]) -> dict[str, Any]:
    """Session-relative metric snapshot: counters/histograms minus the
    values they held when the session opened (gauges/warnings pass)."""
    base_counters = base.get("counters", {})
    counters = {
        k: v - base_counters.get(k, 0)
        for k, v in snap.get("counters", {}).items()
    }
    base_hists = base.get("histograms", {})
    histograms = {}
    for name, data in snap.get("histograms", {}).items():
        prior = base_hists.get(name)
        if prior is None:
            histograms[name] = data
        else:
            histograms[name] = {
                "counts": [a - b for a, b in
                           zip(data["counts"], prior["counts"])],
                "sum": data["sum"] - prior["sum"],
                "count": data["count"] - prior["count"],
            }
    return {
        "counters": counters,
        "gauges": dict(snap.get("gauges", {})),
        "histograms": histograms,
        "warnings": list(snap.get("warnings", [])),
    }


class Telemetry:
    """An enabled-telemetry session: install tracer, run, ``flush()``.

    Usable as a context manager; ``close()`` restores the previous
    (usually null) tracer so the process returns to the no-op path.
    """

    def __init__(self, out_dir: str | Path | None = None,
                 process: str = "main",
                 registry: MetricsRegistry | None = None):
        self.out_dir = Path(out_dir) if out_dir is not None else None
        self.registry = registry if registry is not None else METRICS
        self.tracer = Tracer(origin="main", process=process)
        self._previous = set_tracer(self.tracer)
        self._baseline = self.registry.snapshot()
        self._closed = False

    def __enter__(self) -> "Telemetry":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def close(self) -> None:
        if not self._closed:
            set_tracer(self._previous)
            self._closed = True

    def spans(self) -> list[dict[str, Any]]:
        return self.tracer.export()

    def metrics_snapshot(self) -> dict[str, Any]:
        return _subtract(self.registry.snapshot(), self._baseline)

    def flush(self, out_dir: str | Path | None = None) -> dict[str, Path]:
        """Write all exports; returns format -> written path."""
        target = Path(out_dir) if out_dir is not None else self.out_dir
        if target is None:
            raise ValueError("telemetry flush needs an output directory")
        target.mkdir(parents=True, exist_ok=True)
        spans = self.spans()
        snapshot = self.metrics_snapshot()
        paths = {
            "spans": target / "spans.jsonl",
            "trace": target / "trace.json",
            "metrics_prom": target / "metrics.prom",
            "metrics_json": target / "metrics.json",
        }
        write_spans_jsonl(spans, paths["spans"])
        write_chrome_trace(spans, paths["trace"])
        registry = MetricsRegistry()
        registry.merge(snapshot)
        paths["metrics_prom"].write_text(registry.prometheus_text())
        paths["metrics_json"].write_text(json.dumps(snapshot, indent=1))
        return paths
