"""Wall-clock tracing spans with cross-process stitching.

A :class:`Tracer` produces nested spans (``round``, ``train_client``,
``aggregate``, ``broadcast``, ``encode``/``decode``, ``rpc_frame``,
``tape_replay``) with explicit parent ids.  Span ids are strings of the
form ``"<origin>-<counter>"`` so ids minted in different processes never
collide; a worker process adopts the coordinator's :class:`SpanContext`
(injected into task payloads / RPC frames) as the base parent for every
span it opens, which stitches remote children into one trace.

The module-level :data:`TRACER` defaults to a :class:`NullTracer` whose
``enabled`` attribute is ``False`` — instrumentation sites guard with
``if TRACER.enabled:`` (one attribute load + branch) so the disabled
path stays no-op-cheap.  ``time.perf_counter`` supplies monotonic span
durations; each tracer records a wall-clock offset at construction so
exported timestamps from different processes share one epoch-aligned
axis (good enough to *order* spans across machines; durations are exact).
"""

from __future__ import annotations

import os
import threading
import time
from typing import Any, NamedTuple


class SpanContext(NamedTuple):
    """The wire-portable identity of an in-flight span."""

    trace_id: str
    span_id: str


class Span:
    """One timed operation.  Usable as a context manager; mutate
    ``attrs`` inside (or after) the ``with`` block to annotate it."""

    __slots__ = ("tracer", "name", "span_id", "parent_id", "start",
                 "end", "attrs")

    def __init__(self, tracer: "Tracer", name: str, span_id: str,
                 parent_id: str | None, attrs: dict[str, Any]):
        self.tracer = tracer
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.attrs = attrs
        self.start = 0.0
        self.end = 0.0

    @property
    def context(self) -> SpanContext:
        return SpanContext(self.tracer.trace_id, self.span_id)

    @property
    def duration(self) -> float:
        return self.end - self.start

    def __enter__(self) -> "Span":
        self.tracer._push(self)
        self.start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.end = time.perf_counter()
        if exc_type is not None:
            self.attrs["error"] = exc_type.__name__
        self.tracer._pop(self)

    def to_dict(self) -> dict[str, Any]:
        """Export as a plain dict (pickle/json safe, cross-process)."""
        offset = self.tracer.clock_offset
        record = {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "trace_id": self.tracer.trace_id,
            "process": self.tracer.process,
            "start": self.start + offset,
            "end": self.end + offset,
        }
        if self.attrs:
            record["attrs"] = dict(self.attrs)
        return record


class _NullSpan:
    """Shared, reusable do-nothing span for the disabled path."""

    __slots__ = ()

    @property
    def attrs(self) -> dict[str, Any]:
        # fresh throwaway dict: writes on the disabled path vanish
        # instead of accumulating on a shared object
        return {}

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None


_NULL_SPAN = _NullSpan()


class NullTracer:
    """Disabled tracer: ``enabled`` is False and ``span`` returns a
    shared no-op context manager.  Instrumentation sites should branch
    on ``enabled`` and never reach ``span``, but reaching it is safe."""

    enabled = False
    trace_id = ""

    def span(self, name: str, **attrs: Any) -> _NullSpan:
        return _NULL_SPAN

    def current_context(self) -> None:
        return None

    def adopt(self, context: SpanContext | None) -> None:
        return None

    def absorb(self, spans: list[dict[str, Any]] | None) -> None:
        return None

    def export(self) -> list[dict[str, Any]]:
        return []


class Tracer:
    """Collects finished spans; thread-safe via a thread-local span
    stack (each thread nests independently under its adopted base)."""

    enabled = True

    def __init__(self, trace_id: str | None = None,
                 origin: str | None = None,
                 process: str | None = None):
        self.trace_id = trace_id or f"t{os.getpid()}-{int(time.time())}"
        self.origin = origin or f"p{os.getpid()}"
        self.process = process or self.origin
        # Aligns perf_counter timestamps to the wall clock so spans from
        # different processes share one time axis when exported.
        self.clock_offset = time.time() - time.perf_counter()
        self._counter = 0
        self._lock = threading.Lock()
        self._tls = threading.local()
        self._base_parent: str | None = None
        self.spans: list[dict[str, Any]] = []
        #: span dicts absorbed from worker processes (already exported)
        self.foreign: list[dict[str, Any]] = []

    # -- span lifecycle -------------------------------------------------

    def _next_id(self) -> str:
        with self._lock:
            self._counter += 1
            return f"{self.origin}-{self._counter}"

    def _stack(self) -> list[Span]:
        stack = getattr(self._tls, "stack", None)
        if stack is None:
            stack = self._tls.stack = []
        return stack

    def span(self, name: str, **attrs: Any) -> Span:
        stack = self._stack()
        if stack:
            parent = stack[-1].span_id
        else:
            parent = getattr(self._tls, "base", None) or self._base_parent
        return Span(self, name, self._next_id(), parent, attrs)

    def _push(self, span: Span) -> None:
        self._stack().append(span)

    def _pop(self, span: Span) -> None:
        stack = self._stack()
        if stack and stack[-1] is span:
            stack.pop()
        else:  # unbalanced exit; drop it wherever it is
            try:
                stack.remove(span)
            except ValueError:
                pass
        with self._lock:
            self.spans.append(span.to_dict())

    # -- cross-process / cross-thread stitching -------------------------

    def current_context(self) -> SpanContext | None:
        """Context of the innermost open span on this thread (to inject
        into task payloads / RPC frames), or the adopted base."""
        stack = self._stack()
        if stack:
            return stack[-1].context
        base = getattr(self._tls, "base", None) or self._base_parent
        if base is not None:
            return SpanContext(self.trace_id, base)
        return None

    def adopt(self, context: SpanContext | None) -> None:
        """Make ``context`` the parent of this tracer's top-level spans
        (worker-side: stitches local spans under the remote round)."""
        if context is None:
            return
        self.trace_id = context[0]
        self._base_parent = context[1]

    class _Bind:
        __slots__ = ("tracer", "base", "prev")

        def __init__(self, tracer: "Tracer", base: str | None):
            self.tracer = tracer
            self.base = base

        def __enter__(self):
            self.prev = getattr(self.tracer._tls, "base", None)
            self.tracer._tls.base = self.base
            return self

        def __exit__(self, *exc):
            self.tracer._tls.base = self.prev

    def bind(self, context: SpanContext | None) -> "Tracer._Bind":
        """Temporarily parent this *thread's* top-level spans under
        ``context`` (for pool threads running on behalf of a caller)."""
        return Tracer._Bind(self, context[1] if context else None)

    # -- export ---------------------------------------------------------

    def absorb(self, spans: list[dict[str, Any]] | None) -> None:
        """Merge span dicts exported by a worker process."""
        if spans:
            with self._lock:
                self.foreign.extend(spans)

    def export(self) -> list[dict[str, Any]]:
        """All finished spans (local + absorbed) as plain dicts."""
        with self._lock:
            return list(self.spans) + list(self.foreign)

    def drain(self) -> list[dict[str, Any]]:
        """Export and clear (worker-side: ship spans back per phase)."""
        with self._lock:
            spans = list(self.spans) + list(self.foreign)
            self.spans.clear()
            self.foreign.clear()
            return spans


#: The process-wide tracer.  ``NullTracer`` unless a telemetry session
#: (``repro.obs.export.Telemetry``) or a worker-side adoption installs a
#: real one.  Import the *module* and read ``trace.TRACER`` at call time
#: — ``from ... import TRACER`` would freeze the null tracer.
TRACER: Tracer | NullTracer = NullTracer()


def set_tracer(tracer: Tracer | NullTracer) -> Tracer | NullTracer:
    """Install ``tracer`` as the process-wide tracer; returns the old."""
    global TRACER
    previous = TRACER
    TRACER = tracer
    return previous


def current_context() -> SpanContext | None:
    """Wire-portable context of the innermost open span, if tracing."""
    tracer = TRACER
    return tracer.current_context() if tracer.enabled else None
