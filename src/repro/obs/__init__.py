"""Zero-dependency telemetry: tracing spans, metrics, exporters.

Spans are opt-in (``trace.TRACER`` is a null tracer until a
:class:`Telemetry` session installs a real one); the metrics registry
(``metrics.METRICS``) is always on.  Guard span sites with
``if TRACER.enabled:`` read off the *module* attribute so sessions can
swap the tracer underneath cached imports.
"""

from .export import Telemetry, chrome_trace, write_chrome_trace, write_spans_jsonl
from .metrics import METRICS, Counter, Gauge, Histogram, MetricsRegistry
from .trace import NullTracer, Span, SpanContext, Tracer, current_context, set_tracer

__all__ = [
    "METRICS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullTracer",
    "Span",
    "SpanContext",
    "Telemetry",
    "Tracer",
    "chrome_trace",
    "current_context",
    "set_tracer",
    "write_chrome_trace",
    "write_spans_jsonl",
]
