"""Always-on counters / gauges / histograms with a process registry.

Unlike tracing (opt-in, span objects, timestamps), metrics are plain
numbers bumped at coarse sites — once per frame, round, or replay — so
the registry stays on unconditionally and a telemetry session merely
snapshots it.  Worker processes ``drain()`` their registry after each
phase and ship the delta back; the coordinator ``merge()``s it, so wire
bytes and cache hits counted remotely land in one snapshot.

Instruments are created on first use (``METRICS.counter(name)``) and the
returned handle stays valid across ``drain()`` (values reset in place).
Metric names are dotted (``rpc.bytes_sent``); see the README catalogue.
"""

from __future__ import annotations

import threading
from typing import Any

# Histogram bucket upper bounds (seconds / bytes both fit: powers of 4).
_BUCKETS = tuple(4.0 ** e for e in range(-6, 10))


class Counter:
    """Monotonic float/int accumulator."""

    __slots__ = ("value",)

    def __init__(self):
        self.value = 0

    def inc(self, amount: int | float = 1) -> None:
        self.value += amount


class Gauge:
    """Last-written value."""

    __slots__ = ("value",)

    def __init__(self):
        self.value = 0

    def set(self, value: int | float) -> None:
        self.value = value


class Histogram:
    """Fixed power-of-4 buckets plus sum/count (Prometheus-shaped)."""

    __slots__ = ("counts", "total", "count")

    def __init__(self):
        self.counts = [0] * (len(_BUCKETS) + 1)
        self.total = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        for i, bound in enumerate(_BUCKETS):
            if value <= bound:
                self.counts[i] += 1
                break
        else:
            self.counts[-1] += 1
        self.total += value
        self.count += 1


class StructuredWarning(dict):
    """A warning event published through the registry (name + fields)."""


class MetricsRegistry:
    """Name -> instrument map with snapshot / drain / merge."""

    #: cap on retained structured warnings (oldest dropped beyond this)
    MAX_WARNINGS = 256

    def __init__(self):
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}
        self.warnings: list[StructuredWarning] = []

    # -- instrument access (get-or-create; handles are cacheable) -------

    def counter(self, name: str) -> Counter:
        with self._lock:
            instrument = self._counters.get(name)
            if instrument is None:
                instrument = self._counters[name] = Counter()
            return instrument

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            instrument = self._gauges.get(name)
            if instrument is None:
                instrument = self._gauges[name] = Gauge()
            return instrument

    def histogram(self, name: str) -> Histogram:
        with self._lock:
            instrument = self._histograms.get(name)
            if instrument is None:
                instrument = self._histograms[name] = Histogram()
            return instrument

    def value(self, name: str) -> int | float:
        """Current counter value (0 if the counter was never touched)."""
        with self._lock:
            instrument = self._counters.get(name)
            return instrument.value if instrument is not None else 0

    def warn(self, counter_name: str, message: str,
             amount: int | float = 1, **fields: Any) -> None:
        """Structured warning: bump ``counter_name`` by ``amount`` and
        retain the event so callers/exporters see *why*, not just how
        often."""
        self.counter(counter_name).inc(amount)
        with self._lock:
            self.warnings.append(StructuredWarning(
                counter=counter_name, message=message, **fields))
            if len(self.warnings) > self.MAX_WARNINGS:
                del self.warnings[:-self.MAX_WARNINGS]

    # -- snapshot / transport -------------------------------------------

    def snapshot(self) -> dict[str, Any]:
        """Plain-dict view (pickle/json safe)."""
        with self._lock:
            return {
                "counters": {k: c.value for k, c in self._counters.items()},
                "gauges": {k: g.value for k, g in self._gauges.items()},
                "histograms": {
                    k: {"counts": list(h.counts), "sum": h.total,
                        "count": h.count}
                    for k, h in self._histograms.items()
                },
                "warnings": [dict(w) for w in self.warnings],
            }

    def drain(self) -> dict[str, Any]:
        """Snapshot, then zero every instrument *in place* so cached
        handles stay valid (worker-side per-phase delta shipping)."""
        snap = self.snapshot()
        with self._lock:
            for c in self._counters.values():
                c.value = 0
            for g in self._gauges.values():
                g.value = 0
            for h in self._histograms.values():
                h.counts = [0] * len(h.counts)
                h.total = 0.0
                h.count = 0
            self.warnings.clear()
        return snap

    def merge(self, snap: dict[str, Any] | None) -> None:
        """Fold a drained snapshot from another process into this one
        (counters/histograms add; gauges take the incoming value)."""
        if not snap:
            return
        for name, value in snap.get("counters", {}).items():
            self.counter(name).inc(value)
        for name, value in snap.get("gauges", {}).items():
            self.gauge(name).set(value)
        for name, data in snap.get("histograms", {}).items():
            hist = self.histogram(name)
            with self._lock:
                for i, n in enumerate(data["counts"]):
                    hist.counts[i] += n
                hist.total += data["sum"]
                hist.count += data["count"]
        warnings = snap.get("warnings")
        if warnings:
            with self._lock:
                self.warnings.extend(StructuredWarning(w) for w in warnings)
                if len(self.warnings) > self.MAX_WARNINGS:
                    del self.warnings[:-self.MAX_WARNINGS]

    def prometheus_text(self) -> str:
        """Prometheus text-exposition snapshot (``repro`` namespace;
        dots become underscores)."""
        snap = self.snapshot()
        lines: list[str] = []

        def sanitize(name: str) -> str:
            return "repro_" + name.replace(".", "_").replace("-", "_")

        for name in sorted(snap["counters"]):
            metric = sanitize(name)
            lines.append(f"# TYPE {metric} counter")
            lines.append(f"{metric} {snap['counters'][name]}")
        for name in sorted(snap["gauges"]):
            metric = sanitize(name)
            lines.append(f"# TYPE {metric} gauge")
            lines.append(f"{metric} {snap['gauges'][name]}")
        for name in sorted(snap["histograms"]):
            metric = sanitize(name)
            data = snap["histograms"][name]
            lines.append(f"# TYPE {metric} histogram")
            cumulative = 0
            for bound, n in zip(_BUCKETS, data["counts"]):
                cumulative += n
                lines.append(f'{metric}_bucket{{le="{bound:g}"}} {cumulative}')
            cumulative += data["counts"][-1]
            lines.append(f'{metric}_bucket{{le="+Inf"}} {cumulative}')
            lines.append(f"{metric}_sum {data['sum']}")
            lines.append(f"{metric}_count {data['count']}")
        return "\n".join(lines) + "\n"


#: The process-wide registry.  Always on; counter bumps at coarse sites
#: cost one dict hit (or nothing, with a cached handle) + an add.
METRICS = MetricsRegistry()
