"""Continual-learning strategy protocol.

A strategy customises the local training loop of
:class:`~repro.federated.base.SGDClient` at four points: task start, loss
computation (regularisation-based methods), post-backward gradient surgery
(projection-based methods), and task end (consolidation / memory update).
Strategies also report their retained-state footprint so the edge memory
simulation can account for them.
"""

from __future__ import annotations

import numpy as np

from ..data.federated import ClientTask
from ..models.base import ImageClassifier
from ..nn import functional as F
from ..nn.tensor import Tensor


class ContinualStrategy:
    """Base strategy: plain fine-tuning (no forgetting prevention)."""

    name = "finetune"

    #: Whether the strategy's training step is pure loss→backward→SGD over
    #: the model parameters, with no gradient surgery or per-step retained
    #: state — the precondition for folding clients into one batched replay
    #: on :class:`~repro.federated.engine.BatchedRoundEngine`.  Strategies
    #: that override ``post_backward`` / keep per-step state must leave this
    #: False.
    batch_safe = False

    def __init__(self):
        self.client = None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def bind(self, client) -> None:
        """Attach to the owning client (gives access to model, rng, config)."""
        self.client = client

    def begin_task(self, task: ClientTask) -> None:
        """Called when the client switches to a new task."""

    def loss(
        self,
        model: ImageClassifier,
        xb: np.ndarray,
        yb: np.ndarray,
        class_mask: np.ndarray,
    ) -> Tensor:
        """Training loss for one batch; default is masked cross-entropy.

        ``xb`` / ``yb`` / ``class_mask`` may be tensors already registered as
        tape inputs — a graph capture passes them through unchanged.
        """
        xb = xb if isinstance(xb, Tensor) else Tensor(xb)
        return F.cross_entropy(model(xb), yb, class_mask=class_mask)

    def post_backward(
        self,
        model: ImageClassifier,
        xb: np.ndarray,
        yb: np.ndarray,
        class_mask: np.ndarray,
    ) -> None:
        """Hook after ``loss.backward()``; may rewrite parameter gradients."""

    def end_task(self, task: ClientTask, model: ImageClassifier) -> None:
        """Called after the task's final aggregation round."""

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------
    def state_bytes(self) -> dict[str, int]:
        """Retained state split into model-shaped and sample-shaped bytes."""
        return {"model": 0, "samples": 0}

    def extra_compute_units(self) -> float:
        """Extra fwd+bwd-equivalents this strategy adds per iteration."""
        return 0.0


class FinetuneStrategy(ContinualStrategy):
    """Explicit alias of the do-nothing baseline (pure FedAvg client)."""

    batch_safe = True
