"""BCN — Balanced Continual Learning (Raghavan & Balaprakash, 2021).

BCN formalises continual learning as a two-player game between
generalisation (fitting the new task) and forgetting (losing the old ones)
and trains at the balance point of the two objectives.

Simplification vs. the original: the balance point is tracked by an adaptive
mixing coefficient ``alpha`` over the new-task loss and the replay loss —
``alpha`` moves towards whichever objective is currently losing (higher
loss), which is the first-order behaviour of the original's saddle-point
dynamics.  Replay uses the standard per-task episodic buffer.
"""

from __future__ import annotations

import numpy as np

from ..models.base import ImageClassifier
from ..nn import functional as F
from ..nn.tensor import Tensor
from .base import ContinualStrategy
from .buffer import EpisodicMemory


class BCNStrategy(ContinualStrategy):
    """Replay with an adaptive generalisation/forgetting balance."""

    name = "bcn"

    def __init__(
        self,
        memory_fraction: float = 0.10,
        replay_batch: int = 16,
        adaptation_rate: float = 0.05,
        alpha_bounds: tuple[float, float] = (0.2, 0.8),
    ):
        super().__init__()
        self.memory = EpisodicMemory(fraction=memory_fraction)
        self.replay_batch = replay_batch
        self.adaptation_rate = adaptation_rate
        self.alpha_bounds = alpha_bounds
        self.alpha = 0.5  # weight of the new-task objective

    def loss(
        self,
        model: ImageClassifier,
        xb: np.ndarray,
        yb: np.ndarray,
        class_mask: np.ndarray,
    ) -> Tensor:
        new_loss = F.cross_entropy(model(Tensor(xb)), yb, class_mask=class_mask)
        if len(self.memory) == 0:
            return new_loss
        mx, my, m_mask = self.memory.sample_joint(
            self.replay_batch, self.client.rng if self.client else None
        )
        old_loss = F.cross_entropy(model(Tensor(mx)), my, class_mask=m_mask)
        # move alpha towards the objective that is currently worse off
        gap = old_loss.item() - new_loss.item()
        lo, hi = self.alpha_bounds
        self.alpha = float(
            np.clip(self.alpha - self.adaptation_rate * np.tanh(gap), lo, hi)
        )
        return new_loss * self.alpha + old_loss * (1.0 - self.alpha)

    def end_task(self, task, model: ImageClassifier) -> None:
        self.memory.store(task, self.client.rng if self.client else None)

    def state_bytes(self) -> dict[str, int]:
        return {"model": 0, "samples": self.memory.nbytes}

    def extra_compute_units(self) -> float:
        return 1.0 if len(self.memory) else 0.0
