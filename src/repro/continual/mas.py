"""MAS — Memory Aware Synapses (Aljundi et al., 2018).

Parameter importance is the sensitivity of the squared output norm to each
weight, Omega_i = E |d ||f(x)||^2 / d theta_i|, accumulated after each task;
subsequent tasks pay a quadratic penalty for moving important weights.
Unlike EWC, importance is label-free and accumulated into a single running
estimate, so retained state does not grow with the task count.
"""

from __future__ import annotations

import numpy as np

from ..models.base import ImageClassifier
from ..nn import functional as F
from ..nn.tensor import Tensor
from ..nn.vector import gradients_to_vector, parameters_to_vector
from ..utils.rng import get_rng
from .base import ContinualStrategy


class MASStrategy(ContinualStrategy):
    """Sensitivity-based importance with a running consolidation penalty."""

    name = "mas"

    def __init__(
        self,
        penalty: float = 100.0,
        importance_batches: int = 4,
        importance_batch_size: int = 16,
    ):
        super().__init__()
        if penalty < 0:
            raise ValueError(f"penalty must be non-negative, got {penalty}")
        self.penalty = penalty
        self.importance_batches = importance_batches
        self.importance_batch_size = importance_batch_size
        self.omega: np.ndarray | None = None
        self.anchor: np.ndarray | None = None

    def loss(
        self,
        model: ImageClassifier,
        xb: np.ndarray,
        yb: np.ndarray,
        class_mask: np.ndarray,
    ) -> Tensor:
        task_loss = F.cross_entropy(model(Tensor(xb)), yb, class_mask=class_mask)
        if self.omega is None:
            return task_loss
        flat = parameters_to_vector(model.parameters())
        diff = flat - self.anchor
        self._pending_grad = self.penalty * self.omega * diff
        return task_loss

    def post_backward(self, model, xb, yb, class_mask) -> None:
        if self.omega is None:
            return
        grad_extra = getattr(self, "_pending_grad", None)
        if grad_extra is None:
            return
        offset = 0
        for param in model.parameters():
            chunk = grad_extra[offset : offset + param.size]
            add = chunk.reshape(param.shape).astype(np.float32)
            if param.grad is None:
                param.grad = add
            else:
                param.grad += add
            offset += param.size
        self._pending_grad = None

    def end_task(self, task, model: ImageClassifier) -> None:
        """Accumulate output-sensitivity importance on the finished task."""
        rng = get_rng(self.client.rng if self.client else None)
        total = np.zeros(sum(p.size for p in model.parameters()), dtype=np.float64)
        batches = 0
        for _ in range(self.importance_batches):
            n = task.num_train
            idx = rng.choice(
                n, size=min(self.importance_batch_size, n), replace=False
            )
            model.zero_grad()
            outputs = model(Tensor(task.train_x[idx]))
            norm = (outputs * outputs).mean()
            norm.backward()
            total += np.abs(gradients_to_vector(model.parameters()))
            batches += 1
        model.zero_grad()
        new_omega = total / max(batches, 1)
        self.omega = new_omega if self.omega is None else self.omega + new_omega
        self.anchor = parameters_to_vector(model.parameters())

    def state_bytes(self) -> dict[str, int]:
        size = 0
        if self.omega is not None:
            size += self.omega.size + self.anchor.size
        return {"model": int(size * 4), "samples": 0}
