"""EWC — Elastic Weight Consolidation (Kirkpatrick et al., 2017).

After each task, estimates the diagonal Fisher information of the trained
weights and penalises subsequent drift on parameters important to past tasks:

    L = L_task + (lambda / 2) * sum_i F_i (theta_i - theta*_i)^2.

One (Fisher, anchor) pair is retained per learned task, as in the original
formulation — this is the state whose size grows with the task count.
"""

from __future__ import annotations

import numpy as np

from ..models.base import ImageClassifier
from ..nn import functional as F
from ..nn.tensor import Tensor
from ..nn.vector import gradients_to_vector, parameters_to_vector
from ..utils.rng import get_rng
from .base import ContinualStrategy


class EWCStrategy(ContinualStrategy):
    """Quadratic weight-consolidation penalty with per-task Fisher estimates."""

    name = "ewc"

    def __init__(
        self,
        penalty: float = 100.0,
        fisher_batches: int = 4,
        fisher_batch_size: int = 16,
    ):
        super().__init__()
        if penalty < 0:
            raise ValueError(f"penalty must be non-negative, got {penalty}")
        self.penalty = penalty
        self.fisher_batches = fisher_batches
        self.fisher_batch_size = fisher_batch_size
        self.fishers: list[np.ndarray] = []
        self.anchors: list[np.ndarray] = []

    def loss(
        self,
        model: ImageClassifier,
        xb: np.ndarray,
        yb: np.ndarray,
        class_mask: np.ndarray,
    ) -> Tensor:
        task_loss = F.cross_entropy(model(Tensor(xb)), yb, class_mask=class_mask)
        if not self.fishers:
            return task_loss
        # add the quadratic penalty directly to parameter gradients after
        # backward would be equivalent; expressing it through the graph keeps
        # the reported loss faithful.
        penalty_value = 0.0
        flat = parameters_to_vector(model.parameters())
        grad_extra = np.zeros_like(flat)
        for fisher, anchor in zip(self.fishers, self.anchors):
            diff = flat - anchor
            penalty_value += 0.5 * self.penalty * float(fisher @ (diff * diff))
            grad_extra += self.penalty * fisher * diff
        self._pending_grad = grad_extra
        self._pending_value = penalty_value
        return task_loss

    def post_backward(self, model, xb, yb, class_mask) -> None:
        if not self.fishers:
            return
        grad_extra = getattr(self, "_pending_grad", None)
        if grad_extra is None:
            return
        offset = 0
        for param in model.parameters():
            chunk = grad_extra[offset : offset + param.size]
            add = chunk.reshape(param.shape).astype(np.float32)
            if param.grad is None:
                param.grad = add
            else:
                param.grad += add
            offset += param.size
        self._pending_grad = None

    def end_task(self, task, model: ImageClassifier) -> None:
        """Estimate the diagonal Fisher on the just-finished task."""
        rng = get_rng(self.client.rng if self.client else None)
        mask = task.class_mask()
        fisher = np.zeros(sum(p.size for p in model.parameters()), dtype=np.float64)
        batches = 0
        for _ in range(self.fisher_batches):
            n = task.num_train
            idx = rng.choice(n, size=min(self.fisher_batch_size, n), replace=False)
            model.zero_grad()
            loss = F.cross_entropy(
                model(Tensor(task.train_x[idx])), task.train_y[idx], class_mask=mask
            )
            loss.backward()
            grad = gradients_to_vector(model.parameters())
            fisher += grad * grad
            batches += 1
        model.zero_grad()
        self.fishers.append(fisher / max(batches, 1))
        self.anchors.append(parameters_to_vector(model.parameters()))

    def state_bytes(self) -> dict[str, int]:
        per_entry = sum(f.size for f in self.fishers) + sum(
            a.size for a in self.anchors
        )
        return {"model": int(per_entry * 4), "samples": 0}
