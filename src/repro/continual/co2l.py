"""Co2L — Contrastive Continual Learning (Cha, Lee & Shin, 2021).

Co2L learns representations with a supervised contrastive loss and preserves
them across tasks by instance-wise relation distillation (IRD) against the
model snapshot taken at the previous task boundary, plus a rehearsal buffer.

Simplification vs. the original: the asymmetric two-view augmentation pipeline
is replaced by the dataset's native stochastic augmentations (two independent
draws of the same batch act as the two views is unnecessary here because the
sample synthesis already injects noise), and IRD distils the relation matrix
of buffered + current samples in one pass.  The three Co2L ingredients —
contrastive representation loss, relation distillation from the previous
model, and buffered replay of the classification head — are all present.
"""

from __future__ import annotations

import copy

import numpy as np

from ..models.base import ImageClassifier
from ..nn import functional as F
from ..nn.tensor import Tensor, no_grad
from .base import ContinualStrategy
from .buffer import EpisodicMemory


def _normalized_features(model: ImageClassifier, x: np.ndarray) -> Tensor:
    features = model.forward_features(Tensor(x))
    norm = (features * features).sum(axis=1, keepdims=True).sqrt() + 1e-6
    return features / norm


class Co2LStrategy(ContinualStrategy):
    """Supervised contrastive learning + relation distillation + replay."""

    name = "co2l"

    def __init__(
        self,
        memory_fraction: float = 0.10,
        temperature: float = 0.5,
        distill_weight: float = 1.0,
        contrast_weight: float = 0.5,
        replay_batch: int = 16,
    ):
        super().__init__()
        self.memory = EpisodicMemory(fraction=memory_fraction)
        self.temperature = temperature
        self.distill_weight = distill_weight
        self.contrast_weight = contrast_weight
        self.replay_batch = replay_batch
        self.previous_model: ImageClassifier | None = None

    # ------------------------------------------------------------------
    # loss components
    # ------------------------------------------------------------------
    def _supcon_loss(self, features: Tensor, labels: np.ndarray) -> Tensor:
        """Supervised NT-Xent over the (already normalised) feature batch."""
        n = features.shape[0]
        sim = (features @ features.transpose(1, 0)) * (1.0 / self.temperature)
        # mask out self-similarity by subtracting a large constant on the diag
        eye = np.eye(n, dtype=np.float32)
        sim = sim - Tensor(eye * 1e9)
        exp = sim.exp()
        denom = exp.sum(axis=1, keepdims=True) + 1e-12
        positives = (labels[:, None] == labels[None, :]).astype(np.float32) - eye
        pos_counts = positives.sum(axis=1)
        log_prob = sim - denom.log()
        weighted = (log_prob * Tensor(positives)).sum(axis=1)
        valid = pos_counts > 0
        if not valid.any():
            return (features * 0.0).sum()
        scale = np.where(valid, 1.0 / np.maximum(pos_counts, 1.0), 0.0).astype(
            np.float32
        )
        return -(weighted * Tensor(scale)).sum() * (1.0 / max(valid.sum(), 1))

    def _ird_loss(self, model: ImageClassifier, x: np.ndarray) -> Tensor:
        """Distil the previous model's instance-relation matrix."""
        current = _normalized_features(model, x)
        with no_grad():
            previous = _normalized_features(self.previous_model, x).data
        n = x.shape[0]
        sim_current = (current @ current.transpose(1, 0)) * (1.0 / self.temperature)
        sim_previous = (previous @ previous.T) / self.temperature
        eye = np.eye(n, dtype=np.float32) * 1e9
        sim_current = sim_current - Tensor(eye)
        sim_previous = sim_previous - eye
        # softmax rows of the previous relations are the distillation target
        shifted = sim_previous - sim_previous.max(axis=1, keepdims=True)
        target = np.exp(shifted)
        target /= target.sum(axis=1, keepdims=True)
        log_current = sim_current - (
            sim_current.exp().sum(axis=1, keepdims=True) + 1e-12
        ).log()
        return -(log_current * Tensor(target.astype(np.float32))).sum() * (1.0 / n)

    def loss(
        self,
        model: ImageClassifier,
        xb: np.ndarray,
        yb: np.ndarray,
        class_mask: np.ndarray,
    ) -> Tensor:
        # classification on current batch (+ replay, to train the head on
        # old classes as Co2L does in its linear-evaluation stage)
        if len(self.memory) > 0:
            mx, my, m_mask = self.memory.sample_joint(
                self.replay_batch, self.client.rng if self.client else None
            )
            x_all = np.concatenate([xb, mx])
            y_all = np.concatenate([yb, my])
            union = class_mask | m_mask
            total = F.cross_entropy(model(Tensor(x_all)), y_all, class_mask=union)
        else:
            total = F.cross_entropy(model(Tensor(xb)), yb, class_mask=class_mask)
        features = _normalized_features(model, xb)
        total = total + self._supcon_loss(features, yb) * self.contrast_weight
        if self.previous_model is not None:
            total = total + self._ird_loss(model, xb) * self.distill_weight
        return total

    def end_task(self, task, model: ImageClassifier) -> None:
        self.memory.store(task, self.client.rng if self.client else None)
        self.previous_model = copy.deepcopy(model)
        self.previous_model.eval()

    def state_bytes(self) -> dict[str, int]:
        model_bytes = 0
        if self.previous_model is not None:
            model_bytes = self.previous_model.num_parameters() * 4
        return {"model": int(model_bytes), "samples": self.memory.nbytes}

    def extra_compute_units(self) -> float:
        # feature extraction for contrast + distillation roughly costs one
        # extra forward+backward plus a previous-model forward
        return 1.5 if self.previous_model is not None else 0.5
