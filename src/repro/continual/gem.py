"""GEM — Gradient Episodic Memory (Lopez-Paz & Ranzato, 2017).

Stores a fraction of each past task's samples; before every update, computes
the loss gradient on each stored task and projects the current gradient so it
keeps an acute angle with all of them.  The projection QP is exactly the one
FedKNOW's gradient integrator solves (the paper builds on it, Section III-D),
so this implementation shares :class:`~repro.core.integrator.GradientIntegrator`.
"""

from __future__ import annotations

import numpy as np

from ..core.integrator import GradientIntegrator
from ..models.base import ImageClassifier
from ..nn import functional as F
from ..nn.tensor import Tensor
from ..nn.vector import gradients_to_vector, vector_to_gradients
from .base import ContinualStrategy
from .buffer import EpisodicMemory


class GEMStrategy(ContinualStrategy):
    """Gradient projection against per-task episodic memories."""

    name = "gem"

    def __init__(
        self,
        memory_fraction: float = 0.10,
        margin: float = 0.0,
        max_reference_tasks: int | None = None,
        memory_batch: int = 32,
    ):
        super().__init__()
        self.memory = EpisodicMemory(fraction=memory_fraction)
        self.integrator = GradientIntegrator(margin=margin)
        self.max_reference_tasks = max_reference_tasks
        self.memory_batch = memory_batch
        self._last_rotated = False

    def _reference_memories(self):
        if self.max_reference_tasks is None:
            return list(self.memory)
        return list(self.memory)[-self.max_reference_tasks :]

    def post_backward(
        self,
        model: ImageClassifier,
        xb: np.ndarray,
        yb: np.ndarray,
        class_mask: np.ndarray,
    ) -> None:
        references = self._reference_memories()
        if not references:
            return
        current = gradients_to_vector(model.parameters())
        memory_grads = []
        for memory in references:
            take = min(self.memory_batch, len(memory.y))
            model.zero_grad()
            loss = F.cross_entropy(
                model(Tensor(memory.x[:take])),
                memory.y[:take],
                class_mask=memory.class_mask,
            )
            loss.backward()
            memory_grads.append(gradients_to_vector(model.parameters()))
        result = self.integrator.integrate(current, np.stack(memory_grads))
        self._last_rotated = result.rotated
        vector_to_gradients(result.gradient, model.parameters())

    def end_task(self, task, model: ImageClassifier) -> None:
        self.memory.store(task, self.client.rng if self.client else None)

    def state_bytes(self) -> dict[str, int]:
        return {"model": 0, "samples": self.memory.nbytes}

    def extra_compute_units(self) -> float:
        # one fwd+bwd per reference task, per iteration
        return float(len(self._reference_memories()))
