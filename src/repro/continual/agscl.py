"""AGS-CL — Adaptive Group Sparsity based Continual Learning (Jung et al., 2020).

AGS-CL tracks per-*node* (output unit) importance and applies two group-level
mechanisms when learning new tasks: important nodes are frozen towards their
previous values (quadratic group penalty) while unimportant nodes are driven
sparse (group-lasso decay) to free capacity.

Simplification vs. the original: node importance is accumulated from gradient
magnitudes aggregated per output unit (a Fisher-style proxy for the PGD-based
importance of the original), and the group-lasso proximal step is applied as
a decoupled decay.  Both mechanisms — freeze-important / sparsify-unimportant
— are preserved; the paper's observation that large *global-model* weight
changes break AGS-CL's loss in federated settings (Section V-B) emerges
identically, because aggregation moves anchored weights.
"""

from __future__ import annotations

import numpy as np

from ..models.base import ImageClassifier
from ..nn import functional as F
from ..nn.tensor import Tensor
from .base import ContinualStrategy


def _unit_reduce(array: np.ndarray) -> np.ndarray:
    """Reduce a parameter tensor to one value per output unit (axis 0)."""
    if array.ndim <= 1:
        return np.abs(array)
    return np.abs(array).reshape(array.shape[0], -1).mean(axis=1)


class AGSCLStrategy(ContinualStrategy):
    """Node-importance freezing plus group sparsity on unimportant nodes."""

    name = "agscl"

    def __init__(
        self,
        freeze_penalty: float = 50.0,
        sparsity_penalty: float = 1e-4,
        importance_decay: float = 0.9,
    ):
        super().__init__()
        self.freeze_penalty = freeze_penalty
        self.sparsity_penalty = sparsity_penalty
        self.importance_decay = importance_decay
        # per parameter name: per-unit importance and anchor values
        self.importance: dict[str, np.ndarray] = {}
        self.anchors: dict[str, np.ndarray] = {}
        self._grad_accum: dict[str, np.ndarray] = {}
        self._accum_steps = 0

    def loss(self, model, xb, yb, class_mask) -> Tensor:
        return F.cross_entropy(model(Tensor(xb)), yb, class_mask=class_mask)

    def post_backward(
        self,
        model: ImageClassifier,
        xb: np.ndarray,
        yb: np.ndarray,
        class_mask: np.ndarray,
    ) -> None:
        # accumulate per-unit gradient magnitude for the importance estimate
        for name, param in model.named_parameters():
            if param.grad is None:
                continue
            units = _unit_reduce(param.grad)
            if name in self._grad_accum:
                self._grad_accum[name] += units
            else:
                self._grad_accum[name] = units.astype(np.float64)
        self._accum_steps += 1
        if not self.anchors:
            return
        for name, param in model.named_parameters():
            if param.grad is None or name not in self.anchors:
                continue
            importance = self.importance[name]
            norm = importance / (importance.max() + 1e-12)
            shape = (-1,) + (1,) * (param.data.ndim - 1)
            # freeze important units towards their anchors
            drift = param.data - self.anchors[name]
            param.grad += (
                self.freeze_penalty * norm.reshape(shape) * drift
            ).astype(np.float32)
            # group sparsity on unimportant units
            param.grad += (
                self.sparsity_penalty * (1.0 - norm.reshape(shape)) *
                np.sign(param.data)
            ).astype(np.float32)

    def end_task(self, task, model: ImageClassifier) -> None:
        steps = max(self._accum_steps, 1)
        for name, param in model.named_parameters():
            new = self._grad_accum.get(name)
            if new is None:
                continue
            new = new / steps
            if name in self.importance:
                self.importance[name] = (
                    self.importance_decay * self.importance[name] + new
                )
            else:
                self.importance[name] = new
            self.anchors[name] = param.data.copy()
        self._grad_accum = {}
        self._accum_steps = 0

    def state_bytes(self) -> dict[str, int]:
        size = sum(v.size for v in self.importance.values())
        size += sum(v.size for v in self.anchors.values())
        return {"model": int(size * 4), "samples": 0}
