"""Continual-learning baselines (the six CL methods compared in Fig. 4)."""

from .agscl import AGSCLStrategy
from .base import ContinualStrategy, FinetuneStrategy
from .bcn import BCNStrategy
from .buffer import EpisodicMemory, TaskMemory
from .co2l import Co2LStrategy
from .ewc import EWCStrategy
from .gem import GEMStrategy
from .mas import MASStrategy

__all__ = [
    "AGSCLStrategy",
    "BCNStrategy",
    "Co2LStrategy",
    "ContinualStrategy",
    "EWCStrategy",
    "EpisodicMemory",
    "FinetuneStrategy",
    "GEMStrategy",
    "MASStrategy",
    "TaskMemory",
]
