"""Episodic memory shared by the rehearsal-based baselines (GEM, Co2L, BCN)."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..data.federated import ClientTask
from ..utils.rng import get_rng


@dataclass
class TaskMemory:
    """Stored samples of one past task."""

    task_id: int
    position: int
    x: np.ndarray
    y: np.ndarray
    class_mask: np.ndarray

    @property
    def nbytes(self) -> int:
        return int(self.x.nbytes + self.y.nbytes)


@dataclass
class EpisodicMemory:
    """Per-task sample store retaining a fraction of each task's training data.

    The paper's memory-based baselines retain 10 % of training samples by
    default (Section V-B); Fig. 10 sweeps this fraction from 10 % to 100 %.
    """

    fraction: float = 0.10
    min_per_task: int = 4
    tasks: list[TaskMemory] = field(default_factory=list)

    def __post_init__(self):
        if not 0.0 < self.fraction <= 1.0:
            raise ValueError(f"fraction must be in (0, 1], got {self.fraction}")

    def store(self, task: ClientTask, rng: np.random.Generator | None = None) -> None:
        """Keep a class-balanced random fraction of the task's training set."""
        rng = get_rng(rng)
        n = task.num_train
        keep = max(int(round(self.fraction * n)), min(self.min_per_task, n))
        indices = rng.choice(n, size=keep, replace=False)
        self.tasks.append(
            TaskMemory(
                task_id=task.task_id,
                position=task.position,
                x=task.train_x[indices].copy(),
                y=task.train_y[indices].copy(),
                class_mask=task.class_mask(),
            )
        )

    def __len__(self) -> int:
        return len(self.tasks)

    def __iter__(self):
        return iter(self.tasks)

    def __getitem__(self, index: int) -> TaskMemory:
        return self.tasks[index]

    @property
    def nbytes(self) -> int:
        return int(sum(memory.nbytes for memory in self.tasks))

    def sample_joint(
        self, batch_size: int, rng: np.random.Generator | None = None
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Draw a batch mixing all stored tasks; returns ``(x, y, union_mask)``."""
        if not self.tasks:
            raise RuntimeError("episodic memory is empty")
        rng = get_rng(rng)
        all_x = np.concatenate([m.x for m in self.tasks])
        all_y = np.concatenate([m.y for m in self.tasks])
        union = np.zeros_like(self.tasks[0].class_mask)
        for memory in self.tasks:
            union |= memory.class_mask
        indices = rng.choice(len(all_y), size=min(batch_size, len(all_y)), replace=False)
        return all_x[indices], all_y[indices], union
