"""Non-negative quadratic programming solvers for the gradient integrator.

The integrator's dual problem (Eq. 4 of the paper) is

    min_v  1/2 v^T P v + q^T v   subject to  v >= 0,

with ``P = G G^T`` (Gram matrix of the k signature gradients, so symmetric
PSD and tiny — k <= 20) and ``q = G g``.  Two solvers are provided:

* :func:`solve_nnqp_active_set` — a Lawson–Hanson style active-set method,
  exact up to numerical precision; the default.
* :func:`solve_nnqp_projected_gradient` — accelerated projected gradient,
  used as an ablation / fallback for ill-conditioned Gram matrices.
"""

from __future__ import annotations

import numpy as np


def _check_inputs(p_matrix: np.ndarray, q: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    p_matrix = np.asarray(p_matrix, dtype=np.float64)
    q = np.asarray(q, dtype=np.float64)
    if p_matrix.ndim != 2 or p_matrix.shape[0] != p_matrix.shape[1]:
        raise ValueError(f"P must be square, got shape {p_matrix.shape}")
    if q.shape != (p_matrix.shape[0],):
        raise ValueError(f"q shape {q.shape} does not match P {p_matrix.shape}")
    if not np.allclose(p_matrix, p_matrix.T, atol=1e-8):
        raise ValueError("P must be symmetric")
    return p_matrix, q


def nnqp_objective(p_matrix: np.ndarray, q: np.ndarray, v: np.ndarray) -> float:
    """Evaluate ``1/2 v^T P v + q^T v``."""
    v = np.asarray(v, dtype=np.float64)
    return float(0.5 * v @ p_matrix @ v + q @ v)


def solve_nnqp_active_set(
    p_matrix: np.ndarray,
    q: np.ndarray,
    ridge: float = 1e-10,
    max_iter: int | None = None,
) -> np.ndarray:
    """Exact active-set solver for ``min 1/2 v'Pv + q'v, v >= 0``.

    Maintains a free set F; solves the unconstrained problem restricted to F
    (``P_FF v_F = -q_F``); clips negative entries out of F; admits the most
    violated KKT multiplier back in.  Terminates at a KKT point: ``v >= 0``,
    ``Pv + q >= 0``, ``v^T (Pv + q) = 0``.  If the outer loop exhausts
    ``max_iter`` without reaching a KKT point (which can happen on
    ill-conditioned Gram matrices), the solve falls back to
    :func:`solve_nnqp_projected_gradient` rather than silently returning a
    non-optimal iterate.
    """
    p_matrix, q = _check_inputs(p_matrix, q)
    k = len(q)
    if max_iter is None:
        max_iter = 3 * k + 10
    free = np.zeros(k, dtype=bool)
    v = np.zeros(k, dtype=np.float64)
    identity = np.eye(k)
    converged = False
    for _ in range(max_iter):
        gradient = p_matrix @ v + q
        # KKT check: at bound, gradient must be >= 0 (within tolerance)
        violated = (~free) & (gradient < -1e-12)
        if not violated.any():
            converged = True
            break
        free[np.argmin(np.where(violated, gradient, np.inf))] = True
        # inner loop: solve on free set, clip until feasible
        while True:
            idx = np.flatnonzero(free)
            sub = p_matrix[np.ix_(idx, idx)] + ridge * identity[: len(idx), : len(idx)]
            try:
                v_free = np.linalg.solve(sub, -q[idx])
            except np.linalg.LinAlgError:
                v_free, *_ = np.linalg.lstsq(sub, -q[idx], rcond=None)
            if (v_free >= -1e-12).all():
                v[:] = 0.0
                v[idx] = np.maximum(v_free, 0.0)
                break
            # remove the most negative coordinate from the free set
            worst = idx[np.argmin(v_free)]
            free[worst] = False
            if not free.any():
                v[:] = 0.0
                break
    if not converged:
        return solve_nnqp_projected_gradient(p_matrix, q)
    return v


def solve_nnqp_projected_gradient(
    p_matrix: np.ndarray,
    q: np.ndarray,
    max_iter: int = 2000,
    tol: float = 1e-10,
) -> np.ndarray:
    """FISTA-accelerated projected gradient for the same NNQP."""
    p_matrix, q = _check_inputs(p_matrix, q)
    k = len(q)
    eigenvalues = np.linalg.eigvalsh(p_matrix)
    lipschitz = max(float(eigenvalues[-1]), 1e-12)
    step = 1.0 / lipschitz
    v = np.zeros(k)
    y = v.copy()
    t = 1.0
    for _ in range(max_iter):
        gradient = p_matrix @ y + q
        v_next = np.maximum(y - step * gradient, 0.0)
        t_next = 0.5 * (1.0 + np.sqrt(1.0 + 4.0 * t * t))
        y = v_next + ((t - 1.0) / t_next) * (v_next - v)
        if np.abs(v_next - v).max() < tol:
            v = v_next
            break
        v, t = v_next, t_next
    return v


SOLVERS = {
    "active_set": solve_nnqp_active_set,
    "projected_gradient": solve_nnqp_projected_gradient,
}


def solve_nnqp(p_matrix: np.ndarray, q: np.ndarray, method: str = "active_set") -> np.ndarray:
    """Dispatch to a registered NNQP solver."""
    if method not in SOLVERS:
        raise KeyError(f"unknown NNQP solver {method!r}; known: {sorted(SOLVERS)}")
    return SOLVERS[method](p_matrix, q)
