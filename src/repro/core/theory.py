"""Executable form of the convergence analysis (Section IV).

The paper proves FedKNOW converges by bounding the optimality gap of the
local weights (Lemma 1) and the global weights (Lemma 2), then combining
them under the learning-rate constraints of Theorem 1.  This module
evaluates those bounds numerically so the convergence behaviour can be
inspected, tested and plotted:

* :func:`local_weight_bound` — Eq. 9:
  ``E[f(W_r)] - f(W*) <= D^2 / (2 eta_r r) + lambda^2 eta_r / 2``;
* :func:`global_weight_bound` — Eq. 15 with
  ``B = sum p_i^2 sigma_i^2 + 6 L Omega + 8 (r-1)^2 g'^2``;
* :func:`theorem1_gap` — the combined gap under the Theorem 1 schedules,
  which approaches zero as ``r`` grows.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..nn.schedules import BoundedInverseDecay, InverseSqrtDecay


@dataclass(frozen=True)
class ConvergenceConstants:
    """Problem constants appearing in Assumptions 1-3.

    ``grad_bound`` is lambda (Assumption 1), ``update_bound`` is D
    (Assumption 2); ``mu``, ``lipschitz`` and ``heterogeneity`` (Omega) come
    from Assumption 3's FedAvg bound; ``client_weights`` are the p_i and
    ``grad_variances`` the sigma_i^2.
    """

    grad_bound: float = 1.0
    update_bound: float = 1.0
    mu: float = 1.0
    lipschitz: float = 10.0
    heterogeneity: float = 0.5
    client_weights: tuple[float, ...] = (0.5, 0.5)
    grad_variances: tuple[float, ...] = (1.0, 1.0)
    initial_distance: float = 1.0

    def __post_init__(self):
        if abs(sum(self.client_weights) - 1.0) > 1e-6:
            raise ValueError("client weights must sum to 1")
        if len(self.client_weights) != len(self.grad_variances):
            raise ValueError("one gradient variance per client weight required")
        if min(self.grad_bound, self.update_bound, self.mu, self.lipschitz) <= 0:
            raise ValueError("constants must be positive")

    @property
    def tau(self) -> float:
        return self.lipschitz / self.mu

    def gamma(self, r: int) -> float:
        return max(8.0 * self.tau, float(r))


def local_weight_bound(
    r: int,
    constants: ConvergenceConstants,
    schedule: InverseSqrtDecay,
) -> float:
    """Lemma 1's optimality-gap bound for the local weights at iteration r."""
    if r < 1:
        raise ValueError(f"iteration must be >= 1, got {r}")
    eta = schedule(r)
    d, lam = constants.update_bound, constants.grad_bound
    return d * d / (2.0 * eta * r) + lam * lam * eta / 2.0


def _b_constant(r: int, constants: ConvergenceConstants, integrated_norm: float) -> float:
    weighted_variance = sum(
        p * p * s for p, s in zip(constants.client_weights, constants.grad_variances)
    )
    return (
        weighted_variance
        + 6.0 * constants.lipschitz * constants.heterogeneity
        + 8.0 * (r - 1) ** 2 * integrated_norm**2
    )


def global_weight_bound(
    r: int,
    constants: ConvergenceConstants,
    integrated_norm: float | None = None,
) -> float:
    """Lemma 2's optimality-gap bound for the global weights at iteration r.

    ``integrated_norm`` is ||g'|| — the integrated gradient's norm, which
    Lemma 2 shows is bounded because the dual variables v are finite; it
    defaults to the raw gradient bound lambda.
    """
    if r < 1:
        raise ValueError(f"iteration must be >= 1, got {r}")
    if integrated_norm is None:
        integrated_norm = constants.grad_bound
    gamma = constants.gamma(r)
    b = _b_constant(r, constants, integrated_norm)
    # the (r-1)^2 growth inside B is divided by (gamma + r - 1) ~ r and by the
    # additional 1/r of the admissible learning rate eta_G = 2/(mu (gamma+r))
    eta = BoundedInverseDecay(1.0, constants.mu, gamma).bound(r)
    prefactor = constants.tau / (gamma + r - 1.0)
    distance = constants.initial_distance / r  # contracts under eta_G ~ 1/r
    return prefactor * (
        2.0 * b * eta * constants.mu / 2.0 / max(r, 1)
        + constants.mu * gamma / 2.0 * distance
    )


def theorem1_gap(
    r: int,
    constants: ConvergenceConstants | None = None,
    local_lr: float = 0.1,
) -> float:
    """Combined optimality gap of Theorem 1 at iteration ``r``.

    Under the two learning-rate constraints — local O(r^-1/2), global
    O(r^-1) capped by 2/(mu (gamma + r)) — both lemma bounds vanish, so the
    whole-model gap does too.
    """
    constants = constants or ConvergenceConstants()
    local = local_weight_bound(r, constants, InverseSqrtDecay(local_lr))
    global_ = global_weight_bound(r, constants)
    return local + global_


def gap_curve(
    iterations: np.ndarray | list[int],
    constants: ConvergenceConstants | None = None,
    local_lr: float = 0.1,
) -> np.ndarray:
    """Evaluate :func:`theorem1_gap` over a range of iteration counts."""
    return np.array(
        [theorem1_gap(int(r), constants, local_lr) for r in iterations]
    )
