"""Signature task knowledge: extraction, storage and restoration (Section III-B).

After a task is learned, the knowledge extractor retains the fraction ``rho``
of model weights with the largest magnitudes (weight-based pruning, Eq. 1) —
typically 10 % — as that task's *knowledge*.  The retained weights, their
positions, the task's class set and the (tiny) BN statistics are enough to
re-materialise a pruned network that still predicts the task well, which is
what the gradient restorer consumes.

Extraction follows the paper's three steps: (1) the model is trained to
convergence by the normal task loop, (2) the top-``rho`` weights are selected,
(3) the retained weights are optionally fine-tuned with the others frozen.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..curv.selector import SignatureSelector, create_selector
from ..data.federated import ClientTask
from ..models.base import ImageClassifier
from ..nn import functional as F
from ..nn.optim import SGD
from ..nn.tensor import Tensor
from ..utils.serialization import (
    SparseTensor,
    WireValue,
    encoded_num_bytes,
    topk_magnitude_indices,
)


@dataclass
class TaskKnowledge:
    """The retained knowledge ``W_i`` of one learned task."""

    task_id: int
    position: int
    classes: np.ndarray
    num_total_classes: int
    indices: dict[str, np.ndarray]  # flat int32 positions of retained weights
    values: dict[str, np.ndarray]  # retained weight values, per param
    shapes: dict[str, tuple[int, ...]]
    buffers: dict[str, np.ndarray]  # BN running statistics
    ratio: float

    def class_mask(self) -> np.ndarray:
        mask = np.zeros(self.num_total_classes, dtype=bool)
        mask[self.classes] = True
        return mask

    def wire_state(self) -> dict[str, WireValue]:
        """This entry as a wire state: sparse params plus dense BN buffers."""
        state: dict[str, WireValue] = {
            name: SparseTensor(self.indices[name], self.values[name],
                               self.shapes[name])
            for name in self.values
        }
        state.update(self.buffers)
        return state

    @property
    def nbytes(self) -> int:
        """Size of this entry as an encoded sparse payload, byte-exact.

        Values travel as float32 and positions as int32; the figure is the
        codec's ``encoded_num_bytes`` of :meth:`wire_state`, so stored and
        billed bytes always agree.
        """
        return encoded_num_bytes(self.wire_state())

    def num_retained(self) -> int:
        return int(sum(v.size for v in self.values.values()))

    def restore_state(self) -> dict[str, np.ndarray]:
        """Materialise the pruned network's state dict (zeros off-support)."""
        state: dict[str, np.ndarray] = {}
        for name, shape in self.shapes.items():
            flat = np.zeros(int(np.prod(shape)), dtype=np.float32)
            flat[self.indices[name]] = self.values[name]
            state[name] = flat.reshape(shape)
        for name, buffer in self.buffers.items():
            state[name] = buffer.copy()
        return state


class KnowledgeExtractor:
    """Extracts the top-``rho`` scored weights as a task's signature knowledge.

    ``selector`` picks the scoring criterion — a spec string
    (``magnitude`` / ``fisher`` / ``hybrid:<mix>``), a
    :class:`~repro.curv.selector.SignatureSelector` instance, or ``None``
    for the paper's magnitude criterion (bit-identical to the pre-seam
    extractor).
    """

    def __init__(
        self,
        ratio: float = 0.10,
        finetune_iterations: int = 0,
        finetune_lr: float = 0.005,
        finetune_batch: int = 16,
        selector: str | SignatureSelector | None = None,
    ):
        if not 0.0 < ratio <= 1.0:
            raise ValueError(f"retention ratio must be in (0, 1], got {ratio}")
        self.ratio = ratio
        self.finetune_iterations = finetune_iterations
        self.finetune_lr = finetune_lr
        self.finetune_batch = finetune_batch
        self.selector = create_selector(selector)

    def extract(
        self,
        model: ImageClassifier,
        task: ClientTask,
        scratch: ImageClassifier | None = None,
        rng: np.random.Generator | None = None,
    ) -> TaskKnowledge:
        """Extract ``TaskKnowledge`` from a trained model for ``task``.

        When ``finetune_iterations > 0`` and a ``scratch`` model is supplied,
        the retained weights are fine-tuned on the task data with all other
        weights frozen at zero (extraction step 3), improving the pruned
        network's label fidelity without touching the live model.
        """
        params = {name: p.data for name, p in model.named_parameters()}
        for name, value in params.items():
            if value.size > np.iinfo(np.int32).max:
                raise ValueError(
                    f"parameter {name!r} has {value.size} elements; flat "
                    "positions would overflow the wire format's int32 indices"
                )
        # global top-rho selection across all parameters (Eq. 1 with the
        # selector's scores standing in for |w|); tie-aware: exactly
        # round(rho * d) weights are retained even when scores tie at the
        # selection boundary
        scores = np.asarray(self.selector.scores(model, task, rng=rng)).ravel()
        d = int(sum(v.size for v in params.values()))
        if scores.size != d:
            raise ValueError(
                f"selector {self.selector.describe()!r} returned "
                f"{scores.size} scores for a model with {d} weights"
            )
        retained = d if self.ratio >= 1.0 else max(1, int(round(self.ratio * d)))
        keep_global = topk_magnitude_indices(scores, retained)

        sizes = np.array([v.size for v in params.values()])
        offsets = np.concatenate([[0], np.cumsum(sizes)])
        indices: dict[str, np.ndarray] = {}
        values: dict[str, np.ndarray] = {}
        shapes: dict[str, tuple[int, ...]] = {}
        for position, (name, value) in enumerate(params.items()):
            lo = np.searchsorted(keep_global, offsets[position])
            hi = np.searchsorted(keep_global, offsets[position + 1])
            # a parameter may retain nothing — its restored values are zeros
            keep = (keep_global[lo:hi] - offsets[position]).astype(np.int32)
            indices[name] = keep
            values[name] = value.ravel()[keep].astype(np.float32).copy()
            shapes[name] = value.shape
        buffers = {
            name: np.array(buffer, copy=True)
            for name, buffer in model.named_buffers()
        }
        knowledge = TaskKnowledge(
            task_id=task.task_id,
            position=task.position,
            classes=task.classes.copy(),
            num_total_classes=task.num_total_classes,
            indices=indices,
            values=values,
            shapes=shapes,
            buffers=buffers,
            ratio=self.ratio,
        )
        if self.finetune_iterations > 0 and scratch is not None:
            self._finetune(knowledge, task, scratch, rng)
        return knowledge

    def _finetune(
        self,
        knowledge: TaskKnowledge,
        task: ClientTask,
        scratch: ImageClassifier,
        rng: np.random.Generator | None,
    ) -> None:
        """Fine-tune retained weights on the task with the rest frozen at zero."""
        from ..data.loader import sample_batch
        from ..utils.rng import get_rng

        rng = get_rng(rng)
        scratch.load_state_dict(knowledge.restore_state())
        scratch.train()
        optimizer = SGD(scratch.parameters(), lr=self.finetune_lr)
        masks = {
            name: knowledge.indices[name]
            for name, _ in scratch.named_parameters()
        }
        mask = task.class_mask()
        for _ in range(self.finetune_iterations):
            xb, yb = sample_batch(task.train_x, task.train_y, self.finetune_batch, rng)
            optimizer.zero_grad()
            loss = F.cross_entropy(scratch(Tensor(xb)), yb, class_mask=mask)
            loss.backward()
            # freeze non-retained weights: zero their gradients
            for name, param in scratch.named_parameters():
                if param.grad is None:
                    continue
                flat = param.grad.ravel()
                kept = np.zeros_like(flat)
                kept[masks[name]] = flat[masks[name]]
                param.grad = kept.reshape(param.grad.shape)
            optimizer.step()
        # write the fine-tuned values back into the knowledge entry
        for name, param in scratch.named_parameters():
            knowledge.values[name] = (
                param.data.ravel()[knowledge.indices[name]].astype(np.float32).copy()
            )


@dataclass
class KnowledgeStore:
    """A client's collection of per-task knowledge entries."""

    entries: list[TaskKnowledge] = field(default_factory=list)

    def add(self, knowledge: TaskKnowledge) -> None:
        self.entries.append(knowledge)

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self):
        return iter(self.entries)

    def __getitem__(self, index: int) -> TaskKnowledge:
        return self.entries[index]

    @property
    def nbytes(self) -> int:
        return int(sum(entry.nbytes for entry in self.entries))
