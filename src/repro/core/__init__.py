"""FedKNOW core: signature task knowledge extraction, restoration, integration."""

from .client import FedKnowClient
from .config import FedKnowConfig
from .distance import (
    DISTANCES,
    cosine_distance,
    l2_distance,
    select_signature_tasks,
    wasserstein_distance,
)
from .integrator import GradientIntegrator, IntegrationResult
from .knowledge import KnowledgeExtractor, KnowledgeStore, TaskKnowledge
from .qp import (
    SOLVERS,
    nnqp_objective,
    solve_nnqp,
    solve_nnqp_active_set,
    solve_nnqp_projected_gradient,
)
from .restorer import GradientRestorer
from .theory import (
    ConvergenceConstants,
    gap_curve,
    global_weight_bound,
    local_weight_bound,
    theorem1_gap,
)

__all__ = [
    "ConvergenceConstants",
    "gap_curve",
    "global_weight_bound",
    "local_weight_bound",
    "theorem1_gap",
    "DISTANCES",
    "FedKnowClient",
    "FedKnowConfig",
    "GradientIntegrator",
    "GradientRestorer",
    "IntegrationResult",
    "KnowledgeExtractor",
    "KnowledgeStore",
    "SOLVERS",
    "TaskKnowledge",
    "cosine_distance",
    "l2_distance",
    "nnqp_objective",
    "select_signature_tasks",
    "solve_nnqp",
    "solve_nnqp_active_set",
    "solve_nnqp_projected_gradient",
    "wasserstein_distance",
]
