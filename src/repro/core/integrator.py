"""The gradient integrator — FedKNOW's central mechanism (Section III-D).

Given the current task's gradient ``g`` and a set ``G`` of constraint
gradients (signature-task gradients for forgetting prevention; the
before/after-aggregation pair for negative-transfer prevention), find the
rotated gradient ``g'`` closest to ``g`` such that ``<g', g_i> >= 0`` for all
``g_i`` in ``G`` (Eq. 3).  The dual (Eq. 4) is a k-dimensional non-negative
QP solved in polynomial time; the primal solution is recovered as
``g' = G^T v + g`` (Eq. 5).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .qp import solve_nnqp


@dataclass(frozen=True)
class IntegrationResult:
    """Outcome of one gradient integration."""

    gradient: np.ndarray
    rotated: bool
    num_violations: int
    rotation_angle: float  # radians between g and g'
    dual_solution: np.ndarray | None

    @property
    def rotation_degrees(self) -> float:
        return float(np.degrees(self.rotation_angle))


def _angle_between(a: np.ndarray, b: np.ndarray) -> float:
    denominator = np.linalg.norm(a) * np.linalg.norm(b)
    if denominator == 0.0:
        return 0.0
    cosine = np.clip((a @ b) / denominator, -1.0, 1.0)
    return float(np.arccos(cosine))


class GradientIntegrator:
    """Rotates gradients to keep acute angles with all constraint gradients.

    Parameters
    ----------
    solver:
        NNQP method (``"active_set"`` or ``"projected_gradient"``).
    margin:
        Optional slack added to the dual linear term (GEM's memory-strength
        trick): positive values bias the solution towards the constraint
        gradients, trading current-task progress for retention.
    """

    def __init__(self, solver: str = "active_set", margin: float = 0.0):
        if margin < 0:
            raise ValueError(f"margin must be non-negative, got {margin}")
        self.solver = solver
        self.margin = margin

    def integrate(
        self, gradient: np.ndarray, constraints: np.ndarray | None
    ) -> IntegrationResult:
        """Compute the integrated gradient ``g'``.

        ``gradient`` is the current task's flat gradient (shape ``(d,)``);
        ``constraints`` stacks the signature gradients (shape ``(k, d)``).
        If every constraint already forms an acute angle with ``gradient``,
        it is returned unchanged (no QP solve).
        """
        gradient = np.asarray(gradient, dtype=np.float64)
        if constraints is None or len(constraints) == 0:
            return IntegrationResult(gradient, False, 0, 0.0, None)
        constraints = np.asarray(constraints, dtype=np.float64)
        if constraints.ndim != 2 or constraints.shape[1] != gradient.shape[0]:
            raise ValueError(
                f"constraints shape {constraints.shape} incompatible with "
                f"gradient of dimension {gradient.shape[0]}"
            )
        dots = constraints @ gradient
        num_violations = int((dots < 0.0).sum())
        if num_violations == 0:
            return IntegrationResult(gradient, False, 0, 0.0, None)

        gram = constraints @ constraints.T
        linear = constraints @ gradient - self.margin
        v = solve_nnqp(gram, linear, method=self.solver)
        integrated = constraints.T @ v + gradient
        angle = _angle_between(gradient, integrated)
        return IntegrationResult(
            gradient=integrated,
            rotated=True,
            num_violations=num_violations,
            rotation_angle=angle,
            dual_solution=v,
        )

    def satisfies_constraints(
        self, gradient: np.ndarray, constraints: np.ndarray, tol: float = 1e-6
    ) -> bool:
        """Check the acute-angle condition ``G g >= -tol`` (scaled)."""
        constraints = np.asarray(constraints, dtype=np.float64)
        if len(constraints) == 0:
            return True
        scale = max(float(np.abs(constraints @ gradient).max()), 1.0)
        return bool((constraints @ np.asarray(gradient) >= -tol * scale).all())
