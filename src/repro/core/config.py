"""FedKNOW hyperparameters (Section V-B's search spaces and defaults)."""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class FedKnowConfig:
    """Configuration of a FedKNOW client.

    ``knowledge_ratio`` is the paper's rho (search space {5 %, 10 %, 20 %},
    default 10 %); ``num_signature_gradients`` is k (search space {5, 10, 20},
    default 10).  ``signature_refresh`` controls how often the full
    dissimilarity ranking over all retained tasks is recomputed (the paper
    computes distances when selecting which k gradients to restore; restoring
    all m every iteration would defeat the compute savings, so the ranking is
    refreshed once per ``signature_refresh`` iterations and only the selected
    k gradients are restored in between).
    """

    knowledge_ratio: float = 0.10
    num_signature_gradients: int = 10
    distance_metric: str = "wasserstein"
    qp_solver: str = "active_set"
    qp_margin: float = 0.0
    signature_refresh: int = 10
    aggregation_finetune_batches: int | None = None  # None = one local epoch
    aggregation_integration: bool = True
    extraction_finetune_iterations: int = 5
    extraction_finetune_lr: float = 0.005

    def __post_init__(self):
        if not 0.0 < self.knowledge_ratio <= 1.0:
            raise ValueError(
                f"knowledge_ratio must be in (0, 1], got {self.knowledge_ratio}"
            )
        if self.num_signature_gradients < 1:
            raise ValueError(
                "num_signature_gradients must be >= 1, "
                f"got {self.num_signature_gradients}"
            )
        if self.signature_refresh < 1:
            raise ValueError(
                f"signature_refresh must be >= 1, got {self.signature_refresh}"
            )

    def updated(self, **overrides) -> "FedKnowConfig":
        return replace(self, **overrides)
