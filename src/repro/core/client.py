"""The FedKNOW client (Section III): extractor + restorer + integrator.

Per local iteration, the client computes the current task's gradient,
restores the gradients of its k most dissimilar retained tasks (the signature
tasks) through the gradient restorer, and updates with the integrated
gradient that keeps an acute angle to all of them — preventing catastrophic
forgetting.  After every global aggregation, it fine-tunes for one local
epoch, integrating each step's gradient with the gradient of the
pre-aggregation model so the global information is absorbed without negative
transfer.  When a task finishes, the knowledge extractor prunes and stores
the task's signature knowledge.
"""

from __future__ import annotations

from typing import Callable, Mapping

import numpy as np

from ..data.federated import ClientData
from ..data.loader import iterate_batches, sample_batch
from ..federated.base import FederatedClient
from ..federated.config import TrainConfig
from ..models.base import ImageClassifier
from ..nn import functional as F
from ..nn.optim import SGD
from ..nn.schedules import InverseTimeDecay
from ..nn.tensor import Tensor
from ..nn.vector import gradients_to_vector, vector_to_gradients
from .config import FedKnowConfig
from .distance import select_signature_tasks
from .integrator import GradientIntegrator
from .knowledge import KnowledgeExtractor, KnowledgeStore
from .restorer import GradientRestorer


class FedKnowClient(FederatedClient):
    """Federated continual learner with signature-task knowledge integration."""

    method_name = "fedknow"

    def __init__(
        self,
        client_id: int,
        data: ClientData,
        model: ImageClassifier,
        config: TrainConfig,
        model_factory: Callable[[], ImageClassifier],
        fedknow: FedKnowConfig | None = None,
        rng: np.random.Generator | None = None,
        selector: str | None = None,
    ):
        super().__init__(client_id, data, model, config, rng)
        self.fedknow = fedknow or FedKnowConfig()
        self.extractor = KnowledgeExtractor(
            ratio=self.fedknow.knowledge_ratio,
            finetune_iterations=self.fedknow.extraction_finetune_iterations,
            finetune_lr=self.fedknow.extraction_finetune_lr,
            selector=selector,
        )
        self.store = KnowledgeStore()
        self._scratch = model_factory()
        self.restorer = GradientRestorer(self._scratch)
        self.integrator = GradientIntegrator(
            solver=self.fedknow.qp_solver, margin=self.fedknow.qp_margin
        )
        self.optimizer = SGD(model.parameters(), lr=config.lr,
                             momentum=config.momentum)
        self._schedule = InverseTimeDecay(config.lr, config.lr_decay)
        self._signature_indices: np.ndarray | None = None
        self._iterations_since_refresh = 0
        self.integration_stats = {"rotations": 0, "integrations": 0}

    # ------------------------------------------------------------------
    # signature selection
    # ------------------------------------------------------------------
    def _signature_entries(self, current_grad: np.ndarray, inputs: np.ndarray):
        """The retained-knowledge entries acting as this iteration's constraints."""
        k = self.fedknow.num_signature_gradients
        if len(self.store) <= k:
            return list(self.store)
        refresh_due = (
            self._signature_indices is None
            or self._iterations_since_refresh >= self.fedknow.signature_refresh
        )
        if refresh_due:
            all_grads = self.restorer.restore_gradients(
                self.model, list(self.store), inputs
            )
            self.add_compute(float(len(self.store)))
            self._signature_indices = select_signature_tasks(
                current_grad, all_grads, k, metric=self.fedknow.distance_metric
            )
            self._iterations_since_refresh = 0
            # reuse the gradients we just computed
            self._cached_signature_grads = all_grads[self._signature_indices]
            return [self.store[i] for i in self._signature_indices]
        self._cached_signature_grads = None
        return [self.store[i] for i in self._signature_indices]

    # ------------------------------------------------------------------
    # training
    # ------------------------------------------------------------------
    def local_train(self, iterations: int) -> dict:
        if self.task is None:
            raise RuntimeError("local_train called before begin_task")
        mask = self.task.class_mask()
        self.model.train()
        losses = []
        for _ in range(iterations):
            xb, yb = sample_batch(
                self.task.train_x, self.task.train_y, self.config.batch_size, self.rng
            )
            self.model.zero_grad()
            loss = F.cross_entropy(self.model(Tensor(xb)), yb, class_mask=mask)
            loss.backward()
            self.add_compute(1.0)
            current = gradients_to_vector(self.model.parameters())
            if len(self.store) > 0:
                entries = self._signature_entries(current, xb)
                self._iterations_since_refresh += 1
                cached = getattr(self, "_cached_signature_grads", None)
                if cached is not None:
                    signature_grads = cached
                    self._cached_signature_grads = None
                else:
                    signature_grads = self.restorer.restore_gradients(
                        self.model, entries, xb
                    )
                    self.add_compute(float(len(entries)))
                result = self.integrator.integrate(current, signature_grads)
                self.integration_stats["integrations"] += 1
                if result.rotated:
                    self.integration_stats["rotations"] += 1
                vector_to_gradients(result.gradient, self.model.parameters())
            self.global_iteration += 1
            self.optimizer.set_lr(self._schedule(self.global_iteration))
            self.optimizer.step()
            losses.append(loss.item())
        return {"mean_loss": float(np.mean(losses)), "iterations": iterations}

    # ------------------------------------------------------------------
    # aggregation handling (negative-transfer prevention)
    # ------------------------------------------------------------------
    def _task_gradient(self, xb: np.ndarray, yb: np.ndarray) -> np.ndarray:
        """Current-task gradient at the model's present weights."""
        mask = self.task.class_mask()
        self.model.zero_grad()
        loss = F.cross_entropy(self.model(Tensor(xb)), yb, class_mask=mask)
        loss.backward()
        grad = gradients_to_vector(self.model.parameters())
        self.model.zero_grad()
        return grad

    def receive_global(self, state: Mapping[str, np.ndarray], round_index: int) -> None:
        if not self.fedknow.aggregation_integration or self.task is None:
            super().receive_global(state, round_index)
            return
        # gradient of the local data at the **pre-aggregation** weights
        probe_x, probe_y = sample_batch(
            self.task.train_x, self.task.train_y, self.config.batch_size, self.rng
        )
        grad_before = self._task_gradient(probe_x, probe_y)
        self.add_compute(1.0)
        self.model.load_state_dict(dict(state))
        # fine-tune one local epoch, rotating each step's gradient to stay
        # acute with the pre-aggregation direction
        mask = self.task.class_mask()
        self.model.train()
        batches = iterate_batches(
            self.task.train_x, self.task.train_y, self.config.batch_size, self.rng
        )
        limit = self.fedknow.aggregation_finetune_batches
        for index, (xb, yb) in enumerate(batches):
            if limit is not None and index >= limit:
                break
            self.model.zero_grad()
            loss = F.cross_entropy(self.model(Tensor(xb)), yb, class_mask=mask)
            loss.backward()
            self.add_compute(1.0)
            grad_after = gradients_to_vector(self.model.parameters())
            result = self.integrator.integrate(grad_after, grad_before[None, :])
            self.integration_stats["integrations"] += 1
            if result.rotated:
                self.integration_stats["rotations"] += 1
            vector_to_gradients(result.gradient, self.model.parameters())
            self.global_iteration += 1
            self.optimizer.set_lr(self._schedule(self.global_iteration))
            self.optimizer.step()

    # ------------------------------------------------------------------
    # task boundary
    # ------------------------------------------------------------------
    def end_task(self) -> None:
        knowledge = self.extractor.extract(
            self.model, self.task, scratch=self._scratch, rng=self.rng
        )
        self.store.add(knowledge)
        self._signature_indices = None
        self._iterations_since_refresh = 0
        self.add_compute(float(self.fedknow.extraction_finetune_iterations))

    def extra_state_bytes(self) -> dict[str, int]:
        return {"model": self.store.nbytes, "samples": 0}
