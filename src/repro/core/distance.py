"""Gradient dissimilarity metrics for signature-task selection.

Section III-C: with many retained tasks, FedKNOW computes only the ``k``
gradients **most dissimilar** from the current task's gradient — these are
the tasks most endangered by the update.  The paper suggests the Wasserstein
distance between gradients; cosine and L2 variants are provided for the
ablation benchmark.
"""

from __future__ import annotations

import numpy as np


def wasserstein_distance(a: np.ndarray, b: np.ndarray, max_points: int = 4096) -> float:
    """1-D Wasserstein-1 distance between the empirical value distributions.

    For equal-length samples this is the mean absolute difference of the
    sorted values.  Gradients are subsampled deterministically to
    ``max_points`` coordinates for speed (both vectors with the same stride),
    which preserves the distance up to sampling error.
    """
    a = np.asarray(a, dtype=np.float64).ravel()
    b = np.asarray(b, dtype=np.float64).ravel()
    if a.shape != b.shape:
        raise ValueError(f"gradient shapes differ: {a.shape} vs {b.shape}")
    if a.size > max_points:
        stride = a.size // max_points
        a = a[::stride]
        b = b[::stride]
    return float(np.abs(np.sort(a) - np.sort(b)).mean())


def cosine_distance(a: np.ndarray, b: np.ndarray) -> float:
    """``1 - cos(a, b)`` — large when gradients point in conflicting directions."""
    a = np.asarray(a, dtype=np.float64).ravel()
    b = np.asarray(b, dtype=np.float64).ravel()
    denominator = np.linalg.norm(a) * np.linalg.norm(b)
    if denominator == 0.0:
        return 0.0
    return float(1.0 - (a @ b) / denominator)


def l2_distance(a: np.ndarray, b: np.ndarray) -> float:
    """Euclidean distance between gradient vectors."""
    a = np.asarray(a, dtype=np.float64).ravel()
    b = np.asarray(b, dtype=np.float64).ravel()
    return float(np.linalg.norm(a - b))


DISTANCES = {
    "wasserstein": wasserstein_distance,
    "cosine": cosine_distance,
    "l2": l2_distance,
}


def select_signature_tasks(
    current_gradient: np.ndarray,
    past_gradients: np.ndarray,
    k: int,
    metric: str = "wasserstein",
) -> np.ndarray:
    """Indices of the ``k`` past gradients most dissimilar from the current one.

    ``past_gradients`` has shape ``(m, d)``.  Returns at most ``k`` indices,
    sorted by decreasing dissimilarity.
    """
    if metric not in DISTANCES:
        raise KeyError(f"unknown distance {metric!r}; known: {sorted(DISTANCES)}")
    past_gradients = np.asarray(past_gradients)
    if past_gradients.ndim != 2:
        raise ValueError(f"past_gradients must be 2-D, got {past_gradients.ndim}-D")
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    distance_fn = DISTANCES[metric]
    distances = np.array(
        [distance_fn(current_gradient, g) for g in past_gradients]
    )
    order = np.argsort(-distances, kind="stable")
    return order[: min(k, len(order))]
