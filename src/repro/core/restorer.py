"""The gradient restorer (Section III-C, Eq. 2).

Reconstructs a past task's gradient **without storing any of its samples**:
the retained knowledge ``W_i`` is loaded into a pruned scratch network whose
predictions on the *current* task's inputs act as soft labels; the gradient
of the current model towards those soft labels,

    g_i = grad loss( f(W, X_{m+1}), f(W_i, X_{m+1}) ),

is the update direction that keeps the model consistent with task ``t_i``.
"""

from __future__ import annotations

import numpy as np

from ..models.base import ImageClassifier
from ..nn import functional as F
from ..nn.tensor import Tensor, no_grad
from ..nn.vector import gradients_to_vector
from .knowledge import TaskKnowledge


class GradientRestorer:
    """Computes past-task gradients from retained knowledge."""

    def __init__(self, scratch: ImageClassifier):
        """``scratch`` must be architecturally identical to the live model."""
        self._scratch = scratch

    def soft_labels(self, knowledge: TaskKnowledge, inputs: np.ndarray) -> np.ndarray:
        """Class-probability targets predicted by the task's pruned network."""
        self._scratch.load_state_dict(knowledge.restore_state())
        self._scratch.eval()
        with no_grad():
            logits = self._scratch(Tensor(inputs)).data
        mask = knowledge.class_mask()
        masked = np.where(mask[None, :], logits, np.float32(-1e9))
        shifted = masked - masked.max(axis=1, keepdims=True)
        exp = np.exp(shifted)
        return (exp / exp.sum(axis=1, keepdims=True)).astype(np.float32)

    def restore_gradient(
        self,
        model: ImageClassifier,
        knowledge: TaskKnowledge,
        inputs: np.ndarray,
    ) -> np.ndarray:
        """Flat gradient of the current model towards the task's soft labels.

        The model is evaluated in eval mode so BN running statistics are not
        perturbed by restoration passes; parameter gradients are cleared
        before and after.
        """
        targets = self.soft_labels(knowledge, inputs)
        was_training = model.training
        model.eval()
        model.zero_grad()
        loss = F.soft_cross_entropy(
            model(Tensor(inputs)), targets, class_mask=knowledge.class_mask()
        )
        loss.backward()
        gradient = gradients_to_vector(model.parameters())
        model.zero_grad()
        if was_training:
            model.train()
        return gradient

    def restore_gradients(
        self,
        model: ImageClassifier,
        knowledge_entries: list[TaskKnowledge],
        inputs: np.ndarray,
    ) -> np.ndarray:
        """Stack restored gradients for several tasks — shape ``(m, d)``."""
        if not knowledge_entries:
            raise ValueError("no knowledge entries to restore")
        return np.stack(
            [self.restore_gradient(model, k, inputs) for k in knowledge_entries]
        )
