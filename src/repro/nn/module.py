"""Module / Parameter abstractions, mirroring the familiar torch.nn API.

A :class:`Module` owns :class:`Parameter` leaves and child modules, registered
automatically on attribute assignment.  State dicts are flat
``name -> numpy array`` mappings which the federated layer serialises,
aggregates and ships between clients and the server.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, Iterator

import numpy as np

from .tensor import Tensor


class Parameter(Tensor):
    """A trainable tensor: always created with ``requires_grad=True``."""

    def __init__(self, data, dtype=None):
        super().__init__(data, requires_grad=True, dtype=dtype)


class Module:
    """Base class for all neural-network modules."""

    def __init__(self):
        object.__setattr__(self, "_parameters", OrderedDict())
        object.__setattr__(self, "_modules", OrderedDict())
        object.__setattr__(self, "_buffers", OrderedDict())
        object.__setattr__(self, "training", True)

    # ------------------------------------------------------------------
    # registration
    # ------------------------------------------------------------------
    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Parameter):
            self._parameters[name] = value
        elif isinstance(value, Module):
            self._modules[name] = value
        else:
            self._parameters.pop(name, None)
            self._modules.pop(name, None)
        object.__setattr__(self, name, value)

    def register_buffer(self, name: str, value: np.ndarray) -> None:
        """Register a non-trainable persistent array (e.g. BN running stats)."""
        self._buffers[name] = value
        object.__setattr__(self, name, value)

    # ------------------------------------------------------------------
    # traversal
    # ------------------------------------------------------------------
    def named_modules(self, prefix: str = "") -> Iterator[tuple[str, "Module"]]:
        yield prefix, self
        for name, child in self._modules.items():
            child_prefix = f"{prefix}.{name}" if prefix else name
            yield from child.named_modules(child_prefix)

    def modules(self) -> Iterator["Module"]:
        for _, module in self.named_modules():
            yield module

    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Parameter]]:
        for module_name, module in self.named_modules(prefix):
            for name, param in module._parameters.items():
                full = f"{module_name}.{name}" if module_name else name
                yield full, param

    def parameters(self) -> list[Parameter]:
        return [p for _, p in self.named_parameters()]

    def named_buffers(self, prefix: str = "") -> Iterator[tuple[str, np.ndarray]]:
        for module_name, module in self.named_modules(prefix):
            for name, buf in module._buffers.items():
                full = f"{module_name}.{name}" if module_name else name
                yield full, buf

    # ------------------------------------------------------------------
    # train / eval, grads
    # ------------------------------------------------------------------
    def train(self, mode: bool = True) -> "Module":
        for module in self.modules():
            object.__setattr__(module, "training", mode)
        return self

    def eval(self) -> "Module":
        return self.train(False)

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()

    def num_parameters(self) -> int:
        """Total number of scalar trainable parameters."""
        return sum(p.size for p in self.parameters())

    def flat_parameter_view(self):
        """A :class:`~repro.nn.vector.FlatParamView` over this module's
        parameters in ``named_parameters`` order (the canonical flat layout
        used by replayed optimiser steps and the batched round engine)."""
        from .vector import FlatParamView

        return FlatParamView(self.parameters())

    # ------------------------------------------------------------------
    # state dict
    # ------------------------------------------------------------------
    def state_dict(self) -> dict[str, np.ndarray]:
        """Copy of all parameters and buffers, keyed by dotted path."""
        state = {name: p.data.copy() for name, p in self.named_parameters()}
        for name, buf in self.named_buffers():
            state[name] = np.array(buf, copy=True)
        return state

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        """Load parameters and buffers in place from :meth:`state_dict` output."""
        params = dict(self.named_parameters())
        missing = []
        for name, param in params.items():
            if name not in state:
                missing.append(name)
                continue
            value = np.asarray(state[name], dtype=param.data.dtype)
            if value.shape != param.data.shape:
                raise ValueError(
                    f"shape mismatch for {name}: "
                    f"{value.shape} vs {param.data.shape}"
                )
            param.data[...] = value
        if missing:
            raise KeyError(f"state dict missing parameters: {missing}")
        for module_name, module in self.named_modules():
            for name in module._buffers:
                full = f"{module_name}.{name}" if module_name else name
                if full in state:
                    module._buffers[name][...] = state[full]
                    getattr(module, name)[...] = state[full]

    # ------------------------------------------------------------------
    # call protocol
    # ------------------------------------------------------------------
    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def apply(self, fn: Callable[["Module"], None]) -> "Module":
        for module in self.modules():
            fn(module)
        return self


class Sequential(Module):
    """Chain of sub-modules applied in order."""

    def __init__(self, *modules: Module):
        super().__init__()
        self._order: list[str] = []
        for index, module in enumerate(modules):
            name = str(index)
            setattr(self, name, module)
            self._order.append(name)

    def forward(self, x: Tensor) -> Tensor:
        for name in self._order:
            x = getattr(self, name)(x)
        return x

    def __iter__(self):
        return (getattr(self, name) for name in self._order)

    def __len__(self) -> int:
        return len(self._order)

    def __getitem__(self, index: int) -> Module:
        return getattr(self, self._order[index])


class ModuleList(Module):
    """Indexed container of sub-modules (no implicit forward)."""

    def __init__(self, modules=()):
        super().__init__()
        self._order: list[str] = []
        for module in modules:
            self.append(module)

    def append(self, module: Module) -> "ModuleList":
        name = str(len(self._order))
        setattr(self, name, module)
        self._order.append(name)
        return self

    def __iter__(self):
        return (getattr(self, name) for name in self._order)

    def __len__(self) -> int:
        return len(self._order)

    def __getitem__(self, index: int) -> Module:
        return getattr(self, self._order[index])
