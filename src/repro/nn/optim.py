"""Optimisers for the numpy NN substrate.

Only SGD variants are provided — the paper trains every method with SGD and
per-workload learning rates / decrease rates (Section V-B).  The optimiser
exposes ``set_lr`` so the convergence-constrained schedules of Section IV
(:mod:`repro.nn.schedules`) can drive it.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from .module import Parameter


class SGD:
    """Stochastic gradient descent with momentum and weight decay."""

    def __init__(
        self,
        params: Iterable[Parameter],
        lr: float = 0.01,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
        nesterov: bool = False,
    ):
        self.params: list[Parameter] = list(params)
        if not self.params:
            raise ValueError("optimiser received an empty parameter list")
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        if nesterov and momentum <= 0:
            raise ValueError("nesterov momentum requires momentum > 0")
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self.nesterov = nesterov
        self._velocity: list[np.ndarray | None] = [None] * len(self.params)

    def set_lr(self, lr: float) -> None:
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.lr = lr

    def zero_grad(self) -> None:
        for param in self.params:
            param.zero_grad()

    def step(self) -> None:
        """Apply one update using the gradients currently stored on the params."""
        for index, param in enumerate(self.params):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            if self.momentum:
                velocity = self._velocity[index]
                if velocity is None:
                    velocity = np.zeros_like(param.data)
                    self._velocity[index] = velocity
                velocity *= self.momentum
                velocity += grad
                grad = grad + self.momentum * velocity if self.nesterov else velocity
            param.data -= self.lr * grad

    # ------------------------------------------------------------------
    # flat-view interop (replayed / batched steps)
    # ------------------------------------------------------------------
    def step_flat(self, view, grad: np.ndarray) -> None:
        """Apply one update from a flat gradient vector.

        ``view`` is a :class:`~repro.nn.vector.FlatParamView` over exactly
        this optimiser's parameters.  The whole update is three array ops on
        ``(D,)`` buffers instead of a per-parameter Python loop — the
        replayed-step fast path.  Gradients of exactly-zero are applied like
        any other (a replayed graph always produces a gradient for every
        parameter), so this matches :meth:`step` whenever every parameter
        received a gradient.  Velocity state is kept in the same
        per-parameter arrays ``step`` uses, gathered and scattered around
        the flat update.
        """
        w = view.gather()
        if self.momentum:
            velocity = self.velocity_to_flat(view)
            sgd_update_flat(
                w, grad, velocity, self.lr, self.momentum,
                self.weight_decay, self.nesterov,
            )
            self.velocity_from_flat(view, velocity)
        else:
            sgd_update_flat(
                w, grad, None, self.lr, 0.0, self.weight_decay, self.nesterov
            )
        view.scatter(w)

    def velocity_to_flat(self, view, out: np.ndarray | None = None) -> np.ndarray:
        """Gather momentum state into a flat ``(D,)`` buffer (zeros where unset)."""
        if out is None:
            out = np.empty(view.total, dtype=np.float32)
        for v, sl in zip(self._velocity, view.slices):
            if v is None:
                out[sl] = 0.0
            else:
                out[sl] = v.reshape(-1)
        return out

    def velocity_from_flat(self, view, flat: np.ndarray) -> None:
        """Scatter a flat ``(D,)`` buffer back into per-parameter velocity."""
        self._velocity = [
            flat[sl].reshape(shape).copy()
            for sl, shape in zip(view.slices, view.shapes)
        ]

    def state_dict(self) -> dict:
        return {
            "lr": self.lr,
            "momentum": self.momentum,
            "weight_decay": self.weight_decay,
            "velocity": [None if v is None else v.copy() for v in self._velocity],
        }

    def load_state_dict(self, state: dict) -> None:
        self.lr = state["lr"]
        self.momentum = state["momentum"]
        self.weight_decay = state["weight_decay"]
        self._velocity = [None if v is None else v.copy() for v in state["velocity"]]


def sgd_update_flat(
    w: np.ndarray,
    grad: np.ndarray,
    velocity: np.ndarray | None,
    lr,
    momentum: float = 0.0,
    weight_decay: float = 0.0,
    nesterov: bool = False,
) -> None:
    """SGD update on flat buffers, in place on ``w`` (and ``velocity``).

    Exactly the arithmetic of :meth:`SGD.step`, expressed on ``(D,)`` — or,
    stacked, ``(B, D)`` — float32 buffers.  ``lr`` may be a python float or a
    float32 ``(B, 1)`` column of per-client learning rates; numpy's weak
    scalar promotion keeps both bit-identical to the per-parameter update.
    """
    if weight_decay:
        grad = grad + weight_decay * w
    if momentum:
        velocity *= momentum
        velocity += grad
        grad = grad + momentum * velocity if nesterov else velocity
    w -= lr * grad


def clip_grad_norm(params: Sequence[Parameter], max_norm: float) -> float:
    """Clip gradients in place to a global L2 norm; returns the pre-clip norm."""
    total = 0.0
    for param in params:
        if param.grad is not None:
            total += float((param.grad.astype(np.float64) ** 2).sum())
    norm = float(np.sqrt(total))
    if norm > max_norm and norm > 0:
        scale = max_norm / norm
        for param in params:
            if param.grad is not None:
                param.grad *= scale
    return norm
