"""Optimisers for the numpy NN substrate.

Only SGD variants are provided — the paper trains every method with SGD and
per-workload learning rates / decrease rates (Section V-B).  The optimiser
exposes ``set_lr`` so the convergence-constrained schedules of Section IV
(:mod:`repro.nn.schedules`) can drive it.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from .module import Parameter


class SGD:
    """Stochastic gradient descent with momentum and weight decay."""

    def __init__(
        self,
        params: Iterable[Parameter],
        lr: float = 0.01,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
        nesterov: bool = False,
    ):
        self.params: list[Parameter] = list(params)
        if not self.params:
            raise ValueError("optimiser received an empty parameter list")
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        if nesterov and momentum <= 0:
            raise ValueError("nesterov momentum requires momentum > 0")
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self.nesterov = nesterov
        self._velocity: list[np.ndarray | None] = [None] * len(self.params)

    def set_lr(self, lr: float) -> None:
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.lr = lr

    def zero_grad(self) -> None:
        for param in self.params:
            param.zero_grad()

    def step(self) -> None:
        """Apply one update using the gradients currently stored on the params."""
        for index, param in enumerate(self.params):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            if self.momentum:
                velocity = self._velocity[index]
                if velocity is None:
                    velocity = np.zeros_like(param.data)
                    self._velocity[index] = velocity
                velocity *= self.momentum
                velocity += grad
                grad = grad + self.momentum * velocity if self.nesterov else velocity
            param.data -= self.lr * grad

    def state_dict(self) -> dict:
        return {
            "lr": self.lr,
            "momentum": self.momentum,
            "weight_decay": self.weight_decay,
            "velocity": [None if v is None else v.copy() for v in self._velocity],
        }

    def load_state_dict(self, state: dict) -> None:
        self.lr = state["lr"]
        self.momentum = state["momentum"]
        self.weight_decay = state["weight_decay"]
        self._velocity = [None if v is None else v.copy() for v in state["velocity"]]


def clip_grad_norm(params: Sequence[Parameter], max_norm: float) -> float:
    """Clip gradients in place to a global L2 norm; returns the pre-clip norm."""
    total = 0.0
    for param in params:
        if param.grad is not None:
            total += float((param.grad.astype(np.float64) ** 2).sum())
    norm = float(np.sqrt(total))
    if norm > max_norm and norm > 0:
        scale = max_norm / norm
        for param in params:
            if param.grad is not None:
                param.grad *= scale
    return norm
