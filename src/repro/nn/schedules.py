"""Learning-rate schedules, including the convergence-constrained pair of §IV.

Theorem 1 of the paper proves FedKNOW converges when

* the **local** weights' learning rate decays at rate ``O(r^-1/2)``, and
* the **global** weights' learning rate satisfies ``eta_G <= 2 / (mu * (gamma + r))``
  and decays at rate ``O(r^-1)``,

where ``r`` is the training-iteration index.  :class:`InverseSqrtDecay` and
:class:`BoundedInverseDecay` implement exactly those constraints;
:func:`make_convergent_schedules` builds the matched pair.  The plain
:class:`InverseTimeDecay` matches the "learning rate + decrease rate"
hyperparameters reported in Section V-B (e.g. lr 0.001, decrease rate 1e-4).
"""

from __future__ import annotations


class LRSchedule:
    """Maps an iteration index ``r`` (1-based) to a learning rate."""

    def lr(self, r: int) -> float:
        raise NotImplementedError

    def __call__(self, r: int) -> float:
        if r < 1:
            raise ValueError(f"iteration index must be >= 1, got {r}")
        return self.lr(r)


class ConstantLR(LRSchedule):
    def __init__(self, base_lr: float):
        if base_lr <= 0:
            raise ValueError("base_lr must be positive")
        self.base_lr = base_lr

    def lr(self, r: int) -> float:
        return self.base_lr


class InverseTimeDecay(LRSchedule):
    """``lr_r = base / (1 + decay * r)`` — the paper's lr/decrease-rate pairing."""

    def __init__(self, base_lr: float, decay: float):
        if base_lr <= 0 or decay < 0:
            raise ValueError("base_lr must be positive and decay non-negative")
        self.base_lr = base_lr
        self.decay = decay

    def lr(self, r: int) -> float:
        return self.base_lr / (1.0 + self.decay * r)


class InverseSqrtDecay(LRSchedule):
    """``lr_r = base / sqrt(r)`` — the O(r^-1/2) local-weight constraint."""

    def __init__(self, base_lr: float):
        if base_lr <= 0:
            raise ValueError("base_lr must be positive")
        self.base_lr = base_lr

    def lr(self, r: int) -> float:
        return self.base_lr / (r**0.5)


class BoundedInverseDecay(LRSchedule):
    """``lr_r = min(base, 2 / (mu * (gamma + r)))`` — the O(r^-1) global constraint.

    The ``2 / (mu * (gamma + r))`` cap is the admissibility condition of
    Theorem 1 for the global weights' learning rate.
    """

    def __init__(self, base_lr: float, mu: float = 1.0, gamma: float = 8.0):
        if base_lr <= 0 or mu <= 0 or gamma < 0:
            raise ValueError("base_lr and mu must be positive, gamma non-negative")
        self.base_lr = base_lr
        self.mu = mu
        self.gamma = gamma

    def bound(self, r: int) -> float:
        return 2.0 / (self.mu * (self.gamma + r))

    def lr(self, r: int) -> float:
        return min(self.base_lr, self.bound(r))


def make_convergent_schedules(
    local_lr: float, global_lr: float, mu: float = 1.0, gamma: float = 8.0
) -> tuple[InverseSqrtDecay, BoundedInverseDecay]:
    """Return the (local, global) schedule pair satisfying Theorem 1."""
    return InverseSqrtDecay(local_lr), BoundedInverseDecay(global_lr, mu, gamma)
