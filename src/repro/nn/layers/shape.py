"""Shape-manipulation layers."""

from __future__ import annotations

from ..module import Module
from ..tensor import Tensor


class Flatten(Module):
    """Flatten all dimensions except the batch dimension."""

    def forward(self, x: Tensor) -> Tensor:
        return x.flatten()


class ChannelShuffle(Module):
    """Interleave channel groups (ShuffleNetV2's shuffle operation)."""

    def __init__(self, groups: int):
        super().__init__()
        self.groups = groups

    def forward(self, x: Tensor) -> Tensor:
        n, c, h, w = x.shape
        if c % self.groups:
            raise ValueError(f"channels {c} not divisible by groups {self.groups}")
        return (
            x.reshape(n, self.groups, c // self.groups, h, w)
            .transpose(0, 2, 1, 3, 4)
            .reshape(n, c, h, w)
        )
