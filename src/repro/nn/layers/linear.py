"""Fully-connected layer."""

from __future__ import annotations

import numpy as np

from ...utils.rng import get_rng
from .. import init
from ..module import Module, Parameter
from ..tensor import Tensor


class Linear(Module):
    """Affine map ``y = x W + b`` with weight of shape ``(in, out)``."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        rng: np.random.Generator | None = None,
    ):
        super().__init__()
        rng = get_rng(rng)
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(init.kaiming_uniform((in_features, out_features), rng))
        self.bias = Parameter(init.zeros((out_features,))) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        out = x @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out
