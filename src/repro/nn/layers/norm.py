"""Batch normalisation layers."""

from __future__ import annotations

import numpy as np

from .. import functional as F
from .. import init
from ..module import Module, Parameter
from ..tensor import Tensor


class BatchNorm2d(Module):
    """Batch normalisation over the channel axis of ``(N, C, H, W)`` inputs."""

    def __init__(self, num_features: int, momentum: float = 0.1, eps: float = 1e-5):
        super().__init__()
        self.num_features = num_features
        self.momentum = momentum
        self.eps = eps
        self.weight = Parameter(init.ones((num_features,)))
        self.bias = Parameter(init.zeros((num_features,)))
        self.register_buffer("running_mean", np.zeros(num_features, dtype=np.float32))
        self.register_buffer("running_var", np.ones(num_features, dtype=np.float32))

    def forward(self, x: Tensor) -> Tensor:
        return F.batch_norm(
            x,
            self.weight,
            self.bias,
            self.running_mean,
            self.running_var,
            training=self.training,
            momentum=self.momentum,
            eps=self.eps,
        )


class BatchNorm1d(BatchNorm2d):
    """Batch normalisation over the feature axis of ``(N, C)`` inputs."""
