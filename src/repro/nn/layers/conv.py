"""2-D convolution layer (supports grouped / depthwise convolution)."""

from __future__ import annotations

import numpy as np

from ...utils.rng import get_rng
from .. import functional as F
from .. import init
from ..module import Module, Parameter
from ..tensor import Tensor


class Conv2d(Module):
    """Grouped 2-D convolution over ``(N, C, H, W)`` inputs."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size,
        stride=1,
        padding=0,
        groups: int = 1,
        bias: bool = True,
        rng: np.random.Generator | None = None,
    ):
        super().__init__()
        rng = get_rng(rng)
        if in_channels % groups:
            raise ValueError(
                f"in_channels {in_channels} not divisible by groups {groups}"
            )
        kh, kw = F._pair(kernel_size)
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = (kh, kw)
        self.stride = F._pair(stride)
        self.padding = F._pair(padding)
        self.groups = groups
        self.weight = Parameter(
            init.kaiming_normal((out_channels, in_channels // groups, kh, kw), rng)
        )
        self.bias = Parameter(init.zeros((out_channels,))) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        return F.conv2d(
            x,
            self.weight,
            self.bias,
            stride=self.stride,
            padding=self.padding,
            groups=self.groups,
        )

    def output_spatial(self, h: int, w: int) -> tuple[int, int]:
        """Spatial size of the output for an ``h x w`` input (used by the FLOP model)."""
        kh, kw = self.kernel_size
        sh, sw = self.stride
        ph, pw = self.padding
        return (h + 2 * ph - kh) // sh + 1, (w + 2 * pw - kw) // sw + 1
