"""Dropout layer."""

from __future__ import annotations

import numpy as np

from ...utils.rng import get_rng
from .. import functional as F
from ..module import Module
from ..tensor import Tensor


class Dropout(Module):
    """Inverted dropout; a no-op in eval mode."""

    def __init__(self, p: float = 0.5, rng: np.random.Generator | None = None):
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError(f"dropout probability must be in [0, 1), got {p}")
        self.p = p
        self._rng = get_rng(rng)

    def forward(self, x: Tensor) -> Tensor:
        return F.dropout(x, self.p, self.training, self._rng)
