"""Pooling layers."""

from __future__ import annotations

from .. import functional as F
from ..module import Module
from ..tensor import Tensor


class MaxPool2d(Module):
    def __init__(self, kernel_size=2, stride=None, padding=0):
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding

    def forward(self, x: Tensor) -> Tensor:
        return F.max_pool2d(x, self.kernel_size, self.stride, self.padding)


class AvgPool2d(Module):
    def __init__(self, kernel_size=2, stride=None, padding=0):
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding

    def forward(self, x: Tensor) -> Tensor:
        return F.avg_pool2d(x, self.kernel_size, self.stride, self.padding)


class GlobalAvgPool2d(Module):
    """Adaptive average pooling down to ``(N, C)``."""

    def forward(self, x: Tensor) -> Tensor:
        return F.global_avg_pool2d(x)
