"""Layer catalogue for the numpy NN substrate."""

from .activation import Identity, ReLU, Sigmoid, Tanh
from .conv import Conv2d
from .dropout import Dropout
from .linear import Linear
from .norm import BatchNorm1d, BatchNorm2d
from .pooling import AvgPool2d, GlobalAvgPool2d, MaxPool2d
from .shape import ChannelShuffle, Flatten

__all__ = [
    "AvgPool2d",
    "BatchNorm1d",
    "BatchNorm2d",
    "ChannelShuffle",
    "Conv2d",
    "Dropout",
    "Flatten",
    "GlobalAvgPool2d",
    "Identity",
    "Linear",
    "MaxPool2d",
    "ReLU",
    "Sigmoid",
    "Tanh",
]
