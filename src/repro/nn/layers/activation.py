"""Activation layers."""

from __future__ import annotations

from ..module import Module
from ..tensor import Tensor


class ReLU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.relu()


class Sigmoid(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.sigmoid()


class Tanh(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.tanh()


class Identity(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x
