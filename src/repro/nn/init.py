"""Weight initialisation schemes (Kaiming / Xavier families).

All initialisers take an explicit :class:`numpy.random.Generator` so model
construction is fully deterministic given a seed — a requirement for the
federated experiments, where every method must start from identical weights
(Section V-B of the paper: "the model is trained using the same initial
weights").
"""

from __future__ import annotations

import numpy as np


def _fan_in_out(shape: tuple[int, ...]) -> tuple[int, int]:
    if len(shape) == 2:  # linear: (in, out)
        return shape[0], shape[1]
    if len(shape) == 4:  # conv: (out, in/groups, kh, kw)
        receptive = shape[2] * shape[3]
        return shape[1] * receptive, shape[0] * receptive
    raise ValueError(f"unsupported weight shape {shape}")


def kaiming_normal(
    shape: tuple[int, ...], rng: np.random.Generator, gain: float = np.sqrt(2.0)
) -> np.ndarray:
    """He-normal initialisation (appropriate for ReLU networks)."""
    fan_in, _ = _fan_in_out(shape)
    std = gain / np.sqrt(fan_in)
    return rng.normal(0.0, std, size=shape).astype(np.float32)


def kaiming_uniform(
    shape: tuple[int, ...], rng: np.random.Generator, gain: float = np.sqrt(2.0)
) -> np.ndarray:
    """He-uniform initialisation."""
    fan_in, _ = _fan_in_out(shape)
    bound = gain * np.sqrt(3.0 / fan_in)
    return rng.uniform(-bound, bound, size=shape).astype(np.float32)


def xavier_uniform(shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """Glorot-uniform initialisation."""
    fan_in, fan_out = _fan_in_out(shape)
    bound = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=shape).astype(np.float32)


def zeros(shape: tuple[int, ...]) -> np.ndarray:
    return np.zeros(shape, dtype=np.float32)


def ones(shape: tuple[int, ...]) -> np.ndarray:
    return np.ones(shape, dtype=np.float32)
