"""Reverse-mode automatic differentiation on numpy arrays.

This module is the foundation of the ``repro.nn`` deep-learning substrate
that replaces PyTorch in this reproduction.  A :class:`Tensor` wraps a numpy
array and records the operations applied to it; calling :meth:`Tensor.backward`
on a scalar result propagates gradients to every tensor created with
``requires_grad=True``.

The engine is deliberately small: a dynamic tape of parent links plus a
closure per op.  It supports everything the FedKNOW experiments need —
broadcasting arithmetic, matrix products, reductions, views, slicing — while
convolution, pooling and the fused losses live in :mod:`repro.nn.functional`.
"""

from __future__ import annotations

import contextlib
import threading
from typing import Callable, Iterable, Sequence

import numpy as np

from . import profiler

DEFAULT_DTYPE = np.float32


class _GradMode(threading.local):
    """Per-thread grad mode, so concurrent round-engine clients can
    enter/leave ``no_grad`` without clobbering each other's tape."""

    enabled = True


_grad_mode = _GradMode()


@contextlib.contextmanager
def no_grad():
    """Context manager that disables graph construction (used for eval)."""
    previous = _grad_mode.enabled
    _grad_mode.enabled = False
    try:
        yield
    finally:
        _grad_mode.enabled = previous


def is_grad_enabled() -> bool:
    """Return whether new operations will be recorded on the autograd tape."""
    return _grad_mode.enabled


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` down to ``shape``, undoing numpy broadcasting."""
    if grad.shape == shape:
        return grad
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    axes = tuple(
        i for i, (g, s) in enumerate(zip(grad.shape, shape)) if s == 1 and g != 1
    )
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A numpy-backed array with reverse-mode autograd support."""

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents")

    def __init__(self, data, requires_grad: bool = False, dtype=None):
        if isinstance(data, Tensor):
            data = data.data
        self.data = np.asarray(data, dtype=dtype or DEFAULT_DTYPE)
        self.grad: np.ndarray | None = None
        self.requires_grad = bool(requires_grad)
        self._backward: Callable[[np.ndarray], None] | None = None
        self._parents: tuple[Tensor, ...] = ()

    # ------------------------------------------------------------------
    # basic introspection
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    def numpy(self) -> np.ndarray:
        """Return the underlying numpy array (shared, not copied)."""
        return self.data

    def item(self) -> float:
        return float(self.data.item())

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}, dtype={self.data.dtype}{flag})"

    # ------------------------------------------------------------------
    # autograd machinery
    # ------------------------------------------------------------------
    def detach(self) -> "Tensor":
        """Return a tensor sharing data but cut off from the graph."""
        return Tensor(self.data, requires_grad=False, dtype=self.data.dtype)

    def zero_grad(self) -> None:
        self.grad = None

    def accumulate_grad(self, grad: np.ndarray) -> None:
        """Add ``grad`` into this tensor's gradient buffer."""
        if self.grad is None:
            self.grad = grad.astype(self.data.dtype, copy=True)
        else:
            self.grad += grad

    def backward(self, grad: np.ndarray | None = None) -> None:
        """Backpropagate from this tensor through the recorded graph."""
        if not self.requires_grad:
            raise RuntimeError("backward() called on a tensor that does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError("grad must be provided for non-scalar backward()")
            grad = np.ones_like(self.data)
        topo: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if parent.requires_grad and id(parent) not in visited:
                    stack.append((parent, False))
        self.accumulate_grad(np.asarray(grad, dtype=self.data.dtype))
        for node in reversed(topo):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)

    # ------------------------------------------------------------------
    # graph-building helper
    # ------------------------------------------------------------------
    @staticmethod
    def _make(
        data: np.ndarray,
        parents: Sequence["Tensor"],
        backward: Callable[[np.ndarray], None],
    ) -> "Tensor":
        """Create an op result, wiring the backward closure if grads flow."""
        needs = _grad_mode.enabled and any(p.requires_grad for p in parents)
        out = Tensor(data, requires_grad=needs, dtype=data.dtype)
        if needs:
            out._parents = tuple(p for p in parents if p.requires_grad)
            out._backward = backward
        return out

    @staticmethod
    def _coerce(other) -> "Tensor":
        return other if isinstance(other, Tensor) else Tensor(other)

    # ------------------------------------------------------------------
    # arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other) -> "Tensor":
        other = self._coerce(other)
        out_data = self.data + other.data

        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                self.accumulate_grad(_unbroadcast(g, self.shape))
            if other.requires_grad:
                other.accumulate_grad(_unbroadcast(g, other.shape))

        return self._make(out_data, (self, other), backward)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        def backward(g: np.ndarray) -> None:
            self.accumulate_grad(-g)

        return self._make(-self.data, (self,), backward)

    def __sub__(self, other) -> "Tensor":
        other = self._coerce(other)
        out_data = self.data - other.data

        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                self.accumulate_grad(_unbroadcast(g, self.shape))
            if other.requires_grad:
                other.accumulate_grad(_unbroadcast(-g, other.shape))

        return self._make(out_data, (self, other), backward)

    def __rsub__(self, other) -> "Tensor":
        return self._coerce(other).__sub__(self)

    def __mul__(self, other) -> "Tensor":
        other = self._coerce(other)
        out_data = self.data * other.data

        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                self.accumulate_grad(_unbroadcast(g * other.data, self.shape))
            if other.requires_grad:
                other.accumulate_grad(_unbroadcast(g * self.data, other.shape))

        return self._make(out_data, (self, other), backward)

    __rmul__ = __mul__

    def __truediv__(self, other) -> "Tensor":
        other = self._coerce(other)
        out_data = self.data / other.data

        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                self.accumulate_grad(_unbroadcast(g / other.data, self.shape))
            if other.requires_grad:
                other.accumulate_grad(
                    _unbroadcast(-g * self.data / (other.data**2), other.shape)
                )

        return self._make(out_data, (self, other), backward)

    def __rtruediv__(self, other) -> "Tensor":
        return self._coerce(other).__truediv__(self)

    def __pow__(self, exponent: float) -> "Tensor":
        if not np.isscalar(exponent):
            raise TypeError("only scalar exponents are supported")
        out_data = self.data**exponent

        def backward(g: np.ndarray) -> None:
            self.accumulate_grad(g * exponent * self.data ** (exponent - 1))

        return self._make(out_data, (self,), backward)

    def __matmul__(self, other) -> "Tensor":
        other = self._coerce(other)
        out_data = self.data @ other.data
        if profiler.is_profiling():
            profiler.record_op(2.0 * self.data.size * other.data.shape[-1],
                               float(out_data.size))

        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                self.accumulate_grad(g @ other.data.T)
            if other.requires_grad:
                other.accumulate_grad(self.data.T @ g)

        return self._make(out_data, (self, other), backward)

    # ------------------------------------------------------------------
    # elementwise nonlinearities
    # ------------------------------------------------------------------
    def relu(self) -> "Tensor":
        mask = self.data > 0
        out_data = self.data * mask

        def backward(g: np.ndarray) -> None:
            self.accumulate_grad(g * mask)

        return self._make(out_data, (self,), backward)

    def sigmoid(self) -> "Tensor":
        out_data = 1.0 / (1.0 + np.exp(-self.data))

        def backward(g: np.ndarray) -> None:
            self.accumulate_grad(g * out_data * (1.0 - out_data))

        return self._make(out_data, (self,), backward)

    def tanh(self) -> "Tensor":
        out_data = np.tanh(self.data)

        def backward(g: np.ndarray) -> None:
            self.accumulate_grad(g * (1.0 - out_data**2))

        return self._make(out_data, (self,), backward)

    def exp(self) -> "Tensor":
        out_data = np.exp(self.data)

        def backward(g: np.ndarray) -> None:
            self.accumulate_grad(g * out_data)

        return self._make(out_data, (self,), backward)

    def log(self) -> "Tensor":
        out_data = np.log(self.data)

        def backward(g: np.ndarray) -> None:
            self.accumulate_grad(g / self.data)

        return self._make(out_data, (self,), backward)

    def sqrt(self) -> "Tensor":
        out_data = np.sqrt(self.data)

        def backward(g: np.ndarray) -> None:
            self.accumulate_grad(g * 0.5 / out_data)

        return self._make(out_data, (self,), backward)

    def abs(self) -> "Tensor":
        sign = np.sign(self.data)
        out_data = np.abs(self.data)

        def backward(g: np.ndarray) -> None:
            self.accumulate_grad(g * sign)

        return self._make(out_data, (self,), backward)

    # ------------------------------------------------------------------
    # reductions
    # ------------------------------------------------------------------
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.sum(axis=axis, keepdims=keepdims)
        in_shape = self.shape

        def backward(g: np.ndarray) -> None:
            grad = g
            if not keepdims and axis is not None:
                axes = axis if isinstance(axis, tuple) else (axis,)
                axes = tuple(a % len(in_shape) for a in axes)
                shape = tuple(
                    1 if i in axes else s for i, s in enumerate(in_shape)
                )
                grad = grad.reshape(shape)
            self.accumulate_grad(np.broadcast_to(grad, in_shape).astype(g.dtype))

        return self._make(np.asarray(out_data), (self,), backward)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.size
        else:
            axes = axis if isinstance(axis, tuple) else (axis,)
            count = int(np.prod([self.shape[a] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.max(axis=axis, keepdims=keepdims)
        max_keep = self.data.max(axis=axis, keepdims=True)
        mask = self.data == max_keep
        counts = mask.sum(axis=axis, keepdims=True)
        in_shape = self.shape

        def backward(g: np.ndarray) -> None:
            grad = g
            if not keepdims and axis is not None:
                axes = axis if isinstance(axis, tuple) else (axis,)
                axes = tuple(a % len(in_shape) for a in axes)
                shape = tuple(1 if i in axes else s for i, s in enumerate(in_shape))
                grad = grad.reshape(shape)
            elif not keepdims and axis is None:
                grad = np.reshape(grad, (1,) * len(in_shape))
            self.accumulate_grad((mask * grad / counts).astype(g.dtype))

        return self._make(np.asarray(out_data), (self,), backward)

    # ------------------------------------------------------------------
    # shape manipulation
    # ------------------------------------------------------------------
    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        in_shape = self.shape
        out_data = self.data.reshape(shape)

        def backward(g: np.ndarray) -> None:
            self.accumulate_grad(g.reshape(in_shape))

        return self._make(out_data, (self,), backward)

    def transpose(self, *axes) -> "Tensor":
        if len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        if not axes:
            axes = tuple(reversed(range(self.ndim)))
        inverse = np.argsort(axes)
        out_data = self.data.transpose(axes)

        def backward(g: np.ndarray) -> None:
            self.accumulate_grad(g.transpose(inverse))

        return self._make(out_data, (self,), backward)

    def flatten(self) -> "Tensor":
        """Flatten all dimensions except the leading (batch) one."""
        return self.reshape(self.shape[0], -1)

    def __getitem__(self, index) -> "Tensor":
        out_data = self.data[index]
        in_shape = self.shape
        in_dtype = self.data.dtype

        def backward(g: np.ndarray) -> None:
            full = np.zeros(in_shape, dtype=in_dtype)
            np.add.at(full, index, g)
            self.accumulate_grad(full)

        return self._make(np.ascontiguousarray(out_data), (self,), backward)


def concat(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Concatenate tensors along ``axis`` (differentiable)."""
    tensors = [Tensor._coerce(t) for t in tensors]
    out_data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(g: np.ndarray) -> None:
        for tensor, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
            if tensor.requires_grad:
                index = [slice(None)] * g.ndim
                index[axis] = slice(start, stop)
                tensor.accumulate_grad(np.ascontiguousarray(g[tuple(index)]))

    return Tensor._make(out_data, tensors, backward)


def stack(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new ``axis`` (differentiable)."""
    tensors = [Tensor._coerce(t) for t in tensors]
    out_data = np.stack([t.data for t in tensors], axis=axis)

    def backward(g: np.ndarray) -> None:
        slices = np.moveaxis(g, axis, 0)
        for tensor, piece in zip(tensors, slices):
            if tensor.requires_grad:
                tensor.accumulate_grad(np.ascontiguousarray(piece))

    return Tensor._make(out_data, tensors, backward)


def as_tensor(value, dtype=None) -> Tensor:
    """Coerce ``value`` to a :class:`Tensor` without copying when possible."""
    if isinstance(value, Tensor):
        return value
    return Tensor(value, dtype=dtype)
