"""Reverse-mode automatic differentiation on numpy arrays.

This module is the foundation of the ``repro.nn`` deep-learning substrate
that replaces PyTorch in this reproduction.  A :class:`Tensor` wraps a numpy
array and records the operations applied to it; calling :meth:`Tensor.backward`
on a scalar result propagates gradients to every tensor created with
``requires_grad=True``.

Every operation is a registered :class:`~repro.nn.graph.OpDef` — a
shape-polymorphic ``forward(ctx, *arrays)`` / ``vjp(ctx, g)`` pair over raw
numpy arrays — and :func:`apply_op` is the single dispatch point: it runs
the forward, wires one generic backward hook onto the dynamic tape, and,
when a :class:`~repro.nn.graph.GraphTape` is capturing on this thread,
records an op node so the same graph can later be replayed (or replayed
batched across clients) without rebuilding Tensors or closures.  Structured
ops — convolution, pooling, the fused losses — register themselves the same
way from :mod:`repro.nn.functional`.
"""

from __future__ import annotations

import contextlib
import threading
from typing import Callable, Sequence

import numpy as np

from . import graph, profiler
from .graph import _unbroadcast

DEFAULT_DTYPE = np.float32


class _GradMode(threading.local):
    """Per-thread grad mode, so concurrent round-engine clients can
    enter/leave ``no_grad`` without clobbering each other's tape."""

    enabled = True


_grad_mode = _GradMode()


@contextlib.contextmanager
def no_grad():
    """Context manager that disables graph construction (used for eval)."""
    previous = _grad_mode.enabled
    _grad_mode.enabled = False
    try:
        yield
    finally:
        _grad_mode.enabled = previous


def is_grad_enabled() -> bool:
    """Return whether new operations will be recorded on the autograd tape."""
    return _grad_mode.enabled


class Tensor:
    """A numpy-backed array with reverse-mode autograd support."""

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents")

    def __init__(self, data, requires_grad: bool = False, dtype=None):
        if isinstance(data, Tensor):
            data = data.data
        self.data = np.asarray(data, dtype=dtype or DEFAULT_DTYPE)
        self.grad: np.ndarray | None = None
        self.requires_grad = bool(requires_grad)
        self._backward: Callable[[np.ndarray], None] | None = None
        self._parents: tuple[Tensor, ...] = ()

    # ------------------------------------------------------------------
    # basic introspection
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    def numpy(self) -> np.ndarray:
        """Return the underlying numpy array (shared, not copied)."""
        return self.data

    def item(self) -> float:
        return float(self.data.item())

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}, dtype={self.data.dtype}{flag})"

    # ------------------------------------------------------------------
    # autograd machinery
    # ------------------------------------------------------------------
    def detach(self) -> "Tensor":
        """Return a tensor sharing data but cut off from the graph.

        Under an active capture the cut is recorded as a ``stops_grad``
        identity node, so replayed graphs stop gradients at the same spot;
        either way the returned tensor shares ``data`` without copying.
        """
        if graph.active_tape() is not None:
            return apply_op(_DETACH, (self,))
        return Tensor(self.data, requires_grad=False, dtype=self.data.dtype)

    def zero_grad(self) -> None:
        self.grad = None

    def accumulate_grad(self, grad: np.ndarray) -> None:
        """Add ``grad`` into this tensor's gradient buffer."""
        if self.grad is None:
            self.grad = grad.astype(self.data.dtype, copy=True)
        else:
            self.grad += grad

    def backward(self, grad: np.ndarray | None = None) -> None:
        """Backpropagate from this tensor through the recorded graph."""
        if not self.requires_grad:
            raise RuntimeError("backward() called on a tensor that does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError("grad must be provided for non-scalar backward()")
            grad = np.ones_like(self.data)
        topo: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if parent.requires_grad and id(parent) not in visited:
                    stack.append((parent, False))
        self.accumulate_grad(np.asarray(grad, dtype=self.data.dtype))
        for node in reversed(topo):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)

    @staticmethod
    def _coerce(other) -> "Tensor":
        return other if isinstance(other, Tensor) else Tensor(other)

    # ------------------------------------------------------------------
    # arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other) -> "Tensor":
        return apply_op(_ADD, (self, other))

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        return apply_op(_NEG, (self,))

    def __sub__(self, other) -> "Tensor":
        return apply_op(_SUB, (self, other))

    def __rsub__(self, other) -> "Tensor":
        return self._coerce(other).__sub__(self)

    def __mul__(self, other) -> "Tensor":
        return apply_op(_MUL, (self, other))

    __rmul__ = __mul__

    def __truediv__(self, other) -> "Tensor":
        return apply_op(_DIV, (self, other))

    def __rtruediv__(self, other) -> "Tensor":
        return self._coerce(other).__truediv__(self)

    def __pow__(self, exponent: float) -> "Tensor":
        if not np.isscalar(exponent):
            raise TypeError("only scalar exponents are supported")
        return apply_op(_POW, (self,), exponent=exponent)

    def __matmul__(self, other) -> "Tensor":
        return apply_op(_MATMUL, (self, other))

    # ------------------------------------------------------------------
    # elementwise nonlinearities
    # ------------------------------------------------------------------
    def relu(self) -> "Tensor":
        return apply_op(_RELU, (self,))

    def sigmoid(self) -> "Tensor":
        return apply_op(_SIGMOID, (self,))

    def tanh(self) -> "Tensor":
        return apply_op(_TANH, (self,))

    def exp(self) -> "Tensor":
        return apply_op(_EXP, (self,))

    def log(self) -> "Tensor":
        return apply_op(_LOG, (self,))

    def sqrt(self) -> "Tensor":
        return apply_op(_SQRT, (self,))

    def abs(self) -> "Tensor":
        return apply_op(_ABS, (self,))

    # ------------------------------------------------------------------
    # reductions
    # ------------------------------------------------------------------
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        return apply_op(_SUM, (self,), axis=axis, keepdims=keepdims)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.size
        else:
            axes = axis if isinstance(axis, tuple) else (axis,)
            count = int(np.prod([self.shape[a] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        return apply_op(_MAX, (self,), axis=axis, keepdims=keepdims)

    # ------------------------------------------------------------------
    # shape manipulation
    # ------------------------------------------------------------------
    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        return apply_op(_RESHAPE, (self,), shape=shape)

    def transpose(self, *axes) -> "Tensor":
        if len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        if not axes:
            axes = tuple(reversed(range(self.ndim)))
        axes = tuple(a % self.ndim for a in axes)
        return apply_op(_TRANSPOSE, (self,), axes=axes)

    def flatten(self) -> "Tensor":
        """Flatten all dimensions except the leading (batch) one."""
        return self.reshape(self.shape[0], -1)

    def __getitem__(self, index) -> "Tensor":
        return apply_op(_GETITEM, (self,), index=index)


# ----------------------------------------------------------------------
# the single op dispatch point
# ----------------------------------------------------------------------
def apply_op(op: graph.OpDef | str, args: Sequence, **params) -> Tensor:
    """Execute a registered op on tensors (coercing raw values).

    Runs the op's forward on the raw arrays, wires the generic backward
    hook when gradients flow, and records an op node on the thread's
    active :class:`~repro.nn.graph.GraphTape` (if any).  This is the only
    place ops execute, so replacing dispatch (replay) replaces everything.
    """
    if isinstance(op, str):
        op = graph.OPS[op]
    tensors = tuple(Tensor._coerce(a) for a in args)
    ctx = {"needs": tuple(t.requires_grad for t in tensors)}
    out_data = op.forward(ctx, *(t.data for t in tensors), **params)
    if profiler.is_profiling():
        profiler.record_dispatch()
    requires = (
        _grad_mode.enabled
        and not op.stops_grad
        and any(t.requires_grad for t in tensors)
    )
    out = Tensor(out_data, requires_grad=requires, dtype=out_data.dtype)
    tape = graph.active_tape()
    if tape is not None:
        tape.record(op, tensors, params, out)
    if requires:
        out._parents = tuple(t for t in tensors if t.requires_grad)

        def _backward(g: np.ndarray, op=op, ctx=ctx, tensors=tensors) -> None:
            for t, tg in zip(tensors, op.vjp(ctx, g)):
                if tg is not None and t.requires_grad:
                    t.accumulate_grad(tg)

        out._backward = _backward
    return out


# ----------------------------------------------------------------------
# batched-broadcast helper
# ----------------------------------------------------------------------
def _align_batched(ctx, arrays):
    """Reshape batched operands so the leading client axis lines up.

    Numpy broadcasting aligns from the trailing side, so a batched
    ``(B, o)`` bias meeting a batched ``(B, n, o)`` product must become
    ``(B, 1, o)``; unbatched constants keep their natural trailing
    alignment.
    """
    out_nd = ctx["out_ndim"] + 1
    b = ctx["B"]
    aligned = []
    for arr, is_batched in zip(arrays, ctx["arg_batched"]):
        if is_batched and arr.ndim < out_nd:
            arr = arr.reshape((b,) + (1,) * (out_nd - arr.ndim) + arr.shape[1:])
        aligned.append(arr)
    return aligned


def _binary_grads(ctx, raw_a, raw_b):
    """Unbroadcast batched binary-op grads back to the runtime arg shapes."""
    (s0, s1) = ctx["shapes"]
    (a0, a1) = ctx["ashapes"]
    ga = _unbroadcast(raw_a, a0).reshape(s0) if raw_a is not None else None
    gb = _unbroadcast(raw_b, a1).reshape(s1) if raw_b is not None else None
    return ga, gb


# ----------------------------------------------------------------------
# arithmetic ops
# ----------------------------------------------------------------------
def _add_fwd(ctx, a, b):
    ctx["shapes"] = (a.shape, b.shape)
    return a + b


def _add_vjp(ctx, g):
    needs = ctx["needs"]
    s0, s1 = ctx["shapes"]
    return (
        _unbroadcast(g, s0) if needs[0] else None,
        _unbroadcast(g, s1) if needs[1] else None,
    )


def _add_bfwd(ctx, a, b):
    a2, b2 = _align_batched(ctx, (a, b))
    ctx["shapes"] = (a.shape, b.shape)
    ctx["ashapes"] = (a2.shape, b2.shape)
    return a2 + b2


def _add_bvjp(ctx, g):
    needs = ctx["needs"]
    return _binary_grads(ctx, g if needs[0] else None, g if needs[1] else None)


_ADD = graph.register_op(
    "add", _add_fwd, _add_vjp, batched_forward=_add_bfwd,
    batched_vjp=_add_bvjp, batch_exact=True,
)


def _neg_fwd(ctx, a):
    return -a


def _neg_vjp(ctx, g):
    return (-g,)


_NEG = graph.register_op("neg", _neg_fwd, _neg_vjp, elementwise=True)


def _sub_fwd(ctx, a, b):
    ctx["shapes"] = (a.shape, b.shape)
    return a - b


def _sub_vjp(ctx, g):
    needs = ctx["needs"]
    s0, s1 = ctx["shapes"]
    return (
        _unbroadcast(g, s0) if needs[0] else None,
        _unbroadcast(-g, s1) if needs[1] else None,
    )


def _sub_bfwd(ctx, a, b):
    a2, b2 = _align_batched(ctx, (a, b))
    ctx["shapes"] = (a.shape, b.shape)
    ctx["ashapes"] = (a2.shape, b2.shape)
    return a2 - b2


def _sub_bvjp(ctx, g):
    needs = ctx["needs"]
    return _binary_grads(ctx, g if needs[0] else None, -g if needs[1] else None)


_SUB = graph.register_op(
    "sub", _sub_fwd, _sub_vjp, batched_forward=_sub_bfwd,
    batched_vjp=_sub_bvjp, batch_exact=True,
)


def _mul_fwd(ctx, a, b):
    ctx["shapes"] = (a.shape, b.shape)
    ctx["a"], ctx["b"] = a, b
    return a * b


def _mul_vjp(ctx, g):
    needs = ctx["needs"]
    s0, s1 = ctx["shapes"]
    return (
        _unbroadcast(g * ctx["b"], s0) if needs[0] else None,
        _unbroadcast(g * ctx["a"], s1) if needs[1] else None,
    )


def _mul_bfwd(ctx, a, b):
    a2, b2 = _align_batched(ctx, (a, b))
    ctx["shapes"] = (a.shape, b.shape)
    ctx["ashapes"] = (a2.shape, b2.shape)
    ctx["a"], ctx["b"] = a2, b2
    return a2 * b2


def _mul_bvjp(ctx, g):
    needs = ctx["needs"]
    return _binary_grads(
        ctx,
        g * ctx["b"] if needs[0] else None,
        g * ctx["a"] if needs[1] else None,
    )


_MUL = graph.register_op(
    "mul", _mul_fwd, _mul_vjp, batched_forward=_mul_bfwd,
    batched_vjp=_mul_bvjp, batch_exact=True,
)


def _div_fwd(ctx, a, b):
    ctx["shapes"] = (a.shape, b.shape)
    ctx["a"], ctx["b"] = a, b
    return a / b


def _div_vjp(ctx, g):
    needs = ctx["needs"]
    s0, s1 = ctx["shapes"]
    a, b = ctx["a"], ctx["b"]
    return (
        _unbroadcast(g / b, s0) if needs[0] else None,
        _unbroadcast(-g * a / (b**2), s1) if needs[1] else None,
    )


def _div_bfwd(ctx, a, b):
    a2, b2 = _align_batched(ctx, (a, b))
    ctx["shapes"] = (a.shape, b.shape)
    ctx["ashapes"] = (a2.shape, b2.shape)
    ctx["a"], ctx["b"] = a2, b2
    return a2 / b2


def _div_bvjp(ctx, g):
    needs = ctx["needs"]
    a, b = ctx["a"], ctx["b"]
    return _binary_grads(
        ctx,
        g / b if needs[0] else None,
        -g * a / (b**2) if needs[1] else None,
    )


_DIV = graph.register_op(
    "div", _div_fwd, _div_vjp, batched_forward=_div_bfwd,
    batched_vjp=_div_bvjp, batch_exact=True,
)


def _pow_fwd(ctx, a, *, exponent):
    ctx["a"] = a
    ctx["exponent"] = exponent
    return a**exponent


def _pow_vjp(ctx, g):
    exponent = ctx["exponent"]
    return (g * exponent * ctx["a"] ** (exponent - 1),)


_POW = graph.register_op("pow", _pow_fwd, _pow_vjp, elementwise=True)


def _matmul_fwd(ctx, a, b):
    out = a @ b
    if profiler.is_profiling():
        profiler.record_op(2.0 * a.size * b.shape[-1], float(out.size))
    ctx["a"], ctx["b"] = a, b
    return out


def _matmul_vjp(ctx, g):
    needs = ctx["needs"]
    a, b = ctx["a"], ctx["b"]
    ga = gb = None
    if needs[0]:
        ga = g @ (np.swapaxes(b, -1, -2) if b.ndim > 1 else b.T)
        if ga.shape != a.shape:
            ga = _unbroadcast(ga, a.shape)
    if needs[1]:
        gb = (np.swapaxes(a, -1, -2) if a.ndim > 1 else a.T) @ g
        if gb.shape != b.shape:
            gb = _unbroadcast(gb, b.shape)
    return ga, gb


_MATMUL = graph.register_op(
    "matmul", _matmul_fwd, _matmul_vjp, batched_forward=_matmul_fwd,
    batched_vjp=_matmul_vjp, batch_exact=True,
)


# ----------------------------------------------------------------------
# elementwise nonlinearities
# ----------------------------------------------------------------------
def _relu_fwd(ctx, a):
    mask = a > 0
    ctx["mask"] = mask
    return a * mask


def _relu_vjp(ctx, g):
    return (g * ctx["mask"],)


_RELU = graph.register_op("relu", _relu_fwd, _relu_vjp, elementwise=True)


def _sigmoid_fwd(ctx, a):
    out = 1.0 / (1.0 + np.exp(-a))
    ctx["out"] = out
    return out


def _sigmoid_vjp(ctx, g):
    out = ctx["out"]
    return (g * out * (1.0 - out),)


_SIGMOID = graph.register_op("sigmoid", _sigmoid_fwd, _sigmoid_vjp, elementwise=True)


def _tanh_fwd(ctx, a):
    out = np.tanh(a)
    ctx["out"] = out
    return out


def _tanh_vjp(ctx, g):
    return (g * (1.0 - ctx["out"] ** 2),)


_TANH = graph.register_op("tanh", _tanh_fwd, _tanh_vjp, elementwise=True)


def _exp_fwd(ctx, a):
    out = np.exp(a)
    ctx["out"] = out
    return out


def _exp_vjp(ctx, g):
    return (g * ctx["out"],)


_EXP = graph.register_op("exp", _exp_fwd, _exp_vjp, elementwise=True)


def _log_fwd(ctx, a):
    ctx["a"] = a
    return np.log(a)


def _log_vjp(ctx, g):
    return (g / ctx["a"],)


_LOG = graph.register_op("log", _log_fwd, _log_vjp, elementwise=True)


def _sqrt_fwd(ctx, a):
    out = np.sqrt(a)
    ctx["out"] = out
    return out


def _sqrt_vjp(ctx, g):
    return (g * 0.5 / ctx["out"],)


_SQRT = graph.register_op("sqrt", _sqrt_fwd, _sqrt_vjp, elementwise=True)


def _abs_fwd(ctx, a):
    ctx["sign"] = np.sign(a)
    return np.abs(a)


def _abs_vjp(ctx, g):
    return (g * ctx["sign"],)


_ABS = graph.register_op("abs", _abs_fwd, _abs_vjp, elementwise=True)


def _detach_fwd(ctx, a):
    return a  # no copy: preserves the detach() sharing contract


def _detach_vjp(ctx, g):  # pragma: no cover - never called (stops_grad)
    return (None,)


_DETACH = graph.register_op(
    "detach", _detach_fwd, _detach_vjp, elementwise=True, stops_grad=True
)


# ----------------------------------------------------------------------
# reductions
# ----------------------------------------------------------------------
def _sum_fwd(ctx, a, *, axis, keepdims):
    ctx["in_shape"] = a.shape
    ctx["axis"] = axis
    ctx["keepdims"] = keepdims
    return np.asarray(a.sum(axis=axis, keepdims=keepdims))


def _sum_vjp(ctx, g):
    in_shape = ctx["in_shape"]
    axis = ctx["axis"]
    grad = g
    if not ctx["keepdims"] and axis is not None:
        axes = axis if isinstance(axis, tuple) else (axis,)
        axes = tuple(a % len(in_shape) for a in axes)
        shape = tuple(1 if i in axes else s for i, s in enumerate(in_shape))
        grad = grad.reshape(shape)
    return (np.broadcast_to(grad, in_shape).astype(g.dtype),)


def _sum_bfwd(ctx, a, *, axis, keepdims):
    nd = a.ndim - 1  # ndim at capture (axis indices refer to it)
    if axis is None:
        raxes = tuple(range(1, a.ndim))
    else:
        axes = axis if isinstance(axis, tuple) else (axis,)
        raxes = tuple(ax % nd + 1 for ax in axes)
    ctx["in_shape"] = a.shape
    ctx["raxes"] = raxes
    ctx["keepdims"] = keepdims
    return np.asarray(a.sum(axis=raxes, keepdims=keepdims))


def _sum_bvjp(ctx, g):
    in_shape = ctx["in_shape"]
    grad = g
    if not ctx["keepdims"]:
        shape = tuple(
            1 if i in ctx["raxes"] else s for i, s in enumerate(in_shape)
        )
        grad = grad.reshape(shape)
    return (np.broadcast_to(grad, in_shape).astype(g.dtype),)


# not batch_exact: numpy's pairwise float32 reduction rounds differently
# depending on the buffer it runs over (allocation alignment), so a stacked
# multi-axis sum cannot promise bit-identity with per-slice full sums
_SUM = graph.register_op(
    "sum", _sum_fwd, _sum_vjp, batched_forward=_sum_bfwd,
    batched_vjp=_sum_bvjp,
)


def _max_fwd(ctx, a, *, axis, keepdims):
    out = a.max(axis=axis, keepdims=keepdims)
    max_keep = a.max(axis=axis, keepdims=True)
    ctx["mask"] = a == max_keep
    ctx["counts"] = ctx["mask"].sum(axis=axis, keepdims=True)
    ctx["in_shape"] = a.shape
    ctx["axis"] = axis
    ctx["keepdims"] = keepdims
    return np.asarray(out)


def _max_vjp(ctx, g):
    in_shape = ctx["in_shape"]
    axis = ctx["axis"]
    keepdims = ctx["keepdims"]
    grad = g
    if not keepdims and axis is not None:
        axes = axis if isinstance(axis, tuple) else (axis,)
        axes = tuple(a % len(in_shape) for a in axes)
        shape = tuple(1 if i in axes else s for i, s in enumerate(in_shape))
        grad = grad.reshape(shape)
    elif not keepdims and axis is None:
        grad = np.reshape(grad, (1,) * len(in_shape))
    return ((ctx["mask"] * grad / ctx["counts"]).astype(g.dtype),)


_MAX = graph.register_op("max", _max_fwd, _max_vjp)


# ----------------------------------------------------------------------
# shape manipulation
# ----------------------------------------------------------------------
def _reshape_fwd(ctx, a, *, shape):
    ctx["in_shape"] = a.shape
    return a.reshape(shape)


def _reshape_vjp(ctx, g):
    return (g.reshape(ctx["in_shape"]),)


def _reshape_bfwd(ctx, a, *, shape):
    ctx["in_shape"] = a.shape
    return a.reshape((a.shape[0],) + tuple(shape))


_RESHAPE = graph.register_op(
    "reshape", _reshape_fwd, _reshape_vjp, batched_forward=_reshape_bfwd,
    batched_vjp=_reshape_vjp, batch_exact=True,
)


def _transpose_fwd(ctx, a, *, axes):
    ctx["inverse"] = np.argsort(axes)
    return a.transpose(axes)


def _transpose_vjp(ctx, g):
    return (g.transpose(ctx["inverse"]),)


def _transpose_bfwd(ctx, a, *, axes):
    baxes = (0,) + tuple(ax + 1 for ax in axes)
    ctx["inverse"] = np.argsort(baxes)
    return a.transpose(baxes)


_TRANSPOSE = graph.register_op(
    "transpose", _transpose_fwd, _transpose_vjp,
    batched_forward=_transpose_bfwd, batched_vjp=_transpose_vjp,
    batch_exact=True,
)


def _getitem_fwd(ctx, a, *, index):
    ctx["in_shape"] = a.shape
    ctx["in_dtype"] = a.dtype
    ctx["index"] = index
    return np.ascontiguousarray(a[index])


def _getitem_vjp(ctx, g):
    full = np.zeros(ctx["in_shape"], dtype=ctx["in_dtype"])
    np.add.at(full, ctx["index"], g)
    return (full,)


_GETITEM = graph.register_op("getitem", _getitem_fwd, _getitem_vjp)


def _concat_fwd(ctx, *arrays, axis):
    ctx["axis"] = axis
    ctx["sizes"] = [a.shape[axis] for a in arrays]
    return np.concatenate(arrays, axis=axis)


def _concat_vjp(ctx, g):
    axis = ctx["axis"]
    offsets = np.cumsum([0] + ctx["sizes"])
    grads = []
    for need, start, stop in zip(ctx["needs"], offsets[:-1], offsets[1:]):
        if need:
            index = [slice(None)] * g.ndim
            index[axis] = slice(start, stop)
            grads.append(np.ascontiguousarray(g[tuple(index)]))
        else:
            grads.append(None)
    return tuple(grads)


_CONCAT = graph.register_op("concat", _concat_fwd, _concat_vjp)


def _stack_fwd(ctx, *arrays, axis):
    ctx["axis"] = axis
    return np.stack(arrays, axis=axis)


def _stack_vjp(ctx, g):
    slices = np.moveaxis(g, ctx["axis"], 0)
    return tuple(
        np.ascontiguousarray(piece) if need else None
        for piece, need in zip(slices, ctx["needs"])
    )


_STACK = graph.register_op("stack", _stack_fwd, _stack_vjp)


def concat(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Concatenate tensors along ``axis`` (differentiable)."""
    return apply_op(_CONCAT, tensors, axis=axis)


def stack(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new ``axis`` (differentiable)."""
    return apply_op(_STACK, tensors, axis=axis)


def as_tensor(value, dtype=None) -> Tensor:
    """Coerce ``value`` to a :class:`Tensor` without copying when possible."""
    if isinstance(value, Tensor):
        return value
    return Tensor(value, dtype=dtype)
