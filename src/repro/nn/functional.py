"""Neural-network operators for the numpy autograd substrate.

Implements the fused / structured operations that the :class:`~repro.nn.tensor.Tensor`
method set does not cover: grouped 2-D convolution (im2col based), max / average
pooling, batch normalisation, dropout, log-softmax and the cross-entropy losses
used throughout the FedKNOW reproduction (hard-label, soft-label / distillation,
and task-masked variants).
"""

from __future__ import annotations

import numpy as np

from . import profiler
from .tensor import Tensor, is_grad_enabled

# ---------------------------------------------------------------------------
# im2col / col2im
# ---------------------------------------------------------------------------


def _pair(value) -> tuple[int, int]:
    if isinstance(value, (tuple, list)):
        return int(value[0]), int(value[1])
    return int(value), int(value)


def im2col(
    x: np.ndarray, kh: int, kw: int, sh: int, sw: int, ph: int, pw: int
) -> tuple[np.ndarray, int, int]:
    """Unfold sliding windows of ``x`` into columns.

    Returns an array of shape ``(N, C*kh*kw, OH*OW)`` whose second axis is laid
    out as ``(channel, kernel_row, kernel_col)``, plus the output spatial size.
    """
    n, c, h, w = x.shape
    oh = (h + 2 * ph - kh) // sh + 1
    ow = (w + 2 * pw - kw) // sw + 1
    if oh <= 0 or ow <= 0:
        raise ValueError(
            f"convolution window ({kh}x{kw}, stride {sh}x{sw}) does not fit "
            f"input of spatial size {h}x{w} with padding {ph}x{pw}"
        )
    if ph or pw:
        x = np.pad(x, ((0, 0), (0, 0), (ph, ph), (pw, pw)))
    cols = np.empty((n, c, kh, kw, oh, ow), dtype=x.dtype)
    for i in range(kh):
        i_end = i + sh * oh
        for j in range(kw):
            cols[:, :, i, j] = x[:, :, i:i_end:sh, j : j + sw * ow : sw]
    return cols.reshape(n, c * kh * kw, oh * ow), oh, ow


def col2im(
    cols: np.ndarray,
    x_shape: tuple[int, int, int, int],
    kh: int,
    kw: int,
    sh: int,
    sw: int,
    ph: int,
    pw: int,
) -> np.ndarray:
    """Fold columns produced by :func:`im2col` back into an image (adds overlaps)."""
    n, c, h, w = x_shape
    oh = (h + 2 * ph - kh) // sh + 1
    ow = (w + 2 * pw - kw) // sw + 1
    cols = cols.reshape(n, c, kh, kw, oh, ow)
    padded = np.zeros((n, c, h + 2 * ph, w + 2 * pw), dtype=cols.dtype)
    for i in range(kh):
        i_end = i + sh * oh
        for j in range(kw):
            padded[:, :, i:i_end:sh, j : j + sw * ow : sw] += cols[:, :, i, j]
    if ph or pw:
        return padded[:, :, ph : ph + h, pw : pw + w]
    return padded


# ---------------------------------------------------------------------------
# convolution
# ---------------------------------------------------------------------------


def conv2d(
    x: Tensor,
    weight: Tensor,
    bias: Tensor | None = None,
    stride=1,
    padding=0,
    groups: int = 1,
) -> Tensor:
    """Grouped 2-D convolution.

    ``x`` has shape ``(N, C, H, W)``; ``weight`` has shape
    ``(C_out, C_in // groups, kh, kw)``.  Depthwise convolution is the special
    case ``groups == C_in`` used by MobileNetV2 / ShuffleNetV2.
    """
    sh, sw = _pair(stride)
    ph, pw = _pair(padding)
    n, c, _, _ = x.shape
    c_out, c_in_g, kh, kw = weight.shape
    if c != c_in_g * groups:
        raise ValueError(
            f"input has {c} channels but weight expects {c_in_g * groups} "
            f"({c_in_g} per group x {groups} groups)"
        )
    if c_out % groups:
        raise ValueError(f"output channels {c_out} not divisible by groups {groups}")

    cols, oh, ow = im2col(x.data, kh, kw, sh, sw, ph, pw)
    l = oh * ow
    cog = c_out // groups
    # (N, G, Cg*kh*kw, L) x (G, CoG, Cg*kh*kw) -> (N, G, CoG, L)
    cols_g = cols.reshape(n, groups, c_in_g * kh * kw, l)
    w_g = weight.data.reshape(groups, cog, c_in_g * kh * kw)
    out = np.einsum("ngkl,gok->ngol", cols_g, w_g, optimize=True)
    out = out.reshape(n, c_out, oh, ow)
    if bias is not None:
        out = out + bias.data.reshape(1, c_out, 1, 1)
    if profiler.is_profiling():
        profiler.record_op(2.0 * n * c_out * l * c_in_g * kh * kw, float(out.size))

    x_shape = x.shape

    def backward(g: np.ndarray) -> None:
        g_g = g.reshape(n, groups, cog, l)
        if bias is not None and bias.requires_grad:
            bias.accumulate_grad(g.sum(axis=(0, 2, 3)))
        if weight.requires_grad:
            grad_w = np.einsum("ngol,ngkl->gok", g_g, cols_g, optimize=True)
            weight.accumulate_grad(grad_w.reshape(weight.shape))
        if x.requires_grad:
            grad_cols = np.einsum("ngol,gok->ngkl", g_g, w_g, optimize=True)
            grad_cols = grad_cols.reshape(n, c * kh * kw, l)
            x.accumulate_grad(col2im(grad_cols, x_shape, kh, kw, sh, sw, ph, pw))

    parents = (x, weight) if bias is None else (x, weight, bias)
    return Tensor._make(out, parents, backward)


# ---------------------------------------------------------------------------
# pooling
# ---------------------------------------------------------------------------


def max_pool2d(x: Tensor, kernel_size=2, stride=None, padding=0) -> Tensor:
    """Max pooling over spatial windows."""
    kh, kw = _pair(kernel_size)
    sh, sw = _pair(stride if stride is not None else kernel_size)
    ph, pw = _pair(padding)
    n, c, _, _ = x.shape
    data = x.data
    if ph or pw:
        pad_value = np.finfo(data.dtype).min
        data = np.pad(
            data, ((0, 0), (0, 0), (ph, ph), (pw, pw)), constant_values=pad_value
        )
    cols, oh, ow = im2col(data, kh, kw, sh, sw, 0, 0)
    windows = cols.reshape(n, c, kh * kw, oh * ow)
    arg = windows.argmax(axis=2)
    out = np.take_along_axis(windows, arg[:, :, None, :], axis=2)[:, :, 0, :]
    out = out.reshape(n, c, oh, ow)

    padded_shape = data.shape
    x_shape = x.shape

    def backward(g: np.ndarray) -> None:
        grad_windows = np.zeros_like(windows)
        np.put_along_axis(
            grad_windows, arg[:, :, None, :], g.reshape(n, c, 1, oh * ow), axis=2
        )
        grad_cols = grad_windows.reshape(n, c * kh * kw, oh * ow)
        grad_padded = col2im(grad_cols, padded_shape, kh, kw, sh, sw, 0, 0)
        if ph or pw:
            grad_padded = grad_padded[
                :, :, ph : ph + x_shape[2], pw : pw + x_shape[3]
            ]
        x.accumulate_grad(grad_padded)

    return Tensor._make(out, (x,), backward)


def avg_pool2d(x: Tensor, kernel_size=2, stride=None, padding=0) -> Tensor:
    """Average pooling over spatial windows."""
    kh, kw = _pair(kernel_size)
    sh, sw = _pair(stride if stride is not None else kernel_size)
    ph, pw = _pair(padding)
    n, c, _, _ = x.shape
    cols, oh, ow = im2col(x.data, kh, kw, sh, sw, ph, pw)
    windows = cols.reshape(n, c, kh * kw, oh * ow)
    out = windows.mean(axis=2).reshape(n, c, oh, ow)
    scale = 1.0 / (kh * kw)
    x_shape = x.shape

    def backward(g: np.ndarray) -> None:
        g_flat = (g.reshape(n, c, 1, oh * ow) * scale).astype(g.dtype)
        grad_windows = np.broadcast_to(g_flat, (n, c, kh * kw, oh * ow))
        grad_cols = np.ascontiguousarray(grad_windows).reshape(
            n, c * kh * kw, oh * ow
        )
        x.accumulate_grad(col2im(grad_cols, x_shape, kh, kw, sh, sw, ph, pw))

    return Tensor._make(out, (x,), backward)


def global_avg_pool2d(x: Tensor) -> Tensor:
    """Adaptive average pooling to a single spatial location, flattened."""
    return x.mean(axis=(2, 3))


# ---------------------------------------------------------------------------
# normalisation
# ---------------------------------------------------------------------------


def batch_norm(
    x: Tensor,
    gamma: Tensor,
    beta: Tensor,
    running_mean: np.ndarray,
    running_var: np.ndarray,
    training: bool,
    momentum: float = 0.1,
    eps: float = 1e-5,
) -> Tensor:
    """Batch normalisation over the channel axis for 2-D or 4-D inputs.

    ``running_mean`` / ``running_var`` are plain numpy buffers updated in place
    during training (they carry no gradient).
    """
    if x.ndim == 4:
        axes = (0, 2, 3)
        shape = (1, -1, 1, 1)
    elif x.ndim == 2:
        axes = (0,)
        shape = (1, -1)
    else:
        raise ValueError(f"batch_norm expects 2-D or 4-D input, got {x.ndim}-D")

    if training:
        mean = x.data.mean(axis=axes)
        var = x.data.var(axis=axes)
        count = x.data.size // x.data.shape[1]
        unbiased = var * count / max(count - 1, 1)
        running_mean *= 1.0 - momentum
        running_mean += momentum * mean
        running_var *= 1.0 - momentum
        running_var += momentum * unbiased
    else:
        mean = running_mean
        var = running_var

    inv_std = 1.0 / np.sqrt(var + eps)
    x_hat = (x.data - mean.reshape(shape)) * inv_std.reshape(shape)
    out = gamma.data.reshape(shape) * x_hat + beta.data.reshape(shape)

    def backward(g: np.ndarray) -> None:
        if beta.requires_grad:
            beta.accumulate_grad(g.sum(axis=axes))
        if gamma.requires_grad:
            gamma.accumulate_grad((g * x_hat).sum(axis=axes))
        if x.requires_grad:
            g_hat = g * gamma.data.reshape(shape)
            if training:
                count = x.data.size // x.data.shape[1]
                sum_g = g_hat.sum(axis=axes, keepdims=True)
                sum_gx = (g_hat * x_hat).sum(axis=axes, keepdims=True)
                grad_x = (
                    inv_std.reshape(shape)
                    / count
                    * (count * g_hat - sum_g - x_hat * sum_gx)
                )
            else:
                grad_x = g_hat * inv_std.reshape(shape)
            x.accumulate_grad(grad_x.astype(g.dtype))

    return Tensor._make(out.astype(x.data.dtype), (x, gamma, beta), backward)


# ---------------------------------------------------------------------------
# regularisation
# ---------------------------------------------------------------------------


def dropout(x: Tensor, p: float, training: bool, rng: np.random.Generator) -> Tensor:
    """Inverted dropout: active only in training mode."""
    if not training or p <= 0.0:
        return x
    if not 0.0 <= p < 1.0:
        raise ValueError(f"dropout probability must be in [0, 1), got {p}")
    keep = 1.0 - p
    mask = (rng.random(x.shape) < keep).astype(x.data.dtype) / keep
    out = x.data * mask

    def backward(g: np.ndarray) -> None:
        x.accumulate_grad(g * mask)

    return Tensor._make(out, (x,), backward)


# ---------------------------------------------------------------------------
# softmax family
# ---------------------------------------------------------------------------


def _log_softmax(logits: np.ndarray) -> np.ndarray:
    shifted = logits - logits.max(axis=1, keepdims=True)
    return shifted - np.log(np.exp(shifted).sum(axis=1, keepdims=True))


def log_softmax(x: Tensor) -> Tensor:
    """Row-wise log-softmax (over axis 1)."""
    out = _log_softmax(x.data)
    softmax = np.exp(out)

    def backward(g: np.ndarray) -> None:
        x.accumulate_grad(g - softmax * g.sum(axis=1, keepdims=True))

    return Tensor._make(out, (x,), backward)


def softmax(x: Tensor) -> Tensor:
    """Row-wise softmax (over axis 1)."""
    out = np.exp(_log_softmax(x.data))

    def backward(g: np.ndarray) -> None:
        dot = (g * out).sum(axis=1, keepdims=True)
        x.accumulate_grad(out * (g - dot))

    return Tensor._make(out, (x,), backward)


def _apply_class_mask(logits: np.ndarray, class_mask: np.ndarray | None) -> np.ndarray:
    if class_mask is None:
        return logits
    masked = np.where(class_mask[None, :], logits, np.float32(-1e9))
    return masked.astype(logits.dtype)


def cross_entropy(
    logits: Tensor,
    labels: np.ndarray,
    class_mask: np.ndarray | None = None,
) -> Tensor:
    """Mean cross-entropy between ``logits`` and integer ``labels``.

    ``class_mask`` (bool, shape ``(num_classes,)``) restricts the softmax to a
    task's classes — the task-incremental evaluation protocol used throughout
    the paper's benchmarks.
    """
    labels = np.asarray(labels)
    n = logits.shape[0]
    if labels.shape != (n,):
        raise ValueError(f"labels shape {labels.shape} does not match batch {n}")
    masked = _apply_class_mask(logits.data, class_mask)
    logp = _log_softmax(masked)
    loss = -logp[np.arange(n), labels].mean()
    probs = np.exp(logp)

    def backward(g: np.ndarray) -> None:
        grad = probs.copy()
        grad[np.arange(n), labels] -= 1.0
        grad *= g / n
        if class_mask is not None:
            grad[:, ~class_mask] = 0.0
        logits.accumulate_grad(grad.astype(logits.data.dtype))

    return Tensor._make(np.asarray(loss, dtype=logits.data.dtype), (logits,), backward)


def soft_cross_entropy(
    logits: Tensor,
    target_probs: np.ndarray,
    class_mask: np.ndarray | None = None,
) -> Tensor:
    """Mean cross-entropy against a soft target distribution.

    This is the loss of FedKNOW's gradient restorer (Eq. 2 of the paper): the
    target is the probability distribution predicted by a past task's retained
    knowledge, and the gradient ``softmax(logits) - target`` points along the
    update direction that keeps the current model consistent with that task.
    """
    target_probs = np.asarray(target_probs, dtype=logits.data.dtype)
    if target_probs.shape != logits.shape:
        raise ValueError(
            f"target shape {target_probs.shape} != logits shape {logits.shape}"
        )
    n = logits.shape[0]
    masked = _apply_class_mask(logits.data, class_mask)
    logp = _log_softmax(masked)
    if class_mask is not None:
        loss = -(target_probs[:, class_mask] * logp[:, class_mask]).sum() / n
    else:
        loss = -(target_probs * logp).sum() / n
    probs = np.exp(logp)

    def backward(g: np.ndarray) -> None:
        grad = (probs - target_probs) * (g / n)
        if class_mask is not None:
            grad[:, ~class_mask] = 0.0
        logits.accumulate_grad(grad.astype(logits.data.dtype))

    return Tensor._make(np.asarray(loss, dtype=logits.data.dtype), (logits,), backward)


def mse_loss(pred: Tensor, target: np.ndarray) -> Tensor:
    """Mean squared error against a constant target."""
    target = np.asarray(target, dtype=pred.data.dtype)
    diff = pred - Tensor(target)
    return (diff * diff).mean()


def accuracy(
    logits: np.ndarray, labels: np.ndarray, class_mask: np.ndarray | None = None
) -> float:
    """Top-1 accuracy of raw ``logits`` against integer ``labels``."""
    logits = np.asarray(logits)
    masked = _apply_class_mask(logits, class_mask)
    pred = masked.argmax(axis=1)
    return float((pred == np.asarray(labels)).mean())
