"""Neural-network operators for the numpy autograd substrate.

Implements the fused / structured operations that the :class:`~repro.nn.tensor.Tensor`
method set does not cover: grouped 2-D convolution (im2col based), max / average
pooling, batch normalisation, dropout, log-softmax and the cross-entropy losses
used throughout the FedKNOW reproduction (hard-label, soft-label / distillation,
and task-masked variants).

Every operator is a registered :class:`~repro.nn.graph.OpDef`, so a model built
from these functions can be captured on a :class:`~repro.nn.graph.GraphTape`
and replayed without per-op Python dispatch.  The conv / pool / cross-entropy
set additionally provides batched implementations (leading client axis,
einsum contractions) that are bit-identical per slice to the unbatched ops.
Two operators opt out of capture semantics: ``dropout`` raises under an active
tape (its mask would be baked stale into the program), and ``batch_norm`` is
capturable for serial replay (the running buffers are shared state, mutated in
place exactly as the dynamic op does) but has no batched implementation.
"""

from __future__ import annotations

import numpy as np

from . import graph, profiler
from .graph import register_op
from .tensor import Tensor, apply_op

# ---------------------------------------------------------------------------
# im2col / col2im
# ---------------------------------------------------------------------------


def _pair(value) -> tuple[int, int]:
    if isinstance(value, (tuple, list)):
        return int(value[0]), int(value[1])
    return int(value), int(value)


def im2col(
    x: np.ndarray, kh: int, kw: int, sh: int, sw: int, ph: int, pw: int
) -> tuple[np.ndarray, int, int]:
    """Unfold sliding windows of ``x`` into columns.

    Returns an array of shape ``(N, C*kh*kw, OH*OW)`` whose second axis is laid
    out as ``(channel, kernel_row, kernel_col)``, plus the output spatial size.
    """
    n, c, h, w = x.shape
    oh = (h + 2 * ph - kh) // sh + 1
    ow = (w + 2 * pw - kw) // sw + 1
    if oh <= 0 or ow <= 0:
        raise ValueError(
            f"convolution window ({kh}x{kw}, stride {sh}x{sw}) does not fit "
            f"input of spatial size {h}x{w} with padding {ph}x{pw}"
        )
    if ph or pw:
        x = np.pad(x, ((0, 0), (0, 0), (ph, ph), (pw, pw)))
    cols = np.empty((n, c, kh, kw, oh, ow), dtype=x.dtype)
    for i in range(kh):
        i_end = i + sh * oh
        for j in range(kw):
            cols[:, :, i, j] = x[:, :, i:i_end:sh, j : j + sw * ow : sw]
    return cols.reshape(n, c * kh * kw, oh * ow), oh, ow


def col2im(
    cols: np.ndarray,
    x_shape: tuple[int, int, int, int],
    kh: int,
    kw: int,
    sh: int,
    sw: int,
    ph: int,
    pw: int,
) -> np.ndarray:
    """Fold columns produced by :func:`im2col` back into an image (adds overlaps)."""
    n, c, h, w = x_shape
    oh = (h + 2 * ph - kh) // sh + 1
    ow = (w + 2 * pw - kw) // sw + 1
    cols = cols.reshape(n, c, kh, kw, oh, ow)
    padded = np.zeros((n, c, h + 2 * ph, w + 2 * pw), dtype=cols.dtype)
    for i in range(kh):
        i_end = i + sh * oh
        for j in range(kw):
            padded[:, :, i:i_end:sh, j : j + sw * ow : sw] += cols[:, :, i, j]
    if ph or pw:
        return padded[:, :, ph : ph + h, pw : pw + w]
    return padded


# ---------------------------------------------------------------------------
# convolution
# ---------------------------------------------------------------------------


def _conv2d_fwd(ctx, *arrays, sh, sw, ph, pw, groups):
    x, weight = arrays[0], arrays[1]
    bias = arrays[2] if len(arrays) > 2 else None
    n, c = x.shape[0], x.shape[1]
    c_out, c_in_g, kh, kw = weight.shape
    cols, oh, ow = im2col(x, kh, kw, sh, sw, ph, pw)
    l = oh * ow
    cog = c_out // groups
    # (N, G, Cg*kh*kw, L) x (G, CoG, Cg*kh*kw) -> (N, G, CoG, L)
    cols_g = cols.reshape(n, groups, c_in_g * kh * kw, l)
    w_g = weight.reshape(groups, cog, c_in_g * kh * kw)
    out = np.einsum("ngkl,gok->ngol", cols_g, w_g, optimize=True)
    out = out.reshape(n, c_out, oh, ow)
    if bias is not None:
        out = out + bias.reshape(1, c_out, 1, 1)
    if profiler.is_profiling():
        profiler.record_op(2.0 * n * c_out * l * c_in_g * kh * kw, float(out.size))
    ctx["cols_g"] = cols_g
    ctx["w_g"] = w_g
    ctx["dims"] = (n, c, groups, cog, l, kh, kw)
    ctx["conv"] = (sh, sw, ph, pw)
    ctx["x_shape"] = x.shape
    ctx["w_shape"] = weight.shape
    return out


def _conv2d_vjp(ctx, g):
    needs = ctx["needs"]
    n, c, groups, cog, l, kh, kw = ctx["dims"]
    sh, sw, ph, pw = ctx["conv"]
    g_g = g.reshape(n, groups, cog, l)
    gx = gw = gb = None
    if len(needs) > 2 and needs[2]:
        gb = g.sum(axis=(0, 2, 3))
    if needs[1]:
        grad_w = np.einsum("ngol,ngkl->gok", g_g, ctx["cols_g"], optimize=True)
        gw = grad_w.reshape(ctx["w_shape"])
    if needs[0]:
        grad_cols = np.einsum("ngol,gok->ngkl", g_g, ctx["w_g"], optimize=True)
        grad_cols = grad_cols.reshape(n, c * kh * kw, l)
        gx = col2im(grad_cols, ctx["x_shape"], kh, kw, sh, sw, ph, pw)
    if len(needs) > 2:
        return (gx, gw, gb)
    return (gx, gw)


def _conv2d_bfwd(ctx, *arrays, sh, sw, ph, pw, groups):
    x, weight = arrays[0], arrays[1]
    bias = arrays[2] if len(arrays) > 2 else None
    ab = ctx["arg_batched"]
    if not ab[0] or not ab[1]:
        raise NotImplementedError(
            "batched conv2d requires both the input and the weight to carry "
            "the client axis (constant/frozen weights are not supported)"
        )
    b, n, c = x.shape[0], x.shape[1], x.shape[2]
    c_out, c_in_g, kh, kw = weight.shape[1:]
    cols, oh, ow = im2col(x.reshape((b * n,) + x.shape[2:]), kh, kw, sh, sw, ph, pw)
    l = oh * ow
    cog = c_out // groups
    k = c_in_g * kh * kw
    cols_g = cols.reshape(b, n, groups, k, l)
    w_g = weight.reshape(b, groups, cog, k)
    # (B,1,G,CoG,K) @ (B,N,G,K,L) -> (B,N,G,CoG,L): a broadcasted batch of
    # the serial kernel's GEMMs — bit-identical per client slice and much
    # faster than the einsum route, which copies operands into bmm layout
    out = np.matmul(w_g[:, None], cols_g)
    out = out.reshape(b, n, c_out, oh, ow)
    if bias is not None:
        bshape = (b, 1, c_out, 1, 1) if ab[2] else (1, 1, c_out, 1, 1)
        out = out + bias.reshape(bshape)
    if profiler.is_profiling():
        profiler.record_op(2.0 * b * n * c_out * l * k, float(out.size))
    ctx["cols_g"] = cols_g
    ctx["w_g"] = w_g
    ctx["dims"] = (n, c, groups, cog, l, kh, kw)
    ctx["conv"] = (sh, sw, ph, pw)
    ctx["b"] = b
    ctx["x_shape"] = x.shape
    ctx["w_shape"] = weight.shape
    return out


def _conv2d_bvjp(ctx, g):
    needs = ctx["needs"]
    n, c, groups, cog, l, kh, kw = ctx["dims"]
    sh, sw, ph, pw = ctx["conv"]
    b = ctx["b"]
    g_g = g.reshape(b, n, groups, cog, l)
    gx = gw = gb = None
    if len(needs) > 2 and needs[2]:
        gb = g.sum(axis=(1, 3, 4))
    if needs[1]:
        # contract (N, L) merged, like the serial einsum does — summing the
        # per-sample partials in any other order drifts off bit-identity
        k = ctx["w_g"].shape[-1]
        g2 = np.ascontiguousarray(g_g.transpose(0, 2, 3, 1, 4))
        g2 = g2.reshape(b, groups, cog, n * l)
        c2 = np.ascontiguousarray(ctx["cols_g"].transpose(0, 2, 1, 4, 3))
        c2 = c2.reshape(b, groups, n * l, k)
        gw = np.matmul(g2, c2).reshape(ctx["w_shape"])
    if needs[0]:
        grad_cols = np.matmul(ctx["w_g"][:, None].swapaxes(-1, -2), g_g)
        grad_cols = grad_cols.reshape(b * n, c * kh * kw, l)
        x_shape = ctx["x_shape"]
        gx = col2im(
            grad_cols, (b * n,) + x_shape[2:], kh, kw, sh, sw, ph, pw
        ).reshape(x_shape)
    if len(needs) > 2:
        return (gx, gw, gb)
    return (gx, gw)


_CONV2D = register_op(
    "conv2d", _conv2d_fwd, _conv2d_vjp, batched_forward=_conv2d_bfwd,
    batched_vjp=_conv2d_bvjp, batch_exact=True,
)


def conv2d(
    x: Tensor,
    weight: Tensor,
    bias: Tensor | None = None,
    stride=1,
    padding=0,
    groups: int = 1,
) -> Tensor:
    """Grouped 2-D convolution.

    ``x`` has shape ``(N, C, H, W)``; ``weight`` has shape
    ``(C_out, C_in // groups, kh, kw)``.  Depthwise convolution is the special
    case ``groups == C_in`` used by MobileNetV2 / ShuffleNetV2.
    """
    sh, sw = _pair(stride)
    ph, pw = _pair(padding)
    _, c, _, _ = x.shape
    c_out, c_in_g, _, _ = weight.shape
    if c != c_in_g * groups:
        raise ValueError(
            f"input has {c} channels but weight expects {c_in_g * groups} "
            f"({c_in_g} per group x {groups} groups)"
        )
    if c_out % groups:
        raise ValueError(f"output channels {c_out} not divisible by groups {groups}")
    args = (x, weight) if bias is None else (x, weight, bias)
    return apply_op(_CONV2D, args, sh=sh, sw=sw, ph=ph, pw=pw, groups=groups)


# ---------------------------------------------------------------------------
# pooling
# ---------------------------------------------------------------------------


def _max_pool2d_fwd(ctx, x, *, kh, kw, sh, sw, ph, pw):
    n, c = x.shape[0], x.shape[1]
    data = x
    if ph or pw:
        pad_value = np.finfo(data.dtype).min
        data = np.pad(
            data, ((0, 0), (0, 0), (ph, ph), (pw, pw)), constant_values=pad_value
        )
    cols, oh, ow = im2col(data, kh, kw, sh, sw, 0, 0)
    windows = cols.reshape(n, c, kh * kw, oh * ow)
    arg = windows.argmax(axis=2)
    out = np.take_along_axis(windows, arg[:, :, None, :], axis=2)[:, :, 0, :]
    ctx["arg"] = arg
    ctx["windows_shape"] = windows.shape
    ctx["dtype"] = windows.dtype
    ctx["dims"] = (n, c, oh, ow, kh, kw, sh, sw, ph, pw)
    ctx["padded_shape"] = data.shape
    ctx["x_shape"] = x.shape
    return out.reshape(n, c, oh, ow)


def _max_pool2d_vjp(ctx, g):
    n, c, oh, ow, kh, kw, sh, sw, ph, pw = ctx["dims"]
    x_shape = ctx["x_shape"]
    grad_windows = np.zeros(ctx["windows_shape"], dtype=ctx["dtype"])
    np.put_along_axis(
        grad_windows, ctx["arg"][:, :, None, :], g.reshape(n, c, 1, oh * ow), axis=2
    )
    grad_cols = grad_windows.reshape(n, c * kh * kw, oh * ow)
    grad_padded = col2im(grad_cols, ctx["padded_shape"], kh, kw, sh, sw, 0, 0)
    if ph or pw:
        grad_padded = grad_padded[:, :, ph : ph + x_shape[2], pw : pw + x_shape[3]]
    return (grad_padded,)


def _max_pool2d_bfwd(ctx, x, *, kh, kw, sh, sw, ph, pw):
    b = x.shape[0]
    sub: dict = {}
    out = _max_pool2d_fwd(
        sub, x.reshape((-1,) + x.shape[2:]), kh=kh, kw=kw, sh=sh, sw=sw, ph=ph, pw=pw
    )
    ctx["sub"] = sub
    ctx["b"] = b
    return out.reshape((b, -1) + out.shape[1:])


def _max_pool2d_bvjp(ctx, g):
    gg = _max_pool2d_vjp(ctx["sub"], g.reshape((-1,) + g.shape[2:]))[0]
    return (gg.reshape((ctx["b"], -1) + gg.shape[1:]),)


_MAX_POOL2D = register_op(
    "max_pool2d", _max_pool2d_fwd, _max_pool2d_vjp,
    batched_forward=_max_pool2d_bfwd, batched_vjp=_max_pool2d_bvjp,
    batch_exact=True,
)


def max_pool2d(x: Tensor, kernel_size=2, stride=None, padding=0) -> Tensor:
    """Max pooling over spatial windows."""
    kh, kw = _pair(kernel_size)
    sh, sw = _pair(stride if stride is not None else kernel_size)
    ph, pw = _pair(padding)
    return apply_op(_MAX_POOL2D, (x,), kh=kh, kw=kw, sh=sh, sw=sw, ph=ph, pw=pw)


def _avg_pool2d_fwd(ctx, x, *, kh, kw, sh, sw, ph, pw):
    n, c = x.shape[0], x.shape[1]
    cols, oh, ow = im2col(x, kh, kw, sh, sw, ph, pw)
    windows = cols.reshape(n, c, kh * kw, oh * ow)
    out = windows.mean(axis=2).reshape(n, c, oh, ow)
    ctx["dims"] = (n, c, oh, ow, kh, kw, sh, sw, ph, pw)
    ctx["x_shape"] = x.shape
    return out


def _avg_pool2d_vjp(ctx, g):
    n, c, oh, ow, kh, kw, sh, sw, ph, pw = ctx["dims"]
    scale = 1.0 / (kh * kw)
    g_flat = (g.reshape(n, c, 1, oh * ow) * scale).astype(g.dtype)
    grad_windows = np.broadcast_to(g_flat, (n, c, kh * kw, oh * ow))
    grad_cols = np.ascontiguousarray(grad_windows).reshape(n, c * kh * kw, oh * ow)
    return (col2im(grad_cols, ctx["x_shape"], kh, kw, sh, sw, ph, pw),)


def _avg_pool2d_bfwd(ctx, x, *, kh, kw, sh, sw, ph, pw):
    b = x.shape[0]
    sub: dict = {}
    out = _avg_pool2d_fwd(
        sub, x.reshape((-1,) + x.shape[2:]), kh=kh, kw=kw, sh=sh, sw=sw, ph=ph, pw=pw
    )
    ctx["sub"] = sub
    ctx["b"] = b
    return out.reshape((b, -1) + out.shape[1:])


def _avg_pool2d_bvjp(ctx, g):
    gg = _avg_pool2d_vjp(ctx["sub"], g.reshape((-1,) + g.shape[2:]))[0]
    return (gg.reshape((ctx["b"], -1) + gg.shape[1:]),)


_AVG_POOL2D = register_op(
    "avg_pool2d", _avg_pool2d_fwd, _avg_pool2d_vjp,
    batched_forward=_avg_pool2d_bfwd, batched_vjp=_avg_pool2d_bvjp,
    batch_exact=True,
)


def avg_pool2d(x: Tensor, kernel_size=2, stride=None, padding=0) -> Tensor:
    """Average pooling over spatial windows."""
    kh, kw = _pair(kernel_size)
    sh, sw = _pair(stride if stride is not None else kernel_size)
    ph, pw = _pair(padding)
    return apply_op(_AVG_POOL2D, (x,), kh=kh, kw=kw, sh=sh, sw=sw, ph=ph, pw=pw)


def global_avg_pool2d(x: Tensor) -> Tensor:
    """Adaptive average pooling to a single spatial location, flattened."""
    return x.mean(axis=(2, 3))


# ---------------------------------------------------------------------------
# normalisation
# ---------------------------------------------------------------------------


def _batch_norm_fwd(
    ctx, x, gamma, beta, *, running_mean, running_var, training, momentum, eps
):
    if x.ndim == 4:
        axes = (0, 2, 3)
        shape = (1, -1, 1, 1)
    elif x.ndim == 2:
        axes = (0,)
        shape = (1, -1)
    else:
        raise ValueError(f"batch_norm expects 2-D or 4-D input, got {x.ndim}-D")

    if training:
        mean = x.mean(axis=axes)
        var = x.var(axis=axes)
        count = x.size // x.shape[1]
        unbiased = var * count / max(count - 1, 1)
        running_mean *= 1.0 - momentum
        running_mean += momentum * mean
        running_var *= 1.0 - momentum
        running_var += momentum * unbiased
    else:
        mean = running_mean
        var = running_var

    inv_std = 1.0 / np.sqrt(var + eps)
    x_hat = (x - mean.reshape(shape)) * inv_std.reshape(shape)
    out = gamma.reshape(shape) * x_hat + beta.reshape(shape)
    ctx["x_hat"] = x_hat
    ctx["inv_std"] = inv_std
    ctx["gamma"] = gamma
    ctx["axes"] = axes
    ctx["shape"] = shape
    ctx["training"] = training
    ctx["count"] = x.size // x.shape[1]
    return out.astype(x.dtype)


def _batch_norm_vjp(ctx, g):
    needs = ctx["needs"]
    axes = ctx["axes"]
    shape = ctx["shape"]
    x_hat = ctx["x_hat"]
    inv_std = ctx["inv_std"]
    gx = ggamma = gbeta = None
    if needs[2]:
        gbeta = g.sum(axis=axes)
    if needs[1]:
        ggamma = (g * x_hat).sum(axis=axes)
    if needs[0]:
        g_hat = g * ctx["gamma"].reshape(shape)
        if ctx["training"]:
            count = ctx["count"]
            sum_g = g_hat.sum(axis=axes, keepdims=True)
            sum_gx = (g_hat * x_hat).sum(axis=axes, keepdims=True)
            grad_x = (
                inv_std.reshape(shape)
                / count
                * (count * g_hat - sum_g - x_hat * sum_gx)
            )
        else:
            grad_x = g_hat * inv_std.reshape(shape)
        gx = grad_x.astype(g.dtype)
    return (gx, ggamma, gbeta)


_BATCH_NORM = register_op("batch_norm", _batch_norm_fwd, _batch_norm_vjp)


def batch_norm(
    x: Tensor,
    gamma: Tensor,
    beta: Tensor,
    running_mean: np.ndarray,
    running_var: np.ndarray,
    training: bool,
    momentum: float = 0.1,
    eps: float = 1e-5,
) -> Tensor:
    """Batch normalisation over the channel axis for 2-D or 4-D inputs.

    ``running_mean`` / ``running_var`` are plain numpy buffers updated in place
    during training (they carry no gradient).  Under capture the buffers and
    the ``training`` flag are baked into the program, so a replay updates the
    same buffers the dynamic op would; the op has no batched implementation
    (per-client running state cannot share one contraction).
    """
    return apply_op(
        _BATCH_NORM,
        (x, gamma, beta),
        running_mean=running_mean,
        running_var=running_var,
        training=training,
        momentum=momentum,
        eps=eps,
    )


# ---------------------------------------------------------------------------
# regularisation
# ---------------------------------------------------------------------------


def _dropout_fwd(ctx, x, *, mask):
    ctx["mask"] = mask
    return x * mask


def _dropout_vjp(ctx, g):
    return (g * ctx["mask"],)


_DROPOUT = register_op("dropout", _dropout_fwd, _dropout_vjp)


def dropout(x: Tensor, p: float, training: bool, rng: np.random.Generator) -> Tensor:
    """Inverted dropout: active only in training mode."""
    if not training or p <= 0.0:
        return x
    if not 0.0 <= p < 1.0:
        raise ValueError(f"dropout probability must be in [0, 1), got {p}")
    if graph.active_tape() is not None:
        raise NotImplementedError(
            "dropout cannot be captured on a GraphTape: the random mask would "
            "be baked into the replayed program; capture in eval mode or use "
            "a model without dropout"
        )
    keep = 1.0 - p
    mask = (rng.random(x.shape) < keep).astype(x.data.dtype) / keep
    return apply_op(_DROPOUT, (x,), mask=mask)


# ---------------------------------------------------------------------------
# softmax family
# ---------------------------------------------------------------------------


def _log_softmax(logits: np.ndarray) -> np.ndarray:
    shifted = logits - logits.max(axis=1, keepdims=True)
    return shifted - np.log(np.exp(shifted).sum(axis=1, keepdims=True))


def _log_softmax_fwd(ctx, x):
    out = _log_softmax(x)
    ctx["softmax"] = np.exp(out)
    return out


def _log_softmax_vjp(ctx, g):
    return (g - ctx["softmax"] * g.sum(axis=1, keepdims=True),)


_LOG_SOFTMAX = register_op("log_softmax", _log_softmax_fwd, _log_softmax_vjp)


def log_softmax(x: Tensor) -> Tensor:
    """Row-wise log-softmax (over axis 1)."""
    return apply_op(_LOG_SOFTMAX, (x,))


def _softmax_fwd(ctx, x):
    out = np.exp(_log_softmax(x))
    ctx["out"] = out
    return out


def _softmax_vjp(ctx, g):
    out = ctx["out"]
    dot = (g * out).sum(axis=1, keepdims=True)
    return (out * (g - dot),)


_SOFTMAX = register_op("softmax", _softmax_fwd, _softmax_vjp)


def softmax(x: Tensor) -> Tensor:
    """Row-wise softmax (over axis 1)."""
    return apply_op(_SOFTMAX, (x,))


def _apply_class_mask(logits: np.ndarray, class_mask: np.ndarray | None) -> np.ndarray:
    if class_mask is None:
        return logits
    masked = np.where(class_mask[None, :], logits, np.float32(-1e9))
    return masked.astype(logits.dtype)


def _cross_entropy_fwd(ctx, *arrays):
    logits, labels = arrays[0], arrays[1]
    class_mask = arrays[2] if len(arrays) > 2 else None
    n = logits.shape[0]
    masked = _apply_class_mask(logits, class_mask)
    logp = _log_softmax(masked)
    loss = -logp[np.arange(n), labels].mean()
    ctx["probs"] = np.exp(logp)
    ctx["labels"] = labels
    ctx["mask"] = class_mask
    ctx["n"] = n
    ctx["dtype"] = logits.dtype
    return np.asarray(loss, dtype=logits.dtype)


def _cross_entropy_vjp(ctx, g):
    n = ctx["n"]
    grad = ctx["probs"].copy()
    grad[np.arange(n), ctx["labels"]] -= 1.0
    grad *= g / n
    if ctx["mask"] is not None:
        grad[:, ~ctx["mask"]] = 0.0
    return (grad.astype(ctx["dtype"]),) + (None,) * (len(ctx["needs"]) - 1)


def _cross_entropy_bfwd(ctx, *arrays):
    logits, labels = arrays[0], arrays[1]
    class_mask = arrays[2] if len(arrays) > 2 else None
    n = logits.shape[1]
    if class_mask is not None:
        mask3 = class_mask[:, None, :] if ctx["arg_batched"][2] else class_mask[None, None, :]
        masked = np.where(mask3, logits, np.float32(-1e9)).astype(logits.dtype)
    else:
        masked = logits
    shifted = masked - masked.max(axis=-1, keepdims=True)
    logp = shifted - np.log(np.exp(shifted).sum(axis=-1, keepdims=True))
    picked = np.take_along_axis(logp, labels[..., None], axis=-1)[..., 0]
    loss = -picked.mean(axis=-1)
    ctx["probs"] = np.exp(logp)
    ctx["labels"] = labels
    ctx["mask"] = class_mask
    ctx["mask_batched"] = ctx["arg_batched"][2] if class_mask is not None else False
    ctx["n"] = n
    ctx["dtype"] = logits.dtype
    return loss.astype(logits.dtype)


def _cross_entropy_bvjp(ctx, g):
    n = ctx["n"]
    labels = ctx["labels"]
    grad = ctx["probs"].copy()
    idx = labels[..., None]
    np.put_along_axis(grad, idx, np.take_along_axis(grad, idx, axis=-1) - 1.0, axis=-1)
    grad *= (g / n)[:, None, None]
    mask = ctx["mask"]
    if mask is not None:
        mask3 = mask[:, None, :] if ctx["mask_batched"] else mask[None, None, :]
        grad = np.where(mask3, grad, np.float32(0.0))
    return (grad.astype(ctx["dtype"]),) + (None,) * (len(ctx["needs"]) - 1)


_CROSS_ENTROPY = register_op(
    "cross_entropy", _cross_entropy_fwd, _cross_entropy_vjp,
    batched_forward=_cross_entropy_bfwd, batched_vjp=_cross_entropy_bvjp,
    batch_exact=True,
)


def cross_entropy(
    logits: Tensor,
    labels,
    class_mask=None,
) -> Tensor:
    """Mean cross-entropy between ``logits`` and integer ``labels``.

    ``class_mask`` (bool, shape ``(num_classes,)``) restricts the softmax to a
    task's classes — the task-incremental evaluation protocol used throughout
    the paper's benchmarks.  ``labels`` / ``class_mask`` may be passed as
    (non-grad) tensors so a capture treats them as per-replay inputs.
    """
    labels_arr = labels.data if isinstance(labels, Tensor) else np.asarray(labels)
    n = logits.shape[0]
    if labels_arr.shape != (n,):
        raise ValueError(f"labels shape {labels_arr.shape} does not match batch {n}")
    if not isinstance(labels, Tensor):
        labels = Tensor(labels_arr, dtype=labels_arr.dtype)
    if class_mask is None:
        return apply_op(_CROSS_ENTROPY, (logits, labels))
    if not isinstance(class_mask, Tensor):
        mask_arr = np.asarray(class_mask)
        class_mask = Tensor(mask_arr, dtype=mask_arr.dtype)
    return apply_op(_CROSS_ENTROPY, (logits, labels, class_mask))


def _soft_cross_entropy_fwd(ctx, logits, *, target_probs, class_mask):
    n = logits.shape[0]
    masked = _apply_class_mask(logits, class_mask)
    logp = _log_softmax(masked)
    if class_mask is not None:
        loss = -(target_probs[:, class_mask] * logp[:, class_mask]).sum() / n
    else:
        loss = -(target_probs * logp).sum() / n
    ctx["probs"] = np.exp(logp)
    ctx["target_probs"] = target_probs
    ctx["mask"] = class_mask
    ctx["n"] = n
    ctx["dtype"] = logits.dtype
    return np.asarray(loss, dtype=logits.dtype)


def _soft_cross_entropy_vjp(ctx, g):
    grad = (ctx["probs"] - ctx["target_probs"]) * (g / ctx["n"])
    if ctx["mask"] is not None:
        grad[:, ~ctx["mask"]] = 0.0
    return (grad.astype(ctx["dtype"]),)


_SOFT_CROSS_ENTROPY = register_op(
    "soft_cross_entropy", _soft_cross_entropy_fwd, _soft_cross_entropy_vjp
)


def soft_cross_entropy(
    logits: Tensor,
    target_probs: np.ndarray,
    class_mask: np.ndarray | None = None,
) -> Tensor:
    """Mean cross-entropy against a soft target distribution.

    This is the loss of FedKNOW's gradient restorer (Eq. 2 of the paper): the
    target is the probability distribution predicted by a past task's retained
    knowledge, and the gradient ``softmax(logits) - target`` points along the
    update direction that keeps the current model consistent with that task.
    """
    target_probs = np.asarray(target_probs, dtype=logits.data.dtype)
    if target_probs.shape != logits.shape:
        raise ValueError(
            f"target shape {target_probs.shape} != logits shape {logits.shape}"
        )
    return apply_op(
        _SOFT_CROSS_ENTROPY,
        (logits,),
        target_probs=target_probs,
        class_mask=class_mask,
    )


def mse_loss(pred: Tensor, target: np.ndarray) -> Tensor:
    """Mean squared error against a constant target."""
    target = np.asarray(target, dtype=pred.data.dtype)
    diff = pred - Tensor(target)
    return (diff * diff).mean()


def accuracy(
    logits: np.ndarray, labels: np.ndarray, class_mask: np.ndarray | None = None
) -> float:
    """Top-1 accuracy of raw ``logits`` against integer ``labels``."""
    logits = np.asarray(logits)
    masked = _apply_class_mask(logits, class_mask)
    pred = masked.argmax(axis=1)
    return float((pred == np.asarray(labels)).mean())
