"""Flattening model parameters / gradients to single vectors and back.

The FedKNOW gradient integrator, GEM's projection, EWC's penalty and the
Wasserstein task-distance all operate on flat gradient vectors; these helpers
define the canonical parameter ordering (the module traversal order of
``Module.named_parameters``).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .module import Module, Parameter


def parameters_to_vector(params: Sequence[Parameter]) -> np.ndarray:
    """Concatenate parameter values into one float64 vector."""
    return np.concatenate([p.data.reshape(-1).astype(np.float64) for p in params])


def vector_to_parameters(vector: np.ndarray, params: Sequence[Parameter]) -> None:
    """Write a flat vector back into the parameter tensors (in place)."""
    expected = sum(p.size for p in params)
    if vector.size != expected:
        raise ValueError(f"vector has {vector.size} elements, expected {expected}")
    offset = 0
    for param in params:
        chunk = vector[offset : offset + param.size]
        param.data[...] = chunk.reshape(param.shape).astype(param.data.dtype)
        offset += param.size


def gradients_to_vector(params: Sequence[Parameter]) -> np.ndarray:
    """Concatenate gradients into one float64 vector (zeros where grad is None)."""
    chunks = []
    for param in params:
        if param.grad is None:
            chunks.append(np.zeros(param.size, dtype=np.float64))
        else:
            chunks.append(param.grad.reshape(-1).astype(np.float64))
    return np.concatenate(chunks)


def vector_to_gradients(vector: np.ndarray, params: Sequence[Parameter]) -> None:
    """Write a flat vector into the ``grad`` buffers of the parameters."""
    expected = sum(p.size for p in params)
    if vector.size != expected:
        raise ValueError(f"vector has {vector.size} elements, expected {expected}")
    offset = 0
    for param in params:
        chunk = vector[offset : offset + param.size]
        param.grad = chunk.reshape(param.shape).astype(param.data.dtype)
        offset += param.size


def model_gradient(model: Module) -> np.ndarray:
    """Flat gradient vector of a model's parameters."""
    return gradients_to_vector(model.parameters())


def model_vector(model: Module) -> np.ndarray:
    """Flat value vector of a model's parameters."""
    return parameters_to_vector(model.parameters())
