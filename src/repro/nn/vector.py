"""Flattening model parameters / gradients to single vectors and back.

The FedKNOW gradient integrator, GEM's projection, EWC's penalty and the
Wasserstein task-distance all operate on flat gradient vectors; these helpers
define the canonical parameter ordering (the module traversal order of
``Module.named_parameters``).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .module import Module, Parameter


def parameters_to_vector(params: Sequence[Parameter]) -> np.ndarray:
    """Concatenate parameter values into one float64 vector."""
    return np.concatenate([p.data.reshape(-1).astype(np.float64) for p in params])


def vector_to_parameters(vector: np.ndarray, params: Sequence[Parameter]) -> None:
    """Write a flat vector back into the parameter tensors (in place)."""
    expected = sum(p.size for p in params)
    if vector.size != expected:
        raise ValueError(f"vector has {vector.size} elements, expected {expected}")
    offset = 0
    for param in params:
        chunk = vector[offset : offset + param.size]
        param.data[...] = chunk.reshape(param.shape).astype(param.data.dtype)
        offset += param.size


def gradients_to_vector(params: Sequence[Parameter]) -> np.ndarray:
    """Concatenate gradients into one float64 vector (zeros where grad is None)."""
    chunks = []
    for param in params:
        if param.grad is None:
            chunks.append(np.zeros(param.size, dtype=np.float64))
        else:
            chunks.append(param.grad.reshape(-1).astype(np.float64))
    return np.concatenate(chunks)


def vector_to_gradients(vector: np.ndarray, params: Sequence[Parameter]) -> None:
    """Write a flat vector into the ``grad`` buffers of the parameters."""
    expected = sum(p.size for p in params)
    if vector.size != expected:
        raise ValueError(f"vector has {vector.size} elements, expected {expected}")
    offset = 0
    for param in params:
        chunk = vector[offset : offset + param.size]
        param.grad = chunk.reshape(param.shape).astype(param.data.dtype)
        offset += param.size


class FlatParamView:
    """A flat float32 view over an ordered parameter list.

    Precomputes the offset/slice of every parameter in the concatenated
    vector so a replayed optimiser step is a handful of array ops on one
    ``(D,)`` buffer — or, stacked, on a ``(B, D)`` buffer holding ``B``
    clients' weights.  The view itself holds no data; ``gather`` / ``scatter``
    copy between the parameter tensors and caller-owned flat buffers (numpy
    cannot alias non-contiguous parameter storage into one vector).
    """

    def __init__(self, params: Sequence[Parameter]):
        self.params: list[Parameter] = list(params)
        if not self.params:
            raise ValueError("FlatParamView over an empty parameter list")
        self.shapes = [p.data.shape for p in self.params]
        self.sizes = [int(p.data.size) for p in self.params]
        offsets = [0]
        for size in self.sizes:
            offsets.append(offsets[-1] + size)
        self.slices = [
            slice(a, b) for a, b in zip(offsets[:-1], offsets[1:])
        ]
        self.total = offsets[-1]

    def _params(self, params) -> list:
        return self.params if params is None else list(params)

    def gather(
        self, out: np.ndarray | None = None, params: Sequence[Parameter] | None = None
    ) -> np.ndarray:
        """Copy parameter values into a flat ``(D,)`` float32 buffer."""
        if out is None:
            out = np.empty(self.total, dtype=np.float32)
        for p, sl in zip(self._params(params), self.slices):
            out[sl] = p.data.reshape(-1)
        return out

    def scatter(
        self, flat: np.ndarray, params: Sequence[Parameter] | None = None
    ) -> None:
        """Write a flat ``(D,)`` buffer back into the parameter tensors."""
        for p, sl, shape in zip(self._params(params), self.slices, self.shapes):
            p.data[...] = flat[sl].reshape(shape)

    def gather_grads(
        self, out: np.ndarray | None = None, params: Sequence[Parameter] | None = None
    ) -> np.ndarray:
        """Copy gradients into a flat ``(D,)`` buffer (zeros where ``None``)."""
        if out is None:
            out = np.empty(self.total, dtype=np.float32)
        for p, sl in zip(self._params(params), self.slices):
            if p.grad is None:
                out[sl] = 0.0
            else:
                out[sl] = p.grad.reshape(-1)
        return out

    # -- stacked (B, D) <-> per-slot stacked arrays ---------------------
    def scatter_stacked(
        self, flat2d: np.ndarray, arrays: Sequence[np.ndarray]
    ) -> None:
        """Write a ``(B, D)`` buffer into per-slot ``(B,) + shape`` arrays."""
        b = flat2d.shape[0]
        for arr, sl, shape in zip(arrays, self.slices, self.shapes):
            arr[...] = flat2d[:, sl].reshape((b,) + shape)

    def gather_stacked(
        self, arrays: Sequence[np.ndarray], out: np.ndarray
    ) -> np.ndarray:
        """Copy per-slot ``(B,) + shape`` arrays into a ``(B, D)`` buffer."""
        b = out.shape[0]
        for arr, sl in zip(arrays, self.slices):
            out[:, sl] = arr.reshape(b, -1)
        return out


def model_gradient(model: Module) -> np.ndarray:
    """Flat gradient vector of a model's parameters."""
    return gradients_to_vector(model.parameters())


def model_vector(model: Module) -> np.ndarray:
    """Flat value vector of a model's parameters."""
    return parameters_to_vector(model.parameters())
