"""Operation-level FLOP / activation / wall-time profiling.

The edge-device time and memory simulation needs per-model compute costs.
An active :class:`OpProfiler` accumulates multiply-accumulate counts (as
2-FLOP MACs) and activation element counts from the conv / matmul ops while
it is entered; :func:`profile_forward` measures one forward pass of a model.

An active :class:`OpTimer` additionally accumulates **wall-clock seconds
per op name** from the graph-tape replay loops (:mod:`repro.nn.graph`),
which is how per-op timings fold into telemetry ``tape_replay`` spans.
Both follow the same active-list pattern: the replay loop's guard is one
``bool()`` of a module list, so untimed replays pay nothing per node.
"""

from __future__ import annotations

import contextlib

_active: list["OpProfiler"] = []
_timers: list["OpTimer"] = []


class OpProfiler:
    """Accumulates FLOPs, activation elements and op dispatches while active.

    ``dispatches`` counts trips through the dynamic per-op dispatch point
    (``apply_op``); a replayed :class:`~repro.nn.graph.GraphTape` executes
    op functions directly and therefore records zero dispatches.
    """

    def __init__(self):
        self.flops = 0.0
        self.activation_elems = 0.0
        self.dispatches = 0

    def add(self, flops: float, activation_elems: float) -> None:
        self.flops += flops
        self.activation_elems += activation_elems

    def __enter__(self) -> "OpProfiler":
        _active.append(self)
        return self

    def __exit__(self, *exc) -> None:
        _active.remove(self)


def record_op(flops: float, activation_elems: float) -> None:
    """Called by instrumented ops; no-op when no profiler is active."""
    for profiler in _active:
        profiler.add(flops, activation_elems)


def record_dispatch() -> None:
    """Called once per dynamic op dispatch; no-op when no profiler is active."""
    for profiler in _active:
        profiler.dispatches += 1


def is_profiling() -> bool:
    return bool(_active)


class OpTimer:
    """Accumulates wall-clock seconds and call counts per op name."""

    def __init__(self):
        self.seconds: dict[str, float] = {}
        self.calls: dict[str, int] = {}

    def add(self, name: str, seconds: float) -> None:
        self.seconds[name] = self.seconds.get(name, 0.0) + seconds
        self.calls[name] = self.calls.get(name, 0) + 1

    def summary(self) -> dict[str, dict]:
        """Per-op ``{"seconds": ..., "calls": ...}``, heaviest first."""
        return {
            name: {"seconds": self.seconds[name], "calls": self.calls[name]}
            for name in sorted(self.seconds, key=self.seconds.get,
                               reverse=True)
        }

    def __enter__(self) -> "OpTimer":
        _timers.append(self)
        return self

    def __exit__(self, *exc) -> None:
        _timers.remove(self)


def is_timing() -> bool:
    return bool(_timers)


def record_op_seconds(name: str, seconds: float) -> None:
    """Called by the tape replay loops; no-op when no timer is active."""
    for timer in _timers:
        timer.add(name, seconds)


def profile_forward(model, input_shape: tuple[int, ...], batch: int = 2):
    """Measure (flops, activation elements) per **sample** of one forward pass."""
    import numpy as np

    from .tensor import Tensor, no_grad

    x = np.zeros((batch, *input_shape), dtype=np.float32)
    was_training = model.training
    model.eval()
    with OpProfiler() as profiler, no_grad():
        model(Tensor(x))
    if was_training:
        model.train()
    return profiler.flops / batch, profiler.activation_elems / batch
