"""Operation-level FLOP / activation profiling.

The edge-device time and memory simulation needs per-model compute costs.
An active :class:`OpProfiler` accumulates multiply-accumulate counts (as
2-FLOP MACs) and activation element counts from the conv / matmul ops while
it is entered; :func:`profile_forward` measures one forward pass of a model.
"""

from __future__ import annotations

import contextlib

_active: list["OpProfiler"] = []


class OpProfiler:
    """Accumulates FLOPs, activation elements and op dispatches while active.

    ``dispatches`` counts trips through the dynamic per-op dispatch point
    (``apply_op``); a replayed :class:`~repro.nn.graph.GraphTape` executes
    op functions directly and therefore records zero dispatches.
    """

    def __init__(self):
        self.flops = 0.0
        self.activation_elems = 0.0
        self.dispatches = 0

    def add(self, flops: float, activation_elems: float) -> None:
        self.flops += flops
        self.activation_elems += activation_elems

    def __enter__(self) -> "OpProfiler":
        _active.append(self)
        return self

    def __exit__(self, *exc) -> None:
        _active.remove(self)


def record_op(flops: float, activation_elems: float) -> None:
    """Called by instrumented ops; no-op when no profiler is active."""
    for profiler in _active:
        profiler.add(flops, activation_elems)


def record_dispatch() -> None:
    """Called once per dynamic op dispatch; no-op when no profiler is active."""
    for profiler in _active:
        profiler.dispatches += 1


def is_profiling() -> bool:
    return bool(_active)


def profile_forward(model, input_shape: tuple[int, ...], batch: int = 2):
    """Measure (flops, activation elements) per **sample** of one forward pass."""
    import numpy as np

    from .tensor import Tensor, no_grad

    x = np.zeros((batch, *input_shape), dtype=np.float32)
    was_training = model.training
    model.eval()
    with OpProfiler() as profiler, no_grad():
        model(Tensor(x))
    if was_training:
        model.train()
    return profiler.flops / batch, profiler.activation_elems / batch
