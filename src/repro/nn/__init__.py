"""``repro.nn`` — a numpy-based deep-learning substrate.

Replaces PyTorch for this reproduction: reverse-mode autograd
(:mod:`repro.nn.tensor`), NN operators (:mod:`repro.nn.functional`), layers,
SGD, and the convergence-constrained learning-rate schedules of the paper's
Section IV.
"""

from . import functional, init
from .layers import (
    AvgPool2d,
    BatchNorm1d,
    BatchNorm2d,
    ChannelShuffle,
    Conv2d,
    Dropout,
    Flatten,
    GlobalAvgPool2d,
    Identity,
    Linear,
    MaxPool2d,
    ReLU,
    Sigmoid,
    Tanh,
)
from .module import Module, ModuleList, Parameter, Sequential
from .optim import SGD, clip_grad_norm
from .schedules import (
    BoundedInverseDecay,
    ConstantLR,
    InverseSqrtDecay,
    InverseTimeDecay,
    LRSchedule,
    make_convergent_schedules,
)
from .tensor import Tensor, as_tensor, concat, is_grad_enabled, no_grad, stack
from .vector import (
    gradients_to_vector,
    model_gradient,
    model_vector,
    parameters_to_vector,
    vector_to_gradients,
    vector_to_parameters,
)

__all__ = [
    "AvgPool2d",
    "BatchNorm1d",
    "BatchNorm2d",
    "BoundedInverseDecay",
    "ChannelShuffle",
    "ConstantLR",
    "Conv2d",
    "Dropout",
    "Flatten",
    "GlobalAvgPool2d",
    "Identity",
    "InverseSqrtDecay",
    "InverseTimeDecay",
    "LRSchedule",
    "Linear",
    "MaxPool2d",
    "Module",
    "ModuleList",
    "Parameter",
    "ReLU",
    "SGD",
    "Sequential",
    "Sigmoid",
    "Tanh",
    "Tensor",
    "as_tensor",
    "clip_grad_norm",
    "concat",
    "functional",
    "gradients_to_vector",
    "init",
    "is_grad_enabled",
    "make_convergent_schedules",
    "model_gradient",
    "model_vector",
    "no_grad",
    "parameters_to_vector",
    "stack",
    "vector_to_gradients",
    "vector_to_parameters",
]
